// Shared helpers for the benchmark harness binaries.
//
// Every bench prints human-readable Markdown tables on stdout and, when the
// `--json` flag is given, additionally records its headline numbers as
// machine-readable JSON so the perf trajectory can be tracked across PRs:
//
//   ./bench_foo --json            # writes BENCH_foo.json in the cwd
//   ./bench_foo --json=out.json   # writes to the given path
#pragma once

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/fraction.hpp"
#include "common/io.hpp"

namespace storesched::bench {

/// Prints a section banner so the tee'd bench_output.txt is navigable.
inline void banner(const std::string& experiment_id, const std::string& title) {
  std::cout << "\n==============================================================\n"
            << experiment_id << " -- " << title << "\n"
            << "==============================================================\n";
}

/// Formats an exact fraction together with its decimal value, e.g. "3/2 (1.500)".
inline std::string frac(const Fraction& f, int decimals = 3) {
  if (f.den() == 1) return f.to_string();
  return f.to_string() + " (" + fmt(f.to_double(), decimals) + ")";
}

/// Ratio of two non-negative integers as a decimal string.
inline std::string ratio_str(std::int64_t num, std::int64_t den,
                             int decimals = 3) {
  if (den == 0) return "n/a";
  return fmt(static_cast<double>(num) / static_cast<double>(den), decimals);
}

/// One JSON scalar; implicit from the types benches actually record.
class JsonValue {
 public:
  JsonValue(double v) : value_(v) {}                            // NOLINT
  JsonValue(int v) : value_(static_cast<std::int64_t>(v)) {}    // NOLINT
  JsonValue(std::int64_t v) : value_(v) {}                      // NOLINT
  JsonValue(std::size_t v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  JsonValue(bool v) : value_(v) {}                              // NOLINT
  JsonValue(const char* v) : value_(std::string(v)) {}          // NOLINT
  JsonValue(std::string v) : value_(std::move(v)) {}            // NOLINT
  JsonValue(const Fraction& f) : value_(f.to_string()) {}       // NOLINT

  void write(std::ostream& os) const {
    if (const auto* d = std::get_if<double>(&value_)) {
      os << fmt(*d, 6);
    } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
      os << *i;
    } else if (const auto* b = std::get_if<bool>(&value_)) {
      os << (*b ? "true" : "false");
    } else {
      os << '"';
      for (const char c : std::get<std::string>(value_)) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          default: os << c;
        }
      }
      os << '"';
    }
  }

 private:
  std::variant<double, std::int64_t, bool, std::string> value_;
};

/// Collects named records of key/value fields and writes them as one JSON
/// document (`{"bench": ..., "records": [...]}`) when --json was requested.
class BenchReport {
 public:
  using Fields = std::vector<std::pair<std::string, JsonValue>>;

  /// Parses --json / --json=PATH out of argv. Unknown arguments are left
  /// for the bench to interpret.
  BenchReport(std::string bench_id, int argc, char** argv)
      : bench_id_(std::move(bench_id)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        path_ = "BENCH_" + bench_id_ + ".json";
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      }
    }
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    try {
      finish();
    } catch (...) {  // NOLINT: never throw from a destructor
    }
  }

  bool enabled() const { return !path_.empty(); }

  /// Records one measurement row.
  void add(const std::string& record_name, Fields fields) {
    records_.emplace_back(record_name, std::move(fields));
  }

  /// Writes the JSON file (idempotent; also called by the destructor).
  void finish() {
    if (path_.empty() || written_) return;
    std::ofstream out(path_);
    if (!out) throw std::runtime_error("BenchReport: cannot write " + path_);
    out << "{\n  \"bench\": \"" << bench_id_ << "\",\n  \"records\": [";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << (r ? ",\n    {" : "\n    {");
      out << "\"name\": ";
      JsonValue(records_[r].first).write(out);
      for (const auto& [key, value] : records_[r].second) {
        out << ", \"" << key << "\": ";
        value.write(out);
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    written_ = true;
    std::cerr << "[bench] JSON written to " << path_ << "\n";
  }

 private:
  std::string bench_id_;
  std::string path_;
  std::vector<std::pair<std::string, Fields>> records_;
  bool written_ = false;
};

/// Loads a committed BENCH_*.json baseline whole. The format is the
/// library's own flat BenchReport output (one record object per line), so
/// the string scans below are enough -- no JSON parser dependency.
inline std::string read_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read baseline " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The text of the first record named `name` that contains every needle
/// (needles pin record keys, e.g. "\"n\": 5000,"). Throws when absent.
inline std::string baseline_record(const std::string& text,
                                   const std::string& name,
                                   const std::vector<std::string>& needles) {
  std::size_t at = 0;
  const std::string name_needle = "\"name\": \"" + name + "\"";
  while ((at = text.find(name_needle, at)) != std::string::npos) {
    const std::size_t end = text.find('}', at);
    if (end == std::string::npos) break;
    const std::string record = text.substr(at, end - at);
    bool all = true;
    for (const std::string& needle : needles) {
      if (record.find(needle) == std::string::npos) all = false;
    }
    if (all) return record;
    at = end;
  }
  throw std::runtime_error("baseline has no matching \"" + name + "\" record");
}

/// One numeric field out of a baseline_record() slice.
inline double record_field(const std::string& record,
                           const std::string& field) {
  const std::string needle = "\"" + field + "\": ";
  const std::size_t key = record.find(needle);
  if (key == std::string::npos) {
    throw std::runtime_error("baseline record has no field " + field);
  }
  return std::stod(record.substr(key + needle.size()));
}

/// Wall-clock time of fn() in milliseconds (single run).
template <typename Fn>
double time_ms(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Median wall time of k timed runs of fn(). `warmup` adds one untimed
/// run first -- use it for cache-sensitive micro-cells; skip it for
/// seconds-scale runs where an extra execution costs more than the noise
/// it removes.
template <typename Fn>
double median_ms(int k, bool warmup, Fn&& fn) {
  if (warmup) fn();
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) times.push_back(time_ms(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace storesched::bench
