// Shared helpers for the benchmark harness binaries.
#pragma once

#include <iostream>
#include <string>

#include "common/fraction.hpp"
#include "common/io.hpp"

namespace storesched::bench {

/// Prints a section banner so the tee'd bench_output.txt is navigable.
inline void banner(const std::string& experiment_id, const std::string& title) {
  std::cout << "\n==============================================================\n"
            << experiment_id << " -- " << title << "\n"
            << "==============================================================\n";
}

/// Formats an exact fraction together with its decimal value, e.g. "3/2 (1.500)".
inline std::string frac(const Fraction& f, int decimals = 3) {
  if (f.den() == 1) return f.to_string();
  return f.to_string() + " (" + fmt(f.to_double(), decimals) + ")";
}

/// Ratio of two non-negative integers as a decimal string.
inline std::string ratio_str(std::int64_t num, std::int64_t den,
                             int decimals = 3) {
  if (den == 0) return "n/a";
  return fmt(static_cast<double>(num) / static_cast<double>(den), decimals);
}

}  // namespace storesched::bench
