// HOTPATH -- old-vs-new wall time of the solve hot paths.
//
// Measures the engine rewrites this repo's perf trajectory tracks:
//
//   1. RLS: the ready-event kernel (rls_schedule_fast) against the seed's
//      O(n^2 m) exact-Fraction rescan (rls_schedule_reference), at
//      n in {1k, 5k, 20k} x m in {16, 256} on independent tasks plus two
//      DAG cells -- the n=5000 layered / m=64 one is gated (the kernel's
//      per-step cost must stay independent of the ready-frontier width).
//      Every measured cell also asserts the two engines produce
//      bit-identical schedules.
//   2. Delta sweeps: sbo_front's ingredient-reuse sweep against the old
//      one-full-SBO-run-per-grid-point loop.
//   3. Exact Pareto enumeration: the dominance-pruned branch and bound
//      (enumerate_pareto_bb) against the seed's brute-force walker at
//      n = 16, m = 3 -- the largest cell the walker still finishes in CI
//      time -- asserting bit-identical fronts. bench_pareto_exact is the
//      full scaling study; this one point keeps the win gated.
//
// Methodology: median of k runs after one untimed warm-up run. Reference
// cells whose estimated cost (n^2 m inner iterations) exceeds a budget are
// skipped -- and reported as skipped, never silently -- so the bench stays
// CI-sized; the n=5000, m=256 headline cell always runs.
//
//   ./bench_hotpath --json                 # writes BENCH_hotpath.json
//   ./bench_hotpath --json --baseline=BENCH_hotpath.json
//   ./bench_hotpath --json --baseline=BENCH_hotpath.json --trend
//
// With --baseline the bench exits non-zero if the measured headline
// speedup falls below max(10, 0.2 * baseline speedup) -- the CI
// regression gate. The committed BENCH_hotpath.json at the repo root is
// the baseline; 0.2 absorbs cross-machine variance while still catching
// any algorithmic regression (an accidental O(n^2) reintroduction drops
// the ratio by orders of magnitude, not percent).
//
// --trend (requires --baseline) is the fast CI mode: the slow reference
// engines are NOT re-measured -- their wall times are read from the
// committed baseline and divided by freshly measured fast-engine times, so
// the same speedup floors gate in seconds instead of minutes. The
// fast-vs-reference identicality assertions cannot run in this mode (the
// test suite's equivalence oracles cover that); a baseline must therefore
// come from a full run -- never commit a --trend JSON as the baseline.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "core/front_approx.hpp"
#include "core/pareto_bb.hpp"
#include "core/rls.hpp"
#include "core/sbo.hpp"

namespace {

using namespace storesched;

Instance uniform_instance(std::size_t n, int m, std::uint64_t seed) {
  Rng rng(seed);
  GenParams gp;
  gp.n = n;
  gp.m = m;
  gp.p_max = 1000;
  gp.s_max = 1000;
  return generate_uniform(gp, rng);
}

/// Needles pinning the rls_cell record for one (n, m, kind) cell.
std::vector<std::string> cell_needles(std::size_t n, int m, const char* kind) {
  return {"\"n\": " + std::to_string(n) + ",",
          "\"m\": " + std::to_string(m) + ",",
          "\"kind\": \"" + std::string(kind) + "\""};
}

}  // namespace

int main(int argc, char** argv) {
  using bench::banner;
  using bench::baseline_record;
  using bench::read_baseline;
  using bench::record_field;

  banner("HOTPATH", "Old-vs-new wall time of the solve hot paths");
  // Argument validation runs before the BenchReport exists: its
  // destructor writes BENCH_hotpath.json on --json runs, and an
  // empty-records report must never clobber a committed baseline on a
  // usage error.
  std::string baseline_path;
  bool trend = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) baseline_path = arg.substr(11);
    if (arg == "--trend") trend = true;
  }
  if (trend && baseline_path.empty()) {
    std::cout << "--trend gates against committed reference timings and "
                 "requires --baseline=PATH\n";
    return 1;
  }
  const std::string baseline_text =
      baseline_path.empty() ? std::string() : read_baseline(baseline_path);
  // A --trend run copies the baseline's reference timings verbatim, so
  // accepting one AS the baseline would freeze the gate on stale numbers
  // forever. Full runs record "trend": false in their headline.
  if (!baseline_text.empty() &&
      baseline_record(baseline_text, "headline", {}).find("\"trend\": true") !=
          std::string::npos) {
    std::cout << "baseline " << baseline_path
              << " was produced by a --trend run; re-measure with a full "
                 "run (bench-full) before committing it as the baseline\n";
    return 1;
  }

  bench::BenchReport report("hotpath", argc, argv);

  if (trend) {
    std::cout << "\n[trend mode] reference engines are not re-measured; "
                 "speedups divide baseline reference times by fresh "
                 "fast-engine times\n";
  }

  // --- RLS: incremental engine vs the seed's O(n^2 m) rescan. ------------
  // Budget for the reference engine, in estimated n^2 m inner iterations
  // (~12 ns each): 2e10 ~ a few minutes. Only the 20k x 256 cell exceeds
  // it; its skip is reported explicitly.
  constexpr double kReferenceBudget = 2e10;
  const Fraction delta(5, 2);  // memory-binding but always feasible

  struct Cell {
    std::size_t n;
    int m;
    bool dag;
  };
  const std::vector<Cell> cells{
      {1000, 16, false},  {1000, 256, false}, {5000, 16, false},
      {5000, 256, false}, {20000, 16, false}, {20000, 256, false},
      {2000, 16, true},   {5000, 64, true},
  };

  std::cout << "\nRLS_Delta (delta = 5/2, input order): fast vs reference\n";
  std::vector<std::vector<std::string>> rows;
  double headline_speedup = 0.0;
  double dag_speedup = 0.0;
  std::uint64_t seed = 0x5eed;
  for (const Cell& cell : cells) {
    Instance inst = uniform_instance(cell.n, cell.m, seed++);
    if (cell.dag) {
      Rng rng(seed);
      inst = generate_dag_by_name("layered", cell.n, cell.m, {}, rng);
    }
    const char* kind = cell.dag ? "dag" : "indep";

    RlsResult fast_run;
    const double fast_ms =
        bench::median_ms(5, /*warmup=*/true,
                   [&] { fast_run = rls_schedule_fast(inst, delta); });

    const double ref_cost = static_cast<double>(cell.n) *
                            static_cast<double>(cell.n) *
                            static_cast<double>(cell.m);
    bool ref_skipped = ref_cost > kReferenceBudget;
    double ref_ms = 0.0;
    bool identical = true;
    if (trend) {
      // Trend mode: the committed baseline supplies the reference time.
      const std::string record = baseline_record(
          baseline_text, "rls_cell", cell_needles(cell.n, cell.m, kind));
      ref_skipped =
          record.find("\"reference_skipped\": true") != std::string::npos;
      if (!ref_skipped) ref_ms = record_field(record, "reference_ms");
    } else if (!ref_skipped) {
      // No warm-up for the reference engine: at these sizes a run takes
      // seconds, so warm-up effects are noise but an extra run is not.
      const int k = ref_cost > 1e9 ? 1 : 3;
      RlsResult ref_run;
      std::vector<double> times;
      for (int i = 0; i < k; ++i) {
        times.push_back(
            bench::time_ms([&] { ref_run = rls_schedule_reference(inst, delta); }));
      }
      std::sort(times.begin(), times.end());
      ref_ms = times[times.size() / 2];
      identical = fast_run.feasible == ref_run.feasible &&
                  fast_run.schedule == ref_run.schedule &&
                  fast_run.marked == ref_run.marked;
    }
    const double speedup = ref_skipped || fast_ms <= 0 ? 0.0 : ref_ms / fast_ms;
    if (!cell.dag && cell.n == 5000 && cell.m == 256) {
      headline_speedup = speedup;
    }
    if (cell.dag && cell.n == 5000 && cell.m == 64) {
      dag_speedup = speedup;
    }

    const std::string ref_label = ref_skipped ? "skipped (budget)"
                                  : trend     ? "baseline"
                                              : fmt(ref_ms, 1);
    rows.push_back({std::to_string(cell.n), std::to_string(cell.m), kind,
                    fmt(fast_ms, 3), ref_label,
                    ref_skipped ? "n/a" : fmt(speedup, 1),
                    ref_skipped || trend ? "n/a"
                                         : (identical ? "yes" : "NO (bug!)")});
    // "identical" is a claim about a comparison that ran: skipped cells
    // (and trend mode, where the reference never runs) report "n/a",
    // never a default-true.
    report.add("rls_cell",
               {{"n", cell.n},
                {"m", cell.m},
                {"kind", kind},
                {"fast_ms", fast_ms},
                {"reference_ms", ref_ms},
                {"reference_skipped", ref_skipped},
                {"speedup", speedup},
                {"identical", ref_skipped || trend ? bench::JsonValue("n/a")
                                                   : bench::JsonValue(identical)}});
    if (!identical) {
      std::cout << "fast and reference engines disagree at n=" << cell.n
                << " m=" << cell.m << " (bug!)\n";
      return 1;
    }
  }
  std::cout << markdown_table(
      {"n", "m", "kind", "fast ms", "reference ms", "speedup", "identical"},
      rows);

  // --- Delta sweep: ingredient reuse vs one full SBO run per point. ------
  std::cout << "\nsbo_front (33 grid points, n = 20000, m = 64, lpt):\n";
  const Instance sweep_inst = uniform_instance(20000, 64, 0xf407);
  const auto alg = make_scheduler("lpt");
  const int steps = 33;

  const double sweep_ms =
      bench::median_ms(3, /*warmup=*/true,
                       [&] { sbo_front(sweep_inst, *alg, steps); });
  const double loop_ms =
      trend ? record_field(baseline_record(baseline_text, "sbo_sweep", {}),
                           "loop_ms")
            : bench::median_ms(3, /*warmup=*/true, [&] {
                // The old path: ingredients recomputed at every grid
                // point, serially.
                for (const Fraction& d :
                     delta_grid(Fraction(1, 8), Fraction(8), steps)) {
                  sbo_schedule(sweep_inst, d, *alg);
                }
              });
  const double sweep_speedup = sweep_ms > 0 ? loop_ms / sweep_ms : 0.0;
  std::vector<std::vector<std::string>> sweep_rows;
  sweep_rows.push_back({"per-point full SBO (old)", fmt(loop_ms, 1), "1.00"});
  sweep_rows.push_back(
      {"ingredient-reuse sweep (new)", fmt(sweep_ms, 1), fmt(sweep_speedup, 2)});
  std::cout << markdown_table({"sweep", "wall ms", "speedup"}, sweep_rows);
  report.add("sbo_sweep", {{"n", 20000},
                           {"m", 64},
                           {"steps", steps},
                           {"loop_ms", loop_ms},
                           {"sweep_ms", sweep_ms},
                           {"speedup", sweep_speedup}});

  // --- Exact Pareto enumeration: branch and bound vs brute force. --------
  std::cout << "\nexact Pareto front (n = 16, m = 3, uniform):\n";
  const Instance pareto_inst = uniform_instance(16, 3, 0x9a7e70);
  ParetoEnumResult bb_run;
  ParetoEnumResult walker_run;
  const double bb_ms =
      bench::median_ms(3, /*warmup=*/true,
                       [&] { bb_run = enumerate_pareto_bb(pareto_inst); });
  // One walker run: seconds-scale, and the gate has 5x headroom anyway.
  // Trend mode reads the committed walker time instead.
  const double walker_ms =
      trend ? record_field(baseline_record(baseline_text, "pareto_cell", {}),
                           "walker_ms")
            : bench::time_ms(
                  [&] { walker_run = enumerate_pareto_reference(pareto_inst); });
  const bool pareto_identical = trend || bb_run.front == walker_run.front;
  const double pareto_speedup = bb_ms > 0 ? walker_ms / bb_ms : 0.0;
  std::vector<std::vector<std::string>> pareto_rows;
  pareto_rows.push_back({"brute-force walker (old)",
                         trend ? "baseline" : fmt(walker_ms, 1), "1.00"});
  pareto_rows.push_back({"branch and bound (new)", fmt(bb_ms, 2),
                         fmt(pareto_speedup, 1)});
  std::cout << markdown_table({"engine", "wall ms", "speedup"}, pareto_rows);
  report.add("pareto_cell", {{"n", 16},
                             {"m", 3},
                             {"bb_ms", bb_ms},
                             {"walker_ms", walker_ms},
                             {"front_size", bb_run.front.size()},
                             {"speedup", pareto_speedup},
                             {"identical", trend ? bench::JsonValue("n/a")
                                                 : bench::JsonValue(
                                                       pareto_identical)}});
  if (!pareto_identical) {
    std::cout << "branch-and-bound and walker fronts disagree (bug!)\n";
    return 1;
  }

  // --- Headline + regression gate. ---------------------------------------
  std::cout << "\nheadline: RLS fast-vs-reference speedup at n=5000, m=256 = "
            << fmt(headline_speedup, 1)
            << "x; DAG kernel speedup at n=5000 layered, m=64 = "
            << fmt(dag_speedup, 1) << "x; pareto b&b speedup at n=16 = "
            << fmt(pareto_speedup, 1) << "x\n";
  report.add("headline", {{"n", 5000},
                          {"m", 256},
                          {"speedup", headline_speedup},
                          {"dag_speedup", dag_speedup},
                          {"sweep_speedup", sweep_speedup},
                          {"pareto_speedup", pareto_speedup},
                          {"trend", trend}});
  report.finish();

  double floor = 10.0;  // the acceptance bar stands on its own
  // The DAG kernel's acceptance bar: a ready-set-bounded regression (the
  // pre-kernel dirty rescans) lands well under 50x on wide layered DAGs.
  // The measured value (~82x at baseline time) sits closer to this hard
  // floor than the other gates do to theirs; that is deliberate -- 50x is
  // the acceptance criterion itself, and a cross-machine wobble large
  // enough to halve the ratio would equally indicate a real problem.
  double dag_floor = 50.0;
  // The pareto cell sits where the walker is still runnable, so the
  // measured gap is modest (the real win is reach -- see
  // bench_pareto_exact); 1.5 guards the "b&b never loses to brute
  // force" invariant with headroom for CI noise.
  double pareto_floor = 1.5;
  if (!baseline_path.empty()) {
    const std::string headline =
        baseline_record(baseline_text, "headline", {});
    const double base = record_field(headline, "speedup");
    floor = std::max(floor, 0.2 * base);
    const double dag_base = record_field(headline, "dag_speedup");
    dag_floor = std::max(dag_floor, 0.2 * dag_base);
    const double pareto_base = record_field(headline, "pareto_speedup");
    pareto_floor = std::max(pareto_floor, 0.2 * pareto_base);
    std::cout << "baseline speedups " << fmt(base, 1) << "x / "
              << fmt(dag_base, 1) << "x (dag) / " << fmt(pareto_base, 1)
              << "x (pareto) -> regression floors " << fmt(floor, 1) << "x / "
              << fmt(dag_floor, 1) << "x / " << fmt(pareto_floor, 1) << "x\n";
  }
  if (headline_speedup < floor) {
    std::cout << "HOTPATH REGRESSION: headline speedup " << fmt(headline_speedup, 1)
              << "x below floor " << fmt(floor, 1) << "x\n";
    return 1;
  }
  if (dag_speedup < dag_floor) {
    std::cout << "HOTPATH REGRESSION: DAG kernel speedup " << fmt(dag_speedup, 1)
              << "x below floor " << fmt(dag_floor, 1) << "x\n";
    return 1;
  }
  if (pareto_speedup < pareto_floor) {
    std::cout << "HOTPATH REGRESSION: pareto speedup " << fmt(pareto_speedup, 1)
              << "x below floor " << fmt(pareto_floor, 1) << "x\n";
    return 1;
  }
  return 0;
}
