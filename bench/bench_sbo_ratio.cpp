// EXT-A -- empirical approximation ratios of SBO_Delta (Section 3).
//
// For a grid of Delta values, scheduler pairs and workload generators:
//   * on small instances, measure (Cmax/C*max, Mmax/M*max) against the
//     exact optima from exhaustive Pareto enumeration;
//   * on large instances, measure against the Graham lower bounds.
// The theory predicts every measured pair lies on or under the guarantee
// curve ((1+Delta) rho1, (1+1/Delta) rho2) and (by Section 4) cannot lie
// inside the impossibility domain. Expected shape: makespan ratio grows and
// memory ratio shrinks as Delta grows, crossing near Delta = 1.
//
// All algorithm dispatch goes through the unified solver registry
// (make_solver); the guarantee bounds come from Solver::capabilities().
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/pareto_enum.hpp"
#include "core/solver.hpp"

int main(int argc, char** argv) {
  using namespace storesched;
  using bench::banner;

  banner("EXT-A", "Empirical SBO_Delta ratios vs exact optima and bounds");
  bench::BenchReport report("sbo_ratio", argc, argv);

  const std::vector<Fraction> deltas{Fraction(1, 4), Fraction(1, 2),
                                     Fraction(1),    Fraction(2),
                                     Fraction(4)};
  const std::vector<std::string> generators{"uniform", "correlated",
                                            "anticorrelated"};
  bool all_within = true;

  // --- Small instances: ratios against exact optima. ---
  std::cout << "\nSmall instances (n in [6,10], m = 2, 40 seeds each), LPT/LPT "
               "ingredients, ratios vs exact C*max / M*max:\n";
  std::vector<std::vector<std::string>> small_rows;
  for (const std::string& gen : generators) {
    for (const Fraction& delta : deltas) {
      const auto solver = make_solver("sbo:lpt,delta=" + delta.to_string());
      Accumulator rc;
      Accumulator rm;
      Rng rng(0xA0 + static_cast<std::uint64_t>(delta.num()) * 31 +
              static_cast<std::uint64_t>(gen.size()));
      for (int seed = 0; seed < 40; ++seed) {
        GenParams gp;
        gp.n = static_cast<std::size_t>(rng.uniform_int(6, 10));
        gp.m = 2;
        gp.p_max = 40;
        gp.s_max = 40;
        const Instance inst = generate_by_name(gen, gp, rng);
        const auto front = enumerate_pareto(inst);
        const SolveResult r = solver->solve(inst);
        rc.add(static_cast<double>(r.objectives.cmax) /
               static_cast<double>(front.optimal_cmax()));
        rm.add(static_cast<double>(r.objectives.mmax) /
               static_cast<double>(front.optimal_mmax()));
      }
      const Capabilities caps = solver->capabilities(2);
      const Fraction c_bound = *caps.cmax_ratio;
      const Fraction m_bound = *caps.mmax_ratio;
      const Summary sc = rc.summary();
      const Summary sm = rm.summary();
      if (sc.max > c_bound.to_double() + 1e-9 ||
          sm.max > m_bound.to_double() + 1e-9) {
        all_within = false;
      }
      small_rows.push_back({gen, bench::frac(delta), fmt(sc.mean), fmt(sc.max),
                            fmt(c_bound.to_double()), fmt(sm.mean), fmt(sm.max),
                            fmt(m_bound.to_double())});
      report.add("small_vs_exact", {{"generator", gen},
                                    {"delta", delta},
                                    {"cmax_ratio_mean", sc.mean},
                                    {"cmax_ratio_max", sc.max},
                                    {"cmax_bound", c_bound.to_double()},
                                    {"mmax_ratio_mean", sm.mean},
                                    {"mmax_ratio_max", sm.max},
                                    {"mmax_bound", m_bound.to_double()}});
    }
  }
  std::cout << markdown_table({"generator", "Delta", "Cmax/C* mean",
                               "Cmax/C* max", "bound", "Mmax/M* mean",
                               "Mmax/M* max", "bound"},
                              small_rows);

  // --- Large instances: ratios against the Graham lower bounds. ---
  std::cout << "\nLarge instances (n = 500, m = 16, 10 seeds each), ratios vs "
               "Graham lower bounds:\n";
  std::vector<std::vector<std::string>> large_rows;
  for (const std::string& gen : generators) {
    for (const Fraction& delta : deltas) {
      const auto solver = make_solver("sbo:lpt,delta=" + delta.to_string());
      Accumulator rc;
      Accumulator rm;
      Rng rng(0xB0 + static_cast<std::uint64_t>(delta.num()) * 17 +
              static_cast<std::uint64_t>(gen.size()));
      for (int seed = 0; seed < 10; ++seed) {
        GenParams gp;
        gp.n = 500;
        gp.m = 16;
        gp.p_max = 1000;
        gp.s_max = 1000;
        const Instance inst = generate_by_name(gen, gp, rng);
        const SolveResult r = solver->solve(inst);
        rc.add(static_cast<double>(r.objectives.cmax) /
               inst.time_lower_bound_fraction().to_double());
        rm.add(static_cast<double>(r.objectives.mmax) /
               inst.storage_lower_bound_fraction().to_double());
      }
      large_rows.push_back({gen, bench::frac(delta), fmt(rc.summary().mean),
                            fmt(rc.summary().max), fmt(rm.summary().mean),
                            fmt(rm.summary().max)});
      report.add("large_vs_lb", {{"generator", gen},
                                 {"delta", delta},
                                 {"cmax_lb_ratio_mean", rc.summary().mean},
                                 {"mmax_lb_ratio_mean", rm.summary().mean}});
    }
  }
  std::cout << markdown_table({"generator", "Delta", "Cmax/LB mean",
                               "Cmax/LB max", "Mmax/LB mean", "Mmax/LB max"},
                              large_rows);

  // --- Ingredient-scheduler ablation at Delta = 1. ---
  std::cout << "\nIngredient ablation (Delta = 1, uniform, n = 200, m = 8, 10 "
               "seeds): which rho1/rho2 pair to plug in:\n";
  std::vector<std::vector<std::string>> abl_rows;
  for (const char* alg_name : {"ls", "lpt", "multifit", "kopt8"}) {
    const auto solver =
        make_solver("sbo:" + std::string(alg_name) + ",delta=1");
    Accumulator rc;
    Accumulator rm;
    Rng rng(0xC0);
    for (int seed = 0; seed < 10; ++seed) {
      GenParams gp;
      gp.n = 200;
      gp.m = 8;
      gp.p_max = 500;
      gp.s_max = 500;
      const Instance inst = generate_uniform(gp, rng);
      const SolveResult r = solver->solve(inst);
      rc.add(static_cast<double>(r.objectives.cmax) /
             inst.time_lower_bound_fraction().to_double());
      rm.add(static_cast<double>(r.objectives.mmax) /
             inst.storage_lower_bound_fraction().to_double());
    }
    abl_rows.push_back({solver->name(),
                        bench::frac(*solver->capabilities(8).cmax_ratio),
                        fmt(rc.summary().mean), fmt(rm.summary().mean)});
    report.add("ingredient_ablation",
               {{"spec", solver->name()},
                {"cmax_lb_ratio_mean", rc.summary().mean},
                {"mmax_lb_ratio_mean", rm.summary().mean}});
  }
  std::cout << markdown_table(
      {"ingredient", "guaranteed Cmax ratio", "Cmax/LB mean", "Mmax/LB mean"},
      abl_rows);

  std::cout << "\nall measured points within their guarantees: "
            << (all_within ? "YES" : "NO (bug!)") << "\n";
  report.add("verdict", {{"all_within_guarantees", all_within}});
  report.finish();
  return all_within ? 0 : 1;
}
