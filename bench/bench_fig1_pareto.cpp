// FIG1 -- regenerates Figure 1 of the paper (Section 4.1).
//
// The instance: m = 2, p = {1, 1/2, 1/2}, s = {eps, 1, 1}. The paper shows
// its two Pareto-optimal schedules with objective values (1, 2) and
// (3/2, 1 + eps), and notes the third schedule (2, 2 + eps) is dominated.
// We enumerate the exact Pareto front of the scaled-integer instance,
// convert back to paper units, and render the two Gantt charts the figure
// displays. The run also verifies the Section 4.1 inapproximability
// argument: no schedule achieves Cmax <= C* and Mmax <= (7/4) M*.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/gantt.hpp"
#include "common/paper_instances.hpp"
#include "core/pareto_enum.hpp"

int main(int argc, char** argv) {
  using namespace storesched;
  using bench::banner;
  using bench::ratio_str;

  banner("FIG1", "Pareto-optimal schedules of the Section 4.1 instance");
  bench::BenchReport report("fig1_pareto", argc, argv);

  const Time eps_inv = 100;  // eps = 1/100
  const Instance inst = fig1_instance(eps_inv);
  const GadgetScale scale = fig1_scale(eps_inv);
  std::cout << "instance: " << inst.summary() << "\n"
            << "scaling: time x" << scale.time_scale << ", storage x"
            << scale.storage_scale << " (eps = 1/" << eps_inv << ")\n";

  const ParetoEnumResult r = enumerate_pareto(inst);
  std::cout << "enumeration work (search nodes): " << r.enumerated << "\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const auto& pt : r.front) {
    rows.push_back({
        std::to_string(pt.value.cmax),
        std::to_string(pt.value.mmax),
        ratio_str(pt.value.cmax, scale.time_scale),
        ratio_str(pt.value.mmax, scale.storage_scale),
    });
  }
  std::cout << markdown_table(
      {"Cmax (scaled)", "Mmax (scaled)", "Cmax (paper units)",
       "Mmax (paper units)"},
      rows);

  std::cout << "\npaper reports: (1, 2) and (3/2, 1+eps); dominated third "
               "schedule (2, 2+eps)\n";
  const bool match =
      r.front.size() == 2 &&
      r.front[0].value == ObjectivePoint{2 * eps_inv, 2 * eps_inv} &&
      r.front[1].value == ObjectivePoint{3 * eps_inv, eps_inv + 1};
  std::cout << "reproduction: " << (match ? "EXACT MATCH" : "MISMATCH") << "\n";

  std::cout << "\nGantt charts (memory shown as s= labels, Figure 1 style):\n";
  for (const auto& pt : r.front) {
    const Schedule timed = serialize_assignment(
        inst, r.schedules[static_cast<std::size_t>(pt.tag)]);
    std::cout << "\n-- schedule with (Cmax, Mmax) = (" << pt.value.cmax << ", "
              << pt.value.mmax << ") --\n"
              << render_gantt(inst, timed);
  }

  // Section 4.1's impossibility argument on this very instance.
  const Time c_star = r.optimal_cmax();
  const Mem m_star = r.optimal_mmax();
  bool seven_fourths_possible = false;
  for (const auto& pt : r.front) {
    if (pt.value.cmax <= c_star && 4 * pt.value.mmax <= 7 * m_star) {
      seven_fourths_possible = true;
    }
  }
  std::cout << "\n(1, 7/4)-approximation on this instance possible? "
            << (seven_fourths_possible ? "YES (contradiction!)" : "no — as proven")
            << "\n";
  report.add("fig1", {{"front_size", r.front.size()},
                      {"enumerated", static_cast<std::int64_t>(r.enumerated)},
                      {"exact_match", match},
                      {"seven_fourths_possible", seven_fourths_possible}});
  report.finish();
  return match && !seven_fourths_possible ? 0 : 1;
}
