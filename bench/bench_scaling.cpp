// EXT-E -- wall-clock scaling of the library's algorithms (google-benchmark).
//
// Covers the complexity claims that matter for adoption: SBO is dominated
// by its ingredient schedulers (near-linear for LS/LPT), RLS is the paper's
// O(n^2 m), the dual-approximation PTAS pays for its guarantee, and exact
// Pareto enumeration is exponential (hence small-n only).
#include <benchmark/benchmark.h>

#include "algorithms/partition.hpp"
#include "algorithms/scheduler.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "core/pareto_enum.hpp"
#include "core/rls.hpp"
#include "core/sbo.hpp"
#include "core/triobjective.hpp"
#include "sim/event_sim.hpp"

namespace {

using namespace storesched;

Instance uniform_instance(std::size_t n, int m, std::uint64_t seed) {
  Rng rng(seed);
  GenParams gp;
  gp.n = n;
  gp.m = m;
  gp.p_max = 1000;
  gp.s_max = 1000;
  return generate_uniform(gp, rng);
}

void BM_SboLpt(benchmark::State& state) {
  const Instance inst =
      uniform_instance(static_cast<std::size_t>(state.range(0)),
                       static_cast<int>(state.range(1)), 1);
  const LptSchedulerAlg lpt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sbo_schedule(inst, Fraction(1), lpt));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SboLpt)
    ->Args({100, 8})
    ->Args({1000, 8})
    ->Args({10000, 8})
    ->Args({10000, 64})
    ->Complexity(benchmark::oNLogN);

void BM_RlsIndependent(benchmark::State& state) {
  const Instance inst =
      uniform_instance(static_cast<std::size_t>(state.range(0)),
                       static_cast<int>(state.range(1)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rls_schedule(inst, Fraction(3)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RlsIndependent)
    ->Args({50, 8})
    ->Args({100, 8})
    ->Args({200, 8})
    ->Args({400, 8})
    ->Complexity(benchmark::oNSquared);

void BM_RlsDag(benchmark::State& state) {
  Rng rng(3);
  const Instance inst = generate_dag_by_name(
      "layered", static_cast<std::size_t>(state.range(0)), 8, {}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rls_schedule(inst, Fraction(3), PriorityPolicy::kBottomLevel));
  }
}
BENCHMARK(BM_RlsDag)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_TriObjective(benchmark::State& state) {
  const Instance inst =
      uniform_instance(static_cast<std::size_t>(state.range(0)), 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tri_objective_schedule(inst, Fraction(3)));
  }
}
BENCHMARK(BM_TriObjective)->Arg(100)->Arg(200)->Arg(400);

void BM_PartitionLpt(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::int64_t> w(static_cast<std::size_t>(state.range(0)));
  for (auto& v : w) v = rng.uniform_int(1, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpt_assign(w, 16));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PartitionLpt)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Complexity(benchmark::oNLogN);

void BM_PartitionMultifit(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::int64_t> w(static_cast<std::size_t>(state.range(0)));
  for (auto& v : w) v = rng.uniform_int(1, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multifit_assign(w, 16));
  }
}
BENCHMARK(BM_PartitionMultifit)->Arg(1000)->Arg(10000);

void BM_DualPtas(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::int64_t> w(static_cast<std::size_t>(state.range(0)));
  for (auto& v : w) v = rng.uniform_int(1, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dual_ptas_assign(w, 8, static_cast<int>(state.range(1))));
  }
}
BENCHMARK(BM_DualPtas)->Args({50, 2})->Args({50, 3})->Args({200, 2})->Args({200, 3});

void BM_ExactBnb(benchmark::State& state) {
  Rng rng(8);
  std::vector<std::int64_t> w(static_cast<std::size_t>(state.range(0)));
  for (auto& v : w) v = rng.uniform_int(1, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_bnb_assign(w, 4));
  }
}
BENCHMARK(BM_ExactBnb)->Arg(12)->Arg(16)->Arg(20);

void BM_ParetoEnumeration(benchmark::State& state) {
  const Instance inst =
      uniform_instance(static_cast<std::size_t>(state.range(0)), 3, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_pareto(inst));
  }
}
BENCHMARK(BM_ParetoEnumeration)->Arg(8)->Arg(10)->Arg(12);

void BM_Simulator(benchmark::State& state) {
  const Instance inst =
      uniform_instance(static_cast<std::size_t>(state.range(0)), 16, 10);
  const Schedule sched = graham_list_schedule(inst, PriorityPolicy::kLpt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_schedule(inst, sched, {.keep_trace = false}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Simulator)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Complexity(benchmark::oNLogN);

}  // namespace

BENCHMARK_MAIN();
