// EXT-E -- wall-clock scaling of the library through the unified solver API.
//
// Covers the complexity claims that matter for adoption: SBO is dominated
// by its ingredient schedulers (near-linear for LS/LPT, heavier for the
// dual-approximation PTAS that pays for its guarantee), RLS is the paper's
// O(n^2 m) on independent and DAG inputs alike, and exact Pareto
// enumeration is exponential (hence small-n only).
//
// The headline section measures solve_batch(): the std::thread fan-out over
// an instance set versus the equivalent serial loop, the number the
// ROADMAP's batch-throughput goal tracks. Run with --json to record the
// trajectory (BENCH_scaling.json).
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "core/pareto_enum.hpp"
#include "core/solver.hpp"

namespace {

using namespace storesched;

Instance uniform_instance(std::size_t n, int m, std::uint64_t seed) {
  Rng rng(seed);
  GenParams gp;
  gp.n = n;
  gp.m = m;
  gp.p_max = 1000;
  gp.s_max = 1000;
  return generate_uniform(gp, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using bench::banner;
  using bench::time_ms;

  banner("EXT-E", "Wall-clock scaling via the unified solver API");
  bench::BenchReport report("scaling", argc, argv);

  // --- Per-solver single-instance scaling. -------------------------------
  struct Case {
    std::string spec;
    std::size_t n;
    int m;
    int iters;
  };
  const std::vector<Case> cases{
      {"sbo:lpt,delta=1", 100, 8, 50},    {"sbo:lpt,delta=1", 1000, 8, 20},
      {"sbo:lpt,delta=1", 10000, 8, 5},   {"sbo:lpt,delta=1", 10000, 64, 5},
      {"sbo:multifit,delta=1", 10000, 8, 5},
      {"sbo:ptas2,delta=1", 200, 8, 5},   {"sbo:ptas2,delta=1", 1000, 8, 3},
      {"rls:input,delta=3", 50, 8, 20},   {"rls:input,delta=3", 100, 8, 10},
      {"rls:input,delta=3", 200, 8, 5},   {"rls:input,delta=3", 400, 8, 3},
      {"tri:spt,delta=3", 100, 8, 10},    {"tri:spt,delta=3", 400, 8, 3},
      {"graham:lpt", 10000, 16, 10},
  };

  std::cout << "\nSingle-instance solve() latency (uniform workloads):\n";
  std::vector<std::vector<std::string>> rows;
  std::uint64_t seed = 1;
  for (const Case& c : cases) {
    const Instance inst = uniform_instance(c.n, c.m, seed++);
    const auto solver = make_solver(c.spec);
    solver->solve(inst);  // warm-up (page in code and data)
    const double total =
        time_ms([&] { for (int i = 0; i < c.iters; ++i) solver->solve(inst); });
    const double per_run = total / c.iters;
    rows.push_back({c.spec, std::to_string(c.n), std::to_string(c.m),
                    fmt(per_run, 3)});
    report.add("solve_latency", {{"spec", c.spec},
                                 {"n", c.n},
                                 {"m", c.m},
                                 {"ms_per_solve", per_run}});
  }
  std::cout << markdown_table({"solver spec", "n", "m", "ms/solve"}, rows);

  // --- RLS on DAG workloads. ---------------------------------------------
  std::cout << "\nRLS on layered DAGs (bottom-level priority):\n";
  std::vector<std::vector<std::string>> dag_rows;
  const auto dag_solver = make_solver("rls:bottom,delta=3");
  for (const std::size_t n : {50u, 100u, 200u, 400u}) {
    Rng rng(3);
    const Instance inst = generate_dag_by_name("layered", n, 8, {}, rng);
    dag_solver->solve(inst);
    const double per_run =
        time_ms([&] { for (int i = 0; i < 3; ++i) dag_solver->solve(inst); }) /
        3.0;
    dag_rows.push_back({std::to_string(n), fmt(per_run, 3)});
    report.add("rls_dag_latency", {{"n", n}, {"ms_per_solve", per_run}});
  }
  std::cout << markdown_table({"n", "ms/solve"}, dag_rows);

  // --- Exact Pareto enumeration (branch and bound; fine-grained weights
  // here are the hard regime -- bench_pareto_exact is the full study). ----
  std::cout << "\nExact Pareto enumeration (ground truth; m = 3):\n";
  std::vector<std::vector<std::string>> enum_rows;
  for (const std::size_t n : {10u, 14u, 18u, 20u}) {
    const Instance inst = uniform_instance(n, 3, 9);
    const double ms = time_ms([&] { enumerate_pareto(inst); });
    enum_rows.push_back({std::to_string(n), fmt(ms, 3)});
    report.add("pareto_enum_latency", {{"n", n}, {"ms", ms}});
  }
  std::cout << markdown_table({"n", "ms"}, enum_rows);

  // --- The headline: solve_batch() vs the serial loop. -------------------
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const int batch_size = 64;
  std::vector<Instance> instances;
  instances.reserve(batch_size);
  for (int i = 0; i < batch_size; ++i) {
    instances.push_back(uniform_instance(250, 8, 0x1000 + i));
  }
  const auto batch_solver = make_solver("rls:input,delta=3");

  std::cout << "\nsolve_batch() throughput (" << batch_size
            << " RLS solves, n = 250, m = 8) on " << cores << " cores:\n";
  // Warm-up plus a correctness spot check: batch equals serial.
  const std::vector<SolveResult> serial_results =
      solve_batch(*batch_solver, instances, {}, {.threads = 1});
  const std::vector<SolveResult> batch_results =
      solve_batch(*batch_solver, instances);
  bool identical = true;
  for (int i = 0; i < batch_size; ++i) {
    if (serial_results[static_cast<std::size_t>(i)].objectives !=
        batch_results[static_cast<std::size_t>(i)].objectives) {
      identical = false;
    }
  }

  const double serial_ms = time_ms(
      [&] { solve_batch(*batch_solver, instances, {}, {.threads = 1}); });
  const double parallel_ms =
      time_ms([&] { solve_batch(*batch_solver, instances); });
  const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;

  std::vector<std::vector<std::string>> batch_rows;
  batch_rows.push_back({"serial loop (threads=1)", fmt(serial_ms, 1), "1.00"});
  batch_rows.push_back({"solve_batch (threads=" + std::to_string(cores) + ")",
                        fmt(parallel_ms, 1), fmt(speedup, 2)});
  std::cout << markdown_table({"runner", "wall ms", "speedup"}, batch_rows);
  std::cout << "(batch results identical to serial: "
            << (identical ? "yes" : "NO (bug!)") << ")\n";
  report.add("solve_batch_speedup",
             {{"instances", batch_size},
              {"n", 250},
              {"m", 8},
              {"spec", std::string("rls:input,delta=3")},
              {"cores", static_cast<std::int64_t>(cores)},
              {"serial_ms", serial_ms},
              {"batch_ms", parallel_ms},
              {"speedup", speedup},
              {"identical_results", identical}});

  // The >= 2x bar only applies where the parallelism exists to pay for it.
  const bool speedup_ok = cores < 4 || speedup >= 2.0;
  if (!speedup_ok) {
    std::cout << "solve_batch speedup below 2x on " << cores
              << " cores (bug!)\n";
  }
  report.finish();
  return identical && speedup_ok ? 0 : 1;
}
