// EXT-E -- wall-clock scaling of the library through the unified solver API.
//
// Covers the complexity claims that matter for adoption: SBO is dominated
// by its ingredient schedulers (near-linear for LS/LPT, heavier for the
// dual-approximation PTAS that pays for its guarantee), RLS is the paper's
// O(n^2 m) on independent and DAG inputs alike, and exact Pareto
// enumeration is exponential (hence small-n only).
//
// The headline section measures solve_batch(): the std::thread fan-out over
// an instance set versus the equivalent serial loop, the number the
// ROADMAP's batch-throughput goal tracks. The streaming cell pits
// solve_stream (bounded in-flight window, core/stream.hpp) against
// solve_batch (everything materialized) at one million tiny instances: the
// peak-RSS delta must scale with the window, not the batch. Run with
// --json to record the trajectory (BENCH_scaling.json).
//
// Two storage-tier cells ride along (both gated):
//   * binary-vs-JSONL ingest at the same one million tiny instances -- the
//     zero-copy column walk (storage/wire_format.hpp) must be >= 3x faster
//     than the JSONL parse, the wire's reason to exist;
//   * result-cache hit rate on a duplicate-heavy stream -- >= 95% of a
//     20k-record run drawn from 500 distinct instances must be served from
//     the cache (storage/result_cache.hpp), bit-identical by audit.
//
// --baseline=BENCH_scaling.json compares the ingest speedup against the
// committed trajectory: the run fails if it drops below
// max(3, 0.2 * baseline) -- 0.2 absorbs cross-machine variance while still
// catching a reintroduced per-byte parse. --trend (requires --baseline)
// additionally skips the slow JSONL re-measure and divides the baseline's
// committed jsonl_ms by a freshly measured binary wall time -- the
// seconds-scale CI mode; never commit a --trend JSON as the baseline.
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "core/pareto_enum.hpp"
#include "core/solver.hpp"
#include "core/stream.hpp"
#include "storage/result_cache.hpp"
#include "storage/wire_format.hpp"

namespace {

using namespace storesched;

Instance uniform_instance(std::size_t n, int m, std::uint64_t seed) {
  Rng rng(seed);
  GenParams gp;
  gp.n = n;
  gp.m = m;
  gp.p_max = 1000;
  gp.s_max = 1000;
  return generate_uniform(gp, rng);
}

/// The i-th tiny instance of the streaming cell (4 tasks, 2 processors),
/// generated on demand so the streaming side never materializes the set.
Instance tiny_instance(std::uint64_t i) {
  Rng rng(0x5712ea3 + i);
  std::vector<Task> tasks(4);
  for (Task& t : tasks) {
    t.p = rng.uniform_int(1, 9);
    t.s = rng.uniform_int(1, 9);
  }
  return Instance(std::move(tasks), 2);
}

/// Process-lifetime peak RSS in MiB (0.0 when unavailable). Monotonic by
/// definition, so phases must run low-water first: stream, then batch.
double peak_rss_mb() {
#if defined(__unix__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is KiB on Linux (BSD/macOS report bytes; this cell only
    // gates on Linux CI where the benches run).
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
  }
#endif
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::banner;
  using bench::baseline_record;
  using bench::read_baseline;
  using bench::record_field;
  using bench::time_ms;

  banner("EXT-E", "Wall-clock scaling via the unified solver API");
  // Argument validation runs before the BenchReport exists: its destructor
  // writes BENCH_scaling.json on --json runs, and an empty-records report
  // must never clobber a committed baseline on a usage error.
  std::string baseline_path;
  bool trend = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) baseline_path = arg.substr(11);
    if (arg == "--trend") trend = true;
  }
  if (trend && baseline_path.empty()) {
    std::cout << "--trend gates against committed reference timings and "
                 "requires --baseline=PATH\n";
    return 1;
  }
  const std::string baseline_text =
      baseline_path.empty() ? std::string() : read_baseline(baseline_path);
  if (trend &&
      baseline_record(baseline_text, "binary_ingest", {}).find("\"trend\": true") !=
          std::string::npos) {
    std::cout << "baseline " << baseline_path
              << " was itself recorded with --trend; gate it against a full "
                 "run instead\n";
    return 1;
  }
  bench::BenchReport report("scaling", argc, argv);

  // --- Per-solver single-instance scaling. -------------------------------
  struct Case {
    std::string spec;
    std::size_t n;
    int m;
    int iters;
  };
  const std::vector<Case> cases{
      {"sbo:lpt,delta=1", 100, 8, 50},    {"sbo:lpt,delta=1", 1000, 8, 20},
      {"sbo:lpt,delta=1", 10000, 8, 5},   {"sbo:lpt,delta=1", 10000, 64, 5},
      {"sbo:multifit,delta=1", 10000, 8, 5},
      {"sbo:ptas2,delta=1", 200, 8, 5},   {"sbo:ptas2,delta=1", 1000, 8, 3},
      {"rls:input,delta=3", 50, 8, 20},   {"rls:input,delta=3", 100, 8, 10},
      {"rls:input,delta=3", 200, 8, 5},   {"rls:input,delta=3", 400, 8, 3},
      {"tri:spt,delta=3", 100, 8, 10},    {"tri:spt,delta=3", 400, 8, 3},
      {"graham:lpt", 10000, 16, 10},
  };

  std::cout << "\nSingle-instance solve() latency (uniform workloads):\n";
  std::vector<std::vector<std::string>> rows;
  std::uint64_t seed = 1;
  for (const Case& c : cases) {
    const Instance inst = uniform_instance(c.n, c.m, seed++);
    const auto solver = make_solver(c.spec);
    solver->solve(inst);  // warm-up (page in code and data)
    const double total =
        time_ms([&] { for (int i = 0; i < c.iters; ++i) solver->solve(inst); });
    const double per_run = total / c.iters;
    rows.push_back({c.spec, std::to_string(c.n), std::to_string(c.m),
                    fmt(per_run, 3)});
    report.add("solve_latency", {{"spec", c.spec},
                                 {"n", c.n},
                                 {"m", c.m},
                                 {"ms_per_solve", per_run}});
  }
  std::cout << markdown_table({"solver spec", "n", "m", "ms/solve"}, rows);

  // --- RLS on DAG workloads. ---------------------------------------------
  std::cout << "\nRLS on layered DAGs (bottom-level priority):\n";
  std::vector<std::vector<std::string>> dag_rows;
  const auto dag_solver = make_solver("rls:bottom,delta=3");
  for (const std::size_t n : {50u, 100u, 200u, 400u}) {
    Rng rng(3);
    const Instance inst = generate_dag_by_name("layered", n, 8, {}, rng);
    dag_solver->solve(inst);
    const double per_run =
        time_ms([&] { for (int i = 0; i < 3; ++i) dag_solver->solve(inst); }) /
        3.0;
    dag_rows.push_back({std::to_string(n), fmt(per_run, 3)});
    report.add("rls_dag_latency", {{"n", n}, {"ms_per_solve", per_run}});
  }
  std::cout << markdown_table({"n", "ms/solve"}, dag_rows);

  // --- Exact Pareto enumeration (branch and bound; fine-grained weights
  // here are the hard regime -- bench_pareto_exact is the full study). ----
  std::cout << "\nExact Pareto enumeration (ground truth; m = 3):\n";
  std::vector<std::vector<std::string>> enum_rows;
  for (const std::size_t n : {10u, 14u, 18u, 20u}) {
    const Instance inst = uniform_instance(n, 3, 9);
    const double ms = time_ms([&] { enumerate_pareto(inst); });
    enum_rows.push_back({std::to_string(n), fmt(ms, 3)});
    report.add("pareto_enum_latency", {{"n", n}, {"ms", ms}});
  }
  std::cout << markdown_table({"n", "ms"}, enum_rows);

  // --- The headline: solve_batch() vs the serial loop. -------------------
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const int batch_size = 64;
  std::vector<Instance> instances;
  instances.reserve(batch_size);
  for (int i = 0; i < batch_size; ++i) {
    instances.push_back(uniform_instance(250, 8, 0x1000 + i));
  }
  const auto batch_solver = make_solver("rls:input,delta=3");

  std::cout << "\nsolve_batch() throughput (" << batch_size
            << " RLS solves, n = 250, m = 8) on " << cores << " cores:\n";
  // Warm-up plus a correctness spot check: batch equals serial.
  const std::vector<SolveResult> serial_results =
      solve_batch(*batch_solver, instances, {}, {.threads = 1});
  const std::vector<SolveResult> batch_results =
      solve_batch(*batch_solver, instances);
  bool identical = true;
  for (int i = 0; i < batch_size; ++i) {
    if (serial_results[static_cast<std::size_t>(i)].objectives !=
        batch_results[static_cast<std::size_t>(i)].objectives) {
      identical = false;
    }
  }

  const double serial_ms = time_ms(
      [&] { solve_batch(*batch_solver, instances, {}, {.threads = 1}); });
  const double parallel_ms =
      time_ms([&] { solve_batch(*batch_solver, instances); });
  const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;

  std::vector<std::vector<std::string>> batch_rows;
  batch_rows.push_back({"serial loop (threads=1)", fmt(serial_ms, 1), "1.00"});
  batch_rows.push_back({"solve_batch (threads=" + std::to_string(cores) + ")",
                        fmt(parallel_ms, 1), fmt(speedup, 2)});
  std::cout << markdown_table({"runner", "wall ms", "speedup"}, batch_rows);
  std::cout << "(batch results identical to serial: "
            << (identical ? "yes" : "NO (bug!)") << ")\n";
  report.add("solve_batch_speedup",
             {{"instances", batch_size},
              {"n", 250},
              {"m", 8},
              {"spec", std::string("rls:input,delta=3")},
              {"cores", static_cast<std::int64_t>(cores)},
              {"serial_ms", serial_ms},
              {"batch_ms", parallel_ms},
              {"speedup", speedup},
              {"identical_results", identical}});

  // The >= 2x bar only applies where the parallelism exists to pay for it.
  const bool speedup_ok = cores < 4 || speedup >= 2.0;
  if (!speedup_ok) {
    std::cout << "solve_batch speedup below 2x on " << cores
              << " cores (bug!)\n";
  }

  // --- Streaming: solve_stream vs solve_batch at 1M tiny instances. ------
  // The point of the cell is the memory envelope, not the solver: the
  // streaming side generates instances on demand and folds results into a
  // checksum, so its peak RSS is O(window); the batch side materializes
  // 1M instances plus 1M SolveResults. peak_rss_mb() is monotonic, so the
  // low-water stream phase must run before the batch phase.
  const std::size_t stream_count = 1'000'000;
  const std::size_t stream_window = 256;
  const auto tiny_solver = make_solver("graham:lpt");
  std::cout << "\nsolve_stream vs solve_batch (" << stream_count
            << " tiny instances, n = 4, m = 2, graham:lpt, window = "
            << stream_window << "):\n";

  const double rss_start_mb = peak_rss_mb();
  std::size_t cursor = 0;
  GeneratorSource stream_source(
      [&]() -> std::optional<Instance> {
        if (cursor >= stream_count) return std::nullopt;
        return tiny_instance(cursor++);
      },
      stream_count);
  std::int64_t stream_cmax = 0;
  std::int64_t stream_mmax = 0;
  CallbackSink checksum_sink([&](std::size_t, SolveResult r) {
    stream_cmax += r.objectives.cmax;
    stream_mmax += r.objectives.mmax;
  });
  StreamOptions stream_opts;
  stream_opts.window = stream_window;
  stream_opts.ordered = false;
  StreamStats stream_stats;
  const double stream_ms = time_ms([&] {
    stream_stats =
        solve_stream(*tiny_solver, stream_source, checksum_sink, {}, stream_opts);
  });
  const double rss_stream_mb = peak_rss_mb();

  std::vector<Instance> tiny_batch;
  tiny_batch.reserve(stream_count);
  for (std::size_t i = 0; i < stream_count; ++i) {
    tiny_batch.push_back(tiny_instance(i));
  }
  std::int64_t batch_cmax = 0;
  std::int64_t batch_mmax = 0;
  double tiny_batch_ms = 0.0;
  {
    std::vector<SolveResult> results;
    tiny_batch_ms =
        time_ms([&] { results = solve_batch(*tiny_solver, tiny_batch); });
    for (const SolveResult& r : results) {
      batch_cmax += r.objectives.cmax;
      batch_mmax += r.objectives.mmax;
    }
  }
  const double rss_batch_mb = peak_rss_mb();

  const double stream_delta_mb = rss_stream_mb - rss_start_mb;
  const double batch_delta_mb = rss_batch_mb - rss_stream_mb;
  const bool stream_identical =
      stream_cmax == batch_cmax && stream_mmax == batch_mmax &&
      stream_stats.delivered == stream_count;
  const double stream_throughput =
      stream_ms > 0 ? 1000.0 * static_cast<double>(stream_count) / stream_ms
                    : 0.0;
  const double tiny_batch_throughput =
      tiny_batch_ms > 0
          ? 1000.0 * static_cast<double>(stream_count) / tiny_batch_ms
          : 0.0;

  std::vector<std::vector<std::string>> stream_rows;
  stream_rows.push_back({"solve_stream (window=" +
                             std::to_string(stream_window) + ")",
                         fmt(stream_ms, 0), fmt(stream_throughput / 1000, 1),
                         fmt(stream_delta_mb, 1)});
  stream_rows.push_back({"solve_batch (materialized)", fmt(tiny_batch_ms, 0),
                         fmt(tiny_batch_throughput / 1000, 1),
                         fmt(batch_delta_mb, 1)});
  std::cout << markdown_table(
      {"runner", "wall ms", "k inst/s", "peak RSS delta MiB"}, stream_rows);
  std::cout << "(stream max in flight: " << stream_stats.max_in_flight
            << "; objectives checksum identical: "
            << (stream_identical ? "yes" : "NO (bug!)") << ")\n";
  report.add("stream_vs_batch",
             {{"instances", stream_count},
              {"window", stream_window},
              {"spec", std::string("graham:lpt")},
              {"stream_ms", stream_ms},
              {"batch_ms", tiny_batch_ms},
              {"stream_throughput_per_s", stream_throughput},
              {"batch_throughput_per_s", tiny_batch_throughput},
              {"stream_peak_rss_delta_mb", stream_delta_mb},
              {"batch_peak_rss_delta_mb", batch_delta_mb},
              {"max_in_flight", stream_stats.max_in_flight},
              {"identical_objectives", stream_identical}});

  // Memory gate: the streaming envelope must be bounded by the window, not
  // the batch. The batch side allocates hundreds of MiB for 1M instances +
  // results; 64 MiB absorbs allocator noise when RSS readings are tiny.
  const bool stream_rss_ok =
      rss_batch_mb == 0.0 ||
      stream_delta_mb <= std::max(64.0, 0.25 * batch_delta_mb);
  if (!stream_rss_ok) {
    std::cout << "solve_stream peak RSS delta " << fmt(stream_delta_mb, 1)
              << " MiB is not bounded by the window (batch delta "
              << fmt(batch_delta_mb, 1) << " MiB) (bug!)\n";
  }

  // --- Binary vs JSONL ingest at the same 1M tiny instances. -------------
  // The binary wire's reason to exist: one validated pointer walk over the
  // columns against a byte-at-a-time JSONL parse. Runs after the RSS cell
  // (peak_rss_mb() is monotonic and the wires materialize here). In
  // --trend mode the slow JSONL side is read from the committed baseline.
  std::cout << "\nBinary vs JSONL ingest (" << stream_count
            << " tiny instances):\n";
  std::string jsonl_bytes;
  {
    std::ostringstream os;
    for (const Instance& inst : tiny_batch) {
      os << instance_to_jsonl(inst) << '\n';
    }
    jsonl_bytes = os.str();
  }
  const std::string binary_bytes = wire::encode_instances(tiny_batch);

  double jsonl_ms;
  if (trend) {
    jsonl_ms = record_field(baseline_record(baseline_text, "binary_ingest", {}),
                            "jsonl_ms");
  } else {
    std::size_t jsonl_count = 0;
    std::int64_t jsonl_sum = 0;
    jsonl_ms = time_ms([&] {
      std::istringstream in(jsonl_bytes);
      JsonlInstanceSource source(in);
      while (const std::shared_ptr<const Instance> inst = source.next()) {
        ++jsonl_count;
        jsonl_sum += inst->task(0).p;
      }
    });
    if (jsonl_count != stream_count || jsonl_sum == 0) {
      std::cout << "JSONL ingest consumed " << jsonl_count
                << " instances (bug!)\n";
      return 1;
    }
  }

  std::size_t binary_count = 0;
  std::int64_t binary_sum = 0;
  const double binary_ms = time_ms([&] {
    // Construction validates the whole container (header, checksums, every
    // record); the walk then reads the p column zero-copy.
    const wire::InstanceView view(binary_bytes);
    binary_count = view.count();
    for (std::size_t i = 0; i < view.count(); ++i) {
      binary_sum += view.task_p(i)[0];
    }
  });
  if (binary_count != stream_count || binary_sum == 0) {
    std::cout << "binary ingest consumed " << binary_count
              << " instances (bug!)\n";
    return 1;
  }
  const double ingest_speedup = binary_ms > 0 ? jsonl_ms / binary_ms : 0.0;

  std::vector<std::vector<std::string>> ingest_rows;
  ingest_rows.push_back(
      {"JSONL parse" + std::string(trend ? " (baseline)" : ""),
       fmt(jsonl_ms, 0), fmt(static_cast<double>(jsonl_bytes.size()) / 1e6, 1),
       "1.00"});
  ingest_rows.push_back({"binary validate + column walk", fmt(binary_ms, 0),
                         fmt(static_cast<double>(binary_bytes.size()) / 1e6, 1),
                         fmt(ingest_speedup, 2)});
  std::cout << markdown_table({"wire", "wall ms", "MB", "speedup"},
                              ingest_rows);
  report.add("binary_ingest", {{"instances", stream_count},
                               {"jsonl_ms", jsonl_ms},
                               {"binary_ms", binary_ms},
                               {"jsonl_bytes", jsonl_bytes.size()},
                               {"binary_bytes", binary_bytes.size()},
                               {"speedup", ingest_speedup},
                               {"trend", trend}});

  double ingest_floor = 3.0;
  if (!baseline_text.empty()) {
    const double base = record_field(
        baseline_record(baseline_text, "binary_ingest", {}), "speedup");
    ingest_floor = std::max(ingest_floor, 0.2 * base);
    std::cout << "(baseline ingest speedup " << fmt(base, 2) << "x -> floor "
              << fmt(ingest_floor, 2) << "x)\n";
  }
  const bool ingest_ok = ingest_speedup >= ingest_floor;
  if (!ingest_ok) {
    std::cout << "binary ingest speedup " << fmt(ingest_speedup, 2)
              << "x is below the " << fmt(ingest_floor, 2)
              << "x floor (bug!)\n";
  }

  // --- Result-cache hit rate on a duplicate-heavy stream. ----------------
  // 20k records drawn round-robin from 500 distinct instances: everything
  // after each instance's first visit must be a cache hit (the table holds
  // 4096 slots -- no capacity excuse), and the cached run must beat the
  // uncached one.
  const std::size_t distinct_count = 500;
  const std::size_t cached_total = 20'000;
  std::vector<Instance> distinct;
  distinct.reserve(distinct_count);
  for (std::size_t i = 0; i < distinct_count; ++i) {
    distinct.push_back(uniform_instance(40, 4, 0x9000 + i));
  }
  const auto cached_solver = make_solver("sbo:lpt,delta=3/2");
  const auto run_cached = [&](storage::SolveCache* cache) {
    std::size_t cursor2 = 0;
    GeneratorSource source(
        [&]() -> std::optional<Instance> {
          if (cursor2 >= cached_total) return std::nullopt;
          return distinct[cursor2++ % distinct_count];
        },
        cached_total);
    std::int64_t sum = 0;
    CallbackSink sink([&](std::size_t, SolveResult r) {
      sum += r.objectives.cmax;
    });
    StreamOptions opts;
    opts.cache = cache;
    StreamStats stats;
    const double ms =
        time_ms([&] { stats = solve_stream(*cached_solver, source, sink, {}, opts); });
    return std::tuple<double, StreamStats, std::int64_t>(ms, stats, sum);
  };

  std::cout << "\nResult-cache hit rate (" << cached_total << " records, "
            << distinct_count << " distinct, sbo:lpt,delta=3/2):\n";
  const auto [uncached_ms, uncached_stats, uncached_sum] = run_cached(nullptr);
  storage::SolveCache cache;
  const auto [cached_ms, cached_stats, cached_sum] = run_cached(&cache);
  const double hit_rate =
      static_cast<double>(cached_stats.cache_hits) /
      static_cast<double>(cached_stats.cache_hits + cached_stats.cache_misses);
  const bool cache_identical = cached_sum == uncached_sum;

  std::vector<std::vector<std::string>> cache_rows;
  cache_rows.push_back({"no cache", fmt(uncached_ms, 0), "-"});
  cache_rows.push_back(
      {"SolveCache", fmt(cached_ms, 0), fmt(100.0 * hit_rate, 1) + "%"});
  std::cout << markdown_table({"runner", "wall ms", "hit rate"}, cache_rows);
  std::cout << "(cache hits " << cached_stats.cache_hits << ", misses "
            << cached_stats.cache_misses << "; objectives checksum identical: "
            << (cache_identical ? "yes" : "NO (bug!)") << ")\n";
  report.add("cache_hit_rate", {{"records", cached_total},
                                {"distinct", distinct_count},
                                {"spec", std::string("sbo:lpt,delta=3/2")},
                                {"uncached_ms", uncached_ms},
                                {"cached_ms", cached_ms},
                                {"hits", cached_stats.cache_hits},
                                {"misses", cached_stats.cache_misses},
                                {"hit_rate", hit_rate},
                                {"identical_objectives", cache_identical}});

  const bool cache_ok = hit_rate >= 0.95 && cache_identical;
  if (!cache_ok) {
    std::cout << "cache hit rate " << fmt(100.0 * hit_rate, 1)
              << "% is below the 95% floor (bug!)\n";
  }

  report.finish();
  return identical && speedup_ok && stream_identical && stream_rss_ok &&
                 ingest_ok && cache_ok
             ? 0
             : 1;
}
