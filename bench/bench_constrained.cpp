// EXT-D -- the original constrained problem (Sections 2.2 and 7):
// minimize Cmax subject to Mmax <= capacity.
//
// Sweep the budget tightness capacity = beta * LB for beta in [1, 4]:
//   * RLS-driven solver (Delta = capacity/LB): success rate and achieved
//     makespan ratio; guaranteed feasible for beta > 2 (Corollary 2);
//   * SBO-driven solver with the paper's binary-search refinement on
//     independent tasks;
//   * memory-tight workloads to exercise the regime the paper's Section 7
//     flags as hard ("when it is difficult to fit the tasks").
// Expected shape: success probability rises from ~0 near beta = 1 to 1 at
// beta > 2 (provably), with the achieved makespan degrading as the budget
// tightens.
//
// Both drivers are addressed through the constrained:* solver specs; the
// capacity travels in SolveOptions::memory_capacity.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/solver.hpp"

int main(int argc, char** argv) {
  using namespace storesched;
  using bench::banner;

  banner("EXT-D", "Constrained solves: min Cmax s.t. Mmax <= capacity");
  bench::BenchReport report("constrained", argc, argv);

  const std::vector<Fraction> betas{Fraction(11, 10), Fraction(3, 2),
                                    Fraction(2),      Fraction(5, 2),
                                    Fraction(3),      Fraction(4)};
  const int m = 8;
  const int seeds = 12;
  bool all_ok = true;
  const auto sbo_solver = make_solver("constrained:sbo,alg=lpt");

  const auto run_sweep = [&](const std::string& label, bool dag,
                             bool memory_tight) {
    std::cout << "\n" << label << " (m = " << m << ", " << seeds
              << " seeds per beta):\n";
    const auto rls_solver = make_solver(
        dag ? "constrained:rls,tiebreak=bottom" : "constrained:rls");
    std::vector<std::vector<std::string>> rows;
    for (const Fraction& beta : betas) {
      int rls_success = 0;
      int sbo_success = 0;
      Accumulator rls_ratio;
      Accumulator sbo_ratio;
      Rng rng(0x200 + static_cast<std::uint64_t>(beta.num()) * 13 +
              (dag ? 7u : 0u) + (memory_tight ? 3u : 0u));
      for (int seed = 0; seed < seeds; ++seed) {
        Instance inst = [&] {
          if (dag) return generate_dag_by_name("soc", 150, m, {}, rng);
          GenParams gp;
          gp.n = 150;
          gp.m = m;
          gp.p_max = 200;
          gp.s_max = 200;
          return memory_tight ? generate_memory_tight(gp, 1.2, rng)
                              : generate_uniform(gp, rng);
        }();
        const Fraction lb = inst.storage_lower_bound_fraction();
        const Mem cap = (beta * lb).floor();
        const SolveOptions budget{.memory_capacity = cap};

        const SolveResult via_rls = rls_solver->solve(inst, budget);
        if (via_rls.feasible) {
          ++rls_success;
          if (via_rls.objectives.mmax > cap) all_ok = false;
          rls_ratio.add(static_cast<double>(via_rls.objectives.cmax) /
                        static_cast<double>(inst.time_lower_bound()));
        } else if (Fraction(2) < beta && cap >= inst.max_s()) {
          // beta > 2 implies Delta > 2: RLS must succeed.
          all_ok = false;
        }

        if (!dag) {
          const SolveResult via_sbo = sbo_solver->solve(inst, budget);
          if (via_sbo.feasible) {
            ++sbo_success;
            if (via_sbo.objectives.mmax > cap) all_ok = false;
            sbo_ratio.add(static_cast<double>(via_sbo.objectives.cmax) /
                          static_cast<double>(inst.time_lower_bound()));
          }
        }
      }
      rows.push_back(
          {bench::frac(beta), std::to_string(rls_success) + "/" +
                                  std::to_string(seeds),
           rls_ratio.count() ? fmt(rls_ratio.summary().mean) : "n/a",
           dag ? "-" : std::to_string(sbo_success) + "/" + std::to_string(seeds),
           dag || !sbo_ratio.count() ? "-" : fmt(sbo_ratio.summary().mean)});
      report.add("budget_sweep",
                 {{"workload", label},
                  {"beta", beta},
                  {"rls_success", rls_success},
                  {"sbo_success", dag ? -1 : sbo_success},
                  {"seeds", seeds}});
    }
    std::cout << markdown_table({"beta (cap/LB)", "RLS success",
                                 "RLS Cmax/LB mean", "SBO success",
                                 "SBO Cmax/LB mean"},
                                rows);
  };

  run_sweep("Independent uniform workloads", /*dag=*/false, /*tight=*/false);
  run_sweep("Independent memory-tight workloads", /*dag=*/false, /*tight=*/true);
  run_sweep("SoC pipeline DAGs", /*dag=*/true, /*tight=*/false);

  // --- Sharp feasibility threshold: equal code sizes. ---
  // With 1.5 tasks of code S per processor, LB = 1.5 S and a processor
  // holds two codes iff 2S <= beta * 1.5 S, i.e. beta >= 4/3: RLS (and any
  // schedule) flips from infeasible to feasible exactly there. This is the
  // Section 7 regime "when it is difficult to fit the tasks due to the
  // memory constraint".
  std::cout << "\nEqual-code workloads (n = 12, m = 8, s = 100 each; "
               "threshold at beta = 4/3):\n";
  {
    const auto rls_solver = make_solver("constrained:rls");
    std::vector<std::vector<std::string>> rows;
    for (const Fraction& beta : std::vector<Fraction>{
             Fraction(1), Fraction(5, 4), Fraction(13, 10), Fraction(4, 3),
             Fraction(3, 2), Fraction(2)}) {
      Rng rng(0x300);
      std::vector<Task> tasks;
      for (int i = 0; i < 12; ++i) {
        tasks.push_back({rng.uniform_int(1, 100), 100});
      }
      const Instance inst(std::move(tasks), 8);
      const Mem cap = (beta * inst.storage_lower_bound_fraction()).floor();
      const SolveResult r =
          rls_solver->solve(inst, {.memory_capacity = cap});
      const bool should_fit = !(beta < Fraction(4, 3));
      if (r.feasible != should_fit) all_ok = false;
      rows.push_back({bench::frac(beta), std::to_string(cap),
                      r.feasible ? "feasible" : "infeasible",
                      should_fit ? "feasible" : "infeasible"});
      report.add("equal_code_threshold", {{"beta", beta},
                                          {"capacity", cap},
                                          {"feasible", r.feasible},
                                          {"predicted", should_fit}});
    }
    std::cout << markdown_table(
        {"beta (cap/LB)", "capacity", "RLS outcome", "predicted"}, rows);
  }

  std::cout << "\ncapacity respected on every feasible run and beta > 2 "
               "always feasible: "
            << (all_ok ? "YES" : "NO (bug!)") << "\n";
  report.add("verdict", {{"all_ok", all_ok}});
  report.finish();
  return all_ok ? 0 : 1;
}
