// FIG3 -- regenerates Figure 3 of the paper (Section 4).
//
// The figure plots, in the (makespan ratio, memory ratio) plane:
//   * the impossibility domain traced by Lemma 2 for m = 2..6 (with its
//     symmetric mirror), Lemma 1's (1,2)/(2,1) and Lemma 3's (3/2, 3/2);
//   * as a dashed curve, the achievable SBO guarantee (1+Delta, 1+1/Delta)
//     from Section 3 (Corollary 1, eps -> 0).
// We print the domain's upper envelope y(x) sampled along x, the per-m
// Lemma 2 segments, and the SBO curve -- the same series a plot of Figure 3
// needs -- and verify (a) every Lemma 2 witness point is consistent with
// exhaustive enumeration of its gadget instance, and (b) the SBO curve
// never enters the domain.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/paper_instances.hpp"
#include "core/impossibility.hpp"
#include "core/pareto_enum.hpp"

int main(int argc, char** argv) {
  using namespace storesched;
  using bench::banner;
  using bench::frac;

  banner("FIG3", "Impossibility domain and the SBO guarantee curve");
  bench::BenchReport report("fig3_impossibility", argc, argv);
  constexpr int kMaxM = 6;

  // --- Series 1: Lemma 2 segments per m (integer witnesses, k = 12). ---
  std::cout << "\nLemma 2 witness segments (x = 1 + u/m, y = 1 + (m-1)(1-u)):\n";
  std::vector<std::vector<std::string>> seg_rows;
  const int k = 12;
  for (int m = 2; m <= kMaxM; ++m) {
    for (int i = 0; i <= k; i += 3) {
      const RatioPoint pt = lemma2_bound(m, k, i);
      seg_rows.push_back({std::to_string(m), Fraction(i, k).to_string(),
                          frac(pt.x), frac(pt.y)});
    }
  }
  std::cout << markdown_table({"m", "u=i/k", "x (Cmax ratio)", "y (Mmax ratio)"},
                              seg_rows);

  // --- Series 2: the domain's upper envelope, sampled along x. ---
  std::cout << "\nImpossibility-domain upper envelope (m <= " << kMaxM
            << "), y below the envelope is unachievable:\n";
  std::vector<std::vector<std::string>> env_rows;
  for (int step = 0; step <= 30; ++step) {
    const Fraction x = Fraction(20 + step, 20);  // 1.00 .. 2.50
    env_rows.push_back({frac(x), frac(impossibility_frontier(x, kMaxM))});
  }
  std::cout << markdown_table({"x (Cmax ratio)", "envelope y (Mmax ratio)"},
                              env_rows);

  // --- Series 3: the dashed SBO curve. ---
  std::cout << "\nSBO guarantee curve (1 + Delta, 1 + 1/Delta) "
               "(Section 3, dashed in Figure 3):\n";
  std::vector<std::vector<std::string>> curve_rows;
  bool curve_ok = true;
  for (int num = 2; num <= 30; num += 2) {
    const Fraction delta(num, 10);  // 0.2 .. 3.0
    const RatioPoint pt = sbo_curve_point(delta);
    const bool impossible = is_impossible(pt.x, pt.y, kMaxM);
    curve_ok = curve_ok && !impossible;
    curve_rows.push_back({frac(delta), frac(pt.x), frac(pt.y),
                          impossible ? "INSIDE (bug!)" : "outside"});
  }
  std::cout << markdown_table({"Delta", "x", "y", "vs impossibility domain"},
                              curve_rows);

  // --- Verification: Lemma 2 witnesses vs exhaustive gadget enumeration. ---
  std::cout << "\nGadget cross-check (enumerate Lemma 2 instances, compare the "
               "k+1 Pareto points):\n";
  bool gadgets_ok = true;
  std::vector<std::vector<std::string>> gadget_rows;
  for (const auto& [m, kk] : std::vector<std::pair<int, int>>{{2, 2}, {2, 3},
                                                              {3, 2}}) {
    const Time eps_inv = 60;
    const Instance inst = lemma2_instance(m, kk, eps_inv);
    const ParetoEnumResult r = enumerate_pareto(inst);
    const bool sized = r.front.size() == static_cast<std::size_t>(kk + 1);
    gadgets_ok = gadgets_ok && sized;
    gadget_rows.push_back({std::to_string(m), std::to_string(kk),
                           std::to_string(r.front.size()),
                           std::to_string(kk + 1),
                           sized ? "match" : "MISMATCH"});
  }
  std::cout << markdown_table(
      {"m", "k", "enumerated Pareto points", "paper (k+1)", "status"},
      gadget_rows);

  // --- Key witness points. ---
  std::cout << "\nkey witnesses: Lemma 1 (1,2)/(2,1); Lemma 3 (3/2,3/2)\n"
            << "frontier(1)   = " << frac(impossibility_frontier(Fraction(1), kMaxM))
            << "  (paper: y = m for the largest m)\n"
            << "frontier(3/2-) >= 3/2 : "
            << (Fraction(3, 2) <=
                        impossibility_frontier(Fraction(149, 100), kMaxM)
                    ? "holds"
                    : "VIOLATED")
            << "\n";

  const bool ok = curve_ok && gadgets_ok;
  std::cout << "\nreproduction: " << (ok ? "CONSISTENT" : "MISMATCH") << "\n";
  report.add("fig3", {{"sbo_curve_outside_domain", curve_ok},
                      {"gadget_fronts_match", gadgets_ok}});
  report.finish();
  return ok ? 0 : 1;
}
