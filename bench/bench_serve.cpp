// SERVE -- sustained throughput and tail latency of the network front-end.
//
// The serving tier's acceptance bar: tiny mixed-spec instances pushed over
// a unix-domain socket by pipelined closed-loop clients must sustain
// >= 20k req/s, with a p99 latency under 2x the *in-process* cost of the
// same stream. "In-process" is the full line path a caller would pay by
// linking the library instead of connecting a socket -- parse the request
// line, solve, serialize the response -- driven as a closed loop with the
// SAME worker count and the SAME number of requests in flight, stamping
// per-request latencies the same way. Comparing p99 against p99 of a
// structurally identical in-process run isolates exactly what the
// front-end adds (framing, admission, queueing, socket I/O) from what any
// equally-loaded caller pays anyway (worker queueing, scheduler
// timeslicing); a p99-vs-mean comparison would instead gate on the
// machine's core count.
//
// Workload: one persistent connection per client, requests pipelined up to
// a fixed window, instances alternating n in {128, 256} (m = 4), specs
// cycling explicit graham:lpt, explicit graham:input, and a router-served
// request under a generous SLO -- the "tiny mixed-spec" stream of the
// acceptance criterion.
//
//   ./bench_serve --json                 # writes BENCH_serve.json
//   ./bench_serve --json --baseline=BENCH_serve.json [--trend]
//
// With --baseline the throughput floor rises to max(20k, 0.2 * baseline
// req/s) -- the same 0.2 cross-machine guard band the other benches use.
// The p99 gate is machine-relative by construction (both sides are
// measured in the same run), so it stands at 2.0x unconditionally.
// --trend is accepted for CI-command uniformity but changes nothing: every
// cell here is fast enough to re-measure on each run, so a trend run's
// JSON is a valid baseline.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/generators.hpp"
#include "common/io.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/solver.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace storesched;
using Clock = std::chrono::steady_clock;

constexpr int kClients = 2;
constexpr std::size_t kWindow = 64;       // pipelined requests per client
constexpr std::size_t kPerClient = 9000;  // measured requests per client
constexpr std::size_t kWarmup = 2000;     // untimed requests (EWMA warm-up)
constexpr std::size_t kDepth = kClients * kWindow;  // total in flight
constexpr int kRuns = 3;  // medians across repetitions gate, not one run

double to_ms(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// The mixed-spec request line for sequence number `seq`: instances
/// alternate over `instance_lines`, specs cycle explicit lpt, explicit
/// input-order, and router-served under a generous SLO.
std::string request_line(const std::string& id, std::size_t seq,
                         const std::vector<std::string>& instance_lines) {
  const std::string& inst = instance_lines[seq % instance_lines.size()];
  switch (seq % 3) {
    case 0:
      return "{\"id\":\"" + id + "\",\"spec\":\"graham:lpt\",\"instance\":" +
             inst + "}";
    case 1:
      return "{\"id\":\"" + id + "\",\"spec\":\"graham:input\",\"instance\":" +
             inst + "}";
    default:
      return "{\"id\":\"" + id + "\",\"slo_ms\":1000,\"instance\":" + inst +
             "}";
  }
}

/// Solves one parsed request the way the workload mixes specs (seq % 3).
const Solver& solver_for(std::size_t seq, const Solver& lpt,
                         const Solver& input_order) {
  return seq % 3 == 1 ? input_order : lpt;
}

/// The in-process comparator: the same request stream through parse +
/// solve + serialize on a WorkerCrew of `threads`, submitted by one
/// producer keeping `kDepth` requests in flight -- structurally the served
/// closed loop minus the sockets. Latencies are stamped submit ->
/// serialized, one sample per request. Returns the wall time in ms.
double run_inproc(const std::vector<std::string>& lines, unsigned threads,
                  const Solver& lpt, const Solver& input_order,
                  std::vector<double>& latencies_ms) {
  WorkerCrew crew(threads);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t in_flight = 0;
  latencies_ms.assign(lines.size(), 0.0);
  std::vector<Clock::time_point> submitted(lines.size());
  const auto start = Clock::now();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return in_flight < kDepth; });
      ++in_flight;
    }
    submitted[i] = Clock::now();
    crew.submit([&, i] {
      const ServeRequest req = serve_request_from_jsonl(lines[i]);
      const SolveResult result =
          solver_for(i, lpt, input_order).solve(*req.instance);
      const std::string out = result_to_jsonl(0, result, {});
      if (out.empty() || !result.feasible) {
        throw std::runtime_error("in-process solve failed on line " +
                                 std::to_string(i));
      }
      latencies_ms[i] = to_ms(Clock::now() - submitted[i]);
      {
        const std::lock_guard<std::mutex> lock(mu);
        --in_flight;
      }
      cv.notify_one();
    });
  }
  crew.drain();
  return to_ms(Clock::now() - start);
}

/// One closed-loop pipelined client over its own unix-socket connection.
/// Sends `count` requests keeping <= kWindow outstanding, records one
/// latency sample per response (request fully written -> response line
/// framed). Throws on any protocol or socket failure.
void run_client(const std::string& socket_path, int client_index,
                std::size_t count,
                const std::vector<std::string>& instance_lines,
                std::vector<double>& latencies_ms, Clock::time_point& start,
                Clock::time_point& end) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error(std::string("connect: ") + std::strerror(errno));
  }

  latencies_ms.reserve(count);
  std::vector<Clock::time_point> sent(count);
  std::size_t next_send = 0;
  std::size_t send_off = 0;
  std::string wire;  // current request line incl. '\n'
  std::size_t answered = 0;
  std::string inbox;
  start = Clock::now();
  while (answered < count) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const bool may_send = next_send < count && next_send - answered < kWindow;
    if (may_send) p.events |= POLLOUT;
    const int n = ::poll(&p, 1, 30000);
    if (n == 0) throw std::runtime_error("client timed out");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
    }
    if (may_send && (p.revents & POLLOUT)) {
      if (wire.empty()) {
        wire = request_line("c" + std::to_string(client_index) + "-" +
                                std::to_string(next_send),
                            next_send, instance_lines) +
               "\n";
        send_off = 0;
      }
      const auto sent_now = ::send(fd, wire.data() + send_off,
                                   wire.size() - send_off, MSG_NOSIGNAL);
      if (sent_now < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
          throw std::runtime_error(std::string("send: ") +
                                   std::strerror(errno));
        }
      } else {
        send_off += static_cast<std::size_t>(sent_now);
        if (send_off == wire.size()) {
          sent[next_send] = Clock::now();
          ++next_send;
          wire.clear();
        }
      }
    }
    if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
      char buf[1 << 16];
      const auto got = ::recv(fd, buf, sizeof buf, 0);
      if (got == 0) throw std::runtime_error("server closed the connection");
      if (got < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
      }
      inbox.append(buf, static_cast<std::size_t>(got));
      const auto now = Clock::now();
      std::size_t at = 0;
      for (std::size_t nl = inbox.find('\n', at); nl != std::string::npos;
           nl = inbox.find('\n', at)) {
        const std::string line = inbox.substr(at, nl - at);
        at = nl + 1;
        // Match the echoed id back to its send time. Responses may be
        // reordered by solve completion, so parse rather than assume FIFO.
        const std::size_t key = line.find("\"id\":\"c");
        if (key == std::string::npos) {
          throw std::runtime_error("response without an id: " + line);
        }
        const std::size_t dash = line.find('-', key);
        const std::size_t quote = line.find('"', dash);
        const std::size_t seq =
            std::stoull(line.substr(dash + 1, quote - dash - 1));
        if (line.find("\"ok\":true") == std::string::npos) {
          throw std::runtime_error("request failed: " + line);
        }
        latencies_ms.push_back(to_ms(now - sent[seq]));
        ++answered;
      }
      inbox.erase(0, at);
    }
  }
  end = Clock::now();
  ::close(fd);
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using bench::banner;

  banner("SERVE", "Throughput and tail latency of the network front-end");
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) baseline_path = arg.substr(11);
    // --trend: accepted (CI passes one flag set to every bench) but a
    // no-op here -- see the header comment.
  }
  std::string baseline_text;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cout << "cannot read baseline " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    baseline_text = buffer.str();
  }

  bench::BenchReport report("serve", argc, argv);

  // --- Workload ----------------------------------------------------------
  std::vector<std::string> instance_lines;
  std::uint64_t seed = 0x5e12e;
  for (const std::size_t n : {std::size_t{128}, std::size_t{256}}) {
    Rng rng(seed++);
    GenParams gp;
    gp.n = n;
    gp.m = 4;
    gp.p_max = 100;
    gp.s_max = 100;
    instance_lines.push_back(instance_to_jsonl(generate_uniform(gp, rng)));
  }
  const std::size_t total = kClients * kPerClient;
  const unsigned threads =
      std::max(1u, std::min(4u, std::thread::hardware_concurrency()));
  const auto lpt = make_solver("graham:lpt");
  const auto input_order = make_solver("graham:input");

  // --- In-process comparator: the closed loop without the sockets. -------
  std::vector<std::string> lines(total);
  for (std::size_t i = 0; i < total; ++i) {
    lines[i] = request_line("p-" + std::to_string(i), i, instance_lines);
  }
  std::vector<double> inproc_lat;
  {
    std::vector<double> warm;  // untimed warm-up, mirrors the served one
    const std::vector<std::string> head(lines.begin(),
                                        lines.begin() + kWarmup);
    run_inproc(head, threads, *lpt, *input_order, warm);
  }

  // Median of kRuns repetitions: a single run's p99 is one scheduler
  // hiccup wide on small machines, and the gate divides by it.
  std::vector<double> inproc_rps_runs, inproc_p50_runs, inproc_p99_runs;
  for (int r = 0; r < kRuns; ++r) {
    const double ms = run_inproc(lines, threads, *lpt, *input_order, inproc_lat);
    std::sort(inproc_lat.begin(), inproc_lat.end());
    inproc_rps_runs.push_back(total / (ms / 1000.0));
    inproc_p50_runs.push_back(percentile(inproc_lat, 0.50));
    inproc_p99_runs.push_back(percentile(inproc_lat, 0.99));
  }
  const double inproc_rps = median(inproc_rps_runs);
  const double inproc_p50 = median(inproc_p50_runs);
  const double inproc_p99 = median(inproc_p99_runs);

  // --- The server and its clients ----------------------------------------
  const std::string socket_path =
      "bench_serve." + std::to_string(::getpid()) + ".sock";
  ServeOptions options;
  options.unix_path = socket_path;
  options.ladder = {"graham:lpt", "graham:input"};
  options.threads = static_cast<int>(threads);
  options.conn_window = kWindow;  // clients self-limit to the same window
  ServeServer server(std::move(options));
  server.start();

  const auto drive = [&](std::size_t per_client,
                         std::vector<std::vector<double>>& latencies,
                         std::vector<Clock::time_point>& starts,
                         std::vector<Clock::time_point>& ends) {
    std::vector<std::thread> clients;
    std::vector<std::exception_ptr> errors(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        try {
          run_client(socket_path, c, per_client, instance_lines, latencies[c],
                     starts[c], ends[c]);
        } catch (...) {
          errors[c] = std::current_exception();
        }
      });
    }
    for (auto& t : clients) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  };

  std::vector<std::vector<double>> latencies(kClients);
  std::vector<Clock::time_point> starts(kClients);
  std::vector<Clock::time_point> ends(kClients);
  drive(kWarmup / kClients, latencies, starts, ends);  // untimed warm-up
  std::vector<double> serve_rps_runs, p50_runs, p99_runs;
  for (int r = 0; r < kRuns; ++r) {
    for (auto& l : latencies) l.clear();
    drive(kPerClient, latencies, starts, ends);
    std::vector<double> all;
    all.reserve(total);
    for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
    if (all.size() != total) {
      std::cout << "response count mismatch: " << all.size() << "/" << total
                << "\n";
      return 1;
    }
    std::sort(all.begin(), all.end());
    const auto first_start = *std::min_element(starts.begin(), starts.end());
    const auto last_end = *std::max_element(ends.begin(), ends.end());
    serve_rps_runs.push_back(total / (to_ms(last_end - first_start) / 1000.0));
    p50_runs.push_back(percentile(all, 0.50));
    p99_runs.push_back(percentile(all, 0.99));
  }
  server.shutdown();
  ::unlink(socket_path.c_str());
  const double serve_rps = median(serve_rps_runs);
  const double p50 = median(p50_runs);
  const double p99 = median(p99_runs);
  const double p99_ratio = inproc_p99 > 0 ? p99 / inproc_p99 : 0.0;

  std::cout << "\nmixed-spec workload: " << total << " requests, " << kClients
            << " client(s) x window " << kWindow << ", " << threads
            << " worker thread(s)\n";
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"in-process closed loop", fmt(inproc_rps / 1000.0, 1),
                  fmt(inproc_p50, 3), fmt(inproc_p99, 3), "1.00"});
  rows.push_back({"served over unix socket", fmt(serve_rps / 1000.0, 1),
                  fmt(p50, 3), fmt(p99, 3), fmt(p99_ratio, 2)});
  std::cout << markdown_table(
      {"path", "kreq/s", "p50 ms", "p99 ms", "p99 vs in-process"}, rows);

  report.add("serve_cell", {{"clients", kClients},
                            {"window", kWindow},
                            {"requests", total},
                            {"threads", static_cast<std::int64_t>(threads)},
                            {"inproc_rps", inproc_rps},
                            {"inproc_p50_ms", inproc_p50},
                            {"inproc_p99_ms", inproc_p99},
                            {"serve_rps", serve_rps},
                            {"p50_ms", p50},
                            {"p99_ms", p99},
                            {"p99_ratio", p99_ratio}});
  report.add("headline",
             {{"rps", serve_rps}, {"p99_ms", p99}, {"p99_ratio", p99_ratio}});
  report.finish();

  // --- Regression gates. -------------------------------------------------
  double rps_floor = 20000.0;  // the acceptance bar stands on its own
  if (!baseline_text.empty()) {
    const std::string needle = "\"rps\": ";
    const std::size_t head = baseline_text.find("\"name\": \"headline\"");
    const std::size_t key =
        head == std::string::npos ? head : baseline_text.find(needle, head);
    if (key == std::string::npos) {
      std::cout << "baseline " << baseline_path
                << " has no headline rps record\n";
      return 1;
    }
    const double base = std::stod(baseline_text.substr(key + needle.size()));
    rps_floor = std::max(rps_floor, 0.2 * base);
    std::cout << "baseline " << fmt(base / 1000.0, 1)
              << " kreq/s -> throughput floor " << fmt(rps_floor / 1000.0, 1)
              << " kreq/s\n";
  }
  if (serve_rps < rps_floor) {
    std::cout << "SERVE REGRESSION: " << fmt(serve_rps / 1000.0, 1)
              << " kreq/s below floor " << fmt(rps_floor / 1000.0, 1)
              << " kreq/s\n";
    return 1;
  }
  // Machine-relative tail gate: the front-end may at most double the tail
  // an in-process caller with the same concurrency structure observes.
  if (p99_ratio > 2.0) {
    std::cout << "SERVE REGRESSION: p99 " << fmt(p99, 3) << " ms is "
              << fmt(p99_ratio, 2) << "x the in-process p99 "
              << fmt(inproc_p99, 3) << " ms (gate: 2x)\n";
    return 1;
  }
  std::cout << "gates passed: " << fmt(serve_rps / 1000.0, 1)
            << " kreq/s >= " << fmt(rps_floor / 1000.0, 1) << " kreq/s, p99 "
            << fmt(p99_ratio, 2) << "x <= 2x in-process\n";
  return 0;
}
