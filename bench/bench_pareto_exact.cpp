// PARETO_EXACT -- scaling of exact Pareto enumeration: branch and bound
// vs the seed's brute-force walker.
//
// The walker visits every symmetry-reduced assignment (m^n-ish), so exact
// fronts stop near n = 14. The dominance-pruned branch and bound
// (core/pareto_bb.hpp) is measured here up to n = 50 so the "exact fronts
// at n ~ 30-50" claim is a number, not an assertion:
//
//   * cells where both engines run assert bit-identical fronts and report
//     the speedup;
//   * walker cells past its budget are reported as skipped, never
//     silently;
//   * branch-and-bound cells are bounded by a node budget; a cell that
//     exceeds it is reported as "budget" (none do at the default sizes).
//
//   ./bench_pareto_exact --json     # writes BENCH_pareto_exact.json
//
// Gate: the n = 30 cell must enumerate its exact front within the node
// budget (the acceptance bar of the branch-and-bound rewrite); the bench
// exits non-zero otherwise. CI runs this in the bench-smoke job.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "core/pareto_bb.hpp"

namespace {

using namespace storesched;

/// Two weight families spanning the difficulty range: uniform p/s (fronts
/// collapse toward one balanced point past n ~ 20, so the search mostly
/// proves optimality) and anti-correlated p/s (rich fronts, the
/// adversarial regime where the search has to earn every point).
Instance make_cell_instance(const std::string& family, std::size_t n, int m,
                            std::uint64_t seed) {
  Rng rng(seed);
  GenParams gp;
  gp.n = n;
  gp.m = m;
  gp.p_max = 100;
  gp.s_max = 100;
  if (family == "anticorr") return generate_anticorrelated(gp, 0.3, rng);
  return generate_uniform(gp, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using bench::banner;

  banner("PARETO_EXACT",
         "Exact Pareto enumeration: branch and bound vs brute force");
  bench::BenchReport report("pareto_exact", argc, argv);

  // Walker cells whose symmetry-reduced assignment count (~m^(n-1))
  // exceeds this are skipped; 3^13 * n ~ 2e7 leaf-work units is seconds.
  constexpr double kWalkerBudget = 5e7;
  // Node budget per branch-and-bound cell, sized so an over-budget cell
  // fails in a few seconds and the bench stays CI-sized. The gate below
  // requires the anticorr n = 30, m = 3 cell to finish inside it.
  constexpr std::uint64_t kNodeBudget = 80'000'000;

  struct Cell {
    const char* family;
    std::size_t n;
    int m;
  };
  const std::vector<Cell> cells{
      {"uniform", 14, 3},  {"uniform", 30, 4},  {"uniform", 50, 4},
      {"anticorr", 10, 3}, {"anticorr", 12, 3}, {"anticorr", 14, 3},
      {"anticorr", 20, 3}, {"anticorr", 30, 3}, {"anticorr", 40, 2},
      {"anticorr", 50, 2}, {"anticorr", 40, 3}, {"anticorr", 50, 3},
  };

  std::vector<std::vector<std::string>> rows;
  bool gate_ok = false;
  std::uint64_t seed = 0xbb;
  for (const Cell& cell : cells) {
    const Instance inst = make_cell_instance(cell.family, cell.n, cell.m, seed++);

    ParetoEnumResult bb;
    bool bb_exceeded = false;
    double bb_ms = 0.0;
    try {
      // No warm-up: enumeration runs are seconds-scale and warm-up
      // effects are noise next to an extra full run.
      bb_ms = bench::median_ms(cell.n <= 20 ? 3 : 1, /*warmup=*/false,
                               [&] { bb = enumerate_pareto_bb(inst, kNodeBudget); });
    } catch (const std::runtime_error&) {
      bb_exceeded = true;
    }

    double walker_cost = static_cast<double>(cell.n);
    for (std::size_t i = 1; i < cell.n; ++i) {
      walker_cost = std::min(walker_cost * cell.m, 1e18);
    }
    const bool walker_skipped = walker_cost > kWalkerBudget || bb_exceeded;
    double walker_ms = 0.0;
    bool identical = true;
    if (!walker_skipped) {
      ParetoEnumResult ref;
      walker_ms = bench::median_ms(
          1, /*warmup=*/false,
          [&] { ref = enumerate_pareto_reference(inst); });
      identical = bb.front == ref.front;
    }
    const double speedup =
        walker_skipped || bb_ms <= 0 ? 0.0 : walker_ms / bb_ms;
    if (std::string(cell.family) == "anticorr" && cell.n == 30 &&
        cell.m == 3 && !bb_exceeded) {
      gate_ok = true;
    }

    rows.push_back(
        {cell.family, std::to_string(cell.n), std::to_string(cell.m),
         bb_exceeded ? "budget" : fmt(bb_ms, 2),
         bb_exceeded ? "n/a" : std::to_string(bb.enumerated),
         bb_exceeded ? "n/a" : std::to_string(bb.front.size()),
         walker_skipped ? "skipped" : fmt(walker_ms, 1),
         walker_skipped ? "n/a" : fmt(speedup, 1),
         walker_skipped ? "n/a" : (identical ? "yes" : "NO (bug!)")});
    report.add("pareto_cell",
               {{"family", cell.family},
                {"n", cell.n},
                {"m", cell.m},
                {"bb_ms", bb_ms},
                {"bb_nodes", bb_exceeded ? std::int64_t{-1}
                                         : static_cast<std::int64_t>(bb.enumerated)},
                {"bb_exceeded", bb_exceeded},
                {"front_size", bb_exceeded ? std::size_t{0} : bb.front.size()},
                {"walker_ms", walker_ms},
                {"walker_skipped", walker_skipped},
                {"speedup", speedup},
                {"identical", walker_skipped ? bench::JsonValue("n/a")
                                             : bench::JsonValue(identical)}});
    if (!identical) {
      std::cout << "branch-and-bound and walker fronts disagree at n="
                << cell.n << " m=" << cell.m << " (bug!)\n";
      return 1;
    }
  }
  std::cout << markdown_table({"family", "n", "m", "b&b ms", "nodes",
                               "front", "walker ms", "speedup", "identical"},
                              rows);

  report.add("headline", {{"gate_family", "anticorr"},
                          {"gate_n", 30},
                          {"gate_m", 3},
                          {"gate_ok", gate_ok},
                          {"node_budget", static_cast<std::int64_t>(kNodeBudget)}});
  report.finish();

  if (!gate_ok) {
    std::cout << "PARETO_EXACT GATE: the anticorr n=30, m=3 exact front did "
                 "not finish inside the node budget\n";
    return 1;
  }
  std::cout << "\ngate: anticorr n=30, m=3 exact front enumerated within "
               "budget\n";
  return 0;
}
