// EXT-C -- the tri-objective extension on independent tasks (Section 5.2).
//
// RLS_Delta with SPT tie-breaking on physics-batch workloads: measure all
// three objectives against their references (Graham bounds for Cmax/Mmax,
// the SPT optimum for sum Ci) across a Delta grid, and ablate the tie-break
// order (SPT vs input vs LPT) to show what the SPT choice buys on sum Ci.
// Expected shape: sum-Ci ratio stays close to 1 (far below the pessimistic
// 2 + 1/(Delta-2) bound), and tightening Delta trades makespan for memory
// while sum Ci degrades only mildly.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/rls.hpp"
#include "core/theory.hpp"
#include "core/triobjective.hpp"

int main() {
  using namespace storesched;
  using bench::banner;

  banner("EXT-C", "Tri-objective RLS+SPT on independent physics batches");

  const std::vector<Fraction> deltas{Fraction(21, 10), Fraction(5, 2),
                                     Fraction(3), Fraction(4), Fraction(8)};
  const int m = 8;
  bool all_ok = true;

  std::cout << "\nPhysics batches (n = 300, alpha = 1.3, m = " << m
            << ", 10 seeds each):\n";
  std::vector<std::vector<std::string>> rows;
  for (const Fraction& delta : deltas) {
    Accumulator rc;
    Accumulator rm;
    Accumulator rs;
    Rng rng(0xF0 + static_cast<std::uint64_t>(delta.num()));
    for (int seed = 0; seed < 10; ++seed) {
      const Instance inst = generate_physics_batch(300, m, 1.3, rng);
      const TriObjectiveResult r = tri_objective_schedule(inst, delta);
      if (!r.rls.feasible) {
        all_ok = false;
        continue;
      }
      const Time opt_sumci = optimal_sum_completion(inst);
      rc.add(static_cast<double>(r.objectives.cmax) /
             inst.time_lower_bound_fraction().to_double());
      rm.add(static_cast<double>(r.objectives.mmax) /
             inst.storage_lower_bound_fraction().to_double());
      rs.add(static_cast<double>(r.objectives.sum_ci) /
             static_cast<double>(opt_sumci));
      // Corollary 4, exactly.
      if (!(Fraction(r.objectives.sum_ci) <=
            rls_sumci_ratio(delta) * Fraction(opt_sumci))) {
        all_ok = false;
      }
    }
    rows.push_back({bench::frac(delta), fmt(rc.summary().mean),
                    fmt(rls_cmax_ratio(delta, m).to_double()),
                    fmt(rm.summary().mean), fmt(delta.to_double()),
                    fmt(rs.summary().mean), fmt(rs.summary().max),
                    fmt(rls_sumci_ratio(delta).to_double())});
  }
  std::cout << markdown_table({"Delta", "Cmax/LB mean", "Cor.4 Cmax bound",
                               "Mmax/LB mean", "Mmax bound", "sumCi/OPT mean",
                               "sumCi/OPT max", "Cor.4 sumCi bound"},
                              rows);

  // --- Tie-break ablation: what SPT buys. ---
  std::cout << "\nTie-break ablation (Delta = 3, n = 300, 10 seeds): sum Ci "
               "relative to the SPT optimum:\n";
  std::vector<std::vector<std::string>> abl_rows;
  for (const PriorityPolicy policy :
       {PriorityPolicy::kSpt, PriorityPolicy::kInputOrder,
        PriorityPolicy::kLpt}) {
    Accumulator rs;
    Rng rng(0x101);
    for (int seed = 0; seed < 10; ++seed) {
      const Instance inst = generate_physics_batch(300, m, 1.3, rng);
      const RlsResult r = rls_schedule(inst, Fraction(3), policy);
      if (!r.feasible) continue;
      rs.add(static_cast<double>(sum_completion_times(inst, r.schedule)) /
             static_cast<double>(optimal_sum_completion(inst)));
    }
    abl_rows.push_back({to_string(policy), fmt(rs.summary().mean),
                        fmt(rs.summary().max)});
  }
  std::cout << markdown_table({"tie-break order", "sumCi/OPT mean",
                               "sumCi/OPT max"},
                              abl_rows);
  std::cout << "\n(only the SPT order carries the Corollary 4 sum-Ci "
               "guarantee; the others may exceed it)\n";

  std::cout << "\nall Corollary 4 guarantees hold: "
            << (all_ok ? "YES" : "NO (bug!)") << "\n";
  return all_ok ? 0 : 1;
}
