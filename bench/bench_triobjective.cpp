// EXT-C -- the tri-objective extension on independent tasks (Section 5.2).
//
// RLS_Delta with SPT tie-breaking on physics-batch workloads: measure all
// three objectives against their references (Graham bounds for Cmax/Mmax,
// the SPT optimum for sum Ci) across a Delta grid, and ablate the tie-break
// order (SPT vs input vs LPT) to show what the SPT choice buys on sum Ci.
// Expected shape: sum-Ci ratio stays close to 1 (far below the pessimistic
// 2 + 1/(Delta-2) bound), and tightening Delta trades makespan for memory
// while sum Ci degrades only mildly.
//
// The tri-objective runs use the "tri:spt" solver; the tie-break ablation
// swaps RLS solvers by spec string -- exactly the dispatch the unified
// registry exists for.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/solver.hpp"
#include "core/theory.hpp"

int main(int argc, char** argv) {
  using namespace storesched;
  using bench::banner;

  banner("EXT-C", "Tri-objective RLS+SPT on independent physics batches");
  bench::BenchReport report("triobjective", argc, argv);

  const std::vector<Fraction> deltas{Fraction(21, 10), Fraction(5, 2),
                                     Fraction(3), Fraction(4), Fraction(8)};
  const int m = 8;
  bool all_ok = true;

  std::cout << "\nPhysics batches (n = 300, alpha = 1.3, m = " << m
            << ", 10 seeds each):\n";
  std::vector<std::vector<std::string>> rows;
  for (const Fraction& delta : deltas) {
    const auto solver = make_solver("tri:spt,delta=" + delta.to_string());
    Accumulator rc;
    Accumulator rm;
    Accumulator rs;
    Rng rng(0xF0 + static_cast<std::uint64_t>(delta.num()));
    for (int seed = 0; seed < 10; ++seed) {
      const Instance inst = generate_physics_batch(300, m, 1.3, rng);
      const SolveResult r = solver->solve(inst);
      if (!r.feasible) {
        all_ok = false;
        continue;
      }
      const Time opt_sumci = optimal_sum_completion(inst);
      rc.add(static_cast<double>(r.objectives.cmax) /
             inst.time_lower_bound_fraction().to_double());
      rm.add(static_cast<double>(r.objectives.mmax) /
             inst.storage_lower_bound_fraction().to_double());
      rs.add(static_cast<double>(*r.sum_ci) /
             static_cast<double>(opt_sumci));
      // Corollary 4, exactly, against the run's own guaranteed ratio.
      if (r.sumci_ratio &&
          !(Fraction(*r.sum_ci) <= *r.sumci_ratio * Fraction(opt_sumci))) {
        all_ok = false;
      }
    }
    rows.push_back({bench::frac(delta), fmt(rc.summary().mean),
                    fmt(rls_cmax_ratio(delta, m).to_double()),
                    fmt(rm.summary().mean), fmt(delta.to_double()),
                    fmt(rs.summary().mean), fmt(rs.summary().max),
                    fmt(rls_sumci_ratio(delta).to_double())});
    report.add("tri_sweep", {{"delta", delta},
                             {"cmax_lb_ratio_mean", rc.summary().mean},
                             {"mmax_lb_ratio_mean", rm.summary().mean},
                             {"sumci_opt_ratio_mean", rs.summary().mean},
                             {"sumci_opt_ratio_max", rs.summary().max}});
  }
  std::cout << markdown_table({"Delta", "Cmax/LB mean", "Cor.4 Cmax bound",
                               "Mmax/LB mean", "Mmax bound", "sumCi/OPT mean",
                               "sumCi/OPT max", "Cor.4 sumCi bound"},
                              rows);

  // --- Tie-break ablation: what SPT buys. ---
  std::cout << "\nTie-break ablation (Delta = 3, n = 300, 10 seeds): sum Ci "
               "relative to the SPT optimum:\n";
  std::vector<std::vector<std::string>> abl_rows;
  for (const char* policy : {"spt", "input", "lpt"}) {
    const auto solver =
        make_solver("rls:" + std::string(policy) + ",delta=3");
    Accumulator rs;
    Rng rng(0x101);
    for (int seed = 0; seed < 10; ++seed) {
      const Instance inst = generate_physics_batch(300, m, 1.3, rng);
      const SolveResult r = solver->solve(inst);
      if (!r.feasible) continue;
      rs.add(static_cast<double>(*r.sum_ci) /
             static_cast<double>(optimal_sum_completion(inst)));
    }
    abl_rows.push_back({solver->name(), fmt(rs.summary().mean),
                        fmt(rs.summary().max)});
    report.add("tiebreak_ablation", {{"spec", solver->name()},
                                     {"sumci_opt_ratio_mean",
                                      rs.summary().mean},
                                     {"sumci_opt_ratio_max",
                                      rs.summary().max}});
  }
  std::cout << markdown_table({"tie-break order", "sumCi/OPT mean",
                               "sumCi/OPT max"},
                              abl_rows);
  std::cout << "\n(only the SPT order carries the Corollary 4 sum-Ci "
               "guarantee; the others may exceed it)\n";

  std::cout << "\nall Corollary 4 guarantees hold: "
            << (all_ok ? "YES" : "NO (bug!)") << "\n";
  report.add("verdict", {{"all_guarantees_hold", all_ok}});
  report.finish();
  return all_ok ? 0 : 1;
}
