// EXT-B -- empirical behaviour of RLS_Delta on DAG workloads (Section 5.1).
//
// Across DAG families (layered, fork-join, Cholesky-shaped, FFT, SoC
// pipeline) and a Delta grid:
//   * Mmax / LB must never exceed Delta (Corollary 2);
//   * Cmax / max(work/m, critical path) must stay below the Lemma 5 ratio
//     2 + 1/(Delta-2) - (Delta-1)/(m(Delta-2));
//   * the number of marked processors must respect Lemma 4's
//     floor(m/(Delta-1));
//   * offline RLS is compared with the online event-driven dispatcher under
//     the same budget.
// Expected shape: memory tracks the cap for small Delta and detaches for
// large Delta, while the makespan ratio falls towards the Graham 2 - 1/m
// regime as Delta grows.
//
// RLS runs go through the unified solver API; the Lemma 4 analysis channel
// rides along in SolveResult's rls extras.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/dag_generators.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/solver.hpp"
#include "core/theory.hpp"
#include "sim/online.hpp"

int main(int argc, char** argv) {
  using namespace storesched;
  using bench::banner;

  banner("EXT-B", "RLS_Delta on DAG workloads: guarantees and online dispatch");
  bench::BenchReport report("rls_dag", argc, argv);

  const std::vector<std::string> families{"layered", "forkjoin", "cholesky",
                                          "fft", "soc"};
  const std::vector<Fraction> deltas{Fraction(21, 10), Fraction(5, 2),
                                     Fraction(3), Fraction(4), Fraction(8)};
  const int m = 8;
  bool all_ok = true;

  std::cout << "\nDAG sweep (~200-node graphs, m = " << m
            << ", 8 seeds each), bottom-level priority:\n";
  std::vector<std::vector<std::string>> rows;
  for (const std::string& family : families) {
    for (const Fraction& delta : deltas) {
      const auto solver =
          make_solver("rls:bottom,delta=" + delta.to_string());
      Accumulator c_ratio;
      Accumulator m_ratio;
      Accumulator marked;
      Rng rng(0xD0 + static_cast<std::uint64_t>(family.size()) * 7 +
              static_cast<std::uint64_t>(delta.num()));
      int infeasible = 0;
      for (int seed = 0; seed < 8; ++seed) {
        const Instance inst = generate_dag_by_name(family, 200, m, {}, rng);
        const SolveResult r = solver->solve(inst);
        if (!r.feasible) {
          ++infeasible;
          continue;
        }
        const RlsResult& rls = *r.rls;
        const Fraction c_lb = Fraction::max(
            Fraction(inst.total_work(), inst.m()),
            Fraction(inst.critical_path()));
        c_ratio.add(static_cast<double>(r.objectives.cmax) / c_lb.to_double());
        if (Fraction(0) < rls.lb) {
          m_ratio.add(static_cast<double>(r.objectives.mmax) /
                      rls.lb.to_double());
        }
        marked.add(static_cast<double>(rls.marked_count));
        // Exact guarantee checks against the run's own bounds and ratios.
        if (!(Fraction(r.objectives.mmax) <= *r.mmax_bound)) all_ok = false;
        if (!(Fraction(r.objectives.cmax) <= *r.cmax_ratio * c_lb)) {
          all_ok = false;
        }
        if (rls.marked_count > rls_marked_bound(delta, inst.m())) {
          all_ok = false;
        }
      }
      // Delta > 2 guarantees feasibility.
      if (infeasible > 0) all_ok = false;
      rows.push_back({family, bench::frac(delta), fmt(c_ratio.summary().mean),
                      fmt(c_ratio.summary().max),
                      fmt(rls_cmax_ratio(delta, m).to_double()),
                      fmt(m_ratio.summary().mean), fmt(delta.to_double()),
                      fmt(marked.summary().mean),
                      std::to_string(rls_marked_bound(delta, m))});
      report.add("dag_sweep", {{"family", family},
                               {"delta", delta},
                               {"cmax_lb_ratio_mean", c_ratio.summary().mean},
                               {"mmax_lb_ratio_mean", m_ratio.summary().mean},
                               {"marked_mean", marked.summary().mean},
                               {"infeasible", infeasible}});
    }
  }
  std::cout << markdown_table({"family", "Delta", "Cmax/LB mean", "Cmax/LB max",
                               "Lemma5 bound", "Mmax/LB mean", "cap (=Delta)",
                               "marked mean", "Lemma4 bound"},
                              rows);

  // --- Offline RLS vs online dispatcher under the same budget. ---
  std::cout << "\nOffline RLS vs online event-driven dispatch (same budget "
               "Delta * LB, layered DAGs, 8 seeds):\n";
  std::vector<std::vector<std::string>> online_rows;
  for (const Fraction& delta : deltas) {
    const auto solver = make_solver("rls:bottom,delta=" + delta.to_string());
    Accumulator off_c;
    Accumulator on_c;
    int online_stuck = 0;
    Rng rng(0xE0 + static_cast<std::uint64_t>(delta.num()));
    for (int seed = 0; seed < 8; ++seed) {
      const Instance inst = generate_dag_by_name("layered", 200, m, {}, rng);
      const SolveResult off = solver->solve(inst);
      const OnlineResult on =
          simulate_online_rls(inst, delta, PriorityPolicy::kBottomLevel);
      if (off.feasible) off_c.add(static_cast<double>(off.objectives.cmax));
      if (on.feasible) {
        on_c.add(static_cast<double>(cmax(inst, on.schedule)));
      } else {
        ++online_stuck;
      }
    }
    online_rows.push_back({bench::frac(delta), fmt(off_c.summary().mean, 1),
                           fmt(on_c.summary().mean, 1),
                           std::to_string(online_stuck)});
    report.add("offline_vs_online",
               {{"delta", delta},
                {"offline_cmax_mean", off_c.summary().mean},
                {"online_cmax_mean", on_c.summary().mean},
                {"online_stuck", online_stuck}});
  }
  std::cout << markdown_table(
      {"Delta", "offline RLS Cmax mean", "online Cmax mean", "online stuck"},
      online_rows);

  std::cout << "\nall guarantees (Cor.2, Lemma 4, Lemma 5, feasibility for "
               "Delta > 2) hold: "
            << (all_ok ? "YES" : "NO (bug!)") << "\n";
  report.add("verdict", {{"all_guarantees_hold", all_ok}});
  report.finish();
  return all_ok ? 0 : 1;
}
