// FIG2 -- regenerates Figure 2 of the paper (Section 4.3).
//
// The instance: m = 2, p = {1, eps, 1-eps}, s = {eps, 1, 1-eps}. The paper
// shows three Pareto-optimal schedules with values (1, 2-eps),
// (1+eps, 1+eps) and (2-eps, 1), and notes the middle point is Pareto
// optimal only for eps < 1/2 -- at eps -> 1/2 it yields Lemma 3's (3/2, 3/2)
// impossibility. We regenerate the front across an eps sweep and render the
// three Gantt charts at the figure's regime.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/gantt.hpp"
#include "common/paper_instances.hpp"
#include "core/pareto_enum.hpp"

int main(int argc, char** argv) {
  using namespace storesched;
  using bench::banner;
  using bench::ratio_str;

  banner("FIG2", "Pareto-optimal schedules of the Section 4.3 instance");
  bench::BenchReport report("fig2_pareto", argc, argv);

  bool all_ok = true;
  std::vector<std::vector<std::string>> sweep_rows;
  for (const Time eps_inv : {100, 20, 4, 3, 2}) {
    const Instance inst = fig2_instance(eps_inv);
    const ParetoEnumResult r = enumerate_pareto(inst);
    std::string points;
    for (const auto& pt : r.front) {
      points += "(" + ratio_str(pt.value.cmax, eps_inv) + ", " +
                ratio_str(pt.value.mmax, eps_inv) + ") ";
    }
    sweep_rows.push_back({"1/" + std::to_string(eps_inv),
                          std::to_string(r.front.size()), points});
    // Expected: 3 points for eps < 1/2, 2 points at eps = 1/2.
    const std::size_t expected = eps_inv > 2 ? 3u : 2u;
    if (r.front.size() != expected) all_ok = false;
  }
  std::cout << markdown_table({"eps", "front size", "points (paper units)"},
                              sweep_rows);
  std::cout << "\npaper reports (eps < 1/2): (1, 2-eps), (1+eps, 1+eps), "
               "(2-eps, 1); middle point vanishes at eps = 1/2 (Lemma 3)\n";

  // Exact check at the figure's regime.
  const Time eps_inv = 100;
  const Instance inst = fig2_instance(eps_inv);
  const ParetoEnumResult r = enumerate_pareto(inst);
  const bool match = r.front.size() == 3 &&
                     r.front[0].value == ObjectivePoint{100, 199} &&
                     r.front[1].value == ObjectivePoint{101, 101} &&
                     r.front[2].value == ObjectivePoint{199, 100};
  all_ok = all_ok && match;
  std::cout << "reproduction at eps = 1/100: "
            << (match ? "EXACT MATCH" : "MISMATCH") << "\n";

  std::cout << "\nGantt charts (Figure 2 style):\n";
  for (const auto& pt : r.front) {
    const Schedule timed = serialize_assignment(
        inst, r.schedules[static_cast<std::size_t>(pt.tag)]);
    std::cout << "\n-- schedule with (Cmax, Mmax) = (" << pt.value.cmax << ", "
              << pt.value.mmax << ") --\n"
              << render_gantt(inst, timed);
  }
  report.add("fig2", {{"front_size", r.front.size()},
                      {"exact_match", match},
                      {"all_sweep_sizes_ok", all_ok}});
  report.finish();
  return all_ok ? 0 : 1;
}
