// EXT-F -- extensions ablation: Delta-sweep Pareto-front approximation
// (Section 6 made operational), RLS tightness search (Section 7's open
// question), and the uniform-processor extension (Section 7 future work).
//
// Reports:
//   * coverage epsilon of the SBO Delta-sweep front against the exact
//     front on small instances (how much of the true trade-off the single
//     tunable algorithm already exposes);
//   * the worst measured RLS makespan ratio an adversarial hill climb can
//     find vs Lemma 5's guarantee (the gap the paper conjectures);
//   * uniform processors: guarantee bounds vs measured values.
//
// Front generation goes through the generic front(solver_spec, grid) of the
// unified API -- one code path for every Delta-tunable solver family.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/pareto_enum.hpp"
#include "core/solver.hpp"
#include "core/theory.hpp"
#include "core/uniform_bi.hpp"
#include "core/worstcase.hpp"

int main(int argc, char** argv) {
  using namespace storesched;
  using bench::banner;

  banner("EXT-F", "Extensions: front approximation, tightness hunt, uniform machines");
  bench::BenchReport report("frontier", argc, argv);
  bool all_ok = true;

  // --- 1. Delta-sweep front vs exact front. ---
  std::cout << "\nSBO Delta-sweep front coverage of the exact Pareto front "
               "(n in [6,10], m = 2, LPT ingredients):\n";
  const Fraction lpt_ratio_m2 = make_scheduler("lpt")->ratio(2);
  std::vector<std::vector<std::string>> cov_rows;
  for (const int steps : {5, 9, 17, 33}) {
    const auto grid = delta_grid(Fraction(1, 8), Fraction(8), steps);
    Accumulator eps;
    Accumulator sizes;
    Rng rng(0x400 + static_cast<std::uint64_t>(steps));
    for (int seed = 0; seed < 25; ++seed) {
      GenParams gp;
      gp.n = static_cast<std::size_t>(rng.uniform_int(6, 10));
      gp.m = 2;
      const Instance inst = generate_uniform(gp, rng);
      const auto exact = enumerate_pareto(inst);
      const ApproxFront approx = front(inst, "sbo:lpt", grid);
      eps.add(coverage_epsilon(approx.points, exact.front));
      sizes.add(static_cast<double>(approx.points.size()));
    }
    cov_rows.push_back({std::to_string(steps), fmt(sizes.summary().mean, 1),
                        fmt(eps.summary().mean), fmt(eps.summary().max)});
    report.add("front_coverage", {{"grid_steps", steps},
                                  {"front_size_mean", sizes.summary().mean},
                                  {"coverage_eps_mean", eps.summary().mean},
                                  {"coverage_eps_max", eps.summary().max}});
    if (eps.summary().max > 2.0 * lpt_ratio_m2.to_double() + 1e-9) {
      all_ok = false;
    }
  }
  std::cout << markdown_table({"grid steps", "front size mean",
                               "coverage eps mean", "coverage eps max"},
                              cov_rows);
  std::cout << "(eps = factor by which the sweep front must be inflated to "
               "dominate the exact front;\n 1.0 = exact coverage. Corollary 1 "
               "caps it at (1+Delta)rho at the balanced point.)\n";

  // --- 2. RLS tightness hunt. ---
  std::cout << "\nAdversarial search for RLS worst cases (hill climbing, "
               "exact optima via BnB):\n";
  std::vector<std::vector<std::string>> wc_rows;
  for (const auto& [m, delta] : std::vector<std::pair<int, Fraction>>{
           {2, Fraction(5, 2)}, {2, Fraction(3)}, {3, Fraction(5, 2)},
           {4, Fraction(3)}}) {
    Rng rng(0x500 + static_cast<std::uint64_t>(m) * 10 +
            static_cast<std::uint64_t>(delta.num()));
    const WorstCaseResult r =
        search_rls_worst_case(10, m, delta, /*restarts=*/6, /*steps=*/80,
                              /*w_max=*/50, rng);
    if (r.measured_ratio > r.bound + 1e-9) all_ok = false;
    wc_rows.push_back({std::to_string(m), bench::frac(delta),
                       fmt(r.measured_ratio), fmt(r.bound),
                       fmt(r.bound - r.measured_ratio)});
    report.add("rls_tightness", {{"m", m},
                                 {"delta", delta},
                                 {"worst_measured_ratio", r.measured_ratio},
                                 {"lemma5_bound", r.bound}});
  }
  std::cout << markdown_table({"m", "Delta", "worst measured Cmax ratio",
                               "Lemma 5 bound", "gap"},
                              wc_rows);
  std::cout << "(a persistent gap supports the paper's conjecture that the "
               "RLS ratio is not tight)\n";

  // --- 3. Uniform processors. ---
  std::cout << "\nUniform (related) processors extension (speeds in {1..4}, "
               "min normalized to 1):\n";
  std::vector<std::vector<std::string>> uni_rows;
  for (const Fraction delta : {Fraction(1, 2), Fraction(1), Fraction(2)}) {
    Accumulator rc;
    Accumulator rm;
    Rng rng(0x600 + static_cast<std::uint64_t>(delta.num()));
    for (int seed = 0; seed < 15; ++seed) {
      GenParams gp;
      gp.n = 120;
      gp.m = 8;
      const Instance inst = generate_uniform(gp, rng);
      std::vector<std::int64_t> speeds(8);
      for (auto& s : speeds) s = rng.uniform_int(1, 4);
      speeds[0] = 1;
      const UniformSboResult r = sbo_uniform_schedule(inst, speeds, delta);
      const Fraction c = uniform_cmax(inst, r.schedule, speeds);
      if (!(c <= r.cmax_bound)) all_ok = false;
      if (!(Fraction(mmax(inst, r.schedule)) <= r.mmax_bound)) all_ok = false;
      rc.add(c.to_double() / r.c_ingredient.to_double());
      rm.add(static_cast<double>(mmax(inst, r.schedule)) /
             static_cast<double>(std::max<Mem>(r.m_ingredient, 1)));
    }
    // Speeds are drawn in {1..4}, so speed_max <= 4 caps the memory bound.
    uni_rows.push_back({bench::frac(delta), fmt(rc.summary().mean),
                        fmt(1.0 + delta.to_double()), fmt(rm.summary().mean),
                        fmt(1.0 + 4.0 / delta.to_double())});
    report.add("uniform_processors", {{"delta", delta},
                                      {"cmax_ratio_mean", rc.summary().mean},
                                      {"mmax_ratio_mean", rm.summary().mean}});
  }
  std::cout << markdown_table({"Delta", "Cmax/C mean", "bound (1+Delta)",
                               "Mmax/M mean", "bound (1+speed_max/Delta)"},
                              uni_rows);

  std::cout << "\nall extension guarantees hold: "
            << (all_ok ? "YES" : "NO (bug!)") << "\n";
  report.add("verdict", {{"all_ok", all_ok}});
  report.finish();
  return all_ok ? 0 : 1;
}
