#include "algorithms/partition.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <queue>
#include <stdexcept>

namespace storesched {

namespace {

void check_inputs(std::span<const std::int64_t> weights, int m) {
  if (m <= 0) throw std::invalid_argument("partition: m must be positive");
  for (const std::int64_t w : weights) {
    if (w < 0) throw std::invalid_argument("partition: negative weight");
  }
}

}  // namespace

std::int64_t partition_lower_bound(std::span<const std::int64_t> weights,
                                   int m) {
  check_inputs(weights, m);
  std::int64_t max_w = 0;
  std::int64_t sum = 0;
  for (const std::int64_t w : weights) {
    max_w = std::max(max_w, w);
    sum += w;
  }
  const std::int64_t avg = (sum + m - 1) / m;
  return std::max(max_w, avg);
}

Fraction partition_lower_bound_fraction(std::span<const std::int64_t> weights,
                                        int m) {
  check_inputs(weights, m);
  std::int64_t max_w = 0;
  std::int64_t sum = 0;
  for (const std::int64_t w : weights) {
    max_w = std::max(max_w, w);
    sum += w;
  }
  return Fraction::max(Fraction(max_w), Fraction(sum, m));
}

std::int64_t partition_value(std::span<const std::int64_t> weights,
                             std::span<const ProcId> assignment, int m) {
  check_inputs(weights, m);
  if (weights.size() != assignment.size()) {
    throw std::invalid_argument("partition_value: size mismatch");
  }
  std::vector<std::int64_t> load(static_cast<std::size_t>(m), 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const ProcId q = assignment[i];
    if (q < 0 || q >= m) {
      throw std::invalid_argument("partition_value: invalid processor");
    }
    load[static_cast<std::size_t>(q)] += weights[i];
  }
  return *std::max_element(load.begin(), load.end());
}

std::vector<std::size_t> decreasing_order(
    std::span<const std::int64_t> weights) {
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  return order;
}

std::vector<std::size_t> increasing_order(
    std::span<const std::int64_t> weights) {
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] < weights[b];
    return a < b;
  });
  return order;
}

std::vector<ProcId> list_assign_ordered(std::span<const std::int64_t> weights,
                                        std::span<const std::size_t> order,
                                        int m) {
  check_inputs(weights, m);
  if (order.size() != weights.size()) {
    throw std::invalid_argument("list_assign_ordered: order size mismatch");
  }
  // Min-heap of (load, proc); proc as tiebreak keeps the choice
  // deterministic (lowest-indexed among least loaded, as in Algorithm 2).
  using Entry = std::pair<std::int64_t, ProcId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (ProcId q = 0; q < m; ++q) heap.push({0, q});

  std::vector<ProcId> assign(weights.size(), kNoProc);
  for (const std::size_t i : order) {
    auto [load, q] = heap.top();
    heap.pop();
    assign[i] = q;
    heap.push({load + weights[i], q});
  }
  return assign;
}

std::vector<ProcId> list_assign(std::span<const std::int64_t> weights, int m) {
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return list_assign_ordered(weights, order, m);
}

std::vector<ProcId> lpt_assign(std::span<const std::int64_t> weights, int m) {
  const auto order = decreasing_order(weights);
  return list_assign_ordered(weights, order, m);
}

namespace {

/// First Fit Decreasing into at most m bins of capacity cap.
/// Returns the assignment, or nullopt if some weight does not fit.
std::optional<std::vector<ProcId>> ffd_pack(
    std::span<const std::int64_t> weights,
    std::span<const std::size_t> dec_order, int m, std::int64_t cap) {
  std::vector<std::int64_t> load(static_cast<std::size_t>(m), 0);
  std::vector<ProcId> assign(weights.size(), kNoProc);
  for (const std::size_t i : dec_order) {
    bool placed = false;
    for (ProcId q = 0; q < m; ++q) {
      if (load[static_cast<std::size_t>(q)] + weights[i] <= cap) {
        load[static_cast<std::size_t>(q)] += weights[i];
        assign[i] = q;
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  return assign;
}

}  // namespace

std::vector<ProcId> multifit_assign(std::span<const std::int64_t> weights,
                                    int m, int iterations) {
  check_inputs(weights, m);
  if (weights.empty()) return {};
  const auto dec = decreasing_order(weights);

  std::int64_t lo = partition_lower_bound(weights, m);
  // LPT is always FFD-feasible at its own makespan, so it seeds the upper end.
  const auto lpt = lpt_assign(weights, m);
  std::int64_t hi = partition_value(weights, lpt, m);

  std::vector<ProcId> best = lpt;
  for (int it = 0; it < iterations && lo < hi; ++it) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (auto packed = ffd_pack(weights, dec, m, mid)) {
      best = std::move(*packed);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // `hi` is the best FFD-feasible capacity found; `best` matches it.
  return best;
}

namespace {

/// Exhaustive optimal placement of the first `k` weights of `dec_order`
/// (decreasing), with symmetry breaking: a weight may only enter the first
/// of the currently-empty processors, and never two processors with equal
/// load (the resulting schedules are permutations of each other).
struct PrefixSearch {
  std::span<const std::int64_t> weights;
  std::span<const std::size_t> order;
  std::size_t k = 0;
  int m = 1;
  std::vector<std::int64_t> load;
  std::vector<ProcId> assign;        // per order position 0..k-1
  std::vector<ProcId> best_assign;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> suffix_max;  // max weight in positions >= idx

  void run() {
    load.assign(static_cast<std::size_t>(m), 0);
    assign.assign(k, kNoProc);
    best_assign.assign(k, kNoProc);
    suffix_max.assign(k + 1, 0);
    for (std::size_t i = k; i-- > 0;) {
      suffix_max[i] = std::max(suffix_max[i + 1], weights[order[i]]);
    }
    dfs(0, 0);
  }

  void dfs(std::size_t idx, std::int64_t current_max) {
    if (current_max >= best) return;  // cannot improve
    if (idx == k) {
      best = current_max;
      best_assign = assign;
      return;
    }
    const std::int64_t w = weights[order[idx]];
    // Any completion is at least max(current_max, remaining largest weight).
    if (std::max(current_max, suffix_max[idx]) >= best) return;

    bool tried_empty = false;
    for (ProcId q = 0; q < m; ++q) {
      const std::int64_t lq = load[static_cast<std::size_t>(q)];
      if (lq == 0) {
        if (tried_empty) break;  // all further processors are empty too
        tried_empty = true;
      } else {
        // Skip processors whose load duplicates an earlier one.
        bool dup = false;
        for (ProcId r = 0; r < q; ++r) {
          if (load[static_cast<std::size_t>(r)] == lq) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
      }
      load[static_cast<std::size_t>(q)] = lq + w;
      assign[idx] = q;
      dfs(idx + 1, std::max(current_max, lq + w));
      load[static_cast<std::size_t>(q)] = lq;
    }
  }
};

}  // namespace

std::vector<ProcId> kopt_assign(std::span<const std::int64_t> weights, int m,
                                int k) {
  check_inputs(weights, m);
  if (k < 0) throw std::invalid_argument("kopt_assign: k must be >= 0");
  if (weights.empty()) return {};
  const auto dec = decreasing_order(weights);
  const std::size_t prefix = std::min<std::size_t>(
      static_cast<std::size_t>(k), weights.size());

  PrefixSearch search;
  search.weights = weights;
  search.order = dec;
  search.k = prefix;
  search.m = m;
  search.run();

  // Continue with list scheduling (decreasing order) from the prefix loads.
  std::vector<std::int64_t> load(static_cast<std::size_t>(m), 0);
  std::vector<ProcId> assign(weights.size(), kNoProc);
  for (std::size_t idx = 0; idx < prefix; ++idx) {
    const ProcId q = search.best_assign[idx];
    assign[dec[idx]] = q;
    load[static_cast<std::size_t>(q)] += weights[dec[idx]];
  }
  for (std::size_t idx = prefix; idx < dec.size(); ++idx) {
    const ProcId q = static_cast<ProcId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assign[dec[idx]] = q;
    load[static_cast<std::size_t>(q)] += weights[dec[idx]];
  }
  return assign;
}

// ---------------------------------------------------------------------------
// Hochbaum-Shmoys dual-approximation PTAS (epsilon = 1/k).
// ---------------------------------------------------------------------------
namespace {

/// One attempt at target makespan T. On success returns an assignment whose
/// per-processor load is at most T * (1 + 1/k); on failure returns nullopt,
/// which certifies OPT > T.
class DualAttempt {
 public:
  DualAttempt(std::span<const std::int64_t> weights, int m, int k,
              std::int64_t target)
      : weights_(weights), m_(m), k_(k), target_(target) {}

  std::optional<std::vector<ProcId>> run() {
    if (target_ <= 0) return std::nullopt;
    split_items();
    if (!pack_large()) return std::nullopt;
    if (!place_small()) return std::nullopt;
    return assign_;
  }

 private:
  using State = std::vector<int>;  // remaining item count per distinct size

  void split_items() {
    large_.clear();
    small_.clear();
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      // Large iff w > T/k  <=>  w*k > T.
      if (weights_[i] * k_ > target_) {
        large_.push_back(i);
      } else {
        small_.push_back(i);
      }
    }
  }

  /// Rounded size of item i: floor(w_i * k^2 / T), in [k, k^2] when the
  /// item fits a bin at all.
  std::int64_t rounded(std::size_t i) const {
    return static_cast<std::int64_t>(
        (static_cast<Int128>(weights_[i]) * k_ * k_) / target_);
  }

  bool pack_large() {
    assign_.assign(weights_.size(), kNoProc);
    loads_.assign(static_cast<std::size_t>(m_), 0);
    if (large_.empty()) return true;

    const std::int64_t cap = static_cast<std::int64_t>(k_) * k_;
    // Group large items by rounded size.
    sizes_.clear();
    std::map<std::int64_t, std::vector<std::size_t>> groups;
    for (const std::size_t i : large_) {
      const std::int64_t r = rounded(i);
      if (r > cap) return false;  // item alone exceeds T
      groups[r].push_back(i);
    }
    items_by_size_.clear();
    State full;
    for (auto& [r, items] : groups) {
      sizes_.push_back(r);
      items_by_size_.push_back(std::move(items));
      full.push_back(static_cast<int>(items_by_size_.back().size()));
    }

    // Enumerate all non-empty bin configurations (count per size, rounded
    // sum <= cap, counts bounded by availability). Sizes are >= k, so a
    // configuration holds at most k items: the enumeration is tiny.
    configs_.clear();
    State cur(sizes_.size(), 0);
    enumerate_configs(0, 0, cur);

    // Exact bin packing by memoized search: bins(state) = fewest bins that
    // pack `state`. Succeeds iff bins(full) <= m.
    memo_.clear();
    const int need = bins_needed(full);
    if (need < 0 || need > m_) return false;

    // Reconstruct: walk the chosen configs and hand out real items.
    State state = full;
    ProcId q = 0;
    while (!all_zero(state)) {
      const int cfg = memo_.at(state).second;
      const State& c = configs_[static_cast<std::size_t>(cfg)];
      for (std::size_t v = 0; v < c.size(); ++v) {
        for (int t = 0; t < c[v]; ++t) {
          const std::size_t item =
              items_by_size_[v][static_cast<std::size_t>(--state[v])];
          assign_[item] = q;
          loads_[static_cast<std::size_t>(q)] += weights_[item];
        }
      }
      ++q;
    }
    return true;
  }

  void enumerate_configs(std::size_t v, std::int64_t sum, State& cur) {
    if (v == sizes_.size()) {
      if (sum > 0) configs_.push_back(cur);
      return;
    }
    const std::int64_t cap = static_cast<std::int64_t>(k_) * k_;
    const int avail = static_cast<int>(items_by_size_[v].size());
    for (int c = 0;; ++c) {
      if (c > avail || sum + c * sizes_[v] > cap) break;
      cur[v] = c;
      enumerate_configs(v + 1, sum + c * sizes_[v], cur);
    }
    cur[v] = 0;
  }

  static bool all_zero(const State& s) {
    return std::all_of(s.begin(), s.end(), [](int c) { return c == 0; });
  }

  /// Fewest bins to pack `state`; -1 if the memo table explodes (treated as
  /// failure by the caller -- never happens for the supported k <= 3).
  int bins_needed(const State& state) {
    if (all_zero(state)) return 0;
    if (auto it = memo_.find(state); it != memo_.end()) return it->second.first;
    if (memo_.size() > kStateLimit) return -1;

    int best = std::numeric_limits<int>::max();
    int best_cfg = -1;
    for (std::size_t c = 0; c < configs_.size(); ++c) {
      State next = state;
      bool fits = true;
      for (std::size_t v = 0; v < next.size(); ++v) {
        next[v] -= configs_[c][v];
        if (next[v] < 0) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      const int sub = bins_needed(next);
      if (sub >= 0 && sub + 1 < best) {
        best = sub + 1;
        best_cfg = static_cast<int>(c);
      }
    }
    if (best_cfg < 0) return -1;
    memo_[state] = {best, best_cfg};
    return best;
  }

  bool place_small() {
    // Greedy: each small item to the least-loaded processor; the inflated
    // cap T*(1+1/k) is never exceeded unless OPT > T.
    for (const std::size_t i : small_) {
      const auto it = std::min_element(loads_.begin(), loads_.end());
      // (load + w) <= T*(k+1)/k  <=>  (load + w)*k <= T*(k+1).
      if ((*it + weights_[i]) * k_ > target_ * (k_ + 1)) return false;
      assign_[i] = static_cast<ProcId>(it - loads_.begin());
      *it += weights_[i];
    }
    return true;
  }

  static constexpr std::size_t kStateLimit = 4'000'000;

  std::span<const std::int64_t> weights_;
  int m_;
  int k_;
  std::int64_t target_;

  std::vector<std::size_t> large_;
  std::vector<std::size_t> small_;
  std::vector<std::int64_t> sizes_;
  std::vector<std::vector<std::size_t>> items_by_size_;
  std::vector<State> configs_;
  std::map<State, std::pair<int, int>> memo_;  // state -> (bins, config)
  std::vector<ProcId> assign_;
  std::vector<std::int64_t> loads_;
};

}  // namespace

std::vector<ProcId> dual_ptas_assign(std::span<const std::int64_t> weights,
                                     int m, int k) {
  check_inputs(weights, m);
  if (k < 2 || k > 3) {
    throw std::invalid_argument(
        "dual_ptas_assign: supported k (1/epsilon) is 2 or 3");
  }
  if (weights.empty()) return {};

  std::int64_t lo = partition_lower_bound(weights, m);
  const auto lpt = lpt_assign(weights, m);
  std::int64_t hi = partition_value(weights, lpt, m);  // >= OPT: always feasible

  std::vector<ProcId> best = lpt;
  bool have_dual = false;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    DualAttempt attempt(weights, m, k, mid);
    if (auto assign = attempt.run()) {
      best = std::move(*assign);
      have_dual = true;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (!have_dual) {
    DualAttempt attempt(weights, m, k, hi);
    if (auto assign = attempt.run()) best = std::move(*assign);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Exact algorithms.
// ---------------------------------------------------------------------------
namespace {

struct BnbSearch {
  std::span<const std::int64_t> weights;
  std::span<const std::size_t> order;
  int m = 1;
  std::uint64_t node_limit = 0;

  std::vector<std::int64_t> load;
  std::vector<ProcId> assign;
  std::vector<ProcId> best_assign;
  std::int64_t best = 0;
  std::vector<std::int64_t> suffix_sum;
  std::uint64_t nodes = 0;

  void dfs(std::size_t idx, std::int64_t current_max) {
    if (++nodes > node_limit) {
      throw std::runtime_error("exact_bnb_assign: node limit exceeded");
    }
    if (current_max >= best) return;
    if (idx == order.size()) {
      best = current_max;
      best_assign = assign;
      return;
    }
    // Averaging bound: even spreading the remaining work over the space
    // below `best` on all processors must be possible.
    std::int64_t slack = 0;
    for (const std::int64_t l : load) {
      slack += std::max<std::int64_t>(0, best - 1 - l);
    }
    if (slack < suffix_sum[idx]) return;

    const std::int64_t w = weights[order[idx]];
    bool tried_empty = false;
    for (ProcId q = 0; q < m; ++q) {
      const std::int64_t lq = load[static_cast<std::size_t>(q)];
      if (lq == 0) {
        if (tried_empty) break;
        tried_empty = true;
      } else {
        bool dup = false;
        for (ProcId r = 0; r < q; ++r) {
          if (load[static_cast<std::size_t>(r)] == lq) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
      }
      load[static_cast<std::size_t>(q)] = lq + w;
      assign[order[idx]] = q;
      dfs(idx + 1, std::max(current_max, lq + w));
      load[static_cast<std::size_t>(q)] = lq;
    }
    assign[order[idx]] = kNoProc;
  }
};

}  // namespace

std::vector<ProcId> exact_bnb_assign(std::span<const std::int64_t> weights,
                                     int m, std::uint64_t node_limit) {
  check_inputs(weights, m);
  if (weights.empty()) return {};
  const auto dec = decreasing_order(weights);

  BnbSearch search;
  search.weights = weights;
  search.order = dec;
  search.m = m;
  search.node_limit = node_limit;
  search.load.assign(static_cast<std::size_t>(m), 0);
  search.assign.assign(weights.size(), kNoProc);
  // Seed with LPT: a valid incumbent tightens pruning immediately.
  search.best_assign = lpt_assign(weights, m);
  search.best = partition_value(weights, search.best_assign, m);
  search.suffix_sum.assign(weights.size() + 1, 0);
  for (std::size_t i = weights.size(); i-- > 0;) {
    search.suffix_sum[i] = search.suffix_sum[i + 1] + weights[dec[i]];
  }

  const std::int64_t lb = partition_lower_bound(weights, m);
  if (search.best > lb) search.dfs(0, 0);
  return search.best_assign;
}

std::int64_t exact_dp_value(std::span<const std::int64_t> weights, int m) {
  check_inputs(weights, m);
  if (weights.size() > 20) {
    throw std::invalid_argument("exact_dp_value: n must be <= 20");
  }
  if (weights.empty()) return 0;
  const std::size_t n = weights.size();
  const std::size_t full = (std::size_t{1} << n) - 1;

  const auto feasible = [&](std::int64_t cap) {
    for (const std::int64_t w : weights) {
      if (w > cap) return false;
    }
    // dp[mask] = (bins used, load of the currently-open bin), minimized
    // lexicographically. Any packing can be serialized bin by bin, so
    // trying every unset item at every state is exhaustive; lexicographic
    // minimality is safe by the usual exchange argument (fewer bins or a
    // lighter open bin never hurts).
    struct Cell {
      int bins;
      std::int64_t open;
    };
    const auto better = [](const Cell& a, const Cell& b) {
      return a.bins < b.bins || (a.bins == b.bins && a.open < b.open);
    };
    std::vector<Cell> dp(full + 1,
                         {std::numeric_limits<int>::max() / 2, 0});
    dp[0] = {1, 0};
    for (std::size_t mask = 0; mask < full; ++mask) {
      if (dp[mask].bins > m) continue;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (std::size_t{1} << i)) continue;
        const std::int64_t w = weights[i];
        const std::size_t next = mask | (std::size_t{1} << i);
        if (dp[mask].open + w <= cap) {
          const Cell cand{dp[mask].bins, dp[mask].open + w};
          if (better(cand, dp[next])) dp[next] = cand;
        }
        const Cell cand{dp[mask].bins + 1, w};
        if (better(cand, dp[next])) dp[next] = cand;
      }
    }
    return dp[full].bins <= m;
  };

  std::int64_t lo = partition_lower_bound(weights, m);
  std::int64_t hi = 0;
  for (const std::int64_t w : weights) hi += w;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace storesched
