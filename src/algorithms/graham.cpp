#include "algorithms/graham.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace storesched {

std::string to_string(PriorityPolicy policy) {
  switch (policy) {
    case PriorityPolicy::kInputOrder: return "input";
    case PriorityPolicy::kSpt: return "spt";
    case PriorityPolicy::kLpt: return "lpt";
    case PriorityPolicy::kBottomLevel: return "bottom-level";
    case PriorityPolicy::kSmallestStorage: return "min-storage";
    case PriorityPolicy::kLargestStorage: return "max-storage";
  }
  return "unknown";
}

std::vector<TaskId> priority_order(const Instance& inst,
                                   PriorityPolicy policy) {
  std::vector<TaskId> order(inst.n());
  std::iota(order.begin(), order.end(), 0);

  const auto by_key = [&](auto key) {
    std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return key(a) < key(b);
    });
  };

  switch (policy) {
    case PriorityPolicy::kInputOrder:
      break;
    case PriorityPolicy::kSpt:
      by_key([&](TaskId i) { return inst.task(i).p; });
      break;
    case PriorityPolicy::kLpt:
      by_key([&](TaskId i) { return -inst.task(i).p; });
      break;
    case PriorityPolicy::kBottomLevel: {
      if (inst.has_precedence()) {
        const auto bl = inst.dag().bottom_levels(inst.tasks());
        by_key([&](TaskId i) { return -bl[static_cast<std::size_t>(i)]; });
      } else {
        by_key([&](TaskId i) { return -inst.task(i).p; });
      }
      break;
    }
    case PriorityPolicy::kSmallestStorage:
      by_key([&](TaskId i) { return inst.task(i).s; });
      break;
    case PriorityPolicy::kLargestStorage:
      by_key([&](TaskId i) { return -inst.task(i).s; });
      break;
  }
  return order;
}

Schedule graham_list_schedule(const Instance& inst, PriorityPolicy policy) {
  const std::vector<TaskId> order = priority_order(inst, policy);
  std::vector<std::size_t> rank(inst.n());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rank[static_cast<std::size_t>(order[pos])] = pos;
  }

  // Ready tasks keyed by priority rank (lower = sooner).
  using ReadyEntry = std::pair<std::size_t, TaskId>;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<>>
      ready;
  std::vector<std::size_t> pending(inst.n(), 0);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    pending[static_cast<std::size_t>(i)] =
        inst.has_precedence() ? inst.dag().in_degree(i) : 0;
    if (pending[static_cast<std::size_t>(i)] == 0) {
      ready.push({rank[static_cast<std::size_t>(i)], i});
    }
  }

  // Idle processors (lowest id first) and in-flight completions.
  std::priority_queue<ProcId, std::vector<ProcId>, std::greater<>> idle;
  for (ProcId q = 0; q < inst.m(); ++q) idle.push(q);
  using Completion = std::pair<Time, TaskId>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running;

  Schedule sched(inst);
  Time now = 0;
  std::size_t scheduled = 0;
  while (scheduled < inst.n()) {
    while (!idle.empty() && !ready.empty()) {
      const TaskId i = ready.top().second;
      ready.pop();
      const ProcId q = idle.top();
      idle.pop();
      sched.assign(i, q, now);
      running.push({now + inst.task(i).p, i});
      ++scheduled;
    }
    if (running.empty()) break;  // defensive; cannot happen on valid DAGs
    // Advance to the next completion and release everything finishing then.
    now = running.top().first;
    while (!running.empty() && running.top().first == now) {
      const TaskId done = running.top().second;
      running.pop();
      idle.push(sched.proc(done));
      if (inst.has_precedence()) {
        for (const TaskId v : inst.dag().succs(done)) {
          if (--pending[static_cast<std::size_t>(v)] == 0) {
            ready.push({rank[static_cast<std::size_t>(v)], v});
          }
        }
      }
    }
  }
  return sched;
}

Schedule spt_schedule(const Instance& inst) {
  if (inst.has_precedence()) {
    throw std::logic_error("spt_schedule: independent tasks only");
  }
  return graham_list_schedule(inst, PriorityPolicy::kSpt);
}

Time optimal_sum_completion(const Instance& inst) {
  return sum_completion_times(inst, spt_schedule(inst));
}

}  // namespace storesched
