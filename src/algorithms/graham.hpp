// Graham List Scheduling for precedence-constrained instances.
//
// The classical 2 - 1/m heuristic (paper reference [8]) and the baseline
// RLS degenerates to when the memory cap is infinite. Implemented as an
// event-driven simulation: whenever a processor is free and a task is ready,
// the highest-priority ready task starts on the earliest-available
// processor. Several standard priority policies are provided.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/instance.hpp"
#include "common/schedule.hpp"

namespace storesched {

/// Task-ordering policies used to pick among simultaneously-ready tasks.
enum class PriorityPolicy {
  kInputOrder,   ///< ascending task id (the paper's "arbitrary total order")
  kSpt,          ///< shortest processing time first (Section 5.2)
  kLpt,          ///< longest processing time first
  kBottomLevel,  ///< longest remaining chain first (HLF/CP heuristic)
  kSmallestStorage,  ///< smallest s_i first
  kLargestStorage,   ///< largest s_i first (pack big codes early)
};

std::string to_string(PriorityPolicy policy);

/// Total priority order of all tasks under `policy` (position -> task id);
/// lower position = higher priority. Deterministic: ties break by task id.
std::vector<TaskId> priority_order(const Instance& inst, PriorityPolicy policy);

/// List-schedules `inst` (independent or DAG) and returns a timed schedule.
/// Ratio 2 - 1/m on the makespan for any priority policy [Graham 1969].
Schedule graham_list_schedule(const Instance& inst,
                              PriorityPolicy policy = PriorityPolicy::kInputOrder);

/// SPT list schedule on independent tasks: optimal for the sum of
/// completion times on identical processors (used as the Section 5.2
/// reference). Throws std::logic_error for precedence instances.
Schedule spt_schedule(const Instance& inst);

/// The optimal sum of completion times (value of spt_schedule).
Time optimal_sum_completion(const Instance& inst);

}  // namespace storesched
