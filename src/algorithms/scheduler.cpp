#include "algorithms/scheduler.hpp"

#include <stdexcept>

namespace storesched {

std::unique_ptr<MakespanScheduler> make_scheduler(const std::string& name) {
  if (name == "ls") return std::make_unique<ListSchedulerAlg>();
  if (name == "lpt") return std::make_unique<LptSchedulerAlg>();
  if (name == "multifit") return std::make_unique<MultifitSchedulerAlg>();
  if (name == "ptas2") return std::make_unique<DualPtasSchedulerAlg>(2);
  if (name == "ptas3") return std::make_unique<DualPtasSchedulerAlg>(3);
  if (name == "exact") return std::make_unique<ExactSchedulerAlg>();
  if (name.rfind("kopt", 0) == 0) {
    const std::string arg = name.substr(4);
    if (!arg.empty()) {
      try {
        const int k = std::stoi(arg);
        if (k >= 0 && k <= 16) return std::make_unique<KOptSchedulerAlg>(k);
      } catch (const std::exception&) {
        // fall through to the error below
      }
    }
  }
  throw std::invalid_argument("make_scheduler: unknown scheduler " + name);
}

}  // namespace storesched
