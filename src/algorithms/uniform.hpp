// Uniform (related) processors: the paper's "non identical processors"
// future-work direction (Section 7), for the Q | p_j, s_j | Cmax, Mmax
// model.
//
// Processors have integer speeds >= 1 (normalized so the slowest has speed
// 1); executing work W on a processor of speed s takes W/s time units.
// Storage is speed-independent: a task's code occupies s_i wherever it is
// placed, so the memory objective and its Graham bound are unchanged from
// the identical-machine case.
//
// All completion-time comparisons (work/speed) are exact via 128-bit cross
// multiplication; no makespan decision ever touches floating point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fraction.hpp"
#include "common/types.hpp"

namespace storesched {

/// Validates a speed vector: non-empty, every speed >= 1.
void check_speeds(std::span<const std::int64_t> speeds);

/// Exact makespan of an assignment under speeds: max_q (work_q / speed_q).
Fraction uniform_partition_value(std::span<const std::int64_t> weights,
                                 std::span<const ProcId> assignment,
                                 std::span<const std::int64_t> speeds);

/// Lower bound on the optimal uniform makespan:
///   max( sum_i w_i / sum_q speed_q,  max_i w_i / max_q speed_q ).
Fraction uniform_lower_bound(std::span<const std::int64_t> weights,
                             std::span<const std::int64_t> speeds);

/// Earliest-completion-time list scheduling in the given order: each weight
/// goes to the processor minimizing (work_q + w) / speed_q. Ties break by
/// lowest processor id.
std::vector<ProcId> uniform_list_assign(std::span<const std::int64_t> weights,
                                        std::span<const std::size_t> order,
                                        std::span<const std::int64_t> speeds);

/// ECT list scheduling in decreasing weight order (the LPT analogue; the
/// classical 2-ish approximation for Q || Cmax).
std::vector<ProcId> uniform_lpt_assign(std::span<const std::int64_t> weights,
                                       std::span<const std::int64_t> speeds);

}  // namespace storesched
