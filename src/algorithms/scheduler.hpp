// Polymorphic makespan-scheduler interface.
//
// SBO (paper Algorithm 1) is parameterized by two approximation algorithms:
// a rho1-approximation producing pi_1 on the processing times and a
// rho2-approximation producing pi_2 on the storage sizes. This interface
// captures exactly that contract -- an assignment algorithm over anonymous
// weights together with its proven ratio -- so SBO's guarantee
// ((1+Delta)rho1, (1+1/Delta)rho2) can be computed and asserted per
// configuration.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "algorithms/partition.hpp"
#include "common/fraction.hpp"
#include "common/types.hpp"

namespace storesched {

class MakespanScheduler {
 public:
  virtual ~MakespanScheduler() = default;

  /// Identifier used in reports ("LS", "LPT", "MULTIFIT", "KOPT8", ...).
  virtual std::string name() const = 0;

  /// Assigns each weight to a processor, heuristically minimizing the
  /// maximum per-processor sum.
  virtual std::vector<ProcId> assign(std::span<const std::int64_t> weights,
                                     int m) const = 0;

  /// The algorithm's proven approximation ratio on m processors.
  virtual Fraction ratio(int m) const = 0;
};

/// Graham List Scheduling in input order; ratio 2 - 1/m.
class ListSchedulerAlg final : public MakespanScheduler {
 public:
  std::string name() const override { return "LS"; }
  std::vector<ProcId> assign(std::span<const std::int64_t> weights,
                             int m) const override {
    return list_assign(weights, m);
  }
  Fraction ratio(int m) const override { return Fraction(2 * m - 1, m); }
};

/// Longest Processing Time; ratio 4/3 - 1/(3m).
class LptSchedulerAlg final : public MakespanScheduler {
 public:
  std::string name() const override { return "LPT"; }
  std::vector<ProcId> assign(std::span<const std::int64_t> weights,
                             int m) const override {
    return lpt_assign(weights, m);
  }
  Fraction ratio(int m) const override { return Fraction(4 * m - 1, 3 * m); }
};

/// MULTIFIT with FFD packing; ratio 13/11.
class MultifitSchedulerAlg final : public MakespanScheduler {
 public:
  std::string name() const override { return "MULTIFIT"; }
  std::vector<ProcId> assign(std::span<const std::int64_t> weights,
                             int m) const override {
    return multifit_assign(weights, m);
  }
  Fraction ratio(int) const override { return Fraction(13, 11); }
};

/// Graham hybrid (k largest optimal + LS); ratio 1 + (1-1/m)/(1+floor(k/m)).
class KOptSchedulerAlg final : public MakespanScheduler {
 public:
  explicit KOptSchedulerAlg(int k) : k_(k) {}
  std::string name() const override { return "KOPT" + std::to_string(k_); }
  std::vector<ProcId> assign(std::span<const std::int64_t> weights,
                             int m) const override {
    return kopt_assign(weights, m, k_);
  }
  Fraction ratio(int m) const override {
    const std::int64_t q = 1 + k_ / m;
    return Fraction(1) + Fraction(m - 1, m * q);
  }

 private:
  int k_;
};

/// Hochbaum-Shmoys dual approximation; ratio 1 + 1/k, k in {2, 3}.
class DualPtasSchedulerAlg final : public MakespanScheduler {
 public:
  explicit DualPtasSchedulerAlg(int k) : k_(k) {}
  std::string name() const override { return "PTAS1/" + std::to_string(k_); }
  std::vector<ProcId> assign(std::span<const std::int64_t> weights,
                             int m) const override {
    return dual_ptas_assign(weights, m, k_);
  }
  Fraction ratio(int) const override { return Fraction(k_ + 1, k_); }

 private:
  int k_;
};

/// Exact branch and bound; ratio 1 (exponential time, small n only).
class ExactSchedulerAlg final : public MakespanScheduler {
 public:
  std::string name() const override { return "EXACT"; }
  std::vector<ProcId> assign(std::span<const std::int64_t> weights,
                             int m) const override {
    return exact_bnb_assign(weights, m);
  }
  Fraction ratio(int) const override { return Fraction(1); }
};

/// Factory by name: "ls", "lpt", "multifit", "kopt<k>", "ptas2", "ptas3",
/// "exact". Throws std::invalid_argument on unknown names.
std::unique_ptr<MakespanScheduler> make_scheduler(const std::string& name);

}  // namespace storesched
