#include "algorithms/uniform.hpp"

#include <numeric>
#include <stdexcept>

#include "algorithms/partition.hpp"

namespace storesched {

void check_speeds(std::span<const std::int64_t> speeds) {
  if (speeds.empty()) throw std::invalid_argument("speeds: empty");
  for (const std::int64_t s : speeds) {
    if (s < 1) throw std::invalid_argument("speeds: every speed must be >= 1");
  }
}

Fraction uniform_partition_value(std::span<const std::int64_t> weights,
                                 std::span<const ProcId> assignment,
                                 std::span<const std::int64_t> speeds) {
  check_speeds(speeds);
  if (weights.size() != assignment.size()) {
    throw std::invalid_argument("uniform_partition_value: size mismatch");
  }
  std::vector<std::int64_t> work(speeds.size(), 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const ProcId q = assignment[i];
    if (q < 0 || static_cast<std::size_t>(q) >= speeds.size()) {
      throw std::invalid_argument("uniform_partition_value: bad processor");
    }
    work[static_cast<std::size_t>(q)] += weights[i];
  }
  Fraction best(0);
  for (std::size_t q = 0; q < work.size(); ++q) {
    best = Fraction::max(best, Fraction(work[q], speeds[q]));
  }
  return best;
}

Fraction uniform_lower_bound(std::span<const std::int64_t> weights,
                             std::span<const std::int64_t> speeds) {
  check_speeds(speeds);
  std::int64_t sum_w = 0;
  std::int64_t max_w = 0;
  for (const std::int64_t w : weights) {
    if (w < 0) throw std::invalid_argument("uniform_lower_bound: negative");
    sum_w += w;
    max_w = std::max(max_w, w);
  }
  std::int64_t sum_s = 0;
  std::int64_t max_s = 0;
  for (const std::int64_t s : speeds) {
    sum_s += s;
    max_s = std::max(max_s, s);
  }
  return Fraction::max(Fraction(sum_w, sum_s), Fraction(max_w, max_s));
}

std::vector<ProcId> uniform_list_assign(std::span<const std::int64_t> weights,
                                        std::span<const std::size_t> order,
                                        std::span<const std::int64_t> speeds) {
  check_speeds(speeds);
  if (order.size() != weights.size()) {
    throw std::invalid_argument("uniform_list_assign: order size mismatch");
  }
  std::vector<std::int64_t> work(speeds.size(), 0);
  std::vector<ProcId> assign(weights.size(), kNoProc);
  for (const std::size_t i : order) {
    // Earliest completion time: minimize (work_q + w) / speed_q exactly.
    std::size_t best = 0;
    for (std::size_t q = 1; q < speeds.size(); ++q) {
      if (ratio_less(work[q] + weights[i], speeds[q],
                     work[best] + weights[i], speeds[best])) {
        best = q;
      }
    }
    assign[i] = static_cast<ProcId>(best);
    work[best] += weights[i];
  }
  return assign;
}

std::vector<ProcId> uniform_lpt_assign(std::span<const std::int64_t> weights,
                                       std::span<const std::int64_t> speeds) {
  const auto order = decreasing_order(weights);
  return uniform_list_assign(weights, order, speeds);
}

}  // namespace storesched
