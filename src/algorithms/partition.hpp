// Minimize-max-subset-sum ("multiprocessor scheduling") algorithms over a
// bare weight vector.
//
// SBO (paper Algorithm 1) runs the *same* makespan algorithm twice -- once
// on processing times p and once on storage sizes s -- because with
// independent tasks "Mmax and Cmax are strictly equivalent and can be
// exchanged" (paper Section 2.1). These routines therefore operate on
// anonymous int64 weights; callers feed p or s as appropriate.
//
// Every routine returns a full assignment weights[i] -> processor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fraction.hpp"
#include "common/types.hpp"

namespace storesched {

/// max(max_i w_i, ceil(sum_i w_i / m)): the Graham lower bound on the
/// optimal max subset sum, in integer form.
std::int64_t partition_lower_bound(std::span<const std::int64_t> weights, int m);

/// Exact (fractional) version: max(max_i w_i, sum_i w_i / m).
Fraction partition_lower_bound_fraction(std::span<const std::int64_t> weights,
                                        int m);

/// Maximum per-processor sum under the given assignment.
std::int64_t partition_value(std::span<const std::int64_t> weights,
                             std::span<const ProcId> assignment, int m);

/// Graham List Scheduling in input order: each weight goes to the currently
/// least-loaded processor. Ratio 2 - 1/m [Graham 1969].
std::vector<ProcId> list_assign(std::span<const std::int64_t> weights, int m);

/// List Scheduling in the order given by `order` (a permutation of indices).
std::vector<ProcId> list_assign_ordered(std::span<const std::int64_t> weights,
                                        std::span<const std::size_t> order,
                                        int m);

/// Longest Processing Time first. Ratio 4/3 - 1/(3m) [Graham 1969].
std::vector<ProcId> lpt_assign(std::span<const std::int64_t> weights, int m);

/// MULTIFIT: binary search on bin capacity with First Fit Decreasing
/// feasibility checks. Ratio 13/11 [Yue 1990]. `iterations` halvings of the
/// capacity interval (default saturates integer precision).
std::vector<ProcId> multifit_assign(std::span<const std::int64_t> weights,
                                    int m, int iterations = 64);

/// Graham's hybrid: the k largest weights are placed optimally (exhaustive
/// search with processor-symmetry breaking), the rest list-scheduled in
/// decreasing order. Ratio 1 + (1 - 1/m) / (1 + floor(k/m)); a PTAS family
/// as k grows [Graham 1969]. Cost grows as ~m^k; keep k modest (<= ~14).
std::vector<ProcId> kopt_assign(std::span<const std::int64_t> weights, int m,
                                int k);

/// Hochbaum-Shmoys dual-approximation PTAS with epsilon = 1/k, k in {2, 3}:
/// binary search on the makespan target T; at each T, weights > T/k are
/// rounded down to multiples of T/k^2 and bin-packed exactly by dynamic
/// programming over size-count states, then small weights are added
/// greedily. Ratio 1 + 1/k [Hochbaum & Shmoys 1987].
/// Throws std::invalid_argument for unsupported k.
std::vector<ProcId> dual_ptas_assign(std::span<const std::int64_t> weights,
                                     int m, int k);

/// Exact optimum by branch and bound over weights in decreasing order, with
/// symmetry breaking and Graham-bound pruning. Exponential worst case;
/// intended for n up to ~30. `node_limit` aborts the search (throws
/// std::runtime_error) as a safety valve.
std::vector<ProcId> exact_bnb_assign(std::span<const std::int64_t> weights,
                                     int m,
                                     std::uint64_t node_limit = 200'000'000);

/// Exact optimum value (no assignment) by bitmask dynamic programming:
/// binary search on capacity, packing feasibility via subset DP.
/// Requires n <= 24.
std::int64_t exact_dp_value(std::span<const std::int64_t> weights, int m);

/// Indices sorted by decreasing weight (ties by index, so deterministic).
std::vector<std::size_t> decreasing_order(std::span<const std::int64_t> weights);
/// Indices sorted by increasing weight (ties by index).
std::vector<std::size_t> increasing_order(std::span<const std::int64_t> weights);

}  // namespace storesched
