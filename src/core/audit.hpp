// Runtime invariant auditor: re-derives every checkable claim a SolveResult
// makes and reports the violations.
//
// The solver families already assert their own theorems in tests, but a
// long-lived serving process needs the *production* path to self-check: a
// race, a bad refactor, or a corrupted extras channel shows up first as a
// result whose claims no longer reproduce from its schedule. audit_schedule()
// recomputes, from the instance and the returned schedule alone:
//
//   * structural validity -- every task on a processor in [0, m), timed
//     schedules overlap-free with non-negative, per-processor monotone
//     start times, precedence edges finish-to-start feasible;
//   * objective recomputation -- the reported (Cmax, Mmax) and sum Ci equal
//     the values measured from the schedule;
//   * claimed value bounds -- Cmax <= cmax_bound, Mmax <= mmax_bound, and
//     the optional memory capacity;
//   * the Delta-precondition ladder for the extras channels (rls.hpp's
//     one-story contract): RLS runs carry Delta > 0, cap = Delta * LB with
//     LB re-derived from the instance, Mmax within cap, and -- for
//     Delta > 1 -- Lemma 4's marked-processor bound; SBO runs carry
//     Delta > 0, ingredient values that reproduce, Properties 1-2 bounds
//     rebuilt from those values, and a routing that matches pi1/pi2;
//   * exact-front results (pareto extras): a strict staircase with every
//     representative schedule reproducing its front point.
//
// Enabled in production via the environment toggle STORESCHED_AUDIT (same
// convention as STORESCHED_RLS_REFERENCE): when set, the non-virtual
// Solver::solve() envelope audits every result of every family -- solver,
// stream, bench, CLI -- and throws std::logic_error on the first violating
// result. Debug CI runs the whole suite with STORESCHED_AUDIT=1.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/instance.hpp"
#include "common/schedule.hpp"
#include "common/types.hpp"

namespace storesched {

struct SolveResult;  // core/solver.hpp

/// Extra context the result struct itself does not carry.
struct AuditOptions {
  /// Hard per-processor capacity the run was solved under (constrained:*
  /// only); enforced as Mmax <= memory_capacity.
  std::optional<Mem> memory_capacity;
};

/// Outcome of one audit: empty means every invariant held.
struct AuditReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// All violations joined with "; " (empty when ok).
  std::string to_string() const;
};

/// Audits `result` (whose schedule is `sched` -- passed separately so
/// callers can audit extras-channel schedules too) against `inst`.
/// Infeasible results are audited lightly: a cause must be present in
/// diagnostics, and an infeasible RLS run must name its stuck task.
/// Never throws; every finding lands in the report.
AuditReport audit_schedule(const Instance& inst, const Schedule& sched,
                           const SolveResult& result,
                           const AuditOptions& options = {});

/// True iff STORESCHED_AUDIT is set (non-empty, not "0") in the
/// environment. Read once per process -- toggling mid-run is not supported
/// (the same contract as the engine A/B toggles).
bool audit_enabled();

}  // namespace storesched
