#include "core/theory.hpp"

#include <stdexcept>

namespace storesched {

namespace {

void require_positive(const Fraction& delta) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("theory: Delta must be > 0");
  }
}

void require_above_two(const Fraction& delta) {
  if (!(Fraction(2) < delta)) {
    throw std::invalid_argument("theory: Delta must be > 2");
  }
}

}  // namespace

Fraction sbo_cmax_ratio(const Fraction& delta, const Fraction& rho1) {
  require_positive(delta);
  return (Fraction(1) + delta) * rho1;
}

Fraction sbo_mmax_ratio(const Fraction& delta, const Fraction& rho2) {
  require_positive(delta);
  return (Fraction(1) + Fraction(1) / delta) * rho2;
}

Fraction rls_cmax_ratio(const Fraction& delta, int m) {
  require_above_two(delta);
  if (m < 1) throw std::invalid_argument("rls_cmax_ratio: m >= 1");
  const Fraction dm2 = delta - Fraction(2);
  return Fraction(2) + Fraction(1) / dm2 -
         (delta - Fraction(1)) / (Fraction(m) * dm2);
}

Fraction rls_mmax_ratio(const Fraction& delta) {
  if (delta < Fraction(2)) {
    throw std::invalid_argument("rls_mmax_ratio: Delta >= 2 required");
  }
  return delta;
}

Fraction rls_sumci_ratio(const Fraction& delta) {
  require_above_two(delta);
  return Fraction(2) + Fraction(1) / (delta - Fraction(2));
}

Fraction spt_restriction_ratio(const Fraction& rho) {
  if (!(Fraction(0) < rho) || Fraction(1) < rho) {
    throw std::invalid_argument("spt_restriction_ratio: rho in (0, 1]");
  }
  return Fraction(1) / rho + Fraction(1);
}

}  // namespace storesched
