#include "core/solver.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/audit.hpp"
#include "core/constrained.hpp"
#include "core/stream.hpp"
#include "core/theory.hpp"
#include "core/triobjective.hpp"

namespace storesched {

namespace {

// ---------------------------------------------------------------------------
// Spec-string plumbing.
// ---------------------------------------------------------------------------

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      return parts;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

[[noreturn]] void bad_spec(const std::string& what, const std::string& token) {
  throw std::invalid_argument("make_solver: " + what + " \"" + token + "\"");
}

Fraction parse_fraction(const std::string& token) {
  const auto parse_int = [&](const std::string& digits) {
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      bad_spec("malformed fraction", token);
    }
    try {
      return std::stoll(digits);
    } catch (const std::exception&) {
      bad_spec("malformed fraction", token);
    }
  };
  const std::size_t slash = token.find('/');
  if (slash == std::string::npos) return Fraction(parse_int(token));
  const std::int64_t den = parse_int(token.substr(slash + 1));
  if (den == 0) bad_spec("malformed fraction", token);
  return Fraction(parse_int(token.substr(0, slash)), den);
}

struct PolicyName {
  const char* spec;
  PriorityPolicy policy;
};

constexpr PolicyName kPolicies[] = {
    {"input", PriorityPolicy::kInputOrder},
    {"spt", PriorityPolicy::kSpt},
    {"lpt", PriorityPolicy::kLpt},
    {"bottom", PriorityPolicy::kBottomLevel},
    {"minstore", PriorityPolicy::kSmallestStorage},
    {"maxstore", PriorityPolicy::kLargestStorage},
};

PriorityPolicy parse_policy(const std::string& token) {
  for (const PolicyName& entry : kPolicies) {
    if (token == entry.spec) return entry.policy;
  }
  bad_spec("unknown tie-break policy", token);
}

std::string policy_spec(PriorityPolicy policy) {
  for (const PolicyName& entry : kPolicies) {
    if (policy == entry.policy) return entry.spec;
  }
  throw std::logic_error("policy_spec: unmapped policy");
}

/// A spec body decomposed into its positional argument and key=value pairs.
struct SpecBody {
  std::string positional;  // empty if the body starts with key=value
  std::vector<std::pair<std::string, std::string>> options;
};

SpecBody parse_body(const std::string& body) {
  SpecBody result;
  if (body.empty()) return result;
  bool first = true;
  for (const std::string& token : split(body, ',')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (!first) bad_spec("expected key=value, got", token);
      result.positional = token;
    } else {
      result.options.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
    first = false;
  }
  return result;
}

/// Pulls the value of `key` out of the option list (erasing it); the caller
/// rejects whatever remains as unknown.
std::optional<std::string> take_option(SpecBody& body, const std::string& key) {
  for (auto it = body.options.begin(); it != body.options.end(); ++it) {
    if (it->first == key) {
      std::string value = it->second;
      body.options.erase(it);
      return value;
    }
  }
  return std::nullopt;
}

void reject_leftovers(const SpecBody& body, const std::string& family) {
  if (!body.options.empty()) {
    bad_spec("unknown option for " + family + " solver",
             body.options.front().first + "=" + body.options.front().second);
  }
}

/// "lpt" or "lpt/multifit" -> validated pair of scheduler spec strings.
std::pair<std::string, std::string> parse_alg_pair(const std::string& token) {
  const std::size_t slash = token.find('/');
  std::string a1 = slash == std::string::npos ? token : token.substr(0, slash);
  std::string a2 = slash == std::string::npos ? a1 : token.substr(slash + 1);
  try {
    make_scheduler(a1);
    make_scheduler(a2);
  } catch (const std::invalid_argument&) {
    bad_spec("unknown ingredient scheduler in", token);
  }
  return {std::move(a1), std::move(a2)};
}

std::string alg_pair_spec(const std::string& a1, const std::string& a2) {
  return a1 == a2 ? a1 : a1 + "/" + a2;
}

/// Shared post-processing: optional validation of a feasible result.
/// `cap` is the memory capacity to enforce -- only constrained solvers
/// pass one (SolveOptions::memory_capacity is ignored by the others, as
/// solver.hpp documents).
void maybe_validate(const Instance& inst, const SolveOptions& options,
                    bool timed, SolveResult& result,
                    std::optional<Mem> cap = std::nullopt) {
  if (!options.validate || !result.feasible) return;
  ValidationOptions vopts;
  vopts.require_timed = timed;
  vopts.memory_cap = cap.value_or(-1);
  const ValidationResult check = validate_schedule(inst, result.schedule, vopts);
  if (!check.ok) {
    result.feasible = false;
    if (!result.diagnostics.empty()) result.diagnostics += "; ";
    result.diagnostics += "validation failed: " + check.error;
  }
}

// ---------------------------------------------------------------------------
// Concrete solvers.
// ---------------------------------------------------------------------------

class SboSolver final : public Solver {
 public:
  SboSolver(std::string alg1, std::string alg2, Fraction delta)
      : alg1_spec_(std::move(alg1)),
        alg2_spec_(std::move(alg2)),
        alg1_(make_scheduler(alg1_spec_)),
        alg2_(make_scheduler(alg2_spec_)),
        delta_(delta) {
    if (!(Fraction(0) < delta_)) {
      throw std::invalid_argument("make_solver: sbo requires delta > 0, got " +
                                  delta_.to_string());
    }
  }

  std::string name() const override {
    return "sbo:" + alg_pair_spec(alg1_spec_, alg2_spec_) +
           ",delta=" + delta_.to_string();
  }

  Capabilities capabilities(int m) const override {
    Capabilities caps;
    caps.cmax_ratio = sbo_cmax_ratio(delta_, alg1_->ratio(m));
    caps.mmax_ratio = sbo_mmax_ratio(delta_, alg2_->ratio(m));
    return caps;
  }

  SolveResult do_solve(const Instance& inst,
                       const SolveOptions& options) const override {
    return result_from_run(inst, delta_,
                           sbo_schedule(inst, delta_, *alg1_, *alg2_),
                           options);
  }

  ApproxFront delta_sweep(const Instance& inst,
                          std::span<const Fraction> grid) const override {
    // sbo_sweep hoists the ingredient schedules out of the grid loop.
    return sbo_sweep(inst, *alg1_, *alg2_, grid);
  }

 private:
  SolveResult result_from_run(const Instance& inst, const Fraction& delta,
                              SboResult run,
                              const SolveOptions& options) const {
    SolveResult result;
    result.delta = delta;
    result.feasible = true;
    result.objectives = objectives(inst, run.schedule);
    result.cmax_bound = run.cmax_bound;
    result.mmax_bound = run.mmax_bound;
    result.cmax_ratio = sbo_cmax_ratio(delta, alg1_->ratio(inst.m()));
    result.mmax_ratio = sbo_mmax_ratio(delta, alg2_->ratio(inst.m()));
    result.schedule = run.schedule;
    result.sbo = std::move(run);
    maybe_validate(inst, options, /*timed=*/false, result);
    return result;
  }

  std::string alg1_spec_;
  std::string alg2_spec_;
  std::unique_ptr<MakespanScheduler> alg1_;
  std::unique_ptr<MakespanScheduler> alg2_;
  Fraction delta_;
};

/// Fills the shared RLS-family fields of a SolveResult from an RlsResult.
/// The run itself needs only Delta > 0; the Corollary 2-3 guarantees (and
/// provable feasibility) start strictly above Delta = 2, so below that the
/// result carries a diagnostics note instead of ratios.
void fill_from_rls(const Instance& inst, const Fraction& delta, RlsResult run,
                   SolveResult& result) {
  result.delta = delta;
  result.feasible = run.feasible;
  if (run.feasible) {
    result.objectives = objectives(inst, run.schedule);
    result.sum_ci = sum_completion_times(inst, run.schedule);
    result.mmax_bound = run.cap;  // budget enforced by construction
    result.schedule = run.schedule;
  } else {
    result.diagnostics =
        "infeasible: task " +
        std::to_string(run.stuck_task.value_or(-1)) +
        " fits on no processor under memory budget " + run.cap.to_string();
  }
  if (Fraction(2) < delta) {
    result.cmax_ratio = rls_cmax_ratio(delta, inst.m());
    result.mmax_ratio = rls_mmax_ratio(delta);
  } else {
    if (!result.diagnostics.empty()) result.diagnostics += "; ";
    result.diagnostics += "Delta = " + delta.to_string() +
                          " <= 2: outside the Corollary 2-3 guarantee zone "
                          "(the run itself requires only Delta > 0)";
  }
  result.rls = std::move(run);
}

class RlsSolver final : public Solver {
 public:
  RlsSolver(PriorityPolicy tie_break, Fraction delta)
      : tie_break_(tie_break), delta_(delta) {
    if (!(Fraction(0) < delta_)) {
      throw std::invalid_argument("make_solver: rls requires delta > 0, got " +
                                  delta_.to_string());
    }
  }

  std::string name() const override {
    return "rls:" + policy_spec(tie_break_) + ",delta=" + delta_.to_string();
  }

  Capabilities capabilities(int m) const override {
    Capabilities caps;
    caps.supports_precedence = true;
    caps.timed_output = true;
    caps.produces_sum_ci = true;
    if (Fraction(2) < delta_) {
      caps.cmax_ratio = rls_cmax_ratio(delta_, m);
      caps.mmax_ratio = rls_mmax_ratio(delta_);
    }
    return caps;
  }

  SolveResult do_solve(const Instance& inst,
                       const SolveOptions& options) const override {
    SolveResult result;
    fill_from_rls(inst, delta_, rls_schedule(inst, delta_, tie_break_), result);
    maybe_validate(inst, options, /*timed=*/true, result);
    return result;
  }

  ApproxFront delta_sweep(const Instance& inst,
                          std::span<const Fraction> grid) const override {
    return sweep_delta_grid(inst, grid, [&](const Fraction& delta) {
      RlsResult run = rls_schedule(inst, delta, tie_break_);
      if (!run.feasible) return std::optional<Schedule>();
      return std::optional<Schedule>(std::move(run.schedule));
    });
  }

 private:
  PriorityPolicy tie_break_;
  Fraction delta_;
};

class TriSolver final : public Solver {
 public:
  explicit TriSolver(Fraction delta) : delta_(delta) {
    if (!(Fraction(0) < delta_)) {
      throw std::invalid_argument("make_solver: tri requires delta > 0, got " +
                                  delta_.to_string());
    }
  }

  std::string name() const override {
    return "tri:spt,delta=" + delta_.to_string();
  }

  Capabilities capabilities(int m) const override {
    Capabilities caps;
    caps.timed_output = true;
    caps.produces_sum_ci = true;
    if (Fraction(2) < delta_) {
      caps.cmax_ratio = rls_cmax_ratio(delta_, m);
      caps.mmax_ratio = rls_mmax_ratio(delta_);
      caps.sumci_ratio = rls_sumci_ratio(delta_);
    }
    return caps;
  }

  SolveResult do_solve(const Instance& inst,
                       const SolveOptions& options) const override {
    // tri_objective_schedule() throws std::logic_error on precedence
    // instances, honoring supports_precedence = false.
    TriObjectiveResult run = tri_objective_schedule(inst, delta_);
    SolveResult result;
    fill_from_rls(inst, delta_, std::move(run.rls), result);
    if (result.feasible && Fraction(2) < delta_) {
      result.sumci_ratio = run.sumci_ratio;
    }
    maybe_validate(inst, options, /*timed=*/true, result);
    return result;
  }

  ApproxFront delta_sweep(const Instance& inst,
                          std::span<const Fraction> grid) const override {
    return sweep_delta_grid(inst, grid, [&](const Fraction& delta) {
      TriObjectiveResult run = tri_objective_schedule(inst, delta);
      if (!run.rls.feasible) return std::optional<Schedule>();
      return std::optional<Schedule>(std::move(run.rls.schedule));
    });
  }

 private:
  Fraction delta_;
};

Mem require_capacity(const SolveOptions& options, const std::string& who) {
  if (!options.memory_capacity) {
    throw std::invalid_argument(
        who + ": SolveOptions::memory_capacity is required");
  }
  return *options.memory_capacity;
}

void fill_from_constrained(const Instance& inst, Mem capacity,
                           ConstrainedResult run, SolveResult& result) {
  result.delta = run.delta_used;
  result.feasible = run.feasible;
  result.cmax_ratio = run.cmax_ratio;
  if (run.feasible) {
    result.objectives = run.objectives;
    result.mmax_bound = Fraction(capacity);
    result.mmax_ratio = inst.storage_lower_bound_fraction() == Fraction(0)
                            ? std::optional<Fraction>{}
                            : Fraction(capacity) /
                                  inst.storage_lower_bound_fraction();
    result.schedule = std::move(run.schedule);
  } else {
    result.diagnostics = "infeasible: no schedule found under capacity " +
                         std::to_string(capacity);
  }
}

class ConstrainedRlsSolver final : public Solver {
 public:
  explicit ConstrainedRlsSolver(PriorityPolicy tie_break)
      : tie_break_(tie_break) {}

  std::string name() const override {
    return "constrained:rls,tiebreak=" + policy_spec(tie_break_);
  }

  Capabilities capabilities(int) const override {
    Capabilities caps;
    caps.supports_precedence = true;
    caps.timed_output = true;
    caps.produces_sum_ci = true;
    caps.needs_capacity = true;
    return caps;
  }

  SolveResult do_solve(const Instance& inst,
                       const SolveOptions& options) const override {
    const Mem capacity = require_capacity(options, "constrained:rls");
    SolveResult result;
    fill_from_constrained(inst, capacity,
                          solve_constrained_rls(inst, capacity, tie_break_),
                          result);
    if (result.feasible) {
      result.sum_ci = sum_completion_times(inst, result.schedule);
    }
    maybe_validate(inst, options, /*timed=*/true, result, capacity);
    return result;
  }

 private:
  PriorityPolicy tie_break_;
};

class ConstrainedSboSolver final : public Solver {
 public:
  ConstrainedSboSolver(std::string alg1, std::string alg2, int refinements)
      : alg1_spec_(std::move(alg1)),
        alg2_spec_(std::move(alg2)),
        alg1_(make_scheduler(alg1_spec_)),
        alg2_(make_scheduler(alg2_spec_)),
        refinements_(refinements) {
    if (refinements_ < 0) {
      throw std::invalid_argument(
          "make_solver: constrained:sbo requires refinements >= 0, got " +
          std::to_string(refinements_));
    }
  }

  std::string name() const override {
    return "constrained:sbo,alg=" + alg_pair_spec(alg1_spec_, alg2_spec_) +
           ",refinements=" + std::to_string(refinements_);
  }

  Capabilities capabilities(int) const override {
    Capabilities caps;
    caps.needs_capacity = true;
    return caps;
  }

  SolveResult do_solve(const Instance& inst,
                       const SolveOptions& options) const override {
    const Mem capacity = require_capacity(options, "constrained:sbo");
    SolveResult result;
    fill_from_constrained(
        inst, capacity,
        solve_constrained_sbo(inst, capacity, *alg1_, *alg2_, refinements_),
        result);
    maybe_validate(inst, options, /*timed=*/false, result, capacity);
    return result;
  }

 private:
  std::string alg1_spec_;
  std::string alg2_spec_;
  std::unique_ptr<MakespanScheduler> alg1_;
  std::unique_ptr<MakespanScheduler> alg2_;
  int refinements_;
};

class ParetoExactSolver final : public Solver {
 public:
  explicit ParetoExactSolver(std::uint64_t limit) : limit_(limit) {}

  std::string name() const override {
    if (limit_ == kParetoEnumDefaultLimit) return "pareto:exact";
    return "pareto:exact,limit=" + std::to_string(limit_);
  }

  Capabilities capabilities(int) const override {
    Capabilities caps;
    caps.exact_front = true;
    // Ratios describe the *returned schedule* (the Cmax-optimal front
    // end), so only cmax_ratio is claimed. The Mmax-optimal end -- and
    // every other exact trade-off -- rides in SolveResult::pareto; no
    // single returned schedule can promise both.
    caps.cmax_ratio = Fraction(1);
    return caps;
  }

  SolveResult do_solve(const Instance& inst,
                       const SolveOptions& options) const override {
    // enumerate_pareto honors STORESCHED_PARETO_REFERENCE (A/B debugging)
    // and throws std::logic_error on precedence instances, honoring
    // supports_precedence = false.
    ParetoEnumResult run = enumerate_pareto(inst, limit_);
    SolveResult result;
    result.feasible = true;
    // The returned schedule is the Cmax-optimal front end; the whole
    // trade-off menu rides in the extras channel.
    const auto& best = run.front.front();
    result.schedule = run.schedules[static_cast<std::size_t>(best.tag)];
    result.objectives = best.value;
    result.cmax_ratio = Fraction(1);  // the representative is Cmax-optimal
    result.diagnostics = "exact front with " +
                         std::to_string(run.front.size()) +
                         " points in SolveResult::pareto";
    result.pareto = std::move(run);
    maybe_validate(inst, options, /*timed=*/false, result);
    return result;
  }

 private:
  std::uint64_t limit_;
};

class GrahamSolver final : public Solver {
 public:
  explicit GrahamSolver(PriorityPolicy policy) : policy_(policy) {}

  std::string name() const override {
    return "graham:" + policy_spec(policy_);
  }

  Capabilities capabilities(int m) const override {
    Capabilities caps;
    caps.supports_precedence = true;
    caps.timed_output = true;
    caps.produces_sum_ci = true;
    caps.cmax_ratio = Fraction(2 * m - 1, m);  // memory-blind: no mmax ratio
    return caps;
  }

  SolveResult do_solve(const Instance& inst,
                       const SolveOptions& options) const override {
    SolveResult result;
    result.feasible = true;
    result.schedule = graham_list_schedule(inst, policy_);
    result.objectives = objectives(inst, result.schedule);
    result.sum_ci = sum_completion_times(inst, result.schedule);
    result.cmax_ratio = capabilities(inst.m()).cmax_ratio;
    maybe_validate(inst, options, /*timed=*/true, result);
    return result;
  }

 private:
  PriorityPolicy policy_;
};

// ---------------------------------------------------------------------------
// Family dispatch.
// ---------------------------------------------------------------------------

Fraction take_delta(SpecBody& body, const Fraction& fallback) {
  const std::optional<std::string> raw = take_option(body, "delta");
  return raw ? parse_fraction(*raw) : fallback;
}

std::unique_ptr<Solver> build_solver(const std::string& family,
                                     SpecBody body) {
  if (family == "sbo") {
    auto [a1, a2] =
        parse_alg_pair(body.positional.empty() ? "lpt" : body.positional);
    const Fraction delta = take_delta(body, Fraction(1));
    reject_leftovers(body, family);
    return std::make_unique<SboSolver>(std::move(a1), std::move(a2), delta);
  }
  if (family == "rls") {
    const PriorityPolicy policy =
        parse_policy(body.positional.empty() ? "input" : body.positional);
    const Fraction delta = take_delta(body, Fraction(3));
    reject_leftovers(body, family);
    return std::make_unique<RlsSolver>(policy, delta);
  }
  if (family == "tri") {
    if (!body.positional.empty() && body.positional != "spt") {
      bad_spec("tri solver only supports the spt order, got", body.positional);
    }
    const Fraction delta = take_delta(body, Fraction(3));
    reject_leftovers(body, family);
    return std::make_unique<TriSolver>(delta);
  }
  if (family == "constrained") {
    if (body.positional == "rls") {
      const std::optional<std::string> tb = take_option(body, "tiebreak");
      const PriorityPolicy policy = parse_policy(tb.value_or("input"));
      reject_leftovers(body, family);
      return std::make_unique<ConstrainedRlsSolver>(policy);
    }
    if (body.positional == "sbo") {
      const std::optional<std::string> alg = take_option(body, "alg");
      auto [a1, a2] = parse_alg_pair(alg.value_or("lpt"));
      const std::optional<std::string> refine =
          take_option(body, "refinements");
      int refinements = 16;
      if (refine) {
        if (refine->empty() ||
            refine->find_first_not_of("0123456789") != std::string::npos) {
          bad_spec("malformed refinements value", *refine);
        }
        try {
          refinements = std::stoi(*refine);
        } catch (const std::exception&) {
          bad_spec("malformed refinements value", *refine);
        }
      }
      reject_leftovers(body, family);
      return std::make_unique<ConstrainedSboSolver>(std::move(a1),
                                                    std::move(a2), refinements);
    }
    bad_spec("constrained solver needs a driver (rls or sbo), got",
             body.positional);
  }
  if (family == "graham") {
    const PriorityPolicy policy =
        parse_policy(body.positional.empty() ? "input" : body.positional);
    reject_leftovers(body, family);
    return std::make_unique<GrahamSolver>(policy);
  }
  if (family == "pareto") {
    if (!body.positional.empty() && body.positional != "exact") {
      bad_spec("pareto solver only supports exact enumeration, got",
               body.positional);
    }
    std::uint64_t limit = kParetoEnumDefaultLimit;
    if (const std::optional<std::string> raw = take_option(body, "limit")) {
      if (raw->empty() ||
          raw->find_first_not_of("0123456789") != std::string::npos) {
        bad_spec("malformed limit value", *raw);
      }
      try {
        limit = std::stoull(*raw);
      } catch (const std::exception&) {
        bad_spec("malformed limit value", *raw);
      }
      if (limit == 0) bad_spec("malformed limit value", *raw);
    }
    reject_leftovers(body, family);
    return std::make_unique<ParetoExactSolver>(limit);
  }
  bad_spec("unknown solver family", family);
}

// ---------------------------------------------------------------------------
// The fallback ladder (graceful degradation).
// ---------------------------------------------------------------------------

/// `fallback:SPEC;SPEC[;...]` -- tries each rung in order and hands over on
/// exception, infeasibility, or exhausted deadline budget; the final rung
/// runs deadline-free so the ladder always answers. See the solver.hpp
/// grammar table.
class FallbackSolver final : public Solver {
 public:
  explicit FallbackSolver(std::vector<std::unique_ptr<Solver>> rungs)
      : rungs_(std::move(rungs)) {}

  std::string name() const override {
    std::string out = "fallback:";
    for (std::size_t i = 0; i < rungs_.size(); ++i) {
      if (i != 0) out += ';';
      out += rungs_[i]->name();
    }
    return out;
  }

  Capabilities capabilities(int m) const override {
    // The final rung is the anchor that guarantees an answer, so instance
    // support and the capacity requirement are its. Output-quality flags
    // hold only when every rung provides them (any rung may answer). No
    // ratio promises: the ratios depend on which rung answers, and each
    // SolveResult carries its own.
    Capabilities caps = rungs_.back()->capabilities(m);
    caps.cmax_ratio.reset();
    caps.mmax_ratio.reset();
    caps.sumci_ratio.reset();
    for (const std::unique_ptr<Solver>& rung : rungs_) {
      const Capabilities rc = rung->capabilities(m);
      caps.timed_output = caps.timed_output && rc.timed_output;
      caps.produces_sum_ci = caps.produces_sum_ci && rc.produces_sum_ci;
      caps.exact_front = caps.exact_front && rc.exact_front;
    }
    return caps;
  }

 protected:
  bool manages_deadline() const override { return true; }

  SolveResult do_solve(const Instance& inst,
                       const SolveOptions& options) const override {
    const auto start = std::chrono::steady_clock::now();
    std::string trail;  // why each skipped rung did not answer
    const auto note = [&](std::size_t i, const std::string& why) {
      if (!trail.empty()) trail += "; ";
      trail += "rung " + std::to_string(i + 1) + " (" + rungs_[i]->name() +
               ") " + why;
    };

    for (std::size_t i = 0; i < rungs_.size(); ++i) {
      const bool last = i + 1 == rungs_.size();
      SolveOptions sub = options;
      if (last) {
        // The anchor answers unconditionally: its own envelope must not
        // demote the only answer the caller is still going to get.
        sub.deadline.reset();
      } else if (options.deadline) {
        const auto remaining =
            *options.deadline - (std::chrono::steady_clock::now() - start);
        if (remaining <= std::chrono::nanoseconds::zero()) {
          note(i, "skipped: deadline budget exhausted");
          continue;
        }
        sub.deadline = remaining;
      }

      SolveResult result;
      try {
        // The rung's full public envelope runs here, so its deadline
        // demotion is exactly the hand-over trigger.
        result = rungs_[i]->solve(inst, sub);
      } catch (const std::exception& e) {
        if (last) throw;  // nothing further to degrade to
        note(i, std::string("threw: ") + e.what());
        continue;
      }
      const bool cancelled = options.cancel && options.cancel->cancelled();
      if (!result.feasible && !last && !cancelled) {
        note(i, "infeasible" + (result.diagnostics.empty()
                                    ? std::string()
                                    : ": " + result.diagnostics));
        continue;
      }
      // This rung answered (or cancellation made descending pointless).
      if (!result.diagnostics.empty()) result.diagnostics += "; ";
      result.diagnostics += "fallback: answered by rung " +
                            std::to_string(i + 1) + "/" +
                            std::to_string(rungs_.size()) + " (" +
                            rungs_[i]->name() + ")";
      if (!trail.empty()) result.diagnostics += "; " + trail;
      return result;
    }
    throw std::logic_error("fallback: empty ladder");  // ctor guards >= 2
  }

 private:
  std::vector<std::unique_ptr<Solver>> rungs_;
};

/// Builds the ladder from the raw spec body (everything after "fallback:").
/// Bypasses parse_body(): rung specs contain the ','/'=' characters the
/// ordinary body grammar would mangle, so the only separator here is ';'.
std::unique_ptr<Solver> make_fallback_solver(const std::string& body) {
  const std::vector<std::string> rung_specs = split(body, ';');
  if (rung_specs.size() < 2) {
    bad_spec("fallback needs at least two ';'-separated rungs, got", body);
  }
  std::vector<std::unique_ptr<Solver>> rungs;
  rungs.reserve(rung_specs.size());
  for (const std::string& spec : rung_specs) {
    if (spec.empty()) bad_spec("empty rung in fallback spec", body);
    if (spec.substr(0, spec.find(':')) == "fallback") {
      bad_spec("fallback rungs cannot nest", spec);
    }
    rungs.push_back(make_solver(spec));
  }
  return std::make_unique<FallbackSolver>(std::move(rungs));
}

}  // namespace

SolveResult Solver::solve(const Instance& inst,
                          const SolveOptions& options) const {
  if (options.cancel && options.cancel->cancelled()) {
    SolveResult result;
    result.diagnostics = "cancelled before solve";
    return result;
  }

  SolveResult result;
  if (!options.deadline || manages_deadline()) {
    result = do_solve(inst, options);
  } else {
    const auto start = std::chrono::steady_clock::now();
    result = do_solve(inst, options);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (elapsed > *options.deadline) {
      result.feasible = false;
      if (!result.diagnostics.empty()) result.diagnostics += "; ";
      result.diagnostics +=
          "deadline exceeded: solve took " +
          std::to_string(
              std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                  .count()) +
          " us against a budget of " +
          std::to_string(std::chrono::duration_cast<std::chrono::microseconds>(
                             *options.deadline)
                             .count()) +
          " us";
    }
  }

  // STORESCHED_AUDIT: re-derive every checkable claim of every result that
  // leaves the envelope -- all families, all call sites (direct, batch,
  // stream, CLI). A violation is a library bug, never a data error, so it
  // throws instead of degrading the result.
  if (audit_enabled()) {
    AuditOptions audit_options;
    if (options.memory_capacity && capabilities(inst.m()).needs_capacity) {
      audit_options.memory_capacity = options.memory_capacity;
    }
    const AuditReport report =
        audit_schedule(inst, result.schedule, result, audit_options);
    if (!report.ok()) {
      throw std::logic_error("STORESCHED_AUDIT: " + name() +
                             " produced an invalid result: " +
                             report.to_string());
    }
  }
  return result;
}

ApproxFront Solver::delta_sweep(const Instance&,
                                std::span<const Fraction>) const {
  const std::string canonical = name();
  const std::string family = canonical.substr(0, canonical.find(':'));
  throw std::invalid_argument("front: solver family \"" + family +
                              "\" has no Delta knob");
}

std::unique_ptr<Solver> make_solver(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string family =
      colon == std::string::npos ? spec : spec.substr(0, colon);
  const std::string body =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  // The fallback body is a ';'-separated list of whole specs -- it gets its
  // own parser instead of the positional/key=value body grammar.
  if (family == "fallback") return make_fallback_solver(body);
  return build_solver(family, parse_body(body));
}

std::vector<std::string> registered_solver_specs() {
  std::vector<std::string> specs;
  for (const char* alg :
       {"ls", "lpt", "multifit", "kopt8", "ptas2", "ptas3", "exact"}) {
    specs.push_back("sbo:" + std::string(alg) + ",delta=1");
  }
  for (const PolicyName& entry : kPolicies) {
    specs.push_back("rls:" + std::string(entry.spec) + ",delta=3");
  }
  specs.push_back("tri:spt,delta=3");
  for (const PolicyName& entry : kPolicies) {
    specs.push_back("constrained:rls,tiebreak=" + std::string(entry.spec));
  }
  specs.push_back("constrained:sbo,alg=lpt,refinements=16");
  for (const PolicyName& entry : kPolicies) {
    specs.push_back("graham:" + std::string(entry.spec));
  }
  specs.push_back("pareto:exact");
  specs.push_back("fallback:pareto:exact;sbo:lpt,delta=1");
  return specs;
}

std::vector<SolveResult> solve_batch(const Solver& solver,
                                     std::span<const Instance> instances,
                                     const SolveOptions& options,
                                     const BatchOptions& batch) {
  std::vector<SolveResult> results(instances.size());
  if (instances.empty()) return results;
  SpanSource source(instances);
  VectorSink sink(results);
  StreamOptions stream;
  stream.threads = batch.threads;
  // The whole batch is in memory already and VectorSink stores by index,
  // so backpressure and reordering would only add latency: window = batch.
  stream.window = instances.size();
  stream.ordered = false;
  solve_stream(solver, source, sink, options, stream);
  return results;
}

std::vector<SolveResult> solve_batch(const std::string& spec,
                                     std::span<const Instance> instances,
                                     const SolveOptions& options,
                                     const BatchOptions& batch) {
  return solve_batch(*make_solver(spec), instances, options, batch);
}

ApproxFront front(const Instance& inst, const std::string& solver_spec,
                  std::span<const Fraction> grid) {
  // Delta-tunable solvers override delta_sweep() (SBO reusing its
  // ingredient schedules across the grid); knob-less families throw there.
  return make_solver(solver_spec)->delta_sweep(inst, grid);
}

}  // namespace storesched
