#include "core/constrained.hpp"

#include <stdexcept>

#include "core/theory.hpp"

namespace storesched {

ConstrainedResult solve_constrained_rls(const Instance& inst, Mem capacity,
                                        PriorityPolicy tie_break) {
  if (capacity < 0) {
    throw std::invalid_argument("solve_constrained_rls: negative capacity");
  }
  ConstrainedResult result;

  const Fraction lb = inst.storage_lower_bound_fraction();
  if (capacity < inst.max_s()) {
    // Some single task exceeds the budget: definitively infeasible.
    result.delta_used = Fraction(0);
    return result;
  }
  if (lb == Fraction(0)) {
    // No storage demand at all: plain list scheduling satisfies any budget.
    Schedule sched = graham_list_schedule(inst, tie_break);
    result.feasible = true;
    result.objectives = objectives(inst, sched);
    result.schedule = std::move(sched);
    result.delta_used = Fraction(1);
    result.cmax_ratio = Fraction(2 * inst.m() - 1, inst.m());
    return result;
  }

  // Delta = capacity / LB, so the RLS budget Delta * LB == capacity exactly.
  const Fraction delta = Fraction(capacity) / lb;
  result.delta_used = delta;
  RlsResult rls = rls_schedule(inst, delta, tie_break);
  if (!rls.feasible) return result;

  result.feasible = true;
  result.objectives = objectives(inst, rls.schedule);
  result.schedule = std::move(rls.schedule);
  if (Fraction(2) < delta) {
    result.cmax_ratio = rls_cmax_ratio(delta, inst.m());
  }
  return result;
}

ConstrainedResult solve_constrained_sbo(const Instance& inst, Mem capacity,
                                        const MakespanScheduler& alg1,
                                        const MakespanScheduler& alg2,
                                        int refinements) {
  if (inst.has_precedence()) {
    throw std::logic_error("solve_constrained_sbo: independent tasks only");
  }
  if (capacity < 0) {
    throw std::invalid_argument("solve_constrained_sbo: negative capacity");
  }
  if (refinements < 0) {
    throw std::invalid_argument("solve_constrained_sbo: refinements >= 0");
  }

  ConstrainedResult result;

  // Probe one SBO run; keep it if it is capacity-feasible and improves.
  const auto probe = [&](const Fraction& delta) {
    const SboResult run = sbo_schedule(inst, delta, alg1, alg2);
    const ObjectivePoint point = objectives(inst, run.schedule);
    if (point.mmax > capacity) return;
    if (!result.feasible || point.cmax < result.objectives.cmax) {
      result.feasible = true;
      result.objectives = point;
      result.schedule = run.schedule;
      result.delta_used = delta;
      result.cmax_ratio = (Fraction(1) + delta) * alg1.ratio(inst.m());
    }
  };

  // The memory-oriented ingredient alone is the most capacity-friendly
  // schedule we can produce; if even it busts the budget, give up (tiny
  // Delta routes everything to pi_2 anyway).
  std::vector<std::int64_t> s_weights;
  s_weights.reserve(inst.n());
  for (const Task& t : inst.tasks()) s_weights.push_back(t.s);
  const auto pi2_assign = alg2.assign(s_weights, inst.m());
  const std::int64_t pi2_mmax =
      partition_value(s_weights, pi2_assign, inst.m());
  if (pi2_mmax > capacity) {
    result.delta_used = Fraction(0);
    return result;
  }

  // Guaranteed parameter: (1 + 1/Delta) M <= capacity, i.e.
  // Delta >= M / (capacity - M); only available when capacity > M.
  if (pi2_mmax > 0 && capacity > pi2_mmax) {
    probe(Fraction(pi2_mmax, capacity - pi2_mmax));
  }
  // Paper's refinement: walk the parameter geometrically in both
  // directions from the guaranteed point, keeping the best feasible run.
  Fraction delta = result.feasible ? result.delta_used : Fraction(1);
  Fraction up = delta;
  Fraction down = delta;
  for (int step = 0; step < refinements; ++step) {
    up = up * Fraction(2);
    down = down * Fraction(1, 2);
    probe(up);
    probe(down);
  }
  return result;
}

}  // namespace storesched
