#include "core/constrained.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/theory.hpp"

namespace storesched {

ConstrainedResult solve_constrained_rls(const Instance& inst, Mem capacity,
                                        PriorityPolicy tie_break) {
  if (capacity < 0) {
    throw std::invalid_argument("solve_constrained_rls: negative capacity");
  }
  ConstrainedResult result;

  const Fraction lb = inst.storage_lower_bound_fraction();
  if (capacity < inst.max_s()) {
    // Some single task exceeds the budget: definitively infeasible.
    result.delta_used = Fraction(0);
    return result;
  }
  if (lb == Fraction(0)) {
    // No storage demand at all: plain list scheduling satisfies any budget.
    Schedule sched = graham_list_schedule(inst, tie_break);
    result.feasible = true;
    result.objectives = objectives(inst, sched);
    result.schedule = std::move(sched);
    result.delta_used = Fraction(1);
    result.cmax_ratio = Fraction(2 * inst.m() - 1, inst.m());
    return result;
  }

  // Delta = capacity / LB, so the RLS budget Delta * LB == capacity exactly.
  const Fraction delta = Fraction(capacity) / lb;
  result.delta_used = delta;
  RlsResult rls = rls_schedule(inst, delta, tie_break);
  if (!rls.feasible) return result;

  result.feasible = true;
  result.objectives = objectives(inst, rls.schedule);
  result.schedule = std::move(rls.schedule);
  if (Fraction(2) < delta) {
    result.cmax_ratio = rls_cmax_ratio(delta, inst.m());
  }
  return result;
}

ConstrainedResult solve_constrained_sbo(const Instance& inst, Mem capacity,
                                        const MakespanScheduler& alg1,
                                        const MakespanScheduler& alg2,
                                        int refinements) {
  if (inst.has_precedence()) {
    throw std::logic_error("solve_constrained_sbo: independent tasks only");
  }
  if (capacity < 0) {
    throw std::invalid_argument("solve_constrained_sbo: negative capacity");
  }
  if (refinements < 0) {
    throw std::invalid_argument("solve_constrained_sbo: refinements >= 0");
  }

  ConstrainedResult result;

  // The Delta-independent ingredient schedules are computed once; every
  // probe below is only the O(n) threshold re-route (mirroring front()'s
  // ingredient-reuse sweep).
  const SboIngredients ing = sbo_ingredients(inst, alg1, alg2);
  const Time c_ing = ing.c_ingredient;
  const Mem m_ing = ing.m_ingredient;

  // The memory-oriented ingredient alone is the most capacity-friendly
  // schedule SBO can produce (every Delta above the last routing
  // breakpoint yields exactly pi_2); if even it busts the budget, give up.
  if (m_ing > capacity) {
    result.delta_used = Fraction(0);
    return result;
  }

  // Probe one routing; keep it if it is capacity-feasible and improves.
  // Returns the feasibility verdict so the binary search below can steer.
  const auto probe = [&](const Fraction& delta) {
    const Schedule sched = sbo_route(inst, ing, delta);
    const ObjectivePoint point = objectives(inst, sched);
    if (point.mmax > capacity) return false;
    if (!result.feasible || point.cmax < result.objectives.cmax) {
      result.feasible = true;
      result.objectives = point;
      result.schedule = sched;
      result.delta_used = delta;
      result.cmax_ratio = (Fraction(1) + delta) * alg1.ratio(inst.m());
    }
    return true;
  };

  // Guaranteed parameter: (1 + 1/Delta) M <= capacity, i.e.
  // Delta >= M / (capacity - M); only available when capacity > M.
  if (m_ing > 0 && capacity > m_ing) {
    probe(Fraction(m_ing, capacity - m_ing));
  }

  // The routing changes only at the task breakpoints
  // Delta_i = p_i M / (s_i C) (task i joins pi_2 for Delta > Delta_i), so
  // the paper's "binary search on the parameter" runs over the sorted
  // distinct breakpoints. Measured Mmax-feasibility is NOT monotone in
  // Delta -- the search is the paper's heuristic refinement ("tentatively
  // improved"), bracketed by the guaranteed parameter above and the
  // always-feasible pi_2 end below. `refinements` caps the probe count.
  std::vector<Fraction> cuts;
  if (c_ing > 0 && m_ing > 0) {
    cuts.reserve(inst.n());
    for (const Task& t : inst.tasks()) {
      if (t.p <= 0 || t.s <= 0) continue;
      cuts.push_back(Fraction(t.p) * Fraction(m_ing) /
                     (Fraction(t.s) * Fraction(c_ing)));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  }
  // Any value above every breakpoint routes exactly pi_2 (computed
  // regardless of `refinements`: the fallback below relies on it).
  const Fraction past_last =
      cuts.empty() ? Fraction(1) : cuts.back() + Fraction(1);
  if (refinements > 0 && !cuts.empty()) {
    cuts.push_back(past_last);
    int lo = 0;
    int hi = static_cast<int>(cuts.size()) - 1;
    int probes_left = refinements;
    while (lo <= hi && probes_left-- > 0) {
      const int mid = lo + (hi - lo) / 2;
      if (probe(cuts[static_cast<std::size_t>(mid)])) {
        hi = mid - 1;  // feasible: push toward fewer pi_2 routings
      } else {
        lo = mid + 1;
      }
    }
  }

  // Fallback: past the last breakpoint the routing is exactly pi_2, whose
  // Mmax is m_ing <= capacity, so a feasible schedule always exists here
  // (the seed's geometric walk could miss it, e.g. at capacity == M).
  if (!result.feasible) probe(past_last);
  return result;
}

}  // namespace storesched
