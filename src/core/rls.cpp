#include "core/rls.hpp"

#include <limits>
#include <stdexcept>

namespace storesched {

std::int64_t rls_marked_bound(const Fraction& delta, int m) {
  if (!(Fraction(1) < delta)) {
    throw std::invalid_argument("rls_marked_bound: Delta > 1 required");
  }
  return (Fraction(m) / (delta - Fraction(1))).floor();
}

RlsResult rls_schedule(const Instance& inst, const Fraction& delta,
                       PriorityPolicy tie_break) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("rls_schedule: Delta must be > 0");
  }

  RlsResult result;
  result.lb = inst.storage_lower_bound_fraction();
  result.cap = delta * result.lb;
  result.marked.assign(static_cast<std::size_t>(inst.m()), false);
  result.schedule = Schedule(inst);

  const std::vector<TaskId> order = priority_order(inst, tie_break);
  std::vector<std::size_t> rank(inst.n());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rank[static_cast<std::size_t>(order[pos])] = pos;
  }

  std::vector<Time> load(static_cast<std::size_t>(inst.m()), 0);
  std::vector<Mem> memsize(static_cast<std::size_t>(inst.m()), 0);
  std::vector<bool> scheduled(inst.n(), false);
  // Number of not-yet-scheduled predecessors; a task is "ready" once every
  // predecessor has been placed (its sigma is then known).
  std::vector<std::size_t> missing_preds(inst.n(), 0);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    missing_preds[static_cast<std::size_t>(i)] =
        inst.has_precedence() ? inst.dag().in_degree(i) : 0;
  }

  for (std::size_t step = 0; step < inst.n(); ++step) {
    // Scan every ready task; compute its best processor and earliest start.
    TaskId best_task = -1;
    ProcId best_proc = kNoProc;
    Time best_ready = std::numeric_limits<Time>::max();

    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      if (scheduled[static_cast<std::size_t>(i)]) continue;
      if (missing_preds[static_cast<std::size_t>(i)] != 0) continue;

      // Least-loaded processor within the memory budget (ties: lowest id).
      ProcId chosen = kNoProc;
      for (ProcId q = 0; q < inst.m(); ++q) {
        if (Fraction(memsize[static_cast<std::size_t>(q)] + inst.task(i).s) >
            result.cap) {
          continue;
        }
        if (chosen == kNoProc ||
            load[static_cast<std::size_t>(q)] <
                load[static_cast<std::size_t>(chosen)]) {
          chosen = q;
        }
      }
      if (chosen == kNoProc) {
        // Memory budgets only grow, so this task can never be placed.
        result.feasible = false;
        result.stuck_task = i;
        return result;
      }

      // Analysis channel: every strictly-less-loaded processor was skipped
      // for memory -- mark it (Lemma 4 counts these).
      for (ProcId q = 0; q < inst.m(); ++q) {
        if (load[static_cast<std::size_t>(q)] <
            load[static_cast<std::size_t>(chosen)]) {
          if (!result.marked[static_cast<std::size_t>(q)]) {
            result.marked[static_cast<std::size_t>(q)] = true;
            ++result.marked_count;
          }
        }
      }

      // Earliest start: after every predecessor completes and after the
      // processor's current load.
      Time ready_time = load[static_cast<std::size_t>(chosen)];
      if (inst.has_precedence()) {
        for (const TaskId u : inst.dag().preds(i)) {
          ready_time = std::max(
              ready_time, result.schedule.start(u) + inst.task(u).p);
        }
      }

      const bool improves =
          ready_time < best_ready ||
          (ready_time == best_ready && best_task != -1 &&
           rank[static_cast<std::size_t>(i)] <
               rank[static_cast<std::size_t>(best_task)]);
      if (best_task == -1 || improves) {
        best_task = i;
        best_proc = chosen;
        best_ready = ready_time;
      }
    }

    if (best_task == -1) {
      // Cannot happen on an acyclic instance: some unscheduled task always
      // has all predecessors scheduled.
      throw std::logic_error("rls_schedule: no ready task on acyclic DAG");
    }

    result.schedule.assign(best_task, best_proc, best_ready);
    scheduled[static_cast<std::size_t>(best_task)] = true;
    load[static_cast<std::size_t>(best_proc)] =
        best_ready + inst.task(best_task).p;
    memsize[static_cast<std::size_t>(best_proc)] += inst.task(best_task).s;
    if (inst.has_precedence()) {
      for (const TaskId v : inst.dag().succs(best_task)) {
        --missing_preds[static_cast<std::size_t>(v)];
      }
    }
  }

  result.feasible = true;
  return result;
}

}  // namespace storesched
