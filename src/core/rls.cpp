#include "core/rls.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/env.hpp"
#include "core/rls_engine.hpp"

namespace storesched {

namespace {

/// Instance-wide constants both engines share. The memory cap is hoisted
/// out of the inner loops once per solve: tasks and memsize are integral,
/// so the exact rational test  memsize + s <= Delta * LB  is equivalent to
/// the single integer compare  memsize + s <= floor(Delta * LB).
struct RlsContext {
  std::vector<TaskId> order;      ///< rank -> task id
  std::vector<std::size_t> rank;  ///< task id -> rank
  Mem cap_floor = 0;              ///< floor(Delta * LB)
};

RlsContext make_context(const Instance& inst, const Fraction& delta,
                        PriorityPolicy tie_break, RlsResult& result) {
  result.lb = inst.storage_lower_bound_fraction();
  result.cap = delta * result.lb;
  result.marked.assign(static_cast<std::size_t>(inst.m()), false);
  result.schedule = Schedule(inst);

  RlsContext ctx;
  ctx.order = priority_order(inst, tie_break);
  ctx.rank.resize(inst.n());
  for (std::size_t pos = 0; pos < ctx.order.size(); ++pos) {
    ctx.rank[static_cast<std::size_t>(ctx.order[pos])] = pos;
  }
  ctx.cap_floor = result.cap.floor();
  return ctx;
}

void mark_processor(RlsResult& result, ProcId q) {
  if (!result.marked[static_cast<std::size_t>(q)]) {
    result.marked[static_cast<std::size_t>(q)] = true;
    ++result.marked_count;
  }
}

/// Lemma 4 runtime check (valid for any Delta > 1; for Delta <= 2 the bound
/// is >= m and trivially holds).
void check_marked_bound(const RlsResult& result, const Fraction& delta,
                        int m) {
  if (Fraction(1) < delta) {
    assert(result.marked_count <= rls_marked_bound(delta, m));
  }
  (void)result;
  (void)m;
}

// ---------------------------------------------------------------------------
// Fast engine: the ready-event kernel (rls_engine.hpp), one code path for
// independent and precedence-constrained instances.
//
// Each step finds  argmin over ready tasks of (earliest start, rank)  by
// sweeping *time events* upward from the previous placement's start T
// (start times are non-decreasing under list scheduling, so the sweep
// never rewinds). Events are processor load levels and ready-task release
// times, merged in ascending order; the sweep keeps a running maximum H of
// the headroom over every processor whose load it has passed, and after
// each event asks the released pool for the highest-priority task with
// s <= H -- one log-time descent. The first hit at event time t is exactly
// the reference scan's winner with earliest start t:
//
//   * a pool task found at t fits some passed processor (load <= t) and
//     fit none at any earlier event, so its load component is exactly t
//     (or <= T, in which case monotonicity pins its start to T = t);
//   * a bucket task merged at its release r and found there starts at r;
//   * any ready task not yet visible (release > t) or not yet fitting
//     (s > H) provably starts later.
//
// The placed processor is then re-derived by the (load, id)-ordered group
// walk -- first group with a fitting processor -- and every processor in a
// strictly earlier group was skipped for memory while strictly less
// loaded: exactly the set Lemma 4 marks, exactly as the reference records
// it. The independent case is the trivial instantiation: every task is
// released at time 0 and the bucket map stays empty.
//
// Processor bookkeeping is one insertion-sorted (load, id) vector: the
// sweep, the placement walk and the min-memsize witness scan all run over
// contiguous memory, and a placement is two bounded memmoves. That is
// formally O(m) per step, but m is hundreds at most while n reaches the
// tens of thousands -- a red-black tree's pointer chases lose to these
// scans at every benched size, and the per-step cost that actually scales
// with the instance (the frontier) stays logarithmic.
//
// Per-step cost: O(log n) pool/witness descents plus the O(m) contiguous
// processor pass. The ready-frontier width -- the quantity that made wide
// layered/fork-join DAGs quadratic under the old per-placement dirty
// rescans -- no longer appears.
// ---------------------------------------------------------------------------

void solve_kernel(const Instance& inst, const RlsContext& ctx,
                  RlsResult& result) {
  const std::size_t n = inst.n();
  const int m = inst.m();
  const bool prec = inst.has_precedence();

  std::vector<Time> load(static_cast<std::size_t>(m), 0);
  std::vector<Mem> memsize(static_cast<std::size_t>(m), 0);
  // (load, id)-sorted; see the bookkeeping note above.
  std::vector<std::pair<Time, ProcId>> procs;
  procs.reserve(static_cast<std::size_t>(m));
  for (ProcId q = 0; q < m; ++q) procs.emplace_back(0, q);

  rls_detail::ReadyFrontier frontier(n, ctx.order, ctx.rank);
  std::vector<bool> placed(n, false);
  std::vector<Time> pred_finish(prec ? n : 0, 0);
  std::unique_ptr<DagFrontierView> view;
  if (prec) view = std::make_unique<DagFrontierView>(inst.dag());
  std::vector<std::uint32_t> missing_preds =
      rls_detail::seed_frontier(inst, view.get(), frontier);

  Time now = 0;  // start time of the previous placement (non-decreasing)
  for (std::size_t step = 0; step < n; ++step) {
    // Infeasibility witness: the lowest ready task id whose storage exceeds
    // every processor's headroom (budgets only shrink, so it can never be
    // placed) -- checked against the whole frontier, buckets included.
    Mem min_mem = memsize[0];
    for (int q = 1; q < m; ++q) {
      min_mem = std::min(min_mem, memsize[static_cast<std::size_t>(q)]);
    }
    const Mem headroom_max = ctx.cap_floor - min_mem;
    if (frontier.max_storage() > headroom_max) {
      result.feasible = false;
      result.stuck_task = frontier.witness_exceeding(headroom_max);
      return;
    }
    if (frontier.empty()) {
      // Cannot happen on an acyclic instance: some unscheduled task always
      // has all predecessors scheduled.
      rls_detail::throw_no_ready_task("rls_schedule", inst, placed);
    }

    // Event sweep for this step's winner. The infeasibility check above
    // guarantees termination: once every processor is absorbed and every
    // bucket released, H is the global best headroom and some ready task
    // fits it.
    std::size_t gi = 0;
    Mem headroom = std::numeric_limits<Mem>::min();
    Time t = now;
    TaskId task = -1;
    for (;;) {
      while (gi < procs.size() && procs[gi].first <= t) {
        headroom = std::max(
            headroom,
            ctx.cap_floor -
                memsize[static_cast<std::size_t>(procs[gi].second)]);
        ++gi;
      }
      frontier.release_until(t);
      task = frontier.best_released(headroom);
      if (task != -1) break;
      Time next = std::numeric_limits<Time>::max();
      if (gi < procs.size()) next = procs[gi].first;
      if (frontier.has_pending()) {
        next = std::min(next, frontier.next_release());
      }
      assert(next != std::numeric_limits<Time>::max());
      t = next;
    }

    // Re-derive the placement: least-loaded (then lowest-id) processor
    // with headroom for the winner. Groups passed without a fit hold
    // strictly less-loaded processors skipped for memory -- the exact set
    // Lemma 4 marks for the placed task.
    const Mem s = inst.task(task).s;
    ProcId chosen = kNoProc;
    for (std::size_t k = 0; chosen == kNoProc;) {
      // The winner fits some processor (the sweep found it under H), so
      // the walk terminates before running off the end.
      assert(k < procs.size());
      const Time level = procs[k].first;
      std::size_t group_end = k;
      while (group_end < procs.size() && procs[group_end].first == level) {
        if (ctx.cap_floor -
                memsize[static_cast<std::size_t>(procs[group_end].second)] >=
            s) {
          chosen = procs[group_end].second;
          break;
        }
        ++group_end;
      }
      if (chosen != kNoProc) break;
      for (std::size_t j = k; j < group_end; ++j) {
        mark_processor(result, procs[j].second);
      }
      k = group_end;
    }
    const std::size_t ti = static_cast<std::size_t>(task);
    const std::size_t qi = static_cast<std::size_t>(chosen);
    assert(t == std::max(load[qi], prec ? pred_finish[ti] : Time{0}));

    result.schedule.assign(task, chosen, t);
    placed[ti] = true;
    frontier.pop(task);
    const auto old_at = std::lower_bound(
        procs.begin(), procs.end(), std::make_pair(load[qi], chosen));
    procs.erase(old_at);
    load[qi] = t + inst.task(task).p;
    memsize[qi] += s;
    procs.insert(std::lower_bound(procs.begin(), procs.end(),
                                  std::make_pair(load[qi], chosen)),
                 {load[qi], chosen});
    now = t;

    if (prec) {
      const Time finish = load[qi];
      for (const TaskId v : view->succs(task)) {
        const std::size_t vi = static_cast<std::size_t>(v);
        pred_finish[vi] = std::max(pred_finish[vi], finish);
        if (--missing_preds[vi] == 0) {
          frontier.push(v, inst.task(v).s, pred_finish[vi]);
        }
      }
    }
  }
  result.feasible = true;
}

}  // namespace

std::int64_t rls_marked_bound(const Fraction& delta, int m) {
  if (!(Fraction(1) < delta)) {
    throw std::invalid_argument("rls_marked_bound: Delta > 1 required");
  }
  return (Fraction(m) / (delta - Fraction(1))).floor();
}

RlsResult rls_schedule_reference(const Instance& inst, const Fraction& delta,
                                 PriorityPolicy tie_break) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("rls_schedule: Delta must be > 0");
  }

  RlsResult result;
  const RlsContext ctx = make_context(inst, delta, tie_break, result);

  std::vector<Time> load(static_cast<std::size_t>(inst.m()), 0);
  std::vector<Mem> memsize(static_cast<std::size_t>(inst.m()), 0);
  std::vector<bool> scheduled(inst.n(), false);
  // Number of not-yet-scheduled predecessors; a task is "ready" once every
  // predecessor has been placed (its sigma is then known).
  std::vector<std::size_t> missing_preds(inst.n(), 0);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    missing_preds[static_cast<std::size_t>(i)] =
        inst.has_precedence() ? inst.dag().in_degree(i) : 0;
  }

  for (std::size_t step = 0; step < inst.n(); ++step) {
    // Scan every ready task; compute its best processor and earliest start.
    TaskId best_task = -1;
    ProcId best_proc = kNoProc;
    Time best_ready = std::numeric_limits<Time>::max();

    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      if (scheduled[static_cast<std::size_t>(i)]) continue;
      if (missing_preds[static_cast<std::size_t>(i)] != 0) continue;

      // Least-loaded processor within the memory budget (ties: lowest id).
      ProcId chosen = kNoProc;
      for (ProcId q = 0; q < inst.m(); ++q) {
        if (Fraction(memsize[static_cast<std::size_t>(q)] + inst.task(i).s) >
            result.cap) {
          continue;
        }
        if (chosen == kNoProc ||
            load[static_cast<std::size_t>(q)] <
                load[static_cast<std::size_t>(chosen)]) {
          chosen = q;
        }
      }
      if (chosen == kNoProc) {
        // Memory budgets only grow, so this task can never be placed.
        result.feasible = false;
        result.stuck_task = i;
        return result;
      }

      // Earliest start: after every predecessor completes and after the
      // processor's current load.
      Time ready_time = load[static_cast<std::size_t>(chosen)];
      if (inst.has_precedence()) {
        for (const TaskId u : inst.dag().preds(i)) {
          ready_time = std::max(
              ready_time, result.schedule.start(u) + inst.task(u).p);
        }
      }

      const bool improves =
          ready_time < best_ready ||
          (ready_time == best_ready && best_task != -1 &&
           ctx.rank[static_cast<std::size_t>(i)] <
               ctx.rank[static_cast<std::size_t>(best_task)]);
      if (best_task == -1 || improves) {
        best_task = i;
        best_proc = chosen;
        best_ready = ready_time;
      }
    }

    if (best_task == -1) {
      rls_detail::throw_no_ready_task("rls_schedule", inst, scheduled);
    }

    // Analysis channel (Lemma 4): every processor strictly less loaded
    // than the placed task's choice was skipped for memory. Marks are
    // recorded only for the task actually selected this step, not for
    // every candidate scanned.
    for (ProcId q = 0; q < inst.m(); ++q) {
      if (load[static_cast<std::size_t>(q)] <
          load[static_cast<std::size_t>(best_proc)]) {
        mark_processor(result, q);
      }
    }

    result.schedule.assign(best_task, best_proc, best_ready);
    scheduled[static_cast<std::size_t>(best_task)] = true;
    load[static_cast<std::size_t>(best_proc)] =
        best_ready + inst.task(best_task).p;
    memsize[static_cast<std::size_t>(best_proc)] += inst.task(best_task).s;
    if (inst.has_precedence()) {
      for (const TaskId v : inst.dag().succs(best_task)) {
        --missing_preds[static_cast<std::size_t>(v)];
      }
    }
  }

  result.feasible = true;
  check_marked_bound(result, delta, inst.m());
  return result;
}

RlsResult rls_schedule_fast(const Instance& inst, const Fraction& delta,
                            PriorityPolicy tie_break) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("rls_schedule: Delta must be > 0");
  }

  RlsResult result;
  const RlsContext ctx = make_context(inst, delta, tie_break, result);
  solve_kernel(inst, ctx, result);
  if (result.feasible) check_marked_bound(result, delta, inst.m());
  return result;
}

RlsResult rls_schedule(const Instance& inst, const Fraction& delta,
                       PriorityPolicy tie_break) {
  if (env_flag_set("STORESCHED_RLS_REFERENCE")) {
    return rls_schedule_reference(inst, delta, tie_break);
  }
  return rls_schedule_fast(inst, delta, tie_break);
}

}  // namespace storesched
