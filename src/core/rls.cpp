#include "core/rls.hpp"

#include <cassert>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "common/env.hpp"
#include "core/rls_engine.hpp"

namespace storesched {

namespace {

/// Instance-wide constants both engines share. The memory cap is hoisted
/// out of the inner loops once per solve: tasks and memsize are integral,
/// so the exact rational test  memsize + s <= Delta * LB  is equivalent to
/// the single integer compare  memsize + s <= floor(Delta * LB).
struct RlsContext {
  std::vector<TaskId> order;      ///< rank -> task id
  std::vector<std::size_t> rank;  ///< task id -> rank
  Mem cap_floor = 0;              ///< floor(Delta * LB)
};

RlsContext make_context(const Instance& inst, const Fraction& delta,
                        PriorityPolicy tie_break, RlsResult& result) {
  result.lb = inst.storage_lower_bound_fraction();
  result.cap = delta * result.lb;
  result.marked.assign(static_cast<std::size_t>(inst.m()), false);
  result.schedule = Schedule(inst);

  RlsContext ctx;
  ctx.order = priority_order(inst, tie_break);
  ctx.rank.resize(inst.n());
  for (std::size_t pos = 0; pos < ctx.order.size(); ++pos) {
    ctx.rank[static_cast<std::size_t>(ctx.order[pos])] = pos;
  }
  ctx.cap_floor = result.cap.floor();
  return ctx;
}

void mark_processor(RlsResult& result, ProcId q) {
  if (!result.marked[static_cast<std::size_t>(q)]) {
    result.marked[static_cast<std::size_t>(q)] = true;
    ++result.marked_count;
  }
}

/// Lemma 4 runtime check (valid for any Delta > 1; for Delta <= 2 the bound
/// is >= m and trivially holds).
void check_marked_bound(const RlsResult& result, const Fraction& delta,
                        int m) {
  if (Fraction(1) < delta) {
    assert(result.marked_count <= rls_marked_bound(delta, m));
  }
  (void)result;
  (void)m;
}

// ---------------------------------------------------------------------------
// Fast engine, independent tasks.
//
// Every task is ready from the start, so a step's winner is the
// lowest-rank task on the lowest load level that has memory headroom for
// it. Processors live in a (load, id)-ordered set walked in equal-load
// groups; a segment tree over ranks answers "highest-priority task with
// s <= headroom" per group in O(log n). Processors walked past before the
// winning group are exactly the strictly-less-loaded ones Lemma 4 marks.
// Typical cost is O(n (log n + log m)); adversarially memory-tight
// instances can lengthen the group walk toward O(m) per step, still far
// below the reference's O(n m) per step.
// ---------------------------------------------------------------------------

void solve_independent(const Instance& inst, const RlsContext& ctx,
                       RlsResult& result) {
  const std::size_t n = inst.n();
  const int m = inst.m();

  std::vector<Time> load(static_cast<std::size_t>(m), 0);
  std::vector<Mem> memsize(static_cast<std::size_t>(m), 0);
  std::set<std::pair<Time, ProcId>> by_load;
  std::multiset<Mem> mem_used;
  for (ProcId q = 0; q < m; ++q) {
    by_load.emplace(0, q);
    mem_used.insert(0);
  }

  rls_detail::StorageTree by_rank(n);  // active = unscheduled, keyed by rank
  rls_detail::StorageTree by_id(n);    // active = unscheduled, keyed by id
  for (TaskId i = 0; i < static_cast<TaskId>(n); ++i) {
    by_rank.set(ctx.rank[static_cast<std::size_t>(i)], inst.task(i).s);
    by_id.set(static_cast<std::size_t>(i), inst.task(i).s);
  }

  for (std::size_t step = 0; step < n; ++step) {
    // Infeasibility witness: the lowest task id whose storage exceeds every
    // processor's headroom (budgets only shrink, so it can never be placed).
    const Mem headroom_max = ctx.cap_floor - *mem_used.begin();
    if (by_id.max_active() > headroom_max) {
      result.feasible = false;
      result.stuck_task =
          static_cast<TaskId>(by_id.leftmost_gt(headroom_max));
      return;
    }

    // Walk load levels upward until one has headroom for some task.
    TaskId task = -1;
    ProcId chosen = kNoProc;
    Time level = 0;
    for (auto it = by_load.begin(); it != by_load.end();) {
      level = it->first;
      auto group_end = it;
      Mem group_headroom = std::numeric_limits<Mem>::min();
      while (group_end != by_load.end() && group_end->first == level) {
        group_headroom = std::max(
            group_headroom,
            ctx.cap_floor - memsize[static_cast<std::size_t>(group_end->second)]);
        ++group_end;
      }
      const std::size_t pos = by_rank.leftmost_le(group_headroom);
      if (pos != rls_detail::kNoPos) {
        task = ctx.order[pos];
        const Mem s = inst.task(task).s;
        for (auto jt = it; jt != group_end; ++jt) {
          if (ctx.cap_floor - memsize[static_cast<std::size_t>(jt->second)] >=
              s) {
            chosen = jt->second;
            break;
          }
        }
        break;
      }
      // No task fits this level: its processors are strictly less loaded
      // than the eventual choice and were skipped for memory (Lemma 4).
      for (auto jt = it; jt != group_end; ++jt) mark_processor(result, jt->second);
      it = group_end;
    }
    assert(task != -1 && chosen != kNoProc);

    result.schedule.assign(task, chosen, level);
    const std::size_t qi = static_cast<std::size_t>(chosen);
    by_load.erase({load[qi], chosen});
    mem_used.erase(mem_used.find(memsize[qi]));
    load[qi] = level + inst.task(task).p;
    memsize[qi] += inst.task(task).s;
    by_load.emplace(load[qi], chosen);
    mem_used.insert(memsize[qi]);
    by_rank.clear(ctx.rank[static_cast<std::size_t>(task)]);
    by_id.clear(static_cast<std::size_t>(task));
  }
  result.feasible = true;
}

// ---------------------------------------------------------------------------
// Fast engine, precedence-constrained tasks.
//
// Ready tasks cache their (processor, earliest start) decision; a lazy
// min-heap keyed by (earliest start, rank) yields each step's winner. A
// placement changes exactly one processor, so only the ready tasks whose
// cached choice is that processor (tracked in per-processor buckets) are
// recomputed -- every other cached decision provably still holds: the
// updated processor got strictly worse on both load and headroom while all
// others are untouched. Per-step cost is O(dirty * m) worst case but
// O(log) typical; the ready set, not n, bounds the dirty set.
// ---------------------------------------------------------------------------

void solve_dag(const Instance& inst, const RlsContext& ctx,
               RlsResult& result) {
  const std::size_t n = inst.n();
  const int m = inst.m();
  const Dag& dag = inst.dag();

  std::vector<Time> load(static_cast<std::size_t>(m), 0);
  std::vector<Mem> memsize(static_cast<std::size_t>(m), 0);
  std::set<std::pair<Time, ProcId>> by_load;
  std::multiset<Mem> mem_used;
  for (ProcId q = 0; q < m; ++q) {
    by_load.emplace(0, q);
    mem_used.insert(0);
  }

  std::vector<std::size_t> missing_preds(n, 0);
  std::vector<Time> pred_finish(n, 0);
  std::vector<bool> placed(n, false);
  std::vector<bool> is_ready(n, false);
  std::multiset<Mem> ready_s;

  std::vector<ProcId> cached_proc(n, kNoProc);
  std::vector<Time> cached_start(n, 0);
  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<std::vector<TaskId>> bucket(static_cast<std::size_t>(m));
  // (earliest start, rank, task, stamp); stale stamps are skipped on pop.
  using HeapEntry = std::tuple<Time, std::size_t, TaskId, std::uint32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;

  const auto compute = [&](TaskId t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    const Mem s = inst.task(t).s;
    ++stamp[ti];
    cached_proc[ti] = kNoProc;
    // Least-loaded (then lowest-id) processor with headroom for t.
    for (const auto& [lvl, q] : by_load) {
      if (ctx.cap_floor - memsize[static_cast<std::size_t>(q)] >= s) {
        cached_proc[ti] = q;
        cached_start[ti] = std::max(lvl, pred_finish[ti]);
        bucket[static_cast<std::size_t>(q)].push_back(t);
        heap.emplace(cached_start[ti], ctx.rank[ti], t, stamp[ti]);
        return;
      }
    }
    // Fits nowhere: the per-step infeasibility check below reports it (the
    // max ready storage now exceeds the max headroom).
  };

  for (TaskId i = 0; i < static_cast<TaskId>(n); ++i) {
    missing_preds[static_cast<std::size_t>(i)] = dag.in_degree(i);
    if (missing_preds[static_cast<std::size_t>(i)] == 0) {
      is_ready[static_cast<std::size_t>(i)] = true;
      ready_s.insert(inst.task(i).s);
      compute(i);
    }
  }

  for (std::size_t step = 0; step < n; ++step) {
    const Mem headroom_max = ctx.cap_floor - *mem_used.begin();
    if (!ready_s.empty() && *ready_s.rbegin() > headroom_max) {
      result.feasible = false;
      for (TaskId i = 0; i < static_cast<TaskId>(n); ++i) {
        const std::size_t ti = static_cast<std::size_t>(i);
        if (is_ready[ti] && !placed[ti] && inst.task(i).s > headroom_max) {
          result.stuck_task = i;
          break;
        }
      }
      return;
    }

    TaskId task = -1;
    while (!heap.empty()) {
      const auto [start, rk, t, st] = heap.top();
      const std::size_t ti = static_cast<std::size_t>(t);
      if (placed[ti] || st != stamp[ti]) {
        heap.pop();
        continue;
      }
      task = t;
      break;
    }
    if (task == -1) {
      // Cannot happen on an acyclic instance: some unscheduled task always
      // has all predecessors scheduled.
      throw std::logic_error("rls_schedule: no ready task on acyclic DAG");
    }
    heap.pop();

    const std::size_t ti = static_cast<std::size_t>(task);
    const ProcId chosen = cached_proc[ti];
    const Time start = cached_start[ti];
    const std::size_t qi = static_cast<std::size_t>(chosen);

    // Lemma 4: every processor strictly less loaded than the choice was
    // skipped for memory.
    for (const auto& [lvl, q] : by_load) {
      if (lvl >= load[qi]) break;
      mark_processor(result, q);
    }

    result.schedule.assign(task, chosen, start);
    placed[ti] = true;
    is_ready[ti] = false;
    ready_s.erase(ready_s.find(inst.task(task).s));
    by_load.erase({load[qi], chosen});
    mem_used.erase(mem_used.find(memsize[qi]));
    load[qi] = start + inst.task(task).p;
    memsize[qi] += inst.task(task).s;
    by_load.emplace(load[qi], chosen);
    mem_used.insert(memsize[qi]);

    // Dirty-only recomputation: exactly the ready tasks whose cached
    // choice is the processor that just changed.
    std::vector<TaskId> dirty = std::move(bucket[qi]);
    bucket[qi].clear();
    for (const TaskId t : dirty) {
      const std::size_t di = static_cast<std::size_t>(t);
      if (!placed[di] && cached_proc[di] == chosen) compute(t);
    }

    for (const TaskId v : dag.succs(task)) {
      const std::size_t vi = static_cast<std::size_t>(v);
      pred_finish[vi] =
          std::max(pred_finish[vi], start + inst.task(task).p);
      if (--missing_preds[vi] == 0) {
        is_ready[vi] = true;
        ready_s.insert(inst.task(v).s);
        compute(v);
      }
    }
  }
  result.feasible = true;
}

}  // namespace

std::int64_t rls_marked_bound(const Fraction& delta, int m) {
  if (!(Fraction(1) < delta)) {
    throw std::invalid_argument("rls_marked_bound: Delta > 1 required");
  }
  return (Fraction(m) / (delta - Fraction(1))).floor();
}

RlsResult rls_schedule_reference(const Instance& inst, const Fraction& delta,
                                 PriorityPolicy tie_break) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("rls_schedule: Delta must be > 0");
  }

  RlsResult result;
  const RlsContext ctx = make_context(inst, delta, tie_break, result);

  std::vector<Time> load(static_cast<std::size_t>(inst.m()), 0);
  std::vector<Mem> memsize(static_cast<std::size_t>(inst.m()), 0);
  std::vector<bool> scheduled(inst.n(), false);
  // Number of not-yet-scheduled predecessors; a task is "ready" once every
  // predecessor has been placed (its sigma is then known).
  std::vector<std::size_t> missing_preds(inst.n(), 0);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    missing_preds[static_cast<std::size_t>(i)] =
        inst.has_precedence() ? inst.dag().in_degree(i) : 0;
  }

  for (std::size_t step = 0; step < inst.n(); ++step) {
    // Scan every ready task; compute its best processor and earliest start.
    TaskId best_task = -1;
    ProcId best_proc = kNoProc;
    Time best_ready = std::numeric_limits<Time>::max();

    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      if (scheduled[static_cast<std::size_t>(i)]) continue;
      if (missing_preds[static_cast<std::size_t>(i)] != 0) continue;

      // Least-loaded processor within the memory budget (ties: lowest id).
      ProcId chosen = kNoProc;
      for (ProcId q = 0; q < inst.m(); ++q) {
        if (Fraction(memsize[static_cast<std::size_t>(q)] + inst.task(i).s) >
            result.cap) {
          continue;
        }
        if (chosen == kNoProc ||
            load[static_cast<std::size_t>(q)] <
                load[static_cast<std::size_t>(chosen)]) {
          chosen = q;
        }
      }
      if (chosen == kNoProc) {
        // Memory budgets only grow, so this task can never be placed.
        result.feasible = false;
        result.stuck_task = i;
        return result;
      }

      // Earliest start: after every predecessor completes and after the
      // processor's current load.
      Time ready_time = load[static_cast<std::size_t>(chosen)];
      if (inst.has_precedence()) {
        for (const TaskId u : inst.dag().preds(i)) {
          ready_time = std::max(
              ready_time, result.schedule.start(u) + inst.task(u).p);
        }
      }

      const bool improves =
          ready_time < best_ready ||
          (ready_time == best_ready && best_task != -1 &&
           ctx.rank[static_cast<std::size_t>(i)] <
               ctx.rank[static_cast<std::size_t>(best_task)]);
      if (best_task == -1 || improves) {
        best_task = i;
        best_proc = chosen;
        best_ready = ready_time;
      }
    }

    if (best_task == -1) {
      // Cannot happen on an acyclic instance: some unscheduled task always
      // has all predecessors scheduled.
      throw std::logic_error("rls_schedule: no ready task on acyclic DAG");
    }

    // Analysis channel (Lemma 4): every processor strictly less loaded
    // than the placed task's choice was skipped for memory. Marks are
    // recorded only for the task actually selected this step, not for
    // every candidate scanned.
    for (ProcId q = 0; q < inst.m(); ++q) {
      if (load[static_cast<std::size_t>(q)] <
          load[static_cast<std::size_t>(best_proc)]) {
        mark_processor(result, q);
      }
    }

    result.schedule.assign(best_task, best_proc, best_ready);
    scheduled[static_cast<std::size_t>(best_task)] = true;
    load[static_cast<std::size_t>(best_proc)] =
        best_ready + inst.task(best_task).p;
    memsize[static_cast<std::size_t>(best_proc)] += inst.task(best_task).s;
    if (inst.has_precedence()) {
      for (const TaskId v : inst.dag().succs(best_task)) {
        --missing_preds[static_cast<std::size_t>(v)];
      }
    }
  }

  result.feasible = true;
  check_marked_bound(result, delta, inst.m());
  return result;
}

RlsResult rls_schedule_fast(const Instance& inst, const Fraction& delta,
                            PriorityPolicy tie_break) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("rls_schedule: Delta must be > 0");
  }

  RlsResult result;
  const RlsContext ctx = make_context(inst, delta, tie_break, result);
  if (inst.has_precedence()) {
    solve_dag(inst, ctx, result);
  } else {
    solve_independent(inst, ctx, result);
  }
  if (result.feasible) check_marked_bound(result, delta, inst.m());
  return result;
}

RlsResult rls_schedule(const Instance& inst, const Fraction& delta,
                       PriorityPolicy tie_break) {
  if (env_flag_set("STORESCHED_RLS_REFERENCE")) {
    return rls_schedule_reference(inst, delta, tie_break);
  }
  return rls_schedule_fast(inst, delta, tie_break);
}

}  // namespace storesched
