// Internal data structures for the incremental RLS engine (rls.cpp only).
//
// The seed's Algorithm 2 rescans all tasks x all processors after every
// placement -- O(n^2 m) with exact-Fraction normalization in the innermost
// compare. The fast engine replaces that rescan with:
//
//   * StorageTree -- a segment tree over a fixed position space (task
//     ranks or task ids) holding each *active* task's storage size, with
//     per-node min and max. Two descent queries drive the engine:
//       - leftmost_le(h): lowest position whose s fits headroom h
//         (= the highest-priority task that fits a processor group);
//       - leftmost_gt(h): lowest position whose s exceeds h
//         (= the first task id that fits *no* processor, Algorithm 2's
//         infeasibility witness).
//   * a processor order (std::set keyed by (load, id)) walked in groups of
//     equal load, so the "least-loaded processor with memory headroom"
//     choice touches only the load levels that are actually memory-tight
//     (Lemma 4 bounds how many can be).
//
// All queries are integer-only: the Delta * LB memory cap is hoisted once
// per solve to floor(Delta * LB) (tasks are integral, so the exact rational
// test memsize + s <= Delta * LB is equivalent), keeping results
// bit-identical to the exact-arithmetic reference path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace storesched::rls_detail {

inline constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

class StorageTree {
 public:
  explicit StorageTree(std::size_t n) {
    leaves_ = 1;
    while (leaves_ < n) leaves_ <<= 1;
    min_.assign(2 * leaves_, kInactiveMin);
    max_.assign(2 * leaves_, kInactiveMax);
  }

  /// Activates position pos with storage size s (s >= 0).
  void set(std::size_t pos, Mem s) { update(pos, s, s); }

  /// Deactivates position pos (it no longer matches any query).
  void clear(std::size_t pos) { update(pos, kInactiveMin, kInactiveMax); }

  /// Largest active storage size; kInactiveMax when nothing is active.
  Mem max_active() const { return max_[1]; }

  /// Lowest active position with s <= h, or kNoPos.
  std::size_t leftmost_le(Mem h) const {
    if (min_[1] > h) return kNoPos;
    std::size_t node = 1;
    while (node < leaves_) {
      node <<= 1;
      if (min_[node] > h) ++node;
    }
    return node - leaves_;
  }

  /// Lowest active position with s > h, or kNoPos.
  std::size_t leftmost_gt(Mem h) const {
    if (max_[1] <= h) return kNoPos;
    std::size_t node = 1;
    while (node < leaves_) {
      node <<= 1;
      if (max_[node] <= h) ++node;
    }
    return node - leaves_;
  }

  static constexpr Mem kInactiveMax = std::numeric_limits<Mem>::min();

 private:
  static constexpr Mem kInactiveMin = std::numeric_limits<Mem>::max();

  void update(std::size_t pos, Mem mn, Mem mx) {
    std::size_t node = pos + leaves_;
    min_[node] = mn;
    max_[node] = mx;
    for (node >>= 1; node >= 1; node >>= 1) {
      min_[node] = std::min(min_[2 * node], min_[2 * node + 1]);
      max_[node] = std::max(max_[2 * node], max_[2 * node + 1]);
    }
  }

  std::size_t leaves_ = 1;
  std::vector<Mem> min_;
  std::vector<Mem> max_;
};

}  // namespace storesched::rls_detail
