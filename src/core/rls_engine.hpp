// The ready-event kernel shared by the incremental RLS engine (rls.cpp)
// and the online event-driven dispatcher (sim/online.cpp).
//
// The seed's Algorithm 2 rescans all tasks x all processors after every
// placement -- O(n^2 m) with exact-Fraction normalization in the innermost
// compare. The kernel replaces that rescan with three pieces:
//
//   * StorageTree -- a segment tree over a fixed position space (task
//     ranks or task ids) holding each *active* task's storage size, with
//     per-node min and max. Two descent queries drive everything:
//       - leftmost_le(h): lowest position whose s fits headroom h
//         (= the highest-priority task that fits a processor group);
//       - leftmost_gt(h): lowest position whose s exceeds h
//         (= the first task id that fits *no* processor, Algorithm 2's
//         infeasibility witness).
//   * ReadyFrontier -- the ready set as a storage-indexed forest: one
//     rank-keyed StorageTree holds the *released* pool (ready tasks whose
//     earliest start has been passed by the event sweep), a release-keyed
//     bucket map holds ready tasks still waiting on a predecessor finish
//     time, and an id-keyed StorageTree over the whole ready set answers
//     the infeasibility witness in one descent. Every query that used to
//     rescan the ready set is now a log-time descent, so per-placement
//     cost no longer depends on the frontier width (the quantity that made
//     wide layered/fork-join DAGs quadratic).
//   * a processor order (std::set keyed by (load, id)) walked in groups of
//     equal load, so the "least-loaded processor with memory headroom"
//     choice touches only the load levels that are actually memory-tight
//     (Lemma 4 bounds how many can be).
//
// All queries are integer-only: the Delta * LB memory cap is hoisted once
// per solve to floor(Delta * LB) (tasks are integral, so the exact rational
// test memsize + s <= Delta * LB is equivalent), keeping results
// bit-identical to the exact-arithmetic reference path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/dag.hpp"
#include "common/instance.hpp"
#include "common/types.hpp"

namespace storesched::rls_detail {

inline constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

class StorageTree {
 public:
  explicit StorageTree(std::size_t n) {
    leaves_ = 1;
    while (leaves_ < n) leaves_ <<= 1;
    min_.assign(2 * leaves_, kInactiveMin);
    max_.assign(2 * leaves_, kInactiveMax);
  }

  /// Activates position pos with storage size s (s >= 0).
  void set(std::size_t pos, Mem s) { update(pos, s, s); }

  /// Deactivates position pos (it no longer matches any query).
  void clear(std::size_t pos) { update(pos, kInactiveMin, kInactiveMax); }

  /// Largest active storage size; kInactiveMax when nothing is active.
  Mem max_active() const { return max_[1]; }

  /// Lowest active position with s <= h, or kNoPos.
  std::size_t leftmost_le(Mem h) const {
    if (min_[1] > h) return kNoPos;
    std::size_t node = 1;
    while (node < leaves_) {
      node <<= 1;
      if (min_[node] > h) ++node;
    }
    return node - leaves_;
  }

  /// Lowest active position with s > h, or kNoPos.
  std::size_t leftmost_gt(Mem h) const {
    if (max_[1] <= h) return kNoPos;
    std::size_t node = 1;
    while (node < leaves_) {
      node <<= 1;
      if (max_[node] <= h) ++node;
    }
    return node - leaves_;
  }

  static constexpr Mem kInactiveMax = std::numeric_limits<Mem>::min();

 private:
  static constexpr Mem kInactiveMin = std::numeric_limits<Mem>::max();

  void update(std::size_t pos, Mem mn, Mem mx) {
    std::size_t node = pos + leaves_;
    min_[node] = mn;
    max_[node] = mx;
    for (node >>= 1; node >= 1; node >>= 1) {
      min_[node] = std::min(min_[2 * node], min_[2 * node + 1]);
      max_[node] = std::max(max_[2 * node], max_[2 * node + 1]);
    }
  }

  std::size_t leaves_ = 1;
  std::vector<Mem> min_;
  std::vector<Mem> max_;
};

/// The ready frontier: tasks whose predecessors are all placed, keyed
/// (earliest-start, rank) with a storage index per component.
///
/// A ready task enters with a release time (the max predecessor finish; 0
/// when independent or dispatched online). Tasks whose release is at or
/// before the released high-water mark live in the rank-keyed *pool* and
/// are visible to best_released(); later releases wait in per-release
/// buckets until release_until() sweeps past them. Because list-scheduling
/// start times are non-decreasing, each bucket is merged exactly once --
/// the sweep never rewinds. The id-keyed tree spans pool + buckets, so the
/// infeasibility witness sees every ready task regardless of release.
class ReadyFrontier {
 public:
  /// `order[pos]` is the task at priority position pos; `rank` its inverse.
  ReadyFrontier(std::size_t n, std::span<const TaskId> order,
                std::span<const std::size_t> rank)
      : order_(order),
        rank_(rank),
        storage_(n, 0),
        pool_(n),
        by_id_(n),
        released_until_(0) {}

  /// Task t (storage s) becomes ready with earliest start `release`.
  void push(TaskId t, Mem s, Time release) {
    const std::size_t ti = static_cast<std::size_t>(t);
    storage_[ti] = s;
    by_id_.set(ti, s);
    ++count_;
    if (release <= released_until_) {
      pool_.set(rank_[ti], s);
    } else {
      pending_[release].push_back(t);
    }
  }

  /// Moves every bucket with release <= t into the pool and advances the
  /// high-water mark. Monotone: a lower t than a previous call is a no-op.
  void release_until(Time t) {
    if (t < released_until_) return;
    released_until_ = t;
    while (!pending_.empty() && pending_.begin()->first <= t) {
      for (const TaskId v : pending_.begin()->second) {
        const std::size_t vi = static_cast<std::size_t>(v);
        pool_.set(rank_[vi], storage_[vi]);
      }
      pending_.erase(pending_.begin());
    }
  }

  bool has_pending() const { return !pending_.empty(); }
  Time next_release() const { return pending_.begin()->first; }

  /// Highest-priority (lowest-rank) released task with s <= h, or -1.
  TaskId best_released(Mem h) const {
    const std::size_t pos = pool_.leftmost_le(h);
    return pos == kNoPos ? TaskId{-1} : order_[pos];
  }

  /// Removes a *released* task (it was placed / dispatched).
  void pop(TaskId t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    pool_.clear(rank_[ti]);
    by_id_.clear(ti);
    --count_;
  }

  /// Largest storage over the whole ready set (pool and buckets);
  /// StorageTree::kInactiveMax when empty.
  Mem max_storage() const { return by_id_.max_active(); }

  /// Lowest-id ready task with s > h (Algorithm 2's infeasibility
  /// witness: budgets only shrink, so it can never be placed), or -1.
  TaskId witness_exceeding(Mem h) const {
    const std::size_t pos = by_id_.leftmost_gt(h);
    return pos == kNoPos ? TaskId{-1} : static_cast<TaskId>(pos);
  }

  bool empty() const { return count_ == 0; }

 private:
  std::span<const TaskId> order_;
  std::span<const std::size_t> rank_;
  std::vector<Mem> storage_;
  StorageTree pool_;   ///< released ready tasks, keyed by rank
  StorageTree by_id_;  ///< all ready tasks, keyed by id
  std::map<Time, std::vector<TaskId>> pending_;  ///< release -> tasks
  Time released_until_;
  std::size_t count_ = 0;
};

/// Seeds `frontier` with every initially-ready task: the zero-in-degree
/// tasks of `view`, or all of them when `view` is null (no precedence).
/// Returns the missing-predecessor working array (empty when independent)
/// -- the one block both the offline kernel and the online dispatcher run
/// before their main loops.
inline std::vector<std::uint32_t> seed_frontier(const Instance& inst,
                                                const DagFrontierView* view,
                                                ReadyFrontier& frontier) {
  std::vector<std::uint32_t> missing_preds;
  if (view) {
    missing_preds = view->in_degrees();
    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      if (missing_preds[static_cast<std::size_t>(i)] == 0) {
        frontier.push(i, inst.task(i).s, 0);
      }
    }
  } else {
    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      frontier.push(i, inst.task(i).s, 0);
    }
  }
  return missing_preds;
}

/// Shared "no ready task" diagnostic for the list schedulers. Unreachable
/// on a valid Instance (construction rejects cyclic DAGs), so reaching it
/// means internal bookkeeping corrupted the frontier; the message names the
/// first unplaced task and its unplaced predecessors to make that
/// debuggable instead of a bare one-liner.
[[noreturn]] inline void throw_no_ready_task(const char* fn,
                                             const Instance& inst,
                                             const std::vector<bool>& placed) {
  std::string msg = std::string(fn) + ": no ready task on acyclic DAG";
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    if (placed[static_cast<std::size_t>(i)]) continue;
    msg += " (task " + std::to_string(i) + " waits on unplaced predecessors [";
    std::size_t listed = 0;
    if (inst.has_precedence()) {
      for (const TaskId u : inst.dag().preds(i)) {
        if (placed[static_cast<std::size_t>(u)]) continue;
        if (listed == 8) {
          msg += ", ...";
          break;
        }
        msg += (listed ? ", " : "") + std::to_string(u);
        ++listed;
      }
    }
    msg += "])";
    break;
  }
  throw std::logic_error(msg);
}

}  // namespace storesched::rls_detail
