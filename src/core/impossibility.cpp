#include "core/impossibility.hpp"

#include <stdexcept>

namespace storesched {

namespace {

void check_mk(int m, int k) {
  if (m < 2 || k < 2) {
    throw std::invalid_argument("lemma2: m and k must be >= 2");
  }
}

}  // namespace

RatioPoint lemma2_bound(int m, int k, int i) {
  check_mk(m, k);
  if (i < 0 || i > k) throw std::invalid_argument("lemma2: i in {0..k}");
  const Fraction x = Fraction(1) + Fraction(i, static_cast<std::int64_t>(k) * m);
  const Fraction y =
      Fraction(1) + Fraction(m - 1) * (Fraction(1) - Fraction(i, k));
  return {x, y};
}

RatioPoint lemma2_bound_continuous(int m, const Fraction& u) {
  if (m < 2) throw std::invalid_argument("lemma2: m >= 2");
  if (u < Fraction(0) || Fraction(1) < u) {
    throw std::invalid_argument("lemma2: u in [0, 1]");
  }
  return {Fraction(1) + u / Fraction(m),
          Fraction(1) + Fraction(m - 1) * (Fraction(1) - u)};
}

RatioPoint lemma3_bound() { return {Fraction(3, 2), Fraction(3, 2)}; }

std::vector<RatioPoint> lemma1_bounds() {
  return {{Fraction(1), Fraction(2)}, {Fraction(2), Fraction(1)}};
}

namespace {

/// Largest y such that every y' < y is impossible together with x, using
/// the *direct* Lemma 2 segment for this m: witnesses
/// (1 + u/m, 1 + (m-1)(1-u)), u in [0, 1]. (Rationals are dense, so the
/// open conditions collapse to strict comparisons at the boundary value.)
Fraction lemma2_frontier_direct(int m, const Fraction& x) {
  const Fraction u_min = Fraction(m) * (x - Fraction(1));
  if (u_min < Fraction(0)) {
    // Even u = 0 witnesses: frontier is 1 + (m-1) = m.
    return Fraction(m);
  }
  if (!(u_min < Fraction(1))) return Fraction(1);  // no valid u
  return Fraction(1) + Fraction(m - 1) * (Fraction(1) - u_min);
}

/// Same with the symmetric (x/y swapped) Lemma 2 segment for this m:
/// witnesses (1 + (m-1)(1-u), 1 + u/m), u in [0, 1].
Fraction lemma2_frontier_symmetric(int m, const Fraction& x) {
  // Need u < u_max with x < 1 + (m-1)(1-u), i.e. u_max = 1 - (x-1)/(m-1).
  const Fraction u_max = Fraction(1) - (x - Fraction(1)) / Fraction(m - 1);
  if (!(Fraction(0) < u_max)) return Fraction(1);
  const Fraction reach = Fraction::min(u_max, Fraction(1));
  return Fraction(1) + reach / Fraction(m);
}

}  // namespace

Fraction impossibility_frontier(const Fraction& x, int max_m) {
  if (max_m < 2) throw std::invalid_argument("impossibility_frontier: max_m >= 2");
  Fraction best(1);
  // Lemma 1 (and its symmetric twin).
  if (x < Fraction(1)) best = Fraction::max(best, Fraction(2));
  if (x < Fraction(2)) best = Fraction::max(best, Fraction(1));
  // Lemma 3.
  if (x < Fraction(3, 2)) best = Fraction::max(best, Fraction(3, 2));
  // Lemma 2, both orientations, every m.
  for (int m = 2; m <= max_m; ++m) {
    best = Fraction::max(best, lemma2_frontier_direct(m, x));
    best = Fraction::max(best, lemma2_frontier_symmetric(m, x));
  }
  return best;
}

bool is_impossible(const Fraction& x, const Fraction& y, int max_m) {
  return y < impossibility_frontier(x, max_m);
}

RatioPoint sbo_curve_point(const Fraction& delta) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("sbo_curve_point: Delta > 0");
  }
  return {Fraction(1) + delta, Fraction(1) + Fraction(1) / delta};
}

}  // namespace storesched
