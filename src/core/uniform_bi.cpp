#include "core/uniform_bi.hpp"

#include <stdexcept>

namespace storesched {

namespace {

void check_uniform_inputs(const Instance& inst,
                          std::span<const std::int64_t> speeds,
                          const Fraction& delta) {
  if (inst.has_precedence()) {
    throw std::logic_error("uniform scheduling: independent tasks only");
  }
  check_speeds(speeds);
  if (speeds.size() != static_cast<std::size_t>(inst.m())) {
    throw std::invalid_argument("uniform scheduling: |speeds| != m");
  }
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("uniform scheduling: Delta must be > 0");
  }
}

}  // namespace

Fraction uniform_cmax(const Instance& inst, const Schedule& sched,
                      std::span<const std::int64_t> speeds) {
  check_speeds(speeds);
  std::vector<std::int64_t> weights;
  weights.reserve(inst.n());
  for (const Task& t : inst.tasks()) weights.push_back(t.p);
  return uniform_partition_value(weights, sched.assignment(), speeds);
}

UniformSboResult sbo_uniform_schedule(const Instance& inst,
                                      std::span<const std::int64_t> speeds,
                                      const Fraction& delta,
                                      const MakespanScheduler& alg2) {
  check_uniform_inputs(inst, speeds, delta);

  std::vector<std::int64_t> p_weights;
  std::vector<std::int64_t> s_weights;
  p_weights.reserve(inst.n());
  s_weights.reserve(inst.n());
  for (const Task& t : inst.tasks()) {
    p_weights.push_back(t.p);
    s_weights.push_back(t.s);
  }

  // pi_1: speed-aware ECT/LPT on processing times.
  const auto a1 = uniform_lpt_assign(p_weights, speeds);
  // pi_2: identical-machine schedule on storage (speed-independent).
  const auto a2 = alg2.assign(s_weights, inst.m());

  UniformSboResult result;
  result.c_ingredient = uniform_partition_value(p_weights, a1, speeds);
  result.m_ingredient = partition_value(s_weights, a2, inst.m());

  result.schedule = Schedule(inst);
  result.routed_to_pi2.assign(inst.n(), false);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    bool use_pi2 = false;
    if (result.c_ingredient == Fraction(0)) {
      use_pi2 = true;
    } else if (result.m_ingredient == 0) {
      use_pi2 = false;
    } else {
      // p_i / C < Delta * s_i / M with C rational: exact Fraction compare.
      use_pi2 = Fraction(inst.task(i).p) / result.c_ingredient <
                delta * Fraction(inst.task(i).s, result.m_ingredient);
    }
    result.routed_to_pi2[idx] = use_pi2;
    result.schedule.assign(i, use_pi2 ? a2[idx] : a1[idx]);
  }

  std::int64_t speed_max = 1;
  for (const std::int64_t s : speeds) speed_max = std::max(speed_max, s);
  result.cmax_bound = (Fraction(1) + delta) * result.c_ingredient;
  result.mmax_bound = (Fraction(1) + Fraction(speed_max) / delta) *
                      Fraction(result.m_ingredient);
  return result;
}

UniformSboResult sbo_uniform_schedule(const Instance& inst,
                                      std::span<const std::int64_t> speeds,
                                      const Fraction& delta) {
  const LptSchedulerAlg lpt;
  return sbo_uniform_schedule(inst, speeds, delta, lpt);
}

UniformRlsResult rls_uniform_schedule(const Instance& inst,
                                      std::span<const std::int64_t> speeds,
                                      const Fraction& delta,
                                      PriorityPolicy tie_break) {
  check_uniform_inputs(inst, speeds, delta);

  UniformRlsResult result;
  result.lb = inst.storage_lower_bound_fraction();
  result.cap = delta * result.lb;
  result.schedule = Schedule(inst);

  std::vector<std::int64_t> work(speeds.size(), 0);
  std::vector<Mem> memsize(speeds.size(), 0);

  for (const TaskId i : priority_order(inst, tie_break)) {
    // Earliest-completing processor within the memory budget.
    ProcId chosen = kNoProc;
    for (ProcId q = 0; q < inst.m(); ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (Fraction(memsize[qi] + inst.task(i).s) > result.cap) continue;
      if (chosen == kNoProc ||
          ratio_less(work[qi] + inst.task(i).p, speeds[qi],
                     work[static_cast<std::size_t>(chosen)] + inst.task(i).p,
                     speeds[static_cast<std::size_t>(chosen)])) {
        chosen = q;
      }
    }
    if (chosen == kNoProc) {
      result.feasible = false;
      return result;  // memory budgets only grow; stuck for good
    }
    const auto ci = static_cast<std::size_t>(chosen);
    result.schedule.assign(i, chosen);
    work[ci] += inst.task(i).p;
    memsize[ci] += inst.task(i).s;
  }

  result.feasible = true;
  Fraction makespan(0);
  for (std::size_t q = 0; q < work.size(); ++q) {
    makespan = Fraction::max(makespan, Fraction(work[q], speeds[q]));
  }
  result.makespan = makespan;
  return result;
}

}  // namespace storesched
