// The paper's negative results (Section 4): ratio pairs no algorithm can
// guarantee, and the impossibility-domain geometry behind Figure 3.
//
// Lemma 1:  nothing better than (1, 2) or (2, 1).
// Lemma 2:  for all m, k >= 2 and i in {0..k}, nothing better than
//           (1 + i/(km), 1 + (m-1)(1 - i/k)); as i/k is dense in [0, 1]
//           this traces, per m, the segment x = 1 + u/m,
//           y = 1 + (m-1)(1-u), u in [0, 1].
// Lemma 3:  nothing better than (3/2, 3/2).
//
// "Nothing better than (a, b)" means: no algorithm can guarantee BOTH
// Cmax < a * C*max AND Mmax < b * M*max on every instance. A pair (x, y)
// is *impossible* iff some witness (a, b) has x < a and y < b.
#pragma once

#include <optional>
#include <vector>

#include "common/fraction.hpp"

namespace storesched {

/// A ratio pair (cmax ratio, mmax ratio), exact.
struct RatioPoint {
  Fraction x;  ///< makespan ratio
  Fraction y;  ///< memory ratio

  friend bool operator==(const RatioPoint&, const RatioPoint&) = default;
};

/// Lemma 2 witness point for integer parameters (m, k >= 2, 0 <= i <= k):
/// (1 + i/(km), 1 + (m-1)(1 - i/k)).
RatioPoint lemma2_bound(int m, int k, int i);

/// Continuous Lemma 2 segment point for rational u = i/k in [0, 1]:
/// (1 + u/m, 1 + (m-1)(1-u)).
RatioPoint lemma2_bound_continuous(int m, const Fraction& u);

/// The Lemma 3 witness (3/2, 3/2).
RatioPoint lemma3_bound();

/// The Lemma 1 witnesses (1, 2) and (2, 1).
std::vector<RatioPoint> lemma1_bounds();

/// True iff the ratio pair (x, y) is proven impossible by Lemma 1, Lemma 3,
/// or a Lemma 2 segment with 2 <= m <= max_m (using the continuous form,
/// plus the symmetric segments with x and y swapped).
bool is_impossible(const Fraction& x, const Fraction& y, int max_m = 6);

/// For a makespan ratio x > 1, the largest memory ratio y such that every
/// y' < y makes (x, y') impossible -- i.e. the upper envelope of the
/// impossibility domain at abscissa x, over Lemmas 1-3 with m <= max_m.
/// Returns 1 when x is large enough that no bound bites.
Fraction impossibility_frontier(const Fraction& x, int max_m = 6);

/// Parametric SBO guarantee curve of Section 3 (Corollary 1, epsilon -> 0):
/// Delta -> (1 + Delta, 1 + 1/Delta). This is Figure 3's dashed curve.
RatioPoint sbo_curve_point(const Fraction& delta);

}  // namespace storesched
