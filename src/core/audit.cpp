#include "core/audit.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/env.hpp"
#include "core/rls.hpp"
#include "core/solver.hpp"

namespace storesched {

namespace {

/// Collector with printf-free formatting: audit("x", 3, " > ", 2) appends
/// one violation string.
class Findings {
 public:
  template <typename... Parts>
  void add(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations_.push_back(os.str());
  }

  std::vector<std::string> take() { return std::move(violations_); }
  bool empty() const { return violations_.empty(); }

 private:
  std::vector<std::string> violations_;
};

/// Structural checks: assignment ranges, start-time monotonicity and
/// non-overlap per processor, precedence feasibility. Returns false when the
/// shape is too broken for value checks (wrong n/m) to mean anything.
bool check_structure(const Instance& inst, const Schedule& sched,
                     Findings& findings) {
  if (sched.n() != inst.n() || sched.m() != inst.m()) {
    findings.add("schedule shape (n=", sched.n(), ", m=", sched.m(),
                 ") does not match the instance (n=", inst.n(),
                 ", m=", inst.m(), ")");
    return false;
  }
  const auto n = static_cast<TaskId>(inst.n());
  for (TaskId i = 0; i < n; ++i) {
    const ProcId q = sched.proc(i);
    if (q < 0 || q >= inst.m()) {
      findings.add("task ", i, " assigned to processor ", q,
                   " outside [0, ", inst.m(), ")");
      return false;
    }
  }

  if (!sched.timed()) {
    if (inst.has_precedence()) {
      findings.add(
          "precedence instance solved to an untimed schedule (edge "
          "feasibility is unverifiable)");
    }
    return true;
  }

  for (TaskId i = 0; i < n; ++i) {
    if (sched.start(i) < 0) {
      findings.add("task ", i, " starts at ", sched.start(i), " < 0");
      return false;
    }
  }

  // Per-processor timeline: sorted by start time, completions must be
  // monotone with no overlap (equal starts are legal only for zero-length
  // tasks, which the overlap test admits naturally).
  std::vector<std::vector<TaskId>> by_proc(static_cast<std::size_t>(inst.m()));
  for (TaskId i = 0; i < n; ++i) {
    by_proc[static_cast<std::size_t>(sched.proc(i))].push_back(i);
  }
  for (ProcId q = 0; q < inst.m(); ++q) {
    auto& tasks = by_proc[static_cast<std::size_t>(q)];
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      return std::make_pair(sched.start(a), a) <
             std::make_pair(sched.start(b), b);
    });
    for (std::size_t k = 1; k < tasks.size(); ++k) {
      const TaskId prev = tasks[k - 1];
      const TaskId next = tasks[k];
      if (sched.start(prev) + inst.task(prev).p > sched.start(next)) {
        findings.add("processor ", q, ": task ", prev, " [", sched.start(prev),
                     ", ", sched.start(prev) + inst.task(prev).p,
                     ") overlaps task ", next, " starting at ",
                     sched.start(next));
      }
    }
  }

  if (inst.has_precedence()) {
    const Dag& dag = inst.dag();
    for (TaskId u = 0; u < n; ++u) {
      for (const TaskId v : dag.succs(u)) {
        if (sched.start(u) + inst.task(u).p > sched.start(v)) {
          findings.add("precedence edge ", u, " -> ", v, " violated: ", u,
                       " completes at ", sched.start(u) + inst.task(u).p,
                       " after ", v, " starts at ", sched.start(v));
        }
      }
    }
  }
  return true;
}

/// The reported objectives (and optional sum Ci) must reproduce from the
/// schedule.
void check_objectives(const Instance& inst, const Schedule& sched,
                      const SolveResult& result, Findings& findings) {
  const ObjectivePoint measured = objectives(inst, sched);
  if (!(measured == result.objectives)) {
    findings.add("objectives (", result.objectives.cmax, ", ",
                 result.objectives.mmax, ") do not reproduce: measured (",
                 measured.cmax, ", ", measured.mmax, ")");
  }
  if (result.sum_ci) {
    if (!sched.timed()) {
      findings.add("sum_ci reported for an untimed schedule");
    } else if (const Time measured_ci = sum_completion_times(inst, sched);
               measured_ci != *result.sum_ci) {
      findings.add("sum_ci ", *result.sum_ci, " does not reproduce: measured ",
                   measured_ci);
    }
  }
}

/// Claimed per-run value bounds and the optional hard capacity.
void check_bounds(const Instance& inst, const Schedule& sched,
                  const SolveResult& result, const AuditOptions& options,
                  Findings& findings) {
  const ObjectivePoint measured = objectives(inst, sched);
  if (result.cmax_bound && Fraction(measured.cmax) > *result.cmax_bound) {
    findings.add("Cmax ", measured.cmax, " exceeds the claimed bound ",
                 result.cmax_bound->to_string());
  }
  if (result.mmax_bound && Fraction(measured.mmax) > *result.mmax_bound) {
    findings.add("Mmax ", measured.mmax, " exceeds the claimed bound ",
                 result.mmax_bound->to_string());
  }
  if (options.memory_capacity && measured.mmax > *options.memory_capacity) {
    findings.add("Mmax ", measured.mmax, " exceeds the hard capacity ",
                 *options.memory_capacity);
  }
}

/// RLS extras: the Delta ladder (rls.hpp). Delta > 0 to run at all, the cap
/// is Delta * LB with LB re-derived from the instance, the schedule honors
/// the cap, and Delta > 1 brings Lemma 4's marked-processor bound.
void check_rls_extras(const Instance& inst, const SolveResult& result,
                      Findings& findings) {
  const RlsResult& rls = *result.rls;
  if (!(Fraction(0) < result.delta)) {
    findings.add("rls extras with Delta = ", result.delta.to_string(),
                 " <= 0 (the run requires Delta > 0)");
    return;
  }
  const Fraction lb = inst.storage_lower_bound_fraction();
  if (!(rls.lb == lb)) {
    findings.add("rls LB ", rls.lb.to_string(),
                 " does not reproduce: instance LB ", lb.to_string());
  }
  if (!(rls.cap == result.delta * lb)) {
    findings.add("rls cap ", rls.cap.to_string(), " != Delta * LB = ",
                 (result.delta * lb).to_string());
  }
  if (result.feasible &&
      Fraction(mmax(inst, result.schedule)) > rls.cap) {
    findings.add("Mmax ", mmax(inst, result.schedule),
                 " exceeds the Delta * LB cap ", rls.cap.to_string());
  }
  if (rls.marked.size() != static_cast<std::size_t>(inst.m())) {
    findings.add("rls marked vector has ", rls.marked.size(),
                 " entries for m = ", inst.m());
  }
  const auto counted = static_cast<int>(
      std::count(rls.marked.begin(), rls.marked.end(), true));
  if (counted != rls.marked_count) {
    findings.add("rls marked_count ", rls.marked_count,
                 " does not reproduce: ", counted, " processors are marked");
  }
  if (Fraction(1) < result.delta &&
      rls.marked_count > rls_marked_bound(result.delta, inst.m())) {
    findings.add("Lemma 4 violated: ", rls.marked_count,
                 " marked processors > floor(m/(Delta-1)) = ",
                 rls_marked_bound(result.delta, inst.m()));
  }
  if (!rls.feasible && !rls.stuck_task) {
    findings.add("infeasible rls run does not name its stuck task");
  }
}

/// SBO extras: Delta > 0, ingredient values that reproduce from the
/// ingredient schedules, Properties 1-2 bounds rebuilt from those values,
/// and a combined assignment that matches the recorded routing.
void check_sbo_extras(const Instance& inst, const SolveResult& result,
                      Findings& findings) {
  const SboResult& sbo = *result.sbo;
  if (!(Fraction(0) < result.delta)) {
    findings.add("sbo extras with Delta = ", result.delta.to_string(),
                 " <= 0 (Algorithm 1 requires Delta > 0)");
    return;
  }
  if (inst.has_precedence()) {
    findings.add("sbo extras on a precedence instance (Algorithm 1 is "
                 "independent-tasks only)");
    return;
  }
  if (sbo.pi1.n() != inst.n() || sbo.pi2.n() != inst.n() ||
      sbo.routed_to_pi2.size() != inst.n()) {
    findings.add("sbo ingredient shapes do not match the instance");
    return;
  }
  if (cmax(inst, sbo.pi1) != sbo.c_ingredient) {
    findings.add("sbo C ingredient ", sbo.c_ingredient,
                 " does not reproduce: Cmax(pi1) = ", cmax(inst, sbo.pi1));
  }
  if (mmax(inst, sbo.pi2) != sbo.m_ingredient) {
    findings.add("sbo M ingredient ", sbo.m_ingredient,
                 " does not reproduce: Mmax(pi2) = ", mmax(inst, sbo.pi2));
  }
  const Fraction cmax_bound =
      (Fraction(1) + result.delta) * Fraction(sbo.c_ingredient);
  if (!(sbo.cmax_bound == cmax_bound)) {
    findings.add("sbo cmax_bound ", sbo.cmax_bound.to_string(),
                 " != (1 + Delta) * C = ", cmax_bound.to_string());
  }
  const Fraction mmax_bound =
      (Fraction(1) + Fraction(1) / result.delta) * Fraction(sbo.m_ingredient);
  if (!(sbo.mmax_bound == mmax_bound)) {
    findings.add("sbo mmax_bound ", sbo.mmax_bound.to_string(),
                 " != (1 + 1/Delta) * M = ", mmax_bound.to_string());
  }
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    const Schedule& origin =
        sbo.routed_to_pi2[static_cast<std::size_t>(i)] ? sbo.pi2 : sbo.pi1;
    if (sbo.schedule.proc(i) != origin.proc(i)) {
      findings.add("sbo routing for task ", i,
                   " does not match the combined assignment");
      break;
    }
  }
}

/// Exact-front extras: a strict staircase whose representative schedules
/// reproduce their points, with the returned schedule at the Cmax-optimal
/// end.
void check_pareto_extras(const Instance& inst, const SolveResult& result,
                         Findings& findings) {
  const ParetoEnumResult& pareto = *result.pareto;
  if (pareto.front.empty()) {
    findings.add("pareto extras with an empty front");
    return;
  }
  for (std::size_t k = 0; k < pareto.front.size(); ++k) {
    const LabelledPoint& point = pareto.front[k];
    if (k > 0) {
      const ObjectivePoint& prev = pareto.front[k - 1].value;
      if (!(prev.cmax < point.value.cmax && prev.mmax > point.value.mmax)) {
        findings.add("pareto front is not a strict staircase at entry ", k,
                     ": (", prev.cmax, ", ", prev.mmax, ") then (",
                     point.value.cmax, ", ", point.value.mmax, ")");
      }
    }
    if (point.tag < 0 ||
        static_cast<std::size_t>(point.tag) >= pareto.schedules.size()) {
      findings.add("pareto front entry ", k, " has tag ", point.tag,
                   " outside its schedule list");
      continue;
    }
    const Schedule& rep = pareto.schedules[static_cast<std::size_t>(point.tag)];
    if (rep.n() != inst.n()) {
      findings.add("pareto representative ", k, " has the wrong task count");
      continue;
    }
    if (const ObjectivePoint measured = objectives(inst, rep);
        !(measured == point.value)) {
      findings.add("pareto front point ", k, " (", point.value.cmax, ", ",
                   point.value.mmax, ") does not reproduce from its schedule: (",
                   measured.cmax, ", ", measured.mmax, ")");
    }
  }
  if (result.feasible &&
      !(result.objectives == pareto.front.front().value)) {
    findings.add("returned schedule is not the Cmax-optimal front end");
  }
}

}  // namespace

std::string AuditReport::to_string() const {
  std::string joined;
  for (const std::string& v : violations) {
    if (!joined.empty()) joined += "; ";
    joined += v;
  }
  return joined;
}

AuditReport audit_schedule(const Instance& inst, const Schedule& sched,
                           const SolveResult& result,
                           const AuditOptions& options) {
  Findings findings;

  if (!result.feasible) {
    // Infeasible results carry no schedule worth checking, but must explain
    // themselves, and an infeasible RLS run must name its stuck task.
    if (result.diagnostics.empty()) {
      findings.add("infeasible result with empty diagnostics");
    }
    if (result.rls) check_rls_extras(inst, result, findings);
    return AuditReport{findings.take()};
  }

  if (check_structure(inst, sched, findings)) {
    check_objectives(inst, sched, result, findings);
    check_bounds(inst, sched, result, options, findings);
    if (result.rls) check_rls_extras(inst, result, findings);
    if (result.sbo) check_sbo_extras(inst, result, findings);
    if (result.pareto) check_pareto_extras(inst, result, findings);
  }
  return AuditReport{findings.take()};
}

bool audit_enabled() {
  static const bool enabled = env_flag_set("STORESCHED_AUDIT");
  return enabled;
}

}  // namespace storesched
