#include "core/conditional.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/dag_generators.hpp"

namespace storesched {

void ConditionalInstance::validate() const {
  std::vector<bool> used(base.n(), false);
  for (const Branch& br : branches) {
    if (br.prob_a < 0.0 || br.prob_a > 1.0) {
      throw std::invalid_argument("Branch: prob_a outside [0, 1]");
    }
    for (const auto* arm : {&br.arm_a, &br.arm_b}) {
      for (const TaskId t : *arm) {
        if (t < 0 || static_cast<std::size_t>(t) >= base.n()) {
          throw std::invalid_argument("Branch: task id out of range");
        }
        if (used[static_cast<std::size_t>(t)]) {
          throw std::invalid_argument(
              "Branch: task appears in more than one arm");
        }
        used[static_cast<std::size_t>(t)] = true;
      }
    }
  }
}

Instance expand_scenario(const ConditionalInstance& cond,
                         const std::vector<bool>& choices) {
  cond.validate();
  if (choices.size() != cond.branches.size()) {
    throw std::invalid_argument("expand_scenario: one choice per branch");
  }
  std::vector<Task> tasks(cond.base.tasks().begin(), cond.base.tasks().end());
  for (std::size_t b = 0; b < cond.branches.size(); ++b) {
    const Branch& br = cond.branches[b];
    // The *unselected* arm's tasks never run: p -> 0, code stays resident.
    const std::vector<TaskId>& skipped = choices[b] ? br.arm_b : br.arm_a;
    for (const TaskId t : skipped) {
      tasks[static_cast<std::size_t>(t)].p = 0;
    }
  }
  if (cond.base.has_precedence()) {
    return Instance(std::move(tasks), cond.base.m(), cond.base.dag());
  }
  return Instance(std::move(tasks), cond.base.m());
}

ConditionalEvaluation evaluate_conditional(const ConditionalInstance& cond,
                                           const Schedule& sched, int samples,
                                           Rng& rng) {
  cond.validate();
  if (samples <= 0) {
    throw std::invalid_argument("evaluate_conditional: samples > 0");
  }
  if (!sched.timed()) {
    throw std::invalid_argument("evaluate_conditional: schedule must be timed");
  }

  ConditionalEvaluation eval;
  eval.mmax = mmax(cond.base, sched);
  eval.worst_case = cmax(cond.base, sched);

  // Which branch arm (if any) owns each task.
  struct Membership {
    int branch = -1;
    bool in_arm_a = false;
  };
  std::vector<Membership> member(cond.base.n());
  for (std::size_t b = 0; b < cond.branches.size(); ++b) {
    for (const TaskId t : cond.branches[b].arm_a) {
      member[static_cast<std::size_t>(t)] = {static_cast<int>(b), true};
    }
    for (const TaskId t : cond.branches[b].arm_b) {
      member[static_cast<std::size_t>(t)] = {static_cast<int>(b), false};
    }
  }

  Accumulator makespans;
  std::vector<bool> choices(cond.branches.size());
  for (int s = 0; s < samples; ++s) {
    for (std::size_t b = 0; b < choices.size(); ++b) {
      choices[b] = rng.bernoulli(cond.branches[b].prob_a);
    }
    Time span = 0;
    for (TaskId i = 0; i < static_cast<TaskId>(cond.base.n()); ++i) {
      const Membership& mb = member[static_cast<std::size_t>(i)];
      const bool executes =
          mb.branch < 0 ||
          choices[static_cast<std::size_t>(mb.branch)] == mb.in_arm_a;
      if (executes) {
        span = std::max(span, sched.start(i) + cond.base.task(i).p);
      }
    }
    makespans.add(static_cast<double>(span));
  }
  eval.makespan = makespans.summary();
  return eval;
}

RlsResult schedule_conditional(const ConditionalInstance& cond,
                               const Fraction& delta,
                               PriorityPolicy tie_break) {
  cond.validate();
  return rls_schedule(cond.base, delta, tie_break);
}

ConditionalInstance generate_conditional(std::size_t size_hint,
                                         int branch_count, int m, Rng& rng) {
  if (branch_count < 0 || m <= 0) {
    throw std::invalid_argument("generate_conditional: bad parameters");
  }
  ConditionalInstance cond;
  cond.base = generate_dag_by_name("layered", size_hint, m, {}, rng);

  // Carve disjoint branches out of distinct tasks: each branch takes two
  // disjoint runs of consecutive task ids as its arms.
  const std::size_t n = cond.base.n();
  const std::size_t arm_len =
      std::max<std::size_t>(
          1, n / (4 * static_cast<std::size_t>(std::max(branch_count, 1))));
  std::size_t cursor = 0;
  for (int b = 0; b < branch_count && cursor + 2 * arm_len <= n; ++b) {
    Branch br;
    for (std::size_t k = 0; k < arm_len; ++k) {
      br.arm_a.push_back(static_cast<TaskId>(cursor + k));
      br.arm_b.push_back(static_cast<TaskId>(cursor + arm_len + k));
    }
    br.prob_a = 0.25 + 0.5 * rng.uniform01();
    cond.branches.push_back(std::move(br));
    cursor += 2 * arm_len;
  }
  cond.validate();
  return cond;
}

}  // namespace storesched
