// Bi-objective scheduling on uniform (related) processors -- our
// implementation of the paper's "non identical processors" future-work
// item (Section 7), for Q | p_j, s_j | Cmax, Mmax.
//
// SBO extends cleanly once speeds are normalized to min speed 1:
//   * pi_1: ECT/LPT schedule of the processing times under the speeds,
//     with exact makespan C = Cmax(pi_1);
//   * pi_2: identical-machine schedule of the storage sizes (storage is
//     speed-independent), with M = Mmax(pi_2);
//   * route task i to pi_2 iff p_i / C < Delta * s_i / M (same threshold).
// Property-1 analogue: per processor q, the pi_2-routed tasks add at most
//   sum p_i / speed_q < Delta (C/M) * (sum s_i) / speed_q
//                     <= Delta * C / speed_q <= Delta * C
// (speed_q >= 1), so Cmax(pi_Delta) <= (1 + Delta) C -- unchanged.
//
// Property 2 does NOT carry over verbatim: a pi_1-routed task on a
// processor of speed s_q only satisfies work(q) <= C * s_q, so its storage
// obeys sum_{pi_1, q} s_i <= (M / (Delta C)) * C * s_q = M * s_q / Delta.
// The memory guarantee therefore weakens by the fastest speed:
//   Mmax(pi_Delta) <= (1 + speed_max / Delta) * M.
// (Tuning Delta' = Delta * speed_max recovers the identical-machine shape
// at the cost of the makespan ratio -- the speed heterogeneity is a real
// price, not an analysis artifact.) Both bounds are asserted exactly in
// tests.
//
// RLS extends as a heuristic: pick, among memory-feasible processors, the
// one finishing the task earliest. The Corollary 2 memory guarantee
// (Mmax <= Delta * LB) holds by construction; no makespan ratio is claimed
// (the paper leaves that open).
#pragma once

#include <vector>

#include "algorithms/graham.hpp"
#include "algorithms/scheduler.hpp"
#include "algorithms/uniform.hpp"
#include "common/instance.hpp"
#include "common/schedule.hpp"

namespace storesched {

struct UniformSboResult {
  Schedule schedule;     ///< combined assignment (untimed)
  Fraction c_ingredient; ///< exact Cmax(pi_1) under the speeds
  Mem m_ingredient = 0;  ///< Mmax(pi_2)
  Fraction cmax_bound;   ///< (1 + Delta) * C
  Fraction mmax_bound;   ///< (1 + speed_max/Delta) * M
  std::vector<bool> routed_to_pi2;
};

/// SBO on uniform processors. `speeds[q] >= 1` for all q, |speeds| == m.
/// `alg2` schedules the storage sizes on identical machines (defaulted to
/// LPT by the convenience overload). Independent tasks only.
UniformSboResult sbo_uniform_schedule(const Instance& inst,
                                      std::span<const std::int64_t> speeds,
                                      const Fraction& delta,
                                      const MakespanScheduler& alg2);

UniformSboResult sbo_uniform_schedule(const Instance& inst,
                                      std::span<const std::int64_t> speeds,
                                      const Fraction& delta);

/// Exact uniform makespan of an assignment-only schedule.
Fraction uniform_cmax(const Instance& inst, const Schedule& sched,
                      std::span<const std::int64_t> speeds);

struct UniformRlsResult {
  bool feasible = false;
  Schedule schedule;  ///< assignment-only (independent tasks; serialize per
                      ///< processor for wall-clock start times)
  Fraction lb;        ///< Graham storage bound (speed-independent)
  Fraction cap;       ///< Delta * LB
  Fraction makespan;  ///< exact wall-clock makespan max_q work_q / speed_q
};

/// RLS on uniform processors for independent tasks: each step places the
/// next task (in `tie_break` order) on the memory-feasible processor that
/// finishes it earliest. Memory guarantee Mmax <= Delta * LB as in the
/// identical case; feasible whenever Delta > 2.
UniformRlsResult rls_uniform_schedule(const Instance& inst,
                                      std::span<const std::int64_t> speeds,
                                      const Fraction& delta,
                                      PriorityPolicy tie_break =
                                          PriorityPolicy::kLpt);

}  // namespace storesched
