#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace storesched {

namespace {

[[noreturn]] void journal_fail(const std::string& what) {
  throw std::runtime_error("journal: " + what + ": " + std::strerror(errno));
}

/// Parses one "v1 a b c d" line; nullopt on anything else (torn tails,
/// foreign text, future versions).
std::optional<JournalCheckpoint> parse_checkpoint(const std::string& line) {
  std::istringstream is(line);
  std::string version;
  JournalCheckpoint cp;
  if (!(is >> version >> cp.completed >> cp.source_lines >> cp.out_lines >>
        cp.err_lines) ||
      version != "v1") {
    return std::nullopt;
  }
  std::string trailing;
  if (is >> trailing) return std::nullopt;
  return cp;
}

}  // namespace

StreamJournal::StreamJournal(const std::string& path, bool fresh) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (fresh) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) journal_fail("cannot open \"" + path + "\"");
}

StreamJournal::~StreamJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void StreamJournal::append(const JournalCheckpoint& checkpoint) {
  std::ostringstream os;
  os << "v1 " << checkpoint.completed << ' ' << checkpoint.source_lines << ' '
     << checkpoint.out_lines << ' ' << checkpoint.err_lines << '\n';
  const std::string line = os.str();
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      journal_fail("append failed");
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) journal_fail("fsync failed");
}

std::optional<JournalCheckpoint> StreamJournal::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::optional<JournalCheckpoint> last;
  std::string line;
  while (std::getline(in, line)) {
    if (const auto cp = parse_checkpoint(line)) last = cp;
  }
  return last;
}

void truncate_to_lines(const std::string& path, std::size_t lines) {
  if (lines == 0) {
    // Start the file empty whether or not it exists yet.
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("journal: cannot truncate \"" + path + "\"");
    }
    return;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("journal: \"" + path + "\" is missing but the " +
                             "journal records " + std::to_string(lines) +
                             " lines in it");
  }
  std::size_t seen = 0;
  std::streamoff offset = 0;
  std::string line;
  while (seen < lines && std::getline(in, line)) {
    ++seen;
    offset = in.tellg() == std::streamoff(-1)
                 ? offset + static_cast<std::streamoff>(line.size())
                 : static_cast<std::streamoff>(in.tellg());
  }
  if (seen < lines) {
    throw std::runtime_error(
        "journal: \"" + path + "\" holds " + std::to_string(seen) +
        " lines but the journal records " + std::to_string(lines) +
        " -- refusing to resume from inconsistent state");
  }
  in.close();
  if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
    journal_fail("truncate of \"" + path + "\" failed");
  }
}

StreamStats run_journaled_jsonl(const Solver& solver,
                                const JournaledRunOptions& journal,
                                const SolveOptions& options,
                                const StreamOptions& stream) {
  if (!stream.ordered) {
    throw std::invalid_argument(
        "run_journaled_jsonl: the journal requires ordered delivery");
  }
  if (journal.journal_every == 0) {
    throw std::invalid_argument(
        "run_journaled_jsonl: journal_every must be >= 1");
  }

  // Where to pick up. A --resume with no (or an unreadable) journal is a
  // fresh start, not an error: the first run of a supervised loop always
  // begins with --resume.
  JournalCheckpoint base;
  if (journal.resume) {
    if (const auto cp = StreamJournal::load(journal.journal_path)) base = *cp;
  }

  // Make the files match the checkpoint exactly: everything past it will
  // be re-solved and re-written (this is what makes output exactly-once).
  truncate_to_lines(journal.output_path, base.out_lines);
  if (!journal.errors_path.empty()) {
    truncate_to_lines(journal.errors_path, base.err_lines);
  }
  StreamJournal log(journal.journal_path, /*fresh=*/!journal.resume);

  std::ifstream in(journal.input_path);
  if (!in) {
    throw std::runtime_error("run_journaled_jsonl: cannot open input \"" +
                             journal.input_path + "\"");
  }
  std::string skipped;
  for (std::size_t i = 0; i < base.source_lines; ++i) {
    if (!std::getline(in, skipped)) {
      throw std::runtime_error(
          "run_journaled_jsonl: input \"" + journal.input_path + "\" holds " +
          std::to_string(i) + " lines but the journal consumed " +
          std::to_string(base.source_lines));
    }
  }

  std::ofstream out(journal.output_path, std::ios::app);
  if (!out) {
    throw std::runtime_error("run_journaled_jsonl: cannot open output \"" +
                             journal.output_path + "\"");
  }
  std::ofstream err_file;
  std::optional<JsonlErrorSink> err_sink;
  if (!journal.errors_path.empty()) {
    err_file.open(journal.errors_path, std::ios::app);
    if (!err_file) {
      throw std::runtime_error("run_journaled_jsonl: cannot open errors \"" +
                               journal.errors_path + "\"");
    }
    err_sink.emplace(err_file);
  }

  JsonlInstanceSource source(in, /*first_line=*/base.source_lines);
  JsonlResultSink sink(out, journal.result_options);

  StreamOptions run = stream;
  run.start_index = base.completed;
  run.errors = err_sink ? &*err_sink : nullptr;
  run.progress = [&](const StreamProgress& p) {
    if ((p.completed - base.completed) % journal.journal_every != 0) return;
    // Flush data before the checkpoint that references it: the journaled
    // counts must never run ahead of the files.
    out.flush();
    if (err_sink) err_file.flush();
    if (!out || (err_sink && !err_file)) {
      throw StreamWriteError("run_journaled_jsonl: flush failed");
    }
    log.append({p.completed, p.source_lines, base.out_lines + p.delivered,
                base.err_lines + p.failed});
  };

  StreamStats stats = solve_stream(solver, source, sink, options, run);

  // Final checkpoint: the run's true end state (the per-record cadence may
  // have skipped the last records, and cancellation stops mid-cadence).
  out.flush();
  if (err_sink) err_file.flush();
  if (!out || (err_sink && !err_file)) {
    throw StreamWriteError("run_journaled_jsonl: final flush failed");
  }
  log.append({base.completed + stats.delivered + stats.failed,
              stats.source_lines, base.out_lines + stats.delivered,
              base.err_lines + stats.failed});
  return stats;
}

}  // namespace storesched
