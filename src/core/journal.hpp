// Crash-safe resume for JSONL streaming runs.
//
// A journaled run appends one checkpoint line per retired batch of records
// to an append-only journal file, fsync'd on every append:
//
//   v1 <completed> <source_lines> <out_lines> <err_lines>
//
//   completed     records retired (delivered or recorded as failed) from
//                 the head of the stream -- the next run's start index
//   source_lines  physical input lines those records consumed
//   out_lines     result lines in the output file at that point
//   err_lines     error records in the error file at that point
//
// The counters ride the ordered-delivery contract of solve_stream's
// StreamProgress callback: everything below `completed` is contiguously
// done, so a process killed mid-stream loses at most the in-flight window
// plus whatever was retired after the last checkpoint. Resuming replays
// none of the finished prefix:
//
//   1. load() the last well-formed journal line (a torn tail from a crash
//      mid-append parses as garbage and is skipped);
//   2. truncate the output/error files back to out_lines/err_lines --
//      lines written after that checkpoint belong to records the resumed
//      run will re-solve, so dropping them is what makes output
//      exactly-once;
//   3. skip source_lines physical input lines and restart the stream at
//      start_index = completed.
//
// run_journaled_jsonl() packages those steps for the CLI (--journal /
// --resume) and the kill-and-resume tests: byte-identical output to an
// uninterrupted run, by construction. Output and error streams are
// flushed before every journal append, so the journaled line counts never
// run ahead of the files (the invariant truncation relies on).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/stream.hpp"

namespace storesched {

/// One parsed journal line (all counters are cumulative totals).
struct JournalCheckpoint {
  std::size_t completed = 0;
  std::size_t source_lines = 0;
  std::size_t out_lines = 0;
  std::size_t err_lines = 0;
};

/// Append-only, fsync-per-append checkpoint log. One writer at a time;
/// append() throws std::runtime_error when the write or fsync fails (a
/// journal that cannot be trusted must stop the run, not limp on).
class StreamJournal {
 public:
  /// Opens `path` for appending, creating it if missing; `fresh` truncates
  /// first (a new run re-using an old journal path starts clean).
  explicit StreamJournal(const std::string& path, bool fresh);
  ~StreamJournal();
  StreamJournal(const StreamJournal&) = delete;
  StreamJournal& operator=(const StreamJournal&) = delete;

  void append(const JournalCheckpoint& checkpoint);

  /// The last well-formed checkpoint in the file at `path`, or nullopt
  /// when the file is missing, empty, or holds no parseable line. A torn
  /// final line (crash mid-append) is simply ignored.
  static std::optional<JournalCheckpoint> load(const std::string& path);

 private:
  int fd_ = -1;
};

/// Truncates the file at `path` to its first `lines` lines. A missing file
/// counts as zero lines. Throws std::runtime_error when the file holds
/// fewer than `lines` lines -- the journal claims data the file does not
/// have, so resuming would silently lose records.
void truncate_to_lines(const std::string& path, std::size_t lines);

/// A journaled (and resumable) JSONL streaming run; everything the CLI's
/// --journal/--resume path does, reusable by tests.
struct JournaledRunOptions {
  std::string input_path;    ///< instance JSONL (must be a real file)
  std::string output_path;   ///< result JSONL, truncated/extended in place
  std::string errors_path;   ///< error-record JSONL; empty = drop records
  std::string journal_path;  ///< the checkpoint log
  bool resume = false;       ///< pick up from the journal instead of fresh
  /// Checkpoint every N retired records (>= 1). Records retired after the
  /// last checkpoint are re-solved on resume, so N trades fsync traffic
  /// against repeated work.
  std::size_t journal_every = 1;
  JsonlResultOptions result_options;
};

/// Runs `solver` over the journaled pipeline. `stream.ordered` must be
/// true (the default) -- the journal's contiguity contract has no meaning
/// as-completed -- and `stream.errors`, `stream.progress`, and
/// `stream.start_index` are owned by the journal plumbing; pass policy,
/// threads, window, and cancellation through `stream` as usual. Returns
/// the stats of THIS run (a resumed run reports only the records it
/// processed itself).
StreamStats run_journaled_jsonl(const Solver& solver,
                                const JournaledRunOptions& journal,
                                const SolveOptions& options = {},
                                const StreamOptions& stream = {});

}  // namespace storesched
