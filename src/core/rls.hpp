// RLS_Delta -- Restricted List Scheduling (paper Section 5.1, Algorithm 2).
//
// Computes the Graham storage lower bound LB = max(max_i s_i, sum_i s_i / m)
// and forbids any processor from exceeding the degraded budget Delta * LB.
// Tasks are then scheduled one at a time: among all ready tasks, the one
// that can start soonest goes on the least-loaded processor that still has
// memory budget for it. Ties are broken by a total task order (the paper's
// "arbitrary total ordering"; SPT yields the Section 5.2 tri-objective
// guarantee).
//
// Guarantees for Delta > 2 (Corollaries 2-3):
//   Mmax <= Delta * LB <= Delta * M*max
//   Cmax <= (2 + 1/(Delta-2) - (Delta-1)/(m(Delta-2))) * C*max
// For Delta <= 2 a task may fit on no processor; the run is then reported
// infeasible (the paper notes the algorithm "can not take as input values
// of Delta lower or equal to 2").
//
// The analysis channel records which processors were ever "marked" --
// skipped for memory while a strictly less-loaded choice existed, recorded
// for the task actually placed each step -- so Lemma 4 (at most
// floor(m/(Delta-1)) marked processors) is a checkable runtime property,
// asserted after every run with Delta > 1.
//
// Two interchangeable engines produce bit-identical results:
//   * rls_schedule_fast      -- the ready-event kernel (default): the ready
//     frontier lives in storage-indexed segment trees keyed
//     (earliest-start, rank), each step's winner comes from an ascending
//     time-event sweep with one log-time descent per event, and the
//     Delta * LB cap is hoisted to one integer compare. One code path for
//     independent and DAG instances, ~O(n (log n + m)) either way -- the
//     per-step cost that scales with the instance (the ready frontier) is
//     logarithmic and never depends on the frontier width; processor
//     bookkeeping is a deliberate O(m) contiguous pass (m is hundreds at
//     most). See rls_engine.hpp and docs/ALGORITHMS.md ("The DAG kernel").
//   * rls_schedule_reference -- the paper-faithful O(n^2 m) rescan with
//     exact Fraction arithmetic in the inner loop (the equivalence oracle).
// rls_schedule() routes to the fast engine unless the environment variable
// STORESCHED_RLS_REFERENCE is set to a non-empty value other than "0".
#pragma once

#include <optional>
#include <vector>

#include "algorithms/graham.hpp"
#include "common/fraction.hpp"
#include "common/instance.hpp"
#include "common/schedule.hpp"

namespace storesched {

struct RlsResult {
  bool feasible = false;
  Schedule schedule;  ///< timed schedule (valid only when feasible)
  Fraction lb;        ///< Graham storage lower bound LB
  Fraction cap;       ///< Delta * LB, the per-processor memory budget

  /// Analysis channel (Lemma 4): marked[q] iff processor q was at some
  /// point rejected for memory while a less-loaded choice existed.
  std::vector<bool> marked;
  int marked_count = 0;

  /// Id of the first task that fit on no processor (infeasible runs only).
  std::optional<TaskId> stuck_task;
};

/// Runs RLS_Delta on an independent or precedence-constrained instance.
///
/// Precondition ladder (one story, asserted in tests):
///   * Delta > 0  -- required to run at all (throws std::invalid_argument
///                   otherwise); the memory budget Delta * LB is enforced
///                   by construction on every run that completes;
///   * Delta > 1  -- required by Lemma 4's marked-processor bound
///                   (rls_marked_bound below);
///   * Delta > 2  -- required for the Corollary 2-3 guarantees: provable
///                   feasibility and the Lemma 5 makespan ratio. At
///                   Delta <= 2 the run is legal but may come back
///                   infeasible, and SolveResult-level consumers (see
///                   core/solver.hpp) report a guarantee-zone diagnostic
///                   instead of ratios.
/// Deterministic for a fixed tie-break policy. Dispatches to
/// rls_schedule_fast() unless STORESCHED_RLS_REFERENCE is set (see above).
RlsResult rls_schedule(const Instance& inst, const Fraction& delta,
                       PriorityPolicy tie_break = PriorityPolicy::kInputOrder);

/// The ready-event kernel behind rls_schedule(): ~O(n (log n + m)) on
/// independent *and* precedence-constrained instances (the independent
/// case is the all-ready instantiation of the same code path; the m term
/// is a contiguous processor pass, not a ready-set rescan).
/// Bit-identical to rls_schedule_reference() on every input (schedule,
/// marks, feasibility verdict, stuck task).
RlsResult rls_schedule_fast(
    const Instance& inst, const Fraction& delta,
    PriorityPolicy tie_break = PriorityPolicy::kInputOrder);

/// The seed's faithful O(n^2 m) implementation of Algorithm 2: the ready
/// set is re-scanned after every placement, with exact Fraction arithmetic
/// in the innermost memory test. Kept as the equivalence oracle for the
/// fast engine and for bench_hotpath's old-vs-new measurements.
RlsResult rls_schedule_reference(
    const Instance& inst, const Fraction& delta,
    PriorityPolicy tie_break = PriorityPolicy::kInputOrder);

/// Lemma 4's bound on the number of marked processors:
/// floor(m / (Delta - 1)). Requires Delta > 1.
std::int64_t rls_marked_bound(const Fraction& delta, int m);

}  // namespace storesched
