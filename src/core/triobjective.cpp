#include "core/triobjective.hpp"

#include <stdexcept>

namespace storesched {

TriObjectiveResult tri_objective_schedule(const Instance& inst,
                                          const Fraction& delta) {
  if (inst.has_precedence()) {
    throw std::logic_error("tri_objective_schedule: independent tasks only");
  }

  TriObjectiveResult result;
  result.rls = rls_schedule(inst, delta, PriorityPolicy::kSpt);
  if (result.rls.feasible) {
    result.objectives = tri_objectives(inst, result.rls.schedule);
  }
  if (Fraction(2) < delta) {
    result.cmax_ratio = rls_cmax_ratio(delta, inst.m());
    result.mmax_ratio = rls_mmax_ratio(delta);
    result.sumci_ratio = rls_sumci_ratio(delta);
    result.has_guarantee = true;
  }
  return result;
}

}  // namespace storesched
