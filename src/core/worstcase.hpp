// Adversarial instance search for RLS tightness.
//
// Section 7 of the paper: "The approximation ratio of the Restricted List
// Scheduling algorithm does not seem to be tight. Thus, the approximation
// ratios should be improved or a tight counter example should be
// presented." This module mechanizes the counter-example hunt: randomized
// hill climbing over small instances, mutating task weights to maximize
// the *measured* ratio Cmax(RLS_Delta) / C*max (exact optimum from branch
// and bound on the processing times -- valid for independent tasks, where
// C*max of the bi-objective-feasible space is bounded below by the
// single-objective optimum).
#pragma once

#include <cstdint>

#include "common/instance.hpp"
#include "common/rng.hpp"
#include "core/rls.hpp"

namespace storesched {

struct WorstCaseResult {
  Instance instance;     ///< worst instance found
  double measured_ratio = 0.0;  ///< Cmax(RLS) / C*max on it
  double bound = 0.0;           ///< Lemma 5's guarantee for (Delta, m)
  std::uint64_t evaluations = 0;
};

/// Hill-climbs `restarts` random starting instances (n tasks, m
/// processors, weights in [1, w_max]) for `steps` mutations each, keeping
/// the instance that maximizes the RLS makespan ratio at the given Delta
/// (> 2). Exact optima via branch and bound; keep n <= ~16.
WorstCaseResult search_rls_worst_case(int n, int m, const Fraction& delta,
                                      int restarts, int steps,
                                      std::int64_t w_max, Rng& rng);

}  // namespace storesched
