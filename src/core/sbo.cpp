#include "core/sbo.hpp"

#include <stdexcept>

#include "core/theory.hpp"

namespace storesched {

namespace {

/// Exact test  p / C < (num/den) * s / M  <=>  p * den * M < num * s * C,
/// with all quantities non-negative and C, M > 0.
bool below_threshold(Time p, Time c, Mem s, Mem m, const Fraction& delta) {
  const Int128 lhs = static_cast<Int128>(p) * delta.den() * m;
  const Int128 rhs = static_cast<Int128>(delta.num()) * s * c;
  return lhs < rhs;
}

}  // namespace

SboResult sbo_schedule(const Instance& inst, const Fraction& delta,
                       const MakespanScheduler& alg1,
                       const MakespanScheduler& alg2) {
  if (inst.has_precedence()) {
    throw std::logic_error("sbo_schedule: independent tasks only");
  }
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("sbo_schedule: Delta must be > 0");
  }

  // Ingredient schedules: alg1 on processing times, alg2 on storage sizes.
  std::vector<std::int64_t> p_weights;
  std::vector<std::int64_t> s_weights;
  p_weights.reserve(inst.n());
  s_weights.reserve(inst.n());
  for (const Task& t : inst.tasks()) {
    p_weights.push_back(t.p);
    s_weights.push_back(t.s);
  }

  SboResult result;
  result.pi1 = Schedule(inst);
  result.pi2 = Schedule(inst);
  const auto a1 = alg1.assign(p_weights, inst.m());
  const auto a2 = alg2.assign(s_weights, inst.m());
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    result.pi1.assign(i, a1[static_cast<std::size_t>(i)]);
    result.pi2.assign(i, a2[static_cast<std::size_t>(i)]);
  }

  result.c_ingredient = cmax(inst, result.pi1);
  result.m_ingredient = mmax(inst, result.pi2);

  // Combine by the Delta threshold. With C = 0 (all p zero) every makespan
  // is 0, so pi_2 is safe; with M = 0 (all s zero) pi_1 is safe.
  result.schedule = Schedule(inst);
  result.routed_to_pi2.assign(inst.n(), false);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    bool use_pi2 = false;
    if (result.c_ingredient == 0) {
      use_pi2 = true;
    } else if (result.m_ingredient == 0) {
      use_pi2 = false;
    } else {
      use_pi2 = below_threshold(inst.task(i).p, result.c_ingredient,
                                inst.task(i).s, result.m_ingredient, delta);
    }
    result.routed_to_pi2[static_cast<std::size_t>(i)] = use_pi2;
    result.schedule.assign(i, use_pi2 ? result.pi2.proc(i) : result.pi1.proc(i));
  }

  // Per-run value bounds from Properties 1-2.
  result.cmax_bound = (Fraction(1) + delta) * Fraction(result.c_ingredient);
  result.mmax_bound =
      (Fraction(1) + Fraction(1) / delta) * Fraction(result.m_ingredient);
  return result;
}

SboResult sbo_schedule(const Instance& inst, const Fraction& delta,
                       const MakespanScheduler& alg) {
  return sbo_schedule(inst, delta, alg, alg);
}

}  // namespace storesched
