#include "core/sbo.hpp"

#include <stdexcept>

#include "core/theory.hpp"

namespace storesched {

namespace {

/// The exact per-task threshold test
///   p / C < (num/den) * s / M   <=>   p * (den * M) < s * (num * C)
/// with the two cross-multiplied Int128 constants hoisted out of the loop
/// (library inputs stay within ~2^40, so the remaining per-task product
/// cannot overflow 128 bits). With C = 0 (all p zero) every makespan is 0,
/// so pi_2 is safe; with M = 0 (all s zero) pi_1 is safe.
struct ThresholdRouter {
  ThresholdRouter(const SboIngredients& ing, const Fraction& delta)
      : lhs_scale(static_cast<Int128>(delta.den()) * ing.m_ingredient),
        rhs_scale(static_cast<Int128>(delta.num()) * ing.c_ingredient),
        c(ing.c_ingredient),
        m(ing.m_ingredient) {}

  bool use_pi2(const Task& t) const {
    if (c == 0) return true;
    if (m == 0) return false;
    return t.p * lhs_scale < t.s * rhs_scale;
  }

  Int128 lhs_scale;
  Int128 rhs_scale;
  Time c;
  Mem m;
};

}  // namespace

SboIngredients sbo_ingredients(const Instance& inst,
                               const MakespanScheduler& alg1,
                               const MakespanScheduler& alg2) {
  if (inst.has_precedence()) {
    throw std::logic_error("sbo_schedule: independent tasks only");
  }

  // Ingredient schedules: alg1 on processing times, alg2 on storage sizes.
  std::vector<std::int64_t> p_weights;
  std::vector<std::int64_t> s_weights;
  p_weights.reserve(inst.n());
  s_weights.reserve(inst.n());
  for (const Task& t : inst.tasks()) {
    p_weights.push_back(t.p);
    s_weights.push_back(t.s);
  }

  SboIngredients ing;
  ing.pi1 = Schedule(inst);
  ing.pi2 = Schedule(inst);
  const auto a1 = alg1.assign(p_weights, inst.m());
  const auto a2 = alg2.assign(s_weights, inst.m());
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    ing.pi1.assign(i, a1[static_cast<std::size_t>(i)]);
    ing.pi2.assign(i, a2[static_cast<std::size_t>(i)]);
  }
  ing.c_ingredient = cmax(inst, ing.pi1);
  ing.m_ingredient = mmax(inst, ing.pi2);
  return ing;
}

Schedule sbo_route(const Instance& inst, const SboIngredients& ing,
                   const Fraction& delta) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("sbo_schedule: Delta must be > 0");
  }
  const ThresholdRouter router(ing, delta);
  Schedule sched(inst);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    sched.assign(
        i, router.use_pi2(inst.task(i)) ? ing.pi2.proc(i) : ing.pi1.proc(i));
  }
  return sched;
}

SboResult sbo_combine(const Instance& inst, const SboIngredients& ing,
                      const Fraction& delta) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("sbo_schedule: Delta must be > 0");
  }

  SboResult result;
  result.pi1 = ing.pi1;
  result.pi2 = ing.pi2;
  result.c_ingredient = ing.c_ingredient;
  result.m_ingredient = ing.m_ingredient;

  const ThresholdRouter router(ing, delta);
  result.schedule = Schedule(inst);
  result.routed_to_pi2.assign(inst.n(), false);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    const bool use_pi2 = router.use_pi2(inst.task(i));
    result.routed_to_pi2[static_cast<std::size_t>(i)] = use_pi2;
    result.schedule.assign(i, use_pi2 ? ing.pi2.proc(i) : ing.pi1.proc(i));
  }

  // Per-run value bounds from Properties 1-2.
  result.cmax_bound = (Fraction(1) + delta) * Fraction(ing.c_ingredient);
  result.mmax_bound =
      (Fraction(1) + Fraction(1) / delta) * Fraction(ing.m_ingredient);
  return result;
}

SboResult sbo_schedule(const Instance& inst, const Fraction& delta,
                       const MakespanScheduler& alg1,
                       const MakespanScheduler& alg2) {
  // Precondition order matches the seed: the precedence check (inside
  // sbo_ingredients) fires before the Delta check (inside sbo_combine).
  return sbo_combine(inst, sbo_ingredients(inst, alg1, alg2), delta);
}

SboResult sbo_schedule(const Instance& inst, const Fraction& delta,
                       const MakespanScheduler& alg) {
  return sbo_schedule(inst, delta, alg, alg);
}

}  // namespace storesched
