#include "core/front_approx.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "common/parallel.hpp"
#include "core/rls.hpp"
#include "core/sbo.hpp"

namespace storesched {

std::vector<Fraction> delta_grid(const Fraction& lo, const Fraction& hi,
                                 int steps) {
  if (!(Fraction(0) < lo) || hi < lo) {
    throw std::invalid_argument("delta_grid: need 0 < lo <= hi");
  }
  if (steps < 1) throw std::invalid_argument("delta_grid: steps >= 1");
  if (steps == 1) return {lo};

  // Geometric interpolation, rationalized to a fixed denominator so the
  // grid stays exact and reproducible.
  constexpr std::int64_t kDen = 1 << 16;
  std::vector<Fraction> grid;
  grid.reserve(static_cast<std::size_t>(steps));
  const double llo = std::log(lo.to_double());
  const double lhi = std::log(hi.to_double());
  for (int i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps - 1);
    const double v = std::exp(llo + t * (lhi - llo));
    const auto num = static_cast<std::int64_t>(std::llround(v * kDen));
    grid.emplace_back(std::max<std::int64_t>(num, 1), kDen);
  }
  grid.front() = lo;
  grid.back() = hi;
  return grid;
}

std::vector<FrontPoint> pareto_filter_front(std::vector<FrontPoint> raw) {
  std::sort(raw.begin(), raw.end(), [](const FrontPoint& a, const FrontPoint& b) {
    if (a.value.cmax != b.value.cmax) return a.value.cmax < b.value.cmax;
    return a.value.mmax < b.value.mmax;
  });
  std::vector<FrontPoint> front;
  for (FrontPoint& pt : raw) {
    if (!front.empty() && front.back().value.mmax <= pt.value.mmax) continue;
    front.push_back(std::move(pt));
  }
  return front;
}

ApproxFront sweep_delta_grid(
    const Instance& inst, std::span<const Fraction> grid,
    const std::function<std::optional<Schedule>(const Fraction&)>& solve_at) {
  // Results land at their grid index, so the collected front is identical
  // to the serial per-Delta loop whatever the worker interleaving.
  std::vector<std::optional<FrontPoint>> sweep(grid.size());
  parallel_for(grid.size(), 0, [&](std::size_t i) {
    std::optional<Schedule> sched = solve_at(grid[i]);
    if (!sched) return;
    const ObjectivePoint value = objectives(inst, *sched);
    sweep[i] = FrontPoint{grid[i], std::move(*sched), value};
  });

  ApproxFront result;
  result.runs = static_cast<int>(grid.size());
  std::vector<FrontPoint> raw;
  for (std::optional<FrontPoint>& pt : sweep) {
    if (pt) raw.push_back(std::move(*pt));
  }
  result.points = pareto_filter_front(std::move(raw));
  return result;
}

ApproxFront sbo_sweep(const Instance& inst, const MakespanScheduler& alg1,
                      const MakespanScheduler& alg2,
                      std::span<const Fraction> grid) {
  const SboIngredients ing = sbo_ingredients(inst, alg1, alg2);
  return sweep_delta_grid(inst, grid, [&](const Fraction& delta) {
    return std::optional<Schedule>(sbo_route(inst, ing, delta));
  });
}

ApproxFront sbo_front(const Instance& inst, const MakespanScheduler& alg,
                      int steps) {
  const auto grid = delta_grid(Fraction(1, 8), Fraction(8), steps);
  return sbo_sweep(inst, alg, alg, grid);
}

ApproxFront rls_front(const Instance& inst, int steps, const Fraction& hi) {
  if (!(Fraction(2) < hi)) {
    throw std::invalid_argument("rls_front: hi must exceed 2");
  }
  // Grid over (2, hi]: Delta = 2 + g with g geometric in [hi/64 - ish, hi-2].
  std::vector<Fraction> grid;
  for (const Fraction& gap : delta_grid((hi - Fraction(2)) / Fraction(64),
                                        hi - Fraction(2), steps)) {
    grid.push_back(Fraction(2) + gap);
  }
  return sweep_delta_grid(inst, grid, [&](const Fraction& delta) {
    RlsResult run = rls_schedule(inst, delta, PriorityPolicy::kBottomLevel);
    if (!run.feasible) return std::optional<Schedule>();  // Delta <= 2 only
    return std::optional<Schedule>(std::move(run.schedule));
  });
}

double coverage_epsilon(const std::vector<FrontPoint>& front,
                        std::span<const LabelledPoint> reference) {
  if (front.empty() || reference.empty()) {
    throw std::invalid_argument("coverage_epsilon: empty front");
  }
  double worst = 1.0;
  for (const LabelledPoint& ref : reference) {
    double best = std::numeric_limits<double>::infinity();
    for (const FrontPoint& pt : front) {
      // Scale factor needed for pt to dominate ref on both axes.
      const double fc = ref.value.cmax > 0
                            ? static_cast<double>(pt.value.cmax) /
                                  static_cast<double>(ref.value.cmax)
                            : (pt.value.cmax > 0 ? std::numeric_limits<double>::infinity() : 1.0);
      const double fm = ref.value.mmax > 0
                            ? static_cast<double>(pt.value.mmax) /
                                  static_cast<double>(ref.value.mmax)
                            : (pt.value.mmax > 0 ? std::numeric_limits<double>::infinity() : 1.0);
      best = std::min(best, std::max({fc, fm, 1.0}));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace storesched
