#include "core/front_approx.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rls.hpp"
#include "core/sbo.hpp"

namespace storesched {

std::vector<Fraction> delta_grid(const Fraction& lo, const Fraction& hi,
                                 int steps) {
  if (!(Fraction(0) < lo) || hi < lo) {
    throw std::invalid_argument("delta_grid: need 0 < lo <= hi");
  }
  if (steps < 1) throw std::invalid_argument("delta_grid: steps >= 1");
  if (steps == 1) return {lo};

  // Geometric interpolation, rationalized to a fixed denominator so the
  // grid stays exact and reproducible.
  constexpr std::int64_t kDen = 1 << 16;
  std::vector<Fraction> grid;
  grid.reserve(static_cast<std::size_t>(steps));
  const double llo = std::log(lo.to_double());
  const double lhi = std::log(hi.to_double());
  for (int i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps - 1);
    const double v = std::exp(llo + t * (lhi - llo));
    const auto num = static_cast<std::int64_t>(std::llround(v * kDen));
    grid.emplace_back(std::max<std::int64_t>(num, 1), kDen);
  }
  grid.front() = lo;
  grid.back() = hi;
  return grid;
}

std::vector<FrontPoint> pareto_filter_front(std::vector<FrontPoint> raw) {
  std::sort(raw.begin(), raw.end(), [](const FrontPoint& a, const FrontPoint& b) {
    if (a.value.cmax != b.value.cmax) return a.value.cmax < b.value.cmax;
    return a.value.mmax < b.value.mmax;
  });
  std::vector<FrontPoint> front;
  for (FrontPoint& pt : raw) {
    if (!front.empty() && front.back().value.mmax <= pt.value.mmax) continue;
    front.push_back(std::move(pt));
  }
  return front;
}

ApproxFront sbo_front(const Instance& inst, const MakespanScheduler& alg,
                      int steps) {
  const auto grid = delta_grid(Fraction(1, 8), Fraction(8), steps);
  ApproxFront result;
  std::vector<FrontPoint> raw;
  for (const Fraction& delta : grid) {
    SboResult run = sbo_schedule(inst, delta, alg);
    const ObjectivePoint value = objectives(inst, run.schedule);
    raw.push_back({delta, std::move(run.schedule), value});
    ++result.runs;
  }
  result.points = pareto_filter_front(std::move(raw));
  return result;
}

ApproxFront rls_front(const Instance& inst, int steps, const Fraction& hi) {
  if (!(Fraction(2) < hi)) {
    throw std::invalid_argument("rls_front: hi must exceed 2");
  }
  // Grid over (2, hi]: Delta = 2 + g with g geometric in [hi/64 - ish, hi-2].
  const auto gaps = delta_grid((hi - Fraction(2)) / Fraction(64),
                               hi - Fraction(2), steps);
  ApproxFront result;
  std::vector<FrontPoint> raw;
  for (const Fraction& gap : gaps) {
    const Fraction delta = Fraction(2) + gap;
    RlsResult run = rls_schedule(inst, delta, PriorityPolicy::kBottomLevel);
    ++result.runs;
    if (!run.feasible) continue;  // only possible at Delta <= 2
    const ObjectivePoint value = objectives(inst, run.schedule);
    raw.push_back({delta, std::move(run.schedule), value});
  }
  result.points = pareto_filter_front(std::move(raw));
  return result;
}

double coverage_epsilon(const std::vector<FrontPoint>& front,
                        std::span<const LabelledPoint> reference) {
  if (front.empty() || reference.empty()) {
    throw std::invalid_argument("coverage_epsilon: empty front");
  }
  double worst = 1.0;
  for (const LabelledPoint& ref : reference) {
    double best = std::numeric_limits<double>::infinity();
    for (const FrontPoint& pt : front) {
      // Scale factor needed for pt to dominate ref on both axes.
      const double fc = ref.value.cmax > 0
                            ? static_cast<double>(pt.value.cmax) /
                                  static_cast<double>(ref.value.cmax)
                            : (pt.value.cmax > 0 ? std::numeric_limits<double>::infinity() : 1.0);
      const double fm = ref.value.mmax > 0
                            ? static_cast<double>(pt.value.mmax) /
                                  static_cast<double>(ref.value.mmax)
                            : (pt.value.mmax > 0 ? std::numeric_limits<double>::infinity() : 1.0);
      best = std::min(best, std::max({fc, fm, 1.0}));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace storesched
