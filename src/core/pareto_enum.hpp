// Exact Pareto-front enumeration for small independent instances.
//
// Ground truth for Figures 1-2 and for the EXT-A ratio study: enumerates
// every assignment of tasks to processors (up to processor renaming -- a
// task may only open the lowest-indexed empty processor) and keeps the
// Pareto-minimal (Cmax, Mmax) points with one representative schedule each.
// This mirrors the paper's case analyses "by removing schedules with idle
// time and symmetric schedules" (Section 4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/instance.hpp"
#include "common/pareto.hpp"
#include "common/schedule.hpp"

namespace storesched {

struct ParetoEnumResult {
  /// Pareto-minimal points sorted by ascending Cmax; tag t indexes
  /// `schedules`.
  std::vector<LabelledPoint> front;
  /// One representative (assignment-only) schedule per front point.
  std::vector<Schedule> schedules;
  /// Number of complete assignments enumerated (after symmetry breaking).
  std::uint64_t enumerated = 0;

  /// Exact optima read off the front ends:
  /// C*max = front.front().cmax, M*max = front.back().mmax.
  Time optimal_cmax() const;
  Mem optimal_mmax() const;
};

/// Enumerates the exact Pareto front of an independent-task instance.
/// Throws std::logic_error for precedence instances and std::runtime_error
/// if more than `limit` assignments would be visited (guards against
/// accidental m^n blowups; ~n <= 14 with m <= 4 stays comfortably inside).
ParetoEnumResult enumerate_pareto(const Instance& inst,
                                  std::uint64_t limit = 100'000'000);

}  // namespace storesched
