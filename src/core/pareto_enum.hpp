// Exact Pareto-front enumeration for independent instances.
//
// Ground truth for Figures 1-2, the EXT-A ratio study, and the
// coverage_epsilon studies: the exact Pareto-minimal (Cmax, Mmax) points
// with one representative schedule each. This mirrors the paper's case
// analyses "by removing schedules with idle time and symmetric schedules"
// (Section 4.1).
//
// Two interchangeable engines produce bit-identical fronts:
//   * enumerate_pareto_bb        -- dominance-pruned branch and bound
//     (core/pareto_bb.hpp; the default): reaches exact fronts at
//     n ~ 30-50 where the brute force stops at n ~ 14.
//   * enumerate_pareto_reference -- the seed's brute force: every
//     assignment up to processor renaming (a task may only open the
//     lowest-indexed empty processor). Kept as the equivalence oracle.
// enumerate_pareto() routes to the branch and bound unless the environment
// variable STORESCHED_PARETO_REFERENCE is set to a non-empty value other
// than "0" (the same A/B convention as STORESCHED_RLS_REFERENCE).
#pragma once

#include <cstdint>
#include <vector>

#include "common/instance.hpp"
#include "common/pareto.hpp"
#include "common/schedule.hpp"

namespace storesched {

/// Default work limit for enumerate_pareto(): search nodes for the branch
/// and bound, complete assignments for the reference walker.
inline constexpr std::uint64_t kParetoEnumDefaultLimit = 100'000'000;

struct ParetoEnumResult {
  /// Pareto-minimal points sorted by ascending Cmax; tag t indexes
  /// `schedules`.
  std::vector<LabelledPoint> front;
  /// One representative (assignment-only) schedule per front point.
  std::vector<Schedule> schedules;
  /// Work counter: branch-and-bound search nodes visited (default engine)
  /// or complete assignments enumerated after symmetry breaking
  /// (reference engine).
  std::uint64_t enumerated = 0;

  /// Exact optima read off the front ends:
  /// C*max = front.front().cmax, M*max = front.back().mmax.
  Time optimal_cmax() const;
  Mem optimal_mmax() const;
};

/// Enumerates the exact Pareto front of an independent-task instance.
/// Throws std::logic_error for precedence instances and std::runtime_error
/// if more than `limit` units of work would be done (see enumerated above;
/// guards against accidental blowups). Dispatches to
/// enumerate_pareto_bb() unless STORESCHED_PARETO_REFERENCE is set.
ParetoEnumResult enumerate_pareto(
    const Instance& inst, std::uint64_t limit = kParetoEnumDefaultLimit);

/// The seed's brute-force subset walk (m^n up to processor renaming;
/// ~n <= 14 with m <= 4 stays comfortably inside the default limit). The
/// equivalence oracle for the branch-and-bound engine and the old-engine
/// side of bench_pareto_exact / bench_hotpath's pareto cell.
ParetoEnumResult enumerate_pareto_reference(
    const Instance& inst, std::uint64_t limit = kParetoEnumDefaultLimit);

}  // namespace storesched
