// Unified polymorphic solver surface over every algorithm in the paper.
//
// The seed grew one free function and one bespoke result struct per
// algorithm (sbo_schedule/SboResult, rls_schedule/RlsResult, ...), so every
// bench, example and service front-end hand-wired its own dispatch. This
// module is the single entry point instead:
//
//   auto solver = make_solver("sbo:lpt,delta=3/2");
//   SolveResult r = solver->solve(instance);
//
// A solver spec is  family[:config]  where config is a positional argument
// followed by key=value pairs:
//
//   sbo:ALG[/ALG2],delta=F      Algorithm 1 (independent tasks only);
//                               ALG in make_scheduler()'s vocabulary
//                               ("ls", "lpt", "multifit", "kopt<k>",
//                               "ptas2", "ptas3", "exact")
//   rls:POLICY,delta=F          Algorithm 2 (independent or DAG); POLICY in
//                               {input, spt, lpt, bottom, minstore,
//                               maxstore}
//   tri:spt,delta=F             Section 5.2 tri-objective RLS+SPT
//   constrained:rls,tiebreak=POLICY
//   constrained:sbo,alg=ALG[/ALG2],refinements=N
//                               Sections 2.2/7 capacity-driven solves; the
//                               capacity comes from SolveOptions
//   graham:POLICY               memory-blind Graham list scheduling
//                               (baseline; ratio 2 - 1/m, no memory bound)
//   pareto:exact[,limit=N]      exact Pareto enumeration (branch and
//                               bound, core/pareto_bb.hpp); the whole
//                               front rides in SolveResult::pareto and the
//                               returned schedule is the Cmax-optimal
//                               front end. N caps the search nodes
//                               (default kParetoEnumDefaultLimit).
//   fallback:SPEC;SPEC[;...]    graceful-degradation ladder (two or more
//                               ';'-separated rungs, any family except a
//                               nested fallback). Rungs run in order; a
//                               rung that throws, comes back infeasible
//                               (deadline demotion included), or whose
//                               share of SolveOptions::deadline is already
//                               burned hands over to the next. The final
//                               rung -- the anchor, pick something cheap --
//                               runs with no deadline so the ladder always
//                               answers. Which rung answered (and why the
//                               ones above it did not) is stamped into
//                               SolveResult::diagnostics. E.g.
//                               "fallback:pareto:exact;sbo:lpt,delta=3/2"
//                               serves exact fronts until the deadline
//                               bites, then degrades to the SBO heuristic.
//
// F is an exact fraction ("3", "3/2"). Every solver prints a canonical
// spec from name() that round-trips through make_solver(); the canonical
// registry is enumerable via registered_solver_specs().
//
// Guarantee knowledge lives in Capabilities: what a configuration supports
// (precedence, timed output, third objective) and the approximation ratios
// it can promise on m processors, as exact Fractions. SBO promises
// ((1+Delta)rho1, (1+1/Delta)rho2) for any Delta > 0; RLS-family solvers
// promise (Lemma 5, Delta) only for Delta > 2 -- below that the run is
// legal but carries no guarantee and may come back infeasible (the run
// itself requires only Delta > 0; Lemma 4's marked-processor bound needs
// Delta > 1).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algorithms/graham.hpp"
#include "algorithms/scheduler.hpp"
#include "common/fraction.hpp"
#include "common/instance.hpp"
#include "common/schedule.hpp"
#include "core/front_approx.hpp"
#include "core/pareto_enum.hpp"
#include "core/rls.hpp"
#include "core/sbo.hpp"

namespace storesched {

/// What a solver configuration supports and can promise. Ratios are the
/// exact guaranteed factors versus the per-objective optimum (C*max, M*max,
/// optimal sum Ci); absent means no guarantee for this configuration.
struct Capabilities {
  bool supports_precedence = false;  ///< accepts DAG instances
  bool timed_output = false;         ///< schedules carry start times
  bool produces_sum_ci = false;      ///< reports the third objective
  bool needs_capacity = false;       ///< requires SolveOptions::memory_capacity
  bool exact_front = false;          ///< solve() fills SolveResult::pareto
                                     ///< with the exact Pareto front
  std::optional<Fraction> cmax_ratio;
  std::optional<Fraction> mmax_ratio;
  std::optional<Fraction> sumci_ratio;
};

class CancelToken;  // core/stream.hpp

/// Per-solve inputs that are not part of the solver configuration.
struct SolveOptions {
  /// Hard per-processor memory capacity; required by constrained:* solvers
  /// and ignored by the others.
  std::optional<Mem> memory_capacity;
  /// When set, validate_schedule() runs on every feasible result and a
  /// violation turns the result infeasible with the message in diagnostics.
  bool validate = false;
  /// Per-solve wall-clock budget, checked cooperatively at the solve
  /// boundary: a run whose elapsed time exceeds the budget comes back
  /// infeasible with the cause in diagnostics (the algorithm itself is
  /// never interrupted mid-flight). Absent = no deadline, no clock reads.
  std::optional<std::chrono::nanoseconds> deadline;
  /// Cooperative cancellation (core/stream.hpp). A solve that observes a
  /// cancelled token before starting returns infeasible immediately;
  /// solve_stream additionally stops pulling instances from its source.
  std::shared_ptr<const CancelToken> cancel;
};

/// Unified output of any solver. Subsumes the per-algorithm result structs:
/// their full payloads ride along in the sbo/rls extras channels for
/// ablation studies, while the common fields cover every ordinary consumer.
struct SolveResult {
  bool feasible = false;
  Schedule schedule;           ///< valid only when feasible
  ObjectivePoint objectives;   ///< measured (Cmax, Mmax), feasible runs only
  std::optional<Time> sum_ci;  ///< measured third objective (timed output)
  Fraction delta{0};           ///< parameter the run used (0 if none)

  /// Per-run *value* bounds: Cmax(schedule) <= cmax_bound etc. (SBO's
  /// Properties 1-2 against its ingredient values, RLS's memory cap).
  std::optional<Fraction> cmax_bound;
  std::optional<Fraction> mmax_bound;

  /// Guaranteed *ratios* versus the optima, when this configuration carries
  /// them (mirrors Capabilities, resolved for the instance's m and the
  /// run's actual Delta).
  std::optional<Fraction> cmax_ratio;
  std::optional<Fraction> mmax_ratio;
  std::optional<Fraction> sumci_ratio;

  /// Human-readable notes: infeasibility causes, guarantee-zone warnings
  /// (e.g. an RLS run at Delta <= 2), validation findings.
  std::string diagnostics;

  /// Extras channels: the producing algorithm's full native result.
  std::optional<SboResult> sbo;
  std::optional<RlsResult> rls;
  /// pareto:exact only: the whole exact front with one representative
  /// schedule per point (Capabilities::exact_front announces it).
  std::optional<ParetoEnumResult> pareto;
};

/// Polymorphic solver: one configured algorithm from the paper.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Canonical spec string; make_solver(name()) reconstructs this solver.
  virtual std::string name() const = 0;

  /// What this configuration supports and guarantees on m processors.
  virtual Capabilities capabilities(int m) const = 0;

  /// Solves one instance. Throws std::logic_error when the instance kind is
  /// unsupported (capabilities().supports_precedence honored) and
  /// std::invalid_argument when required options are missing. Solvers are
  /// immutable after construction; solve() is const and thread-safe.
  ///
  /// Non-virtual: this is the control envelope around the family's
  /// do_solve() -- it honors SolveOptions::cancel (a pre-cancelled token
  /// returns infeasible without running) and SolveOptions::deadline (an
  /// over-budget run is demoted to infeasible with the cause in
  /// diagnostics). With neither option set it forwards verbatim, so
  /// results are bit-identical to the pre-envelope API.
  SolveResult solve(const Instance& inst,
                    const SolveOptions& options = {}) const;

  /// Runs this configuration once per Delta in `grid` and Pareto-filters
  /// the feasible points (the Section 6 sweep behind front()). Grid points
  /// fan out over the shared worker pool, and Delta-independent work is
  /// hoisted out of the sweep where the family allows it (SBO computes its
  /// ingredient schedules once and only re-routes per Delta). The default
  /// implementation throws std::invalid_argument: only Delta-tunable
  /// families (sbo, rls, tri) override it.
  virtual ApproxFront delta_sweep(const Instance& inst,
                                  std::span<const Fraction> grid) const;

 protected:
  /// The family's actual solve, wrapped by the public solve() envelope.
  virtual SolveResult do_solve(const Instance& inst,
                               const SolveOptions& options) const = 0;

  /// A solver that budgets SolveOptions::deadline itself (the fallback
  /// ladder splitting the remaining budget across rungs) returns true and
  /// the envelope skips its post-hoc demotion -- otherwise a lower rung's
  /// in-budget answer would be demoted just because an upper rung burned
  /// the clock first.
  virtual bool manages_deadline() const { return false; }
};

/// Builds a solver from a spec string (grammar above). Throws
/// std::invalid_argument naming the offending token on unknown families,
/// algorithms, policies, options, or malformed values.
std::unique_ptr<Solver> make_solver(const std::string& spec);

/// The canonical registry: one canonical spec per registered configuration
/// (every family crossed with its standard arguments at its default Delta).
/// Each entry satisfies make_solver(s)->name() == s.
std::vector<std::string> registered_solver_specs();

/// Tuning for the batch runner.
struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). Never
  /// more workers than instances are spawned either way (a 2-instance
  /// batch on a 32-core box uses 2 threads).
  int threads = 0;
};

/// Solves many instances with one solver configuration, fanning the work
/// out over a worker crew (solvers are stateless; results land at their
/// instance's index). A thin wrapper over solve_stream (core/stream.hpp)
/// with an in-memory source and sink -- use solve_stream directly when the
/// batch should not be materialized (O(window) memory instead of
/// O(batch)). A worker exception cancels the remaining work and rethrows
/// on the caller with the failing instance's index attached to the
/// message (the original std::logic_error / std::invalid_argument /
/// std::runtime_error type is preserved).
std::vector<SolveResult> solve_batch(const Solver& solver,
                                     std::span<const Instance> instances,
                                     const SolveOptions& options = {},
                                     const BatchOptions& batch = {});

/// Convenience overload: spec string in, results out.
std::vector<SolveResult> solve_batch(const std::string& spec,
                                     std::span<const Instance> instances,
                                     const SolveOptions& options = {},
                                     const BatchOptions& batch = {});

/// Generic Delta-sweep front generation (Section 6 made operational for
/// *any* Delta-tunable solver): runs the spec'd solver once per grid value,
/// collects the feasible (Cmax, Mmax) points and Pareto-filters them.
/// Delegates to Solver::delta_sweep(), so grid points run in parallel and
/// Delta-independent work (SBO's ingredient schedules) is computed once
/// per sweep, not once per point. Throws std::invalid_argument for
/// families without a Delta knob (graham, constrained).
ApproxFront front(const Instance& inst, const std::string& solver_spec,
                  std::span<const Fraction> grid);

}  // namespace storesched
