// Conditional task graphs -- the paper's second future-work model
// extension (Section 7: "more realistic model extensions should be
// investigated such as conditional task graphs").
//
// Model: a precedence instance plus a set of two-armed *branches*. At run
// time each branch resolves independently to arm A (probability p_a) or
// arm B; the tasks of the unselected arm do not execute. Crucially for the
// storage objective, their *code is still resident* -- an embedded image
// ships both arms (the paper's SoC motivation stores instruction code for
// whatever might run). A static schedule therefore has one Mmax but a
// distribution of makespans.
//
// This module provides scenario expansion, Monte-Carlo evaluation of a
// fixed schedule's makespan distribution, and conservative scheduling
// (RLS over the full graph, which upper-bounds every scenario's makespan).
#pragma once

#include <vector>

#include "common/instance.hpp"
#include "common/rng.hpp"
#include "common/schedule.hpp"
#include "common/stats.hpp"
#include "core/rls.hpp"

namespace storesched {

/// A two-armed branch: exactly one of arm_a / arm_b executes.
struct Branch {
  std::vector<TaskId> arm_a;
  std::vector<TaskId> arm_b;
  double prob_a = 0.5;  ///< probability that arm_a executes
};

/// A precedence instance with conditional branches. Tasks in no arm always
/// execute. A task may appear in at most one arm of at most one branch.
struct ConditionalInstance {
  Instance base;
  std::vector<Branch> branches;

  /// Validates arm membership (disjointness, id ranges, probabilities).
  /// Throws std::invalid_argument on violation.
  void validate() const;
};

/// The scenario instance for a fixed branch resolution: unselected-arm
/// tasks keep their storage footprint (code stays resident) but their
/// processing time drops to 0 (they never run).
/// `choices[b]` true selects arm_a of branch b.
Instance expand_scenario(const ConditionalInstance& cond,
                         const std::vector<bool>& choices);

/// Makespan distribution of a fixed timed schedule under `samples`
/// Monte-Carlo branch resolutions. The schedule's start times are kept
/// (static schedule); each scenario's makespan is the latest completion of
/// an *executed* task. Mmax is scenario-independent by the code-resident
/// model. Returns summary statistics of the makespan plus the worst case.
struct ConditionalEvaluation {
  Summary makespan;     ///< distribution over sampled scenarios
  Time worst_case = 0;  ///< makespan with every task executed
  Mem mmax = 0;         ///< scenario-independent storage peak
};
ConditionalEvaluation evaluate_conditional(const ConditionalInstance& cond,
                                           const Schedule& sched, int samples,
                                           Rng& rng);

/// Conservative scheduling: run RLS_Delta on the full graph (all arms).
/// The returned schedule is feasible for every scenario, its Mmax carries
/// the Corollary 2 guarantee, and its full-graph Cmax upper-bounds every
/// scenario's makespan.
RlsResult schedule_conditional(const ConditionalInstance& cond,
                               const Fraction& delta,
                               PriorityPolicy tie_break =
                                   PriorityPolicy::kBottomLevel);

/// Random conditional workload: a layered DAG of ~`size_hint` tasks with
/// `branch_count` disjoint two-armed branches carved out of it.
ConditionalInstance generate_conditional(std::size_t size_hint,
                                         int branch_count, int m, Rng& rng);

}  // namespace storesched
