// Solving the original *constrained* problem (paper Sections 2.2 and 7):
// minimize Cmax subject to a hard per-processor memory capacity
// Mmax <= M_cap.
//
// The constrained problem admits no approximation algorithm (deciding
// feasibility is the strongly NP-complete decision version of P||Cmax), so
// the paper's recipe is to drive the bi-objective algorithms by capacity:
//
//  * DAG case: compute the Graham storage bound LB and run RLS with
//    Delta = M_cap / LB -- the cap then equals M_cap exactly, and "using
//    another value of the parameter can not lead to better feasible
//    solution as the algorithm uses a thresholding approach". If
//    Delta > 2 the run is guaranteed feasible with the Lemma 5 makespan
//    ratio; for Delta <= 2 it may legitimately fail.
//
//  * Independent case: a parameter that always yields a feasible solution
//    can be computed from SBO's memory guarantee ((1 + 1/Delta) M <= M_cap
//    gives Delta >= M / (M_cap - M)), "but then the solution can be
//    tentatively improved by doing a binary search on the parameter".
#pragma once

#include <optional>

#include "core/rls.hpp"
#include "core/sbo.hpp"

namespace storesched {

/// Outcome of a constrained solve.
struct ConstrainedResult {
  bool feasible = false;
  Schedule schedule;            ///< satisfies Mmax <= capacity when feasible
  ObjectivePoint objectives;    ///< measured (Cmax, Mmax)
  Fraction delta_used;          ///< parameter that produced the schedule
  /// Makespan guarantee implied by the parameter (set when delta > 2 for
  /// RLS, or always for SBO-feasible runs).
  std::optional<Fraction> cmax_ratio;
};

/// DAG (or independent) constrained solve via RLS with Delta = capacity/LB.
/// Returns infeasible if capacity < LB (no schedule can exist below the
/// Graham bound... except that LB <= M*max, so capacity < max_i s_i is a
/// definite no) or if the RLS run gets stuck.
ConstrainedResult solve_constrained_rls(const Instance& inst, Mem capacity,
                                        PriorityPolicy tie_break =
                                            PriorityPolicy::kInputOrder);

/// Independent-task constrained solve via SBO: the ingredient schedules
/// are computed once (sbo_ingredients), then every probe is only the O(n)
/// threshold re-route (sbo_route), the same hoisting front() uses for its
/// Delta sweep. Starts from the guaranteed parameter
/// Delta* = M/(capacity - M), then runs the paper's "binary search on the
/// parameter" over the sorted distinct routing breakpoints
/// Delta_i = p_i M / (s_i C) -- the only values where the routing (and
/// hence the schedule) changes -- keeping the feasible schedule with the
/// best measured makespan. `refinements` caps the number of probes;
/// whenever Mmax(pi_2) <= capacity a feasible schedule is returned.
/// `alg1`/`alg2` are the SBO ingredient schedulers.
ConstrainedResult solve_constrained_sbo(const Instance& inst, Mem capacity,
                                        const MakespanScheduler& alg1,
                                        const MakespanScheduler& alg2,
                                        int refinements = 16);

}  // namespace storesched
