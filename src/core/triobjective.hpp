// Tri-objective scheduling of independent tasks (paper Section 5.2).
//
// RLS_Delta with the SPT total order simultaneously guarantees, for
// Delta > 2 on independent tasks (Corollary 4):
//   Cmax   <= (2 + 1/(Delta-2) - (Delta-1)/(m(Delta-2))) * C*max
//   Mmax   <=  Delta * M*max
//   sum Ci <= (2 + 1/(Delta-2)) * (sum Ci)*            (SPT is optimal)
#pragma once

#include "core/rls.hpp"
#include "core/theory.hpp"

namespace storesched {

struct TriObjectiveResult {
  RlsResult rls;                 ///< the underlying RLS run (SPT tie-break)
  TriObjectivePoint objectives;  ///< measured (Cmax, Mmax, sum Ci)

  /// Guaranteed ratios of Corollary 4 (only set when delta > 2).
  Fraction cmax_ratio;
  Fraction mmax_ratio;
  Fraction sumci_ratio;
  bool has_guarantee = false;
};

/// Runs RLS_Delta with SPT ordering on an independent-task instance and
/// reports all three objectives plus the Corollary 4 guarantees.
/// Throws std::logic_error on precedence instances.
TriObjectiveResult tri_objective_schedule(const Instance& inst,
                                          const Fraction& delta);

}  // namespace storesched
