// Streaming solve pipeline: sources, sinks, and a backpressured driver.
//
// solve_batch() materializes a std::vector<SolveResult> for the whole run
// -- O(batch) memory and no way to shard a million-instance study across
// processes. This module is the streaming redesign of that surface:
//
//   auto solver = make_solver("rls:input,delta=3");
//   JsonlInstanceSource source(std::cin);
//   JsonlResultSink sink(std::cout);
//   StreamStats stats = solve_stream(*solver, source, sink);
//
// An InstanceSource yields instances one at a time (in-memory spans,
// generator callbacks, JSONL text); a ResultSink consumes indexed results.
// The driver fans solves out over a bounded in-flight window of worker
// threads: at most StreamOptions::window instances are pulled-but-not-yet-
// delivered at any moment, so peak memory is O(window), never O(batch).
// Delivery is in input order by default, or as-completed for minimum
// latency (every result carries its input index either way). Cancellation
// is cooperative via CancelToken; per-solve wall-clock deadlines ride in
// SolveOptions::deadline and surface as infeasible-with-diagnostics.
//
// solve_batch() is now a thin wrapper over this driver (bit-identical
// results to the historical implementation); tools/storesched_cli.cpp is
// the JSONL service front-end that makes multi-process sharding a shell
// pipeline.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/solver.hpp"

namespace storesched {

/// Cooperative cancellation flag, shared between the caller and a running
/// pipeline (and, via SolveOptions::cancel, individual solves). Thread-safe;
/// request_cancel() is sticky.
class CancelToken {
 public:
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Pull-based instance stream. Sources are consumed by exactly one
/// pipeline at a time; the driver serializes next() calls, so
/// implementations need not be thread-safe.
class InstanceSource {
 public:
  virtual ~InstanceSource() = default;

  /// The next instance, or nullptr when the stream is exhausted. The
  /// pointee must stay valid until the solve consuming it completes:
  /// owning sources (generator, JSONL) return shared ownership, while
  /// SpanSource hands out non-owning aliases into the caller's span --
  /// no per-instance copy on the in-memory solve_batch path. May throw
  /// (e.g. on malformed input); the pipeline stops and rethrows.
  virtual std::shared_ptr<const Instance> next() = 0;

  /// Total number of instances when known up front (spans, counted
  /// generators); lets the driver right-size its worker crew.
  virtual std::optional<std::size_t> size_hint() const { return std::nullopt; }
};

/// Push-based result consumer. The driver serializes consume() calls
/// (implementations need not be thread-safe) and never calls it twice for
/// the same index. `index` is the 0-based position of the instance in its
/// source's order.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void consume(std::size_t index, SolveResult result) = 0;
};

/// Source over an in-memory instance span (the solve_batch shape). Yields
/// non-owning aliases: the span must outlive the pipeline run.
class SpanSource final : public InstanceSource {
 public:
  explicit SpanSource(std::span<const Instance> instances)
      : instances_(instances) {}
  std::shared_ptr<const Instance> next() override;
  std::optional<std::size_t> size_hint() const override {
    return instances_.size();
  }

 private:
  std::span<const Instance> instances_;
  std::size_t cursor_ = 0;
};

/// Source over a generator callback: fn() returns instances until it
/// returns nullopt. Pass `count` when the total is known so the driver can
/// right-size its worker crew.
class GeneratorSource final : public InstanceSource {
 public:
  explicit GeneratorSource(std::function<std::optional<Instance>()> fn,
                           std::optional<std::size_t> count = std::nullopt)
      : fn_(std::move(fn)), count_(count) {}
  std::shared_ptr<const Instance> next() override;
  std::optional<std::size_t> size_hint() const override { return count_; }

 private:
  std::function<std::optional<Instance>()> fn_;
  std::optional<std::size_t> count_;
};

/// Source over instance JSONL text (one instance_from_jsonl() object per
/// line; blank lines skipped). Malformed lines throw std::runtime_error
/// naming the 1-based line number.
class JsonlInstanceSource final : public InstanceSource {
 public:
  explicit JsonlInstanceSource(std::istream& in) : in_(in) {}
  std::shared_ptr<const Instance> next() override;

 private:
  std::istream& in_;
  std::size_t line_number_ = 0;
};

/// Sink that stores each result at its index in a caller-owned vector
/// (presized to the expected count; out-of-range indices throw).
class VectorSink final : public ResultSink {
 public:
  explicit VectorSink(std::vector<SolveResult>& results) : results_(results) {}
  void consume(std::size_t index, SolveResult result) override;

 private:
  std::vector<SolveResult>& results_;
};

/// Sink that forwards each indexed result to a callback.
class CallbackSink final : public ResultSink {
 public:
  explicit CallbackSink(std::function<void(std::size_t, SolveResult)> fn)
      : fn_(std::move(fn)) {}
  void consume(std::size_t index, SolveResult result) override {
    fn_(index, std::move(result));
  }

 private:
  std::function<void(std::size_t, SolveResult)> fn_;
};

/// What a JSONL result line carries beyond the always-present core fields
/// (see result_to_jsonl below).
struct JsonlResultOptions {
  /// Emit the assignment ("proc") and, for timed schedules, start times
  /// ("start") of feasible results. Off by default: at service scale the
  /// objectives are the payload and schedules dominate the line size.
  bool include_schedule = false;
};

/// One result as a single JSONL line (no trailing newline):
///   {"index":I,"feasible":B,"cmax":C,"mmax":M,"delta":"F", ...}
/// Optional fields (sum_ci, bounds, ratios, diagnostics, schedule) are
/// omitted when absent. Infeasible results carry only index/feasible/
/// delta/diagnostics.
std::string result_to_jsonl(std::size_t index, const SolveResult& result,
                            const JsonlResultOptions& options = {});

/// Sink that writes one result_to_jsonl() line per result to a stream.
class JsonlResultSink final : public ResultSink {
 public:
  explicit JsonlResultSink(std::ostream& out,
                           const JsonlResultOptions& options = {})
      : out_(out), options_(options) {}
  void consume(std::size_t index, SolveResult result) override;

 private:
  std::ostream& out_;
  JsonlResultOptions options_;
};

/// Tuning for the streaming driver.
struct StreamOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). Never
  /// more workers than the window, or than the source's size_hint.
  int threads = 0;
  /// Bound on in-flight instances (pulled from the source but not yet
  /// delivered to the sink) -- the backpressure knob and the peak-memory
  /// bound. 0 means *adaptive*: start at 4x the worker count, then grow or
  /// shrink with the observed per-solve footprint (instance + result
  /// estimate) so that window x footprint stays within `memory_budget`;
  /// never below the worker count, never above 4096. The window actually
  /// in effect at the end of a run is recorded in StreamStats::window.
  std::size_t window = 0;
  /// Byte ceiling the adaptive window sizes against (window == 0 only;
  /// an explicit window is always taken literally). Footprints are
  /// estimates -- schedules, extras channels and the instance itself --
  /// not allocator-exact RSS.
  std::size_t memory_budget = std::size_t{64} << 20;
  /// Deliver results in input order (buffering at most `window` completed
  /// results behind a straggler) or immediately as each solve completes.
  bool ordered = true;
  /// When set, the driver stops pulling new instances once the token is
  /// cancelled; already-solving instances finish and are delivered.
  std::shared_ptr<const CancelToken> cancel;
};

/// What a pipeline run did. `max_in_flight` is the observed high-water of
/// pulled-but-undelivered instances -- always <= the window.
struct StreamStats {
  std::size_t pulled = 0;     ///< instances taken from the source
  std::size_t delivered = 0;  ///< results handed to the sink
  std::size_t feasible = 0;   ///< delivered results with feasible == true
  std::size_t max_in_flight = 0;
  /// The in-flight bound in effect when the run ended: the explicit
  /// StreamOptions::window, the final adapted value (window == 0), or 1
  /// for the inline single-worker path.
  std::size_t window = 0;
  bool cancelled = false;  ///< the run stopped on a CancelToken
};

/// Drives instances from `source` through `solver` into `sink` with a
/// bounded in-flight window (see StreamOptions). Exceptions thrown by a
/// solve, the source, or the sink cancel the remaining work and rethrow on
/// the caller with the offending instance index attached to the message
/// (original std::logic_error / std::invalid_argument / std::runtime_error
/// types are preserved). With one worker the pipeline runs inline on the
/// calling thread -- no threads, deterministic pull/solve/deliver order.
StreamStats solve_stream(const Solver& solver, InstanceSource& source,
                         ResultSink& sink, const SolveOptions& options = {},
                         const StreamOptions& stream = {});

}  // namespace storesched
