// Streaming solve pipeline: sources, sinks, and a backpressured driver.
//
// solve_batch() materializes a std::vector<SolveResult> for the whole run
// -- O(batch) memory and no way to shard a million-instance study across
// processes. This module is the streaming redesign of that surface:
//
//   auto solver = make_solver("rls:input,delta=3");
//   JsonlInstanceSource source(std::cin);
//   JsonlResultSink sink(std::cout);
//   StreamStats stats = solve_stream(*solver, source, sink);
//
// An InstanceSource yields instances one at a time (in-memory spans,
// generator callbacks, JSONL text); a ResultSink consumes indexed results.
// The driver fans solves out over a bounded in-flight window of worker
// threads: at most StreamOptions::window instances are pulled-but-not-yet-
// delivered at any moment, so peak memory is O(window), never O(batch).
// Delivery is in input order by default, or as-completed for minimum
// latency (every result carries its input index either way). Cancellation
// is cooperative via CancelToken; per-solve wall-clock deadlines ride in
// SolveOptions::deadline and surface as infeasible-with-diagnostics.
//
// Failure handling is a per-run policy (StreamOptions::on_error):
//
//   abort   (default) the first source/solve/sink exception cancels the
//           remaining work and rethrows on the caller with the offending
//           instance index attached -- exactly the historical behavior.
//   skip    the failing record is recorded as a StreamError (flowing to
//           StreamOptions::errors when set), its index is retired, and
//           the stream keeps going. One malformed line no longer aborts a
//           million-instance run.
//   retry   transient solve/sink faults are retried up to
//           RetryPolicy::max_attempts with exponential backoff and
//           deterministic jitter; deterministic faults (std::logic_error,
//           std::invalid_argument, wire write failures) and exhausted
//           retries degrade to skip-with-record. Source faults are never
//           retried -- a source cannot re-produce bytes it already
//           consumed, so retrying would silently desynchronize record
//           indices -- they too degrade to skip-with-record.
//
// StreamStats accounts for every record exactly: delivered + failed ==
// indices retired, `retries` counts extra attempts, `recovered` the
// records that succeeded only after retrying. Failpoints
// (common/failpoint.hpp: source.next / stream.solve / sink.consume /
// crew.spawn) make every policy deterministically testable.
//
// solve_batch() is now a thin wrapper over this driver (bit-identical
// results to the historical implementation); tools/storesched_cli.cpp is
// the JSONL service front-end that makes multi-process sharding a shell
// pipeline, and core/journal.hpp adds crash-safe resume on top of the
// ordered delivery contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "core/solver.hpp"

namespace storesched::storage {
// The result cache (storage/result_cache.hpp). Forward-declared: core sits
// below storage in the layer order, so StreamOptions can carry a pointer
// without core/stream.hpp pulling the storage headers in.
class SolveCache;
}  // namespace storesched::storage

namespace storesched {

/// Cooperative cancellation flag, shared between the caller and a running
/// pipeline (and, via SolveOptions::cancel, individual solves). Thread-safe;
/// request_cancel() is sticky, and the first call's reason wins. The reason
/// distinguishes operator-cancel vs deadline-cancel vs fault-abort
/// post-mortem: it surfaces in StreamStats::cancel_reason and on the CLI's
/// stderr summary.
class CancelToken {
 public:
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }
  void request_cancel(const std::string& reason) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (reason_.empty()) reason_ = reason;
    }
    cancelled_.store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// The first request_cancel(reason) argument; empty when cancellation was
  /// reasonless (or not requested).
  std::string reason() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

/// Pull-based instance stream. Sources are consumed by exactly one
/// pipeline at a time; the driver serializes next() calls, so
/// implementations need not be thread-safe.
class InstanceSource {
 public:
  virtual ~InstanceSource() = default;

  /// The next instance, or nullptr when the stream is exhausted. The
  /// pointee must stay valid until the solve consuming it completes:
  /// owning sources (generator, JSONL) return shared ownership, while
  /// SpanSource hands out non-owning aliases into the caller's span --
  /// no per-instance copy on the in-memory solve_batch path. May throw
  /// (e.g. on malformed input); what the pipeline does then is governed
  /// by StreamOptions::on_error (abort rethrows, the default).
  virtual std::shared_ptr<const Instance> next() = 0;

  /// Total number of instances when known up front (spans, counted
  /// generators); lets the driver right-size its worker crew.
  virtual std::optional<std::size_t> size_hint() const { return std::nullopt; }

  /// Units of input consumed so far (1-based line count for JSONL text),
  /// when the source tracks one. Read by the driver right after each
  /// next() call -- successful or throwing -- to stamp error records and
  /// resume journals; a source error that consumed no input leaves it
  /// unchanged.
  virtual std::optional<std::size_t> position() const { return std::nullopt; }
};

/// Push-based result consumer. The driver serializes consume() calls
/// (implementations need not be thread-safe) and never calls it twice for
/// the same index -- except under the retry policy, where a consume() that
/// threw is re-attempted with an identical copy of the result. `index` is
/// the 0-based position of the instance in its source's order.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void consume(std::size_t index, SolveResult result) = 0;
};

/// Why a record failed: which stage of the pipeline threw.
enum class StreamErrorCategory { kSource, kSolve, kSink };

/// Canonical wire token for a category ("source" / "solve" / "sink").
const char* to_string(StreamErrorCategory category);

/// One failed record, as recorded under the skip/retry policies. `index`
/// is the record slot the failure retired (result indices skip over it);
/// `line` is the 1-based input line when the source tracks positions
/// (0 = unknown); `attempts` counts every try made (1 = no retries).
struct StreamError {
  std::size_t index = 0;
  std::size_t line = 0;
  StreamErrorCategory category = StreamErrorCategory::kSolve;
  int attempts = 1;
  std::string what;
};

/// One error as a single JSONL line (no trailing newline):
///   {"index":I,"error":true,"category":"solve","attempts":K,"what":"..."}
/// "line" is included only when nonzero. Distinguishable from result lines
/// by the "error":true marker (results carry "feasible" instead).
std::string stream_error_to_jsonl(const StreamError& error);

/// Parses a stream_error_to_jsonl() line back. Throws std::runtime_error
/// naming the offending token on malformed input (unknown keys, missing
/// fields, bad category, trailing bytes). Round-trips exactly.
StreamError stream_error_from_jsonl(const std::string& line);

/// Push-based consumer for failed records (the error counterpart of
/// ResultSink). The driver serializes consume() calls. A throwing
/// ErrorSink aborts the pipeline regardless of policy -- losing the error
/// channel means the run's accounting can no longer be trusted.
class ErrorSink {
 public:
  virtual ~ErrorSink() = default;
  virtual void consume(StreamError error) = 0;
};

/// Source over an in-memory instance span (the solve_batch shape). Yields
/// non-owning aliases: the span must outlive the pipeline run.
class SpanSource final : public InstanceSource {
 public:
  explicit SpanSource(std::span<const Instance> instances)
      : instances_(instances) {}
  std::shared_ptr<const Instance> next() override;
  std::optional<std::size_t> size_hint() const override {
    return instances_.size();
  }

 private:
  std::span<const Instance> instances_;
  std::size_t cursor_ = 0;
};

/// Source over a generator callback: fn() returns instances until it
/// returns nullopt. Pass `count` when the total is known so the driver can
/// right-size its worker crew.
class GeneratorSource final : public InstanceSource {
 public:
  explicit GeneratorSource(std::function<std::optional<Instance>()> fn,
                           std::optional<std::size_t> count = std::nullopt)
      : fn_(std::move(fn)), count_(count) {}
  std::shared_ptr<const Instance> next() override;
  std::optional<std::size_t> size_hint() const override { return count_; }

 private:
  std::function<std::optional<Instance>()> fn_;
  std::optional<std::size_t> count_;
};

/// Source over instance JSONL text (one instance_from_jsonl() object per
/// line; blank lines skipped). Malformed lines throw std::runtime_error
/// naming the 1-based line number. `first_line` offsets the numbering for
/// resumed runs that already consumed a prefix of the file, so error
/// messages keep naming the physical line. Carries the failpoint site
/// "source.next" (fires before any input is consumed).
class JsonlInstanceSource final : public InstanceSource {
 public:
  explicit JsonlInstanceSource(std::istream& in, std::size_t first_line = 0)
      : in_(in), line_number_(first_line) {}
  std::shared_ptr<const Instance> next() override;
  std::optional<std::size_t> position() const override { return line_number_; }

 private:
  std::istream& in_;
  std::size_t line_number_;
};

/// Sink that stores each result at its index in a caller-owned vector
/// (presized to the expected count; out-of-range indices throw).
class VectorSink final : public ResultSink {
 public:
  explicit VectorSink(std::vector<SolveResult>& results) : results_(results) {}
  void consume(std::size_t index, SolveResult result) override;

 private:
  std::vector<SolveResult>& results_;
};

/// Sink that forwards each indexed result to a callback.
class CallbackSink final : public ResultSink {
 public:
  explicit CallbackSink(std::function<void(std::size_t, SolveResult)> fn)
      : fn_(std::move(fn)) {}
  void consume(std::size_t index, SolveResult result) override {
    fn_(index, std::move(result));
  }

 private:
  std::function<void(std::size_t, SolveResult)> fn_;
};

/// Error sink that appends each failed record to a caller-owned vector.
class VectorErrorSink final : public ErrorSink {
 public:
  explicit VectorErrorSink(std::vector<StreamError>& errors)
      : errors_(errors) {}
  void consume(StreamError error) override {
    errors_.push_back(std::move(error));
  }

 private:
  std::vector<StreamError>& errors_;
};

/// What a JSONL result line carries beyond the always-present core fields
/// (see result_to_jsonl below).
struct JsonlResultOptions {
  /// Emit the assignment ("proc") and, for timed schedules, start times
  /// ("start") of feasible results. Off by default: at service scale the
  /// objectives are the payload and schedules dominate the line size.
  bool include_schedule = false;
};

/// One result as a single JSONL line (no trailing newline):
///   {"index":I,"feasible":B,"cmax":C,"mmax":M,"delta":"F", ...}
/// Optional fields (sum_ci, bounds, ratios, diagnostics, schedule) are
/// omitted when absent. Infeasible results carry only index/feasible/
/// delta/diagnostics.
std::string result_to_jsonl(std::size_t index, const SolveResult& result,
                            const JsonlResultOptions& options = {});

/// The body of a result line without the leading "index" key: a
/// comma-led field list ( ,"feasible":...,"cmax":... ) ready to splice
/// into any enclosing JSON object. result_to_jsonl() and the serving
/// tier's response lines (serve/protocol.hpp) are both built on this, so
/// the result vocabulary cannot drift between the batch and serve wires.
std::string result_jsonl_fields(const SolveResult& result,
                                const JsonlResultOptions& options = {});

/// Thrown by the JSONL sinks when the underlying ostream reports a write
/// failure (badbit/failbit: full disk, closed pipe). A dedicated type so
/// the retry classifier can refuse to retry it -- a dead stream stays
/// dead, and each record must fail fast instead of burning backoff.
class StreamWriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sink that writes one result_to_jsonl() line per result to a stream.
/// Checks the stream state after every write and throws StreamWriteError
/// on badbit/failbit -- a full disk or closed pipe surfaces as a stream
/// error instead of silently dropping results.
class JsonlResultSink final : public ResultSink {
 public:
  explicit JsonlResultSink(std::ostream& out,
                           const JsonlResultOptions& options = {})
      : out_(out), options_(options) {}
  void consume(std::size_t index, SolveResult result) override;

 private:
  std::ostream& out_;
  JsonlResultOptions options_;
};

/// Error sink that writes one stream_error_to_jsonl() line per failed
/// record (JsonlResultSink's error counterpart, same write-failure
/// contract).
class JsonlErrorSink final : public ErrorSink {
 public:
  explicit JsonlErrorSink(std::ostream& out) : out_(out) {}
  void consume(StreamError error) override;

 private:
  std::ostream& out_;
};

/// What to do when a record's source pull, solve, or sink delivery throws.
enum class FailureAction {
  kAbort,  ///< cancel remaining work, rethrow with the index attached
  kSkip,   ///< record a StreamError, retire the index, keep streaming
  kRetry,  ///< re-attempt transient faults with backoff, else skip
};

/// Retry tuning (FailureAction::kRetry). Backoff for attempt a (1-based)
/// is min(max_backoff, base_backoff * multiplier^(a-1)) scaled by a
/// deterministic jitter factor in [0.5, 1.5) derived from (jitter_seed,
/// record index, attempt) -- runs are reproducible, yet concurrent
/// retries spread out.
struct RetryPolicy {
  /// Total tries per record (1 = no retries). Must be >= 1.
  int max_attempts = 3;
  std::chrono::nanoseconds base_backoff = std::chrono::milliseconds(1);
  double multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(100);
  std::uint64_t jitter_seed = 0x5eed;
  /// Overrides the transient-vs-deterministic classification. Default
  /// (unset): InjectedFault and generic runtime errors are retryable;
  /// std::logic_error, std::invalid_argument, and StreamWriteError are
  /// not. Source faults are never retried regardless (see file comment).
  std::function<bool(const std::exception_ptr&)> retryable;
};

/// The per-run failure policy (StreamOptions::on_error).
struct FailurePolicy {
  FailureAction action = FailureAction::kAbort;
  RetryPolicy retry;  ///< consulted only when action == kRetry
};

/// Ordered-mode progress callback payload: records [start_index,
/// completed) are fully retired (delivered or recorded as failed), in
/// order, and `source_lines` input units produced them. The resume
/// journal (core/journal.hpp) is built on exactly this contract.
struct StreamProgress {
  std::size_t completed = 0;     ///< first not-yet-retired index
  std::size_t source_lines = 0;  ///< input consumed by retired records
  std::size_t delivered = 0;     ///< running delivered count
  std::size_t failed = 0;        ///< running failed count
};

/// Tuning for the streaming driver.
struct StreamOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). Never
  /// more workers than the window, or than the source's size_hint.
  int threads = 0;
  /// Bound on in-flight instances (pulled from the source but not yet
  /// delivered to the sink) -- the backpressure knob and the peak-memory
  /// bound. 0 means *adaptive*: start at 4x the worker count, then grow or
  /// shrink with the observed per-solve footprint (instance + result
  /// estimate) so that window x footprint stays within `memory_budget`;
  /// never below the worker count, never above 4096. The window actually
  /// in effect at the end of a run is recorded in StreamStats::window.
  std::size_t window = 0;
  /// Byte ceiling the adaptive window sizes against (window == 0 only;
  /// an explicit window is always taken literally). Footprints are
  /// estimates -- schedules, extras channels and the instance itself --
  /// not allocator-exact RSS.
  std::size_t memory_budget = std::size_t{64} << 20;
  /// Deliver results in input order (buffering at most `window` completed
  /// results behind a straggler) or immediately as each solve completes.
  bool ordered = true;
  /// When set, the driver stops pulling new instances once the token is
  /// cancelled; already-solving instances finish and are delivered. The
  /// token's reason (if any) is copied into StreamStats::cancel_reason.
  std::shared_ptr<const CancelToken> cancel;
  /// Failure policy: abort (default, historical behavior), skip, retry.
  FailurePolicy on_error;
  /// Where failed records flow under skip/retry (not owned; must outlive
  /// the run). Null = failures are counted in StreamStats::failed but the
  /// records themselves are dropped.
  ErrorSink* errors = nullptr;
  /// Index assigned to the first record -- resumed runs pass the journal's
  /// completed count so output lines keep their global indices.
  std::size_t start_index = 0;
  /// Called under the driver lock after each retired record (ordered mode
  /// only; never called in as-completed mode, which has no contiguity to
  /// report). A throwing callback aborts the run.
  std::function<void(const StreamProgress&)> progress;
  /// Canonicalization-keyed result cache (storage/result_cache.hpp), not
  /// owned; must outlive the run. When set, each record is looked up
  /// before its first solve attempt (a hit delivers the cached result and
  /// skips the solver) and every cacheable cold solve is inserted after.
  /// Null = no caching (historical behavior).
  storage::SolveCache* cache = nullptr;
};

/// What a pipeline run did. `max_in_flight` is the observed high-water of
/// pulled-but-undelivered instances -- always <= the window. Every record
/// is accounted exactly once: delivered + failed == indices retired.
struct StreamStats {
  std::size_t pulled = 0;     ///< instances taken from the source
  std::size_t delivered = 0;  ///< results handed to the sink
  std::size_t feasible = 0;   ///< delivered results with feasible == true
  std::size_t failed = 0;     ///< records retired as StreamErrors
  std::size_t retries = 0;    ///< extra solve/sink attempts made
  std::size_t recovered = 0;  ///< records delivered only after >= 1 retry
  std::size_t max_in_flight = 0;
  /// The in-flight bound in effect when the run ended: the explicit
  /// StreamOptions::window, the final adapted value (window == 0), or the
  /// worker count for the single-worker path.
  std::size_t window = 0;
  /// Input units consumed (source position at the end of the run, when the
  /// source tracks one -- see InstanceSource::position).
  std::size_t source_lines = 0;
  bool cancelled = false;  ///< the run stopped on a CancelToken
  /// CancelToken's reason at the moment the driver observed the
  /// cancellation (empty when reasonless or not cancelled).
  std::string cancel_reason;
  /// A worker thread failed to spawn but the already-running workers
  /// finished the stream anyway -- parallelism degraded, no work lost.
  bool degraded_spawn = false;
  /// Result-cache accounting (zero unless StreamOptions::cache was set):
  /// records served straight from the cache vs records that consulted it
  /// and had to solve cold.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

/// Drives instances from `source` through `solver` into `sink` with a
/// bounded in-flight window (see StreamOptions). What happens when a
/// solve, the source, or the sink throws is governed by
/// StreamOptions::on_error: the default (abort) cancels the remaining
/// work and rethrows on the caller with the offending instance index
/// attached to the message (original std::logic_error /
/// std::invalid_argument / std::runtime_error types are preserved);
/// skip/retry keep streaming and record failures (see the file comment).
/// With one worker the pipeline runs the same loop inline on the calling
/// thread -- deterministic pull/solve/deliver order.
StreamStats solve_stream(const Solver& solver, InstanceSource& source,
                         ResultSink& sink, const SolveOptions& options = {},
                         const StreamOptions& stream = {});

}  // namespace storesched
