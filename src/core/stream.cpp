#include "core/stream.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <istream>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <variant>

#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/parallel.hpp"
#include "storage/result_cache.hpp"

namespace storesched {

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

std::shared_ptr<const Instance> SpanSource::next() {
  if (cursor_ >= instances_.size()) return nullptr;
  // Non-owning alias into the caller's span (which outlives the run by
  // contract): the in-memory batch path never copies an instance.
  return std::shared_ptr<const Instance>(std::shared_ptr<const Instance>(),
                                         &instances_[cursor_++]);
}

std::shared_ptr<const Instance> GeneratorSource::next() {
  std::optional<Instance> inst = fn_();
  if (!inst) return nullptr;
  return std::make_shared<const Instance>(std::move(*inst));
}

std::shared_ptr<const Instance> JsonlInstanceSource::next() {
  // Before any input is consumed: an injected fault here leaves the stream
  // positioned exactly where it was, so skip/retry policies keep reading.
  failpoint::hit("source.next");
  std::string line;
  while (std::getline(in_, line)) {
    ++line_number_;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // The parser stamps the line number into its own error message, so a
    // bad line deep in a million-line stream is locatable as-is.
    return std::make_shared<const Instance>(
        instance_from_jsonl(line, line_number_));
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------------

void VectorSink::consume(std::size_t index, SolveResult result) {
  if (index >= results_.size()) {
    throw std::logic_error("VectorSink: index " + std::to_string(index) +
                           " outside the presized " +
                           std::to_string(results_.size()) + " results");
  }
  results_[index] = std::move(result);
}

std::string result_to_jsonl(std::size_t index, const SolveResult& result,
                            const JsonlResultOptions& options) {
  return "{\"index\":" + std::to_string(index) +
         result_jsonl_fields(result, options) + "}";
}

std::string result_jsonl_fields(const SolveResult& result,
                                const JsonlResultOptions& options) {
  std::ostringstream os;
  os << ",\"feasible\":" << (result.feasible ? "true" : "false");
  if (result.feasible) {
    os << ",\"cmax\":" << result.objectives.cmax
       << ",\"mmax\":" << result.objectives.mmax;
    if (result.sum_ci) os << ",\"sum_ci\":" << *result.sum_ci;
  }
  os << ",\"delta\":\"" << result.delta.to_string() << '"';
  const auto fraction_field = [&](const char* key,
                                  const std::optional<Fraction>& value) {
    if (value) os << ",\"" << key << "\":\"" << value->to_string() << '"';
  };
  fraction_field("cmax_bound", result.cmax_bound);
  fraction_field("mmax_bound", result.mmax_bound);
  fraction_field("cmax_ratio", result.cmax_ratio);
  fraction_field("mmax_ratio", result.mmax_ratio);
  fraction_field("sumci_ratio", result.sumci_ratio);
  if (!result.diagnostics.empty()) {
    os << ",\"diagnostics\":\"" << json_escape(result.diagnostics) << '"';
  }
  if (options.include_schedule && result.feasible) {
    os << ",\"proc\":[";
    for (std::size_t i = 0; i < result.schedule.n(); ++i) {
      os << (i ? "," : "") << result.schedule.proc(static_cast<TaskId>(i));
    }
    os << ']';
    if (result.schedule.timed()) {
      os << ",\"start\":[";
      for (std::size_t i = 0; i < result.schedule.n(); ++i) {
        os << (i ? "," : "") << result.schedule.start(static_cast<TaskId>(i));
      }
      os << ']';
    }
  }
  return os.str();
}

void JsonlResultSink::consume(std::size_t index, SolveResult result) {
  out_ << result_to_jsonl(index, result, options_) << '\n';
  if (!out_) {
    throw StreamWriteError(
        "JsonlResultSink: write failed (ostream badbit/failbit set)");
  }
}

void JsonlErrorSink::consume(StreamError error) {
  out_ << stream_error_to_jsonl(error) << '\n';
  if (!out_) {
    throw StreamWriteError(
        "JsonlErrorSink: write failed (ostream badbit/failbit set)");
  }
}

// ---------------------------------------------------------------------------
// Error records on the wire.
// ---------------------------------------------------------------------------

const char* to_string(StreamErrorCategory category) {
  switch (category) {
    case StreamErrorCategory::kSource:
      return "source";
    case StreamErrorCategory::kSolve:
      return "solve";
    case StreamErrorCategory::kSink:
      return "sink";
  }
  return "unknown";
}

std::string stream_error_to_jsonl(const StreamError& error) {
  std::ostringstream os;
  os << "{\"index\":" << error.index
     << ",\"error\":true,\"category\":\"" << to_string(error.category) << '"';
  if (error.line != 0) os << ",\"line\":" << error.line;
  os << ",\"attempts\":" << error.attempts << ",\"what\":\""
     << json_escape(error.what) << "\"}";
  return os.str();
}

namespace {

/// Strict parser for stream_error_to_jsonl() lines: exactly the emitted
/// grammar (no whitespace), keys in any order but none unknown, duplicated,
/// or missing. Errors carry the byte offset -- an error channel that has
/// itself gone bad should be locatable, not guessed at.
class ErrorRecordParser {
 public:
  explicit ErrorRecordParser(const std::string& line) : s_(line) {}

  StreamError parse() {
    StreamError error;
    bool saw_index = false, saw_marker = false, saw_category = false;
    bool saw_line = false, saw_attempts = false, saw_what = false;
    expect('{');
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      if (key == "index") {
        require_fresh(saw_index, key);
        error.index = parse_uint();
      } else if (key == "error") {
        require_fresh(saw_marker, key);
        if (!try_consume("true")) fail("\"error\" must be true");
      } else if (key == "category") {
        require_fresh(saw_category, key);
        const std::string token = parse_string();
        if (token == "source") {
          error.category = StreamErrorCategory::kSource;
        } else if (token == "solve") {
          error.category = StreamErrorCategory::kSolve;
        } else if (token == "sink") {
          error.category = StreamErrorCategory::kSink;
        } else {
          fail("unknown category \"" + token + "\"");
        }
      } else if (key == "line") {
        require_fresh(saw_line, key);
        error.line = parse_uint();
        if (error.line == 0) fail("\"line\" must be >= 1 when present");
      } else if (key == "attempts") {
        require_fresh(saw_attempts, key);
        const std::size_t attempts = parse_uint();
        if (attempts == 0 || attempts > 1000000) {
          fail("\"attempts\" outside [1, 1000000]");
        }
        error.attempts = static_cast<int>(attempts);
      } else if (key == "what") {
        require_fresh(saw_what, key);
        error.what = parse_string();
      } else {
        fail("unknown key \"" + key + "\"");
      }
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}');
    if (pos_ != s_.size()) fail("trailing bytes after the record");
    if (!saw_index) fail("missing \"index\"");
    if (!saw_marker) fail("missing \"error\" marker");
    if (!saw_category) fail("missing \"category\"");
    if (!saw_attempts) fail("missing \"attempts\"");
    if (!saw_what) fail("missing \"what\"");
    return error;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("stream error record: " + what + " (at byte " +
                             std::to_string(pos_) + ")");
  }

  void require_fresh(bool& seen, const std::string& key) {
    if (seen) fail("duplicate key \"" + key + "\"");
    seen = true;
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(const char* token) {
    const std::size_t len = std::string(token).size();
    if (s_.compare(pos_, len, token) != 0) return false;
    pos_ += len;
    return true;
  }

  std::size_t parse_uint() {
    const std::size_t begin = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ == begin) fail("expected a number");
    if (pos_ - begin > 1 && s_[begin] == '0') fail("leading zero in number");
    if (pos_ - begin > 18) fail("number too large");
    return static_cast<std::size_t>(std::stoull(s_.substr(begin, pos_ - begin)));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            if (h >= '0' && h <= '9') {
              value = value * 16 + static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value = value * 16 + static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value = value * 16 + static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("malformed \\u escape");
            }
          }
          // json_escape only ever emits \u00XX (control characters); wider
          // codepoints would need UTF-8 encoding this wire does not use.
          if (value > 0x7f) fail("\\u escape outside ASCII");
          out.push_back(static_cast<char>(value));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

StreamError stream_error_from_jsonl(const std::string& line) {
  return ErrorRecordParser(line).parse();
}

// ---------------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------------

namespace {

/// Rethrows `error` with the instance index attached to the message,
/// preserving the standard exception type where there is one (the
/// solve_batch contract: an SBO batch hitting a DAG instance still throws
/// std::logic_error, now naming the instance).
[[noreturn]] void rethrow_with_index(std::size_t index,
                                     const std::exception_ptr& error) {
  const std::string prefix =
      "solve_stream: instance " + std::to_string(index) + ": ";
  try {
    std::rethrow_exception(error);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(prefix + e.what());
  } catch (const std::logic_error& e) {
    throw std::logic_error(prefix + e.what());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(prefix + e.what());
  } catch (const std::exception& e) {
    throw std::runtime_error(prefix + e.what());
  } catch (...) {
    throw std::runtime_error(prefix + "unknown exception");
  }
}

std::string describe_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Default transient-vs-deterministic classification (RetryPolicy docs):
/// logic errors (a solver rejecting the instance shape) and dead output
/// streams will fail identically every time -- retrying burns backoff for
/// nothing. Everything else, injected faults included, is worth another
/// try.
bool default_retryable(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const StreamWriteError&) {
    return false;
  } catch (const std::logic_error&) {  // includes std::invalid_argument
    return false;
  } catch (...) {
    return true;
  }
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Backoff before re-attempt number `failures`+1: exponential in the
/// failure count, capped, scaled by a deterministic jitter factor in
/// [0.5, 1.5) keyed on (seed, record index, failure count) so concurrent
/// retries de-correlate without making runs irreproducible.
std::chrono::nanoseconds backoff_delay(const RetryPolicy& policy,
                                       std::size_t index, int failures) {
  const double cap = static_cast<double>(policy.max_backoff.count());
  double ns = static_cast<double>(policy.base_backoff.count());
  for (int i = 1; i < failures && ns < cap; ++i) ns *= policy.multiplier;
  ns = std::clamp(ns, 0.0, cap);
  const std::uint64_t draw = splitmix64(
      splitmix64(policy.jitter_seed ^ static_cast<std::uint64_t>(index)) +
      static_cast<std::uint64_t>(failures));
  const double jitter = 0.5 + static_cast<double>(draw >> 11) * 0x1.0p-53;
  return std::chrono::nanoseconds(static_cast<std::int64_t>(ns * jitter));
}

/// Rough byte footprint of one in-flight unit of work (the pulled instance
/// plus its result, extras channels included). Drives the adaptive window;
/// an estimate, not allocator-exact accounting.
std::size_t schedule_bytes(const Schedule& s) {
  return s.n() * (sizeof(ProcId) + sizeof(Time));
}

std::size_t estimate_footprint(const Instance& inst, const SolveResult& r) {
  std::size_t bytes = sizeof(Instance) + sizeof(SolveResult);
  bytes += inst.n() * sizeof(Task);
  if (inst.has_precedence()) {
    bytes += inst.n() * 2 * sizeof(std::vector<TaskId>) +
             inst.dag().edge_count() * 2 * sizeof(TaskId);
  }
  bytes += schedule_bytes(r.schedule) + r.diagnostics.size();
  if (r.rls) {
    bytes += schedule_bytes(r.rls->schedule) + r.rls->marked.size() / 8;
  }
  if (r.sbo) {
    bytes += schedule_bytes(r.sbo->schedule) + schedule_bytes(r.sbo->pi1) +
             schedule_bytes(r.sbo->pi2) + r.sbo->routed_to_pi2.size() / 8;
  }
  if (r.pareto) {
    for (const Schedule& s : r.pareto->schedules) bytes += schedule_bytes(s);
    bytes += r.pareto->front.size() * sizeof(ObjectivePoint);
  }
  return bytes;
}

/// How one pulled index ended: a result to deliver or a failure to record.
/// `source_pos` is the source's position when the index was pulled --
/// pulls are serialized under the lock, so positions are monotone in the
/// index and the ordered-mode progress/journal contract holds.
struct Outcome {
  std::variant<SolveResult, StreamError> payload;
  std::size_t source_pos = 0;
  bool retried = false;  ///< the solve needed >= 1 re-attempt
};

/// Shared pipeline state; mutable fields are guarded by `mu`, the policy
/// block at the bottom is read-only once the crew starts.
struct PipelineState {
  std::mutex mu;
  /// One condition for both "a window slot freed up" and "state changed"
  /// (failure, cancellation, source exhausted).
  std::condition_variable cv;

  std::size_t next_index = 0;    ///< index the next pull will get
  std::size_t in_flight = 0;     ///< pulled but not yet retired
  bool source_done = false;
  bool failed = false;
  std::exception_ptr error;
  std::size_t error_index = 0;

  /// The in-flight bound. Fixed for an explicit StreamOptions::window;
  /// otherwise re-sized after every completion so that
  /// window x (smoothed footprint) stays within the memory budget.
  std::size_t window_limit = 0;
  bool adaptive = false;
  std::size_t window_floor = 1;       ///< worker count
  std::size_t memory_budget = 0;      ///< bytes (adaptive mode only)
  double footprint_ewma = 0.0;        ///< smoothed estimate_footprint()
  bool footprint_seen = false;

  std::size_t next_deliver = 0;            ///< ordered mode: retirement head
  std::map<std::size_t, Outcome> pending;  ///< ordered mode: reorder buffer

  // Failure policy, resolved once in solve_stream before the crew starts.
  FailureAction action = FailureAction::kAbort;
  RetryPolicy retry;
  std::function<bool(const std::exception_ptr&)> retryable;
  ErrorSink* errors = nullptr;
  const std::function<void(const StreamProgress&)>* progress = nullptr;
  bool ordered = true;

  StreamStats stats;
};

/// Records the first failure and wakes everyone. Lock must be held.
void record_failure(PipelineState& state, std::size_t index,
                    std::exception_ptr error) {
  if (!state.failed) {
    state.failed = true;
    state.error = std::move(error);
    state.error_index = index;
  }
  state.cv.notify_all();
}

/// Adaptive window step: fold one observed footprint into the smoothed
/// estimate and re-derive the bound. Lock must be held.
void observe_footprint(PipelineState& state, std::size_t bytes) {
  if (!state.adaptive) return;
  const auto f = static_cast<double>(bytes);
  state.footprint_ewma = state.footprint_seen
                             ? state.footprint_ewma + (f - state.footprint_ewma) / 8.0
                             : f;
  state.footprint_seen = true;
  constexpr std::size_t kWindowCeiling = 4096;
  const auto per_unit =
      static_cast<std::size_t>(std::max(state.footprint_ewma, 1.0));
  state.window_limit =
      std::clamp(state.memory_budget / per_unit, state.window_floor,
                 kWindowCeiling);
}

/// Retires `index` as failed: accounts it and forwards the record to the
/// error channel. A throwing ErrorSink aborts the run regardless of policy
/// -- once the error channel is lost the run's accounting cannot be
/// trusted. Lock must be held. Returns false when the pipeline must stop.
bool emit_error(PipelineState& state, StreamError error) {
  --state.in_flight;
  ++state.stats.failed;
  if (state.errors != nullptr) {
    const std::size_t index = error.index;
    try {
      state.errors->consume(std::move(error));
    } catch (...) {
      record_failure(state, index, std::current_exception());
      return false;
    }
  }
  return true;
}

/// Hands one solved result to the sink, applying the failure policy to a
/// throwing consume(): abort records the failure, skip degrades the index
/// to an error record, retry re-attempts with an identical copy of the
/// result. Lock must be held; a retry backoff sleeps with the lock held --
/// sink calls are the serialization point, so a failing sink stalling the
/// pipeline IS backpressure. Returns false when the pipeline must stop.
bool emit_result(PipelineState& state, ResultSink& sink, std::size_t index,
                 Outcome out) {
  SolveResult& result = std::get<SolveResult>(out.payload);
  int attempt = 0;
  for (;;) {
    ++attempt;
    const bool may_retry = state.action == FailureAction::kRetry &&
                           attempt < state.retry.max_attempts;
    std::exception_ptr error;
    try {
      failpoint::hit("sink.consume");
      const bool feasible = result.feasible;
      if (may_retry) {
        SolveResult copy = result;  // keep the original for a re-attempt
        sink.consume(index, std::move(copy));
      } else {
        sink.consume(index, std::move(result));
      }
      --state.in_flight;
      ++state.stats.delivered;
      if (feasible) ++state.stats.feasible;
      if (out.retried || attempt > 1) ++state.stats.recovered;
      return true;
    } catch (...) {
      error = std::current_exception();
    }
    if (state.action == FailureAction::kAbort) {
      record_failure(state, index, error);
      return false;
    }
    if (may_retry && state.retryable(error)) {
      ++state.stats.retries;
      std::this_thread::sleep_for(backoff_delay(state.retry, index, attempt));
      continue;
    }
    return emit_error(state, StreamError{index, out.source_pos,
                                         StreamErrorCategory::kSink, attempt,
                                         describe_error(error)});
  }
}

/// Retires one outcome: results go to the sink, failures to the error
/// channel. Lock must be held. Returns false when the pipeline must stop.
bool retire(PipelineState& state, ResultSink& sink, std::size_t index,
            Outcome out) {
  if (std::holds_alternative<StreamError>(out.payload)) {
    return emit_error(state, std::move(std::get<StreamError>(out.payload)));
  }
  return emit_result(state, sink, index, std::move(out));
}

/// Routes one completed outcome toward retirement (immediately in
/// as-completed mode; via the reorder buffer in ordered mode, firing the
/// progress callback as the contiguous head advances). Lock must be held.
/// Returns false when the pipeline must stop.
bool deliver(PipelineState& state, ResultSink& sink, std::size_t index,
             Outcome out) {
  if (!state.ordered) return retire(state, sink, index, std::move(out));

  state.pending.emplace(index, std::move(out));
  while (!state.pending.empty() &&
         state.pending.begin()->first == state.next_deliver) {
    auto node = state.pending.extract(state.pending.begin());
    const std::size_t source_pos = node.mapped().source_pos;
    if (!retire(state, sink, node.key(), std::move(node.mapped()))) {
      return false;
    }
    ++state.next_deliver;
    if (state.progress != nullptr && *state.progress) {
      StreamProgress snapshot;
      snapshot.completed = state.next_deliver;
      snapshot.source_lines = source_pos;
      snapshot.delivered = state.stats.delivered;
      snapshot.failed = state.stats.failed;
      try {
        (*state.progress)(snapshot);
      } catch (...) {
        record_failure(state, state.next_deliver - 1,
                       std::current_exception());
        return false;
      }
    }
  }
  return true;
}

}  // namespace

StreamStats solve_stream(const Solver& solver, InstanceSource& source,
                         ResultSink& sink, const SolveOptions& options,
                         const StreamOptions& stream) {
  if (stream.on_error.action == FailureAction::kRetry &&
      stream.on_error.retry.max_attempts < 1) {
    throw std::invalid_argument(
        "solve_stream: retry.max_attempts must be >= 1");
  }
  const CancelToken* cancel = stream.cancel.get();
  // Right-size the crew: never more workers than instances (when the
  // source knows its size) and never more than the window has slots for.
  const std::size_t hint =
      source.size_hint().value_or(std::numeric_limits<std::size_t>::max());
  unsigned workers = parallel_worker_count(hint, stream.threads);
  const std::size_t window =
      stream.window > 0 ? stream.window : std::size_t{4} * workers;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, window));

  PipelineState state;
  if (workers <= 1) {
    // Single worker: the crew runs the loop inline on the calling thread
    // (run_worker_crew spawns nothing) and pull/solve/retire strictly
    // alternate -- in-flight never exceeds 1, so report window 1.
    state.window_limit = 1;
    state.adaptive = false;
  } else {
    state.window_limit = window;
    state.adaptive = stream.window == 0;
  }
  state.window_floor = workers;
  state.memory_budget = stream.memory_budget;
  state.next_index = stream.start_index;
  state.next_deliver = stream.start_index;
  state.ordered = stream.ordered;
  state.action = stream.on_error.action;
  state.retry = stream.on_error.retry;
  state.retryable =
      state.retry.retryable ? state.retry.retryable : default_retryable;
  state.errors = stream.errors;
  state.progress = &stream.progress;
  const auto cancelled = [&] { return cancel && cancel->cancelled(); };
  // The solver spec is part of the cache key; resolve it once, not per
  // record (Solver::name() may build a string).
  const std::string spec = stream.cache != nullptr ? solver.name() : std::string{};

  const auto worker = [&](unsigned) {
    for (;;) {
      std::unique_lock<std::mutex> lock(state.mu);
      // wait_for, not wait: an external thread cancelling the token has no
      // way to notify, so waiters re-check on a coarse timeout.
      while (!state.failed && !state.source_done && !cancelled() &&
             state.in_flight >= state.window_limit) {
        state.cv.wait_for(lock, std::chrono::milliseconds(20));
      }
      if (state.failed || state.source_done) return;
      if (cancelled()) {
        if (!state.stats.cancelled) {
          state.stats.cancelled = true;
          state.stats.cancel_reason = cancel->reason();
        }
        return;
      }

      // Pull under the lock: sources are single-consumer by contract.
      std::shared_ptr<const Instance> inst;
      std::exception_ptr pull_error;
      try {
        inst = source.next();
      } catch (...) {
        pull_error = std::current_exception();
      }
      const std::size_t source_pos = source.position().value_or(0);
      if (pull_error) {
        const std::size_t index = state.next_index++;
        if (state.action == FailureAction::kAbort) {
          record_failure(state, index, pull_error);
          return;
        }
        // Source faults are never retried: the source cannot re-produce
        // input it already consumed (stream.hpp file comment). Degrade to
        // skip-with-record and keep pulling.
        ++state.in_flight;
        Outcome out;
        out.source_pos = source_pos;
        out.payload =
            StreamError{index, source_pos, StreamErrorCategory::kSource, 1,
                        describe_error(pull_error)};
        if (!deliver(state, sink, index, std::move(out))) return;
        state.cv.notify_all();
        continue;
      }
      if (!inst) {
        state.source_done = true;
        state.cv.notify_all();
        return;
      }
      const std::size_t index = state.next_index++;
      ++state.in_flight;
      ++state.stats.pulled;
      state.stats.max_in_flight =
          std::max(state.stats.max_in_flight, state.in_flight);
      lock.unlock();

      // Solve outside the lock, re-attempting per policy. Backoff sleeps
      // are unlocked too: other workers keep streaming while this record
      // waits out its backoff.
      SolveResult result;
      bool solved = false;
      bool cache_hit = false;
      int attempt = 0;
      int extra_attempts = 0;
      std::exception_ptr solve_error;
      for (;;) {
        ++attempt;
        try {
          // Cache consult before the first cold attempt only: a record
          // that reached the retry path already missed. A hit under
          // STORESCHED_AUDIT=1 that fails its audit throws here and is
          // handled exactly like a deterministic solve fault.
          if (stream.cache != nullptr && attempt == 1) {
            if (auto cached = stream.cache->lookup(*inst, spec, options)) {
              result = *std::move(cached);
              solved = true;
              cache_hit = true;
              break;
            }
          }
          failpoint::hit("stream.solve");
          result = solver.solve(*inst, options);
          solved = true;
          if (stream.cache != nullptr) {
            stream.cache->insert(*inst, spec, options, result);
          }
          break;
        } catch (...) {
          solve_error = std::current_exception();
        }
        if (state.action != FailureAction::kRetry) break;
        if (attempt >= state.retry.max_attempts ||
            !state.retryable(solve_error)) {
          break;
        }
        ++extra_attempts;
        std::this_thread::sleep_for(
            backoff_delay(state.retry, index, attempt));
      }
      const std::size_t footprint =
          solved ? estimate_footprint(*inst, result) : 0;
      inst.reset();

      lock.lock();
      state.stats.retries += static_cast<std::size_t>(extra_attempts);
      if (cache_hit) {
        ++state.stats.cache_hits;
      } else if (stream.cache != nullptr) {
        ++state.stats.cache_misses;
      }
      if (state.failed) return;
      if (!solved && state.action == FailureAction::kAbort) {
        record_failure(state, index, solve_error);
        return;
      }
      Outcome out;
      out.source_pos = source_pos;
      if (solved) {
        observe_footprint(state, footprint);
        out.retried = attempt > 1;
        out.payload = std::move(result);
      } else {
        out.payload =
            StreamError{index, source_pos, StreamErrorCategory::kSolve,
                        attempt, describe_error(solve_error)};
      }
      if (!deliver(state, sink, index, std::move(out))) return;
      state.cv.notify_all();
    }
  };

  std::exception_ptr crew_error;
  try {
    run_worker_crew(workers, worker);
  } catch (...) {
    crew_error = std::current_exception();
  }

  // The crew has fully joined; no lock needed past here.
  if (state.failed) rethrow_with_index(state.error_index, state.error);
  if (crew_error) {
    // The worker body never lets an exception escape, so anything the crew
    // rethrew came from thread spawning. If the workers that did start
    // finished the stream anyway, degrade gracefully instead of discarding
    // a completed run.
    const bool completed =
        (state.source_done && state.in_flight == 0) || state.stats.cancelled;
    if (!completed) std::rethrow_exception(crew_error);
    state.stats.degraded_spawn = true;
  }
  state.stats.window = state.window_limit;
  state.stats.source_lines = source.position().value_or(0);
  return state.stats;
}

}  // namespace storesched
