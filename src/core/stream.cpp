#include "core/stream.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <istream>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/io.hpp"
#include "common/parallel.hpp"

namespace storesched {

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

std::shared_ptr<const Instance> SpanSource::next() {
  if (cursor_ >= instances_.size()) return nullptr;
  // Non-owning alias into the caller's span (which outlives the run by
  // contract): the in-memory batch path never copies an instance.
  return std::shared_ptr<const Instance>(std::shared_ptr<const Instance>(),
                                         &instances_[cursor_++]);
}

std::shared_ptr<const Instance> GeneratorSource::next() {
  std::optional<Instance> inst = fn_();
  if (!inst) return nullptr;
  return std::make_shared<const Instance>(std::move(*inst));
}

std::shared_ptr<const Instance> JsonlInstanceSource::next() {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_number_;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // The parser stamps the line number into its own error message, so a
    // bad line deep in a million-line stream is locatable as-is.
    return std::make_shared<const Instance>(
        instance_from_jsonl(line, line_number_));
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------------

void VectorSink::consume(std::size_t index, SolveResult result) {
  if (index >= results_.size()) {
    throw std::logic_error("VectorSink: index " + std::to_string(index) +
                           " outside the presized " +
                           std::to_string(results_.size()) + " results");
  }
  results_[index] = std::move(result);
}

std::string result_to_jsonl(std::size_t index, const SolveResult& result,
                            const JsonlResultOptions& options) {
  std::ostringstream os;
  os << "{\"index\":" << index
     << ",\"feasible\":" << (result.feasible ? "true" : "false");
  if (result.feasible) {
    os << ",\"cmax\":" << result.objectives.cmax
       << ",\"mmax\":" << result.objectives.mmax;
    if (result.sum_ci) os << ",\"sum_ci\":" << *result.sum_ci;
  }
  os << ",\"delta\":\"" << result.delta.to_string() << '"';
  const auto fraction_field = [&](const char* key,
                                  const std::optional<Fraction>& value) {
    if (value) os << ",\"" << key << "\":\"" << value->to_string() << '"';
  };
  fraction_field("cmax_bound", result.cmax_bound);
  fraction_field("mmax_bound", result.mmax_bound);
  fraction_field("cmax_ratio", result.cmax_ratio);
  fraction_field("mmax_ratio", result.mmax_ratio);
  fraction_field("sumci_ratio", result.sumci_ratio);
  if (!result.diagnostics.empty()) {
    os << ",\"diagnostics\":\"" << json_escape(result.diagnostics) << '"';
  }
  if (options.include_schedule && result.feasible) {
    os << ",\"proc\":[";
    for (std::size_t i = 0; i < result.schedule.n(); ++i) {
      os << (i ? "," : "") << result.schedule.proc(static_cast<TaskId>(i));
    }
    os << ']';
    if (result.schedule.timed()) {
      os << ",\"start\":[";
      for (std::size_t i = 0; i < result.schedule.n(); ++i) {
        os << (i ? "," : "") << result.schedule.start(static_cast<TaskId>(i));
      }
      os << ']';
    }
  }
  os << '}';
  return os.str();
}

void JsonlResultSink::consume(std::size_t index, SolveResult result) {
  out_ << result_to_jsonl(index, result, options_) << '\n';
  if (!out_) throw std::runtime_error("JsonlResultSink: write failed");
}

// ---------------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------------

namespace {

/// Rethrows `error` with the instance index attached to the message,
/// preserving the standard exception type where there is one (the
/// solve_batch contract: an SBO batch hitting a DAG instance still throws
/// std::logic_error, now naming the instance).
[[noreturn]] void rethrow_with_index(std::size_t index,
                                     const std::exception_ptr& error) {
  const std::string prefix =
      "solve_stream: instance " + std::to_string(index) + ": ";
  try {
    std::rethrow_exception(error);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(prefix + e.what());
  } catch (const std::logic_error& e) {
    throw std::logic_error(prefix + e.what());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(prefix + e.what());
  } catch (const std::exception& e) {
    throw std::runtime_error(prefix + e.what());
  } catch (...) {
    throw std::runtime_error(prefix + "unknown exception");
  }
}

/// Rough byte footprint of one in-flight unit of work (the pulled instance
/// plus its result, extras channels included). Drives the adaptive window;
/// an estimate, not allocator-exact accounting.
std::size_t schedule_bytes(const Schedule& s) {
  return s.n() * (sizeof(ProcId) + sizeof(Time));
}

std::size_t estimate_footprint(const Instance& inst, const SolveResult& r) {
  std::size_t bytes = sizeof(Instance) + sizeof(SolveResult);
  bytes += inst.n() * sizeof(Task);
  if (inst.has_precedence()) {
    bytes += inst.n() * 2 * sizeof(std::vector<TaskId>) +
             inst.dag().edge_count() * 2 * sizeof(TaskId);
  }
  bytes += schedule_bytes(r.schedule) + r.diagnostics.size();
  if (r.rls) {
    bytes += schedule_bytes(r.rls->schedule) + r.rls->marked.size() / 8;
  }
  if (r.sbo) {
    bytes += schedule_bytes(r.sbo->schedule) + schedule_bytes(r.sbo->pi1) +
             schedule_bytes(r.sbo->pi2) + r.sbo->routed_to_pi2.size() / 8;
  }
  if (r.pareto) {
    for (const Schedule& s : r.pareto->schedules) bytes += schedule_bytes(s);
    bytes += r.pareto->front.size() * sizeof(ObjectivePoint);
  }
  return bytes;
}

/// One worker to rule them out: with a single worker the pipeline runs
/// inline -- no threads, no locks, a deterministic pull/solve/deliver loop.
StreamStats run_inline(const Solver& solver, InstanceSource& source,
                       ResultSink& sink, const SolveOptions& options,
                       const CancelToken* cancel) {
  StreamStats stats;
  stats.window = 1;  // pull/solve/deliver strictly alternate
  for (std::size_t index = 0;; ++index) {
    if (cancel && cancel->cancelled()) {
      stats.cancelled = true;
      return stats;
    }
    std::shared_ptr<const Instance> inst;
    SolveResult result;
    try {
      inst = source.next();
      if (!inst) return stats;
      ++stats.pulled;
      stats.max_in_flight = std::max<std::size_t>(stats.max_in_flight, 1);
      result = solver.solve(*inst, options);
      const bool feasible = result.feasible;
      sink.consume(index, std::move(result));
      ++stats.delivered;
      if (feasible) ++stats.feasible;
    } catch (...) {
      rethrow_with_index(index, std::current_exception());
    }
  }
}

/// Shared pipeline state; every field is guarded by `mu`.
struct PipelineState {
  std::mutex mu;
  /// One condition for both "a window slot freed up" and "state changed"
  /// (failure, cancellation, source exhausted).
  std::condition_variable cv;

  std::size_t next_index = 0;    ///< index the next pull will get
  std::size_t in_flight = 0;     ///< pulled but not yet delivered
  bool source_done = false;
  bool failed = false;
  std::exception_ptr error;
  std::size_t error_index = 0;

  /// The in-flight bound. Fixed for an explicit StreamOptions::window;
  /// otherwise re-sized after every completion so that
  /// window x (smoothed footprint) stays within the memory budget.
  std::size_t window_limit = 0;
  bool adaptive = false;
  std::size_t window_floor = 1;       ///< worker count
  std::size_t memory_budget = 0;      ///< bytes (adaptive mode only)
  double footprint_ewma = 0.0;        ///< smoothed estimate_footprint()
  bool footprint_seen = false;

  std::size_t next_deliver = 0;             ///< ordered mode: delivery head
  std::map<std::size_t, SolveResult> done;  ///< ordered mode: out-of-order buffer

  StreamStats stats;
};

/// Records the first failure and wakes everyone. Lock must be held.
void record_failure(PipelineState& state, std::size_t index,
                    std::exception_ptr error) {
  if (!state.failed) {
    state.failed = true;
    state.error = std::move(error);
    state.error_index = index;
  }
  state.cv.notify_all();
}

/// Adaptive window step: fold one observed footprint into the smoothed
/// estimate and re-derive the bound. Lock must be held.
void observe_footprint(PipelineState& state, std::size_t bytes) {
  if (!state.adaptive) return;
  const auto f = static_cast<double>(bytes);
  state.footprint_ewma = state.footprint_seen
                             ? state.footprint_ewma + (f - state.footprint_ewma) / 8.0
                             : f;
  state.footprint_seen = true;
  constexpr std::size_t kWindowCeiling = 4096;
  const auto per_unit =
      static_cast<std::size_t>(std::max(state.footprint_ewma, 1.0));
  state.window_limit =
      std::clamp(state.memory_budget / per_unit, state.window_floor,
                 kWindowCeiling);
}

/// Hands one completed result to the sink (immediately in as-completed
/// mode; via the reorder buffer in ordered mode). Lock must be held --
/// sinks are not required to be thread-safe, and a sink that blocks here
/// IS the backpressure. Returns false after recording a sink failure.
bool deliver(PipelineState& state, ResultSink& sink, bool ordered,
             std::size_t index, SolveResult result) {
  const auto emit = [&](std::size_t i, SolveResult r) {
    const bool feasible = r.feasible;
    try {
      sink.consume(i, std::move(r));
    } catch (...) {
      record_failure(state, i, std::current_exception());
      return false;
    }
    --state.in_flight;
    ++state.stats.delivered;
    if (feasible) ++state.stats.feasible;
    return true;
  };

  if (!ordered) return emit(index, std::move(result));

  state.done.emplace(index, std::move(result));
  while (!state.done.empty() &&
         state.done.begin()->first == state.next_deliver) {
    auto node = state.done.extract(state.done.begin());
    if (!emit(node.key(), std::move(node.mapped()))) return false;
    ++state.next_deliver;
  }
  return true;
}

}  // namespace

StreamStats solve_stream(const Solver& solver, InstanceSource& source,
                         ResultSink& sink, const SolveOptions& options,
                         const StreamOptions& stream) {
  const CancelToken* cancel = stream.cancel.get();
  // Right-size the crew: never more workers than instances (when the
  // source knows its size) and never more than the window has slots for.
  const std::size_t hint =
      source.size_hint().value_or(std::numeric_limits<std::size_t>::max());
  unsigned workers = parallel_worker_count(hint, stream.threads);
  const std::size_t window =
      stream.window > 0 ? stream.window : std::size_t{4} * workers;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, window));

  if (workers <= 1) {
    return run_inline(solver, source, sink, options, cancel);
  }

  PipelineState state;
  state.window_limit = window;
  state.adaptive = stream.window == 0;
  state.window_floor = workers;
  state.memory_budget = stream.memory_budget;
  const auto cancelled = [&] { return cancel && cancel->cancelled(); };

  run_worker_crew(workers, [&](unsigned) {
    for (;;) {
      std::unique_lock<std::mutex> lock(state.mu);
      // wait_for, not wait: an external thread cancelling the token has no
      // way to notify, so waiters re-check on a coarse timeout.
      while (!state.failed && !state.source_done && !cancelled() &&
             state.in_flight >= state.window_limit) {
        state.cv.wait_for(lock, std::chrono::milliseconds(20));
      }
      if (state.failed || state.source_done) return;
      if (cancelled()) {
        state.stats.cancelled = true;
        return;
      }

      // Pull under the lock: sources are single-consumer by contract.
      std::shared_ptr<const Instance> inst;
      try {
        inst = source.next();
      } catch (...) {
        record_failure(state, state.next_index, std::current_exception());
        return;
      }
      if (!inst) {
        state.source_done = true;
        state.cv.notify_all();
        return;
      }
      const std::size_t index = state.next_index++;
      ++state.in_flight;
      ++state.stats.pulled;
      state.stats.max_in_flight =
          std::max(state.stats.max_in_flight, state.in_flight);
      lock.unlock();

      SolveResult result;
      std::size_t footprint = 0;
      try {
        result = solver.solve(*inst, options);
        footprint = estimate_footprint(*inst, result);
      } catch (...) {
        lock.lock();
        record_failure(state, index, std::current_exception());
        return;
      }

      lock.lock();
      if (state.failed) return;
      observe_footprint(state, footprint);
      if (!deliver(state, sink, stream.ordered, index, std::move(result))) {
        return;
      }
      state.cv.notify_all();
    }
  });

  if (state.failed) rethrow_with_index(state.error_index, state.error);
  state.stats.window = state.window_limit;
  return state.stats;
}

}  // namespace storesched
