#include "core/pareto_enum.hpp"

#include <map>
#include <stdexcept>

#include "common/env.hpp"
#include "core/pareto_bb.hpp"

namespace storesched {

Time ParetoEnumResult::optimal_cmax() const {
  if (front.empty()) return 0;
  return front.front().value.cmax;
}

Mem ParetoEnumResult::optimal_mmax() const {
  if (front.empty()) return 0;
  return front.back().value.mmax;
}

namespace {

/// Incremental Pareto store: cmax -> (mmax, assignment), kept mutually
/// non-dominated (strictly increasing cmax, strictly decreasing mmax).
class FrontStore {
 public:
  void offer(Time c, Mem m, const std::vector<ProcId>& assign) {
    // Dominance check: among stored entries with cmax <= c the one with the
    // largest cmax has the smallest mmax, so it alone decides.
    auto it = entries_.upper_bound(c);
    if (it != entries_.begin()) {
      const auto& prev = std::prev(it)->second;
      if (prev.first <= m) return;  // dominated (or duplicated)
    }
    // Remove entries the new point dominates: cmax >= c with mmax >= m.
    while (it != entries_.end() && it->second.first >= m) {
      it = entries_.erase(it);
    }
    entries_[c] = {m, assign};
  }

  const std::map<Time, std::pair<Mem, std::vector<ProcId>>>& entries() const {
    return entries_;
  }

 private:
  std::map<Time, std::pair<Mem, std::vector<ProcId>>> entries_;
};

struct EnumState {
  const Instance* inst = nullptr;
  std::uint64_t limit = 0;
  std::uint64_t enumerated = 0;
  std::vector<ProcId> assign;
  std::vector<Time> load;
  std::vector<Mem> mem;
  FrontStore store;

  void dfs(std::size_t idx, int used) {
    if (idx == inst->n()) {
      if (++enumerated > limit) {
        throw std::runtime_error("enumerate_pareto: enumeration limit hit");
      }
      Time c = 0;
      Mem mm = 0;
      for (int q = 0; q < used; ++q) {
        c = std::max(c, load[static_cast<std::size_t>(q)]);
        mm = std::max(mm, mem[static_cast<std::size_t>(q)]);
      }
      store.offer(c, mm, assign);
      return;
    }
    const Task& t = inst->task(static_cast<TaskId>(idx));
    // A task may use any non-empty processor or open the first empty one.
    const int reach = std::min(used + 1, inst->m());
    for (ProcId q = 0; q < reach; ++q) {
      assign[idx] = q;
      load[static_cast<std::size_t>(q)] += t.p;
      mem[static_cast<std::size_t>(q)] += t.s;
      dfs(idx + 1, std::max(used, q + 1));
      load[static_cast<std::size_t>(q)] -= t.p;
      mem[static_cast<std::size_t>(q)] -= t.s;
    }
    assign[idx] = kNoProc;
  }
};

}  // namespace

ParetoEnumResult enumerate_pareto_reference(const Instance& inst,
                                            std::uint64_t limit) {
  if (inst.has_precedence()) {
    throw std::logic_error("enumerate_pareto: independent tasks only");
  }

  EnumState state;
  state.inst = &inst;
  state.limit = limit;
  state.assign.assign(inst.n(), kNoProc);
  state.load.assign(static_cast<std::size_t>(inst.m()), 0);
  state.mem.assign(static_cast<std::size_t>(inst.m()), 0);

  if (inst.n() == 0) {
    ParetoEnumResult empty;
    empty.front.push_back({{0, 0}, 0});
    empty.schedules.emplace_back(inst);
    empty.enumerated = 1;
    return empty;
  }
  state.dfs(0, 0);

  ParetoEnumResult result;
  result.enumerated = state.enumerated;
  for (const auto& [c, entry] : state.store.entries()) {
    Schedule sched(inst);
    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      sched.assign(i, entry.second[static_cast<std::size_t>(i)]);
    }
    result.front.push_back(
        {{c, entry.first}, static_cast<std::int64_t>(result.schedules.size())});
    result.schedules.push_back(std::move(sched));
  }
  return result;
}

ParetoEnumResult enumerate_pareto(const Instance& inst, std::uint64_t limit) {
  if (env_flag_set("STORESCHED_PARETO_REFERENCE")) {
    return enumerate_pareto_reference(inst, limit);
  }
  return enumerate_pareto_bb(inst, limit);
}

}  // namespace storesched
