// Approximate Pareto-front generation by sweeping the Delta parameter.
//
// Section 6 of the paper contrasts absolute approximation (one tunable
// solution -- what SBO/RLS provide) with Pareto-set approximation (a whole
// menu of trade-offs). The paper observes that all of its algorithms "can
// be tuned using the Delta parameter"; this module turns that remark into
// an operational front generator: run the chosen algorithm across a Delta
// grid, collect the measured (Cmax, Mmax) points, and Pareto-filter them.
//
// The resulting front is *achievable by construction* (each point carries
// its schedule) and, by Corollary 1, epsilon-covers the true front within
// the guarantee envelope: for any feasible point (c, m') the grid point
// with the nearest Delta dominates ((1+Delta)rho1 c, (1+1/Delta)rho2 m').
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "algorithms/scheduler.hpp"
#include "common/instance.hpp"
#include "common/pareto.hpp"
#include "common/schedule.hpp"

namespace storesched {

/// One achievable trade-off point: the Delta that produced it, its
/// schedule, and its objective values.
struct FrontPoint {
  Fraction delta;
  Schedule schedule;
  ObjectivePoint value;
};

struct ApproxFront {
  /// Pareto-filtered achievable points, ascending Cmax.
  std::vector<FrontPoint> points;
  /// Number of algorithm runs (grid size; some runs collapse to the same
  /// point or are dominated).
  int runs = 0;
};

/// Geometric Delta grid from lo to hi (inclusive-ish) with `steps` points.
/// Exposed for benches that want the raw grid.
std::vector<Fraction> delta_grid(const Fraction& lo, const Fraction& hi,
                                 int steps);

/// Pareto-filters raw (delta, schedule, value) runs: keeps the
/// non-dominated points sorted by ascending Cmax. Shared by the per-family
/// fronts below and the generic front() in core/solver.hpp.
std::vector<FrontPoint> pareto_filter_front(std::vector<FrontPoint> raw);

/// The Delta-sweep skeleton behind every front generator: runs
/// solve_at(grid[i]) for each grid point, fanned out over the shared
/// worker pool (common/parallel.hpp), skips infeasible points (nullopt),
/// collects the rest in grid order and Pareto-filters them. runs equals
/// the grid size.
ApproxFront sweep_delta_grid(
    const Instance& inst, std::span<const Fraction> grid,
    const std::function<std::optional<Schedule>(const Fraction&)>& solve_at);

/// SBO Delta sweep with the ingredient schedules hoisted out of the grid
/// loop: alg1/alg2 run once, only the threshold routing is redone per
/// point. Shared by sbo_front() and the sbo solver's delta_sweep().
ApproxFront sbo_sweep(const Instance& inst, const MakespanScheduler& alg1,
                      const MakespanScheduler& alg2,
                      std::span<const Fraction> grid);

/// Approximate front via SBO_Delta (independent tasks only).
/// The grid defaults to [1/8, 8] with `steps` geometric points. The
/// Delta-independent ingredient schedules are computed once and only the
/// threshold routing is redone per grid point, fanned out over the shared
/// worker pool (common/parallel.hpp) -- identical points to the serial
/// per-Delta loop, at a fraction of the cost.
ApproxFront sbo_front(const Instance& inst, const MakespanScheduler& alg,
                      int steps = 17);

/// Approximate front via RLS_Delta (independent or DAG instances).
/// The grid spans (2, hi]; infeasible runs (possible only outside the
/// guarantee zone) are skipped. Grid points run in parallel.
ApproxFront rls_front(const Instance& inst, int steps = 17,
                      const Fraction& hi = Fraction(16));

/// Multiplicative epsilon-coverage of `reference` by `front`: the smallest
/// eps such that every reference point (c, m') is dominated by some front
/// point scaled down by (1+eps) on both axes, i.e.
///   exists p in front: p.cmax <= (1+eps) c AND p.mmax <= (1+eps) m'.
/// Returns the exact max-min ratio as a double (1.0 = front dominates the
/// reference outright). Both fronts must be non-empty.
double coverage_epsilon(const std::vector<FrontPoint>& front,
                        std::span<const LabelledPoint> reference);

}  // namespace storesched
