#include "core/worstcase.hpp"

#include <algorithm>
#include <stdexcept>

#include "algorithms/partition.hpp"
#include "core/theory.hpp"

namespace storesched {

namespace {

double rls_ratio(const Instance& inst, const Fraction& delta,
                 std::uint64_t& evaluations) {
  ++evaluations;
  const RlsResult r = rls_schedule(inst, delta);
  if (!r.feasible) return 0.0;  // cannot happen for Delta > 2
  std::vector<std::int64_t> p;
  p.reserve(inst.n());
  for (const Task& t : inst.tasks()) p.push_back(t.p);
  const std::int64_t opt =
      partition_value(p, exact_bnb_assign(p, inst.m()), inst.m());
  if (opt == 0) return 0.0;
  return static_cast<double>(cmax(inst, r.schedule)) /
         static_cast<double>(opt);
}

}  // namespace

WorstCaseResult search_rls_worst_case(int n, int m, const Fraction& delta,
                                      int restarts, int steps,
                                      std::int64_t w_max, Rng& rng) {
  if (n < 1 || n > 16 || m < 2) {
    throw std::invalid_argument("search_rls_worst_case: need 1 <= n <= 16, m >= 2");
  }
  if (!(Fraction(2) < delta)) {
    throw std::invalid_argument("search_rls_worst_case: Delta > 2");
  }
  if (restarts < 1 || steps < 0 || w_max < 1) {
    throw std::invalid_argument("search_rls_worst_case: bad search budget");
  }

  WorstCaseResult best;
  best.bound = rls_cmax_ratio(delta, m).to_double();
  std::uint64_t evals = 0;

  for (int restart = 0; restart < restarts; ++restart) {
    std::vector<Task> tasks(static_cast<std::size_t>(n));
    for (Task& t : tasks) {
      t.p = rng.uniform_int(1, w_max);
      t.s = rng.uniform_int(1, w_max);
    }
    Instance current(tasks, m);
    double current_ratio = rls_ratio(current, delta, evals);

    for (int step = 0; step < steps; ++step) {
      // Mutate one weight of one task multiplicatively.
      std::vector<Task> mutated(current.tasks().begin(),
                                current.tasks().end());
      const auto idx =
          static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      const bool mutate_p = rng.bernoulli(0.5);
      std::int64_t& w = mutate_p ? mutated[idx].p : mutated[idx].s;
      const double factor = 0.5 + 1.5 * rng.uniform01();
      w = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(static_cast<double>(w) * factor) +
              rng.uniform_int(-2, 2),
          1, w_max);

      Instance candidate(std::move(mutated), m);
      const double ratio = rls_ratio(candidate, delta, evals);
      if (ratio > current_ratio) {
        current = std::move(candidate);
        current_ratio = ratio;
      }
    }
    if (current_ratio > best.measured_ratio) {
      best.measured_ratio = current_ratio;
      best.instance = std::move(current);
    }
  }
  best.evaluations = evals;
  return best;
}

}  // namespace storesched
