#include "core/pareto_bb.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "algorithms/partition.hpp"
#include "common/fraction.hpp"
#include "common/rng.hpp"

namespace storesched {

bool FrontStaircase::dominated(Time c, Mem m) const {
  // Among entries with cmax <= c the last has the smallest mmax, so it
  // alone decides.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), c,
      [](Time value, const Entry& e) { return value < e.cmax; });
  if (it == entries_.begin()) return false;
  return std::prev(it)->mmax <= m;
}

bool FrontStaircase::can_improve(Time lb_c, Mem lb_m,
                                 std::int64_t lb_cm) const {
  // First entry with cmax > lb_c; everything before it is summarized by
  // its predecessor (smallest mmax among entries with cmax <= lb_c).
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), lb_c,
      [](Time value, const Entry& e) { return value < e.cmax; });
  if (it == entries_.begin()) return true;  // nothing dominates c = lb_c yet
  // Walk the staircase gaps: within [gap start, next entry's cmax) the
  // dominance ceiling is prev->mmax, and the best c in the gap is the
  // largest one (it minimizes the m forced by the combined bound).
  for (auto prev = std::prev(it);; prev = it++) {
    if (it == entries_.end()) {
      // Unbounded gap: c free, so only the per-objective floor binds.
      return lb_m < prev->mmax;
    }
    const Time c_best = it->cmax - 1;  // objectives are integral
    const Mem m_need = std::max<std::int64_t>(lb_m, lb_cm - c_best);
    if (m_need < prev->mmax) return true;
  }
}

bool FrontStaircase::offer(Time c, Mem m, std::span<const ProcId> assign) {
  if (dominated(c, m)) return false;
  // Entries the new point dominates are the leading run of the cmax >= c
  // suffix (mmax decreases along the staircase).
  auto first = std::lower_bound(
      entries_.begin(), entries_.end(), c,
      [](const Entry& e, Time value) { return e.cmax < value; });
  auto last = first;
  while (last != entries_.end() && last->mmax >= m) ++last;
  Entry entry{c, m, std::vector<ProcId>(assign.begin(), assign.end())};
  if (first != last) {
    *first = std::move(entry);
    entries_.erase(first + 1, last);
  } else {
    entries_.insert(first, std::move(entry));
  }
  return true;
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Lower bound on the final max subset sum when `remaining` weight can
/// still be spread arbitrarily (fractionally) over the current loads:
/// max(current max load, ceil of the water-fill level). `scratch` is
/// caller-provided to keep the per-node cost allocation-free.
std::int64_t fluid_bound(std::vector<std::int64_t>& scratch,
                         std::span<const std::int64_t> load,
                         std::int64_t remaining) {
  scratch.assign(load.begin(), load.end());
  std::sort(scratch.begin(), scratch.end());
  const std::int64_t maxl = scratch.back();
  if (remaining == 0) return maxl;
  const int m = static_cast<int>(scratch.size());
  std::int64_t prefix = 0;
  for (int k = 1; k <= m; ++k) {
    prefix += scratch[static_cast<std::size_t>(k - 1)];
    // Water level over the k smallest loads: (remaining + prefix) / k.
    // Valid at the first k where the level stays below the (k+1)-th load;
    // the level >= k-th load holds there automatically.
    const std::int64_t num = remaining + prefix;
    if (k == m ||
        num <= scratch[static_cast<std::size_t>(k)] * static_cast<std::int64_t>(k)) {
      return std::max(maxl, ceil_div(num, k));
    }
  }
  return maxl;  // unreachable: k == m always returns
}

struct BbState {
  const Instance* inst = nullptr;
  std::uint64_t limit = 0;
  std::uint64_t nodes = 0;
  std::size_t n = 0;
  int m = 0;
  std::int64_t c_star = 0;  // exact single-objective optima: global floors
  std::int64_t m_star = 0;
  std::int64_t c_ref = 1;  // axis normalizers for the child ordering
  std::int64_t m_ref = 1;  // (the optima when known, Graham bounds else)

  std::vector<TaskId> order;       // tasks by non-increasing normalized weight
  std::vector<Time> suffix_max_p;  // over order[idx..], size n + 1
  std::vector<Mem> suffix_max_s;
  std::vector<std::int64_t> suffix_max_ps;  // max p + s over the suffix
  std::vector<Time> suffix_sum_p;
  std::vector<Mem> suffix_sum_s;

  std::vector<std::int64_t> load;
  std::vector<std::int64_t> mem;
  std::vector<std::int64_t> combined;  // load[q] + mem[q], rebuilt per node
  std::vector<std::int64_t> scratch_p;
  std::vector<std::int64_t> scratch_s;
  std::vector<std::int64_t> scratch_c;
  std::vector<ProcId> assign;                 // by task id
  std::vector<std::vector<ProcId>> children;  // per-depth candidate buffers
  FrontStaircase front;

  void dfs(std::size_t idx, int used) {
    if (++nodes > limit) {
      throw std::runtime_error("enumerate_pareto: enumeration limit hit");
    }
    if (idx == n) {
      std::int64_t c = 0;
      std::int64_t mm = 0;
      for (int q = 0; q < used; ++q) {
        c = std::max(c, load[static_cast<std::size_t>(q)]);
        mm = std::max(mm, mem[static_cast<std::size_t>(q)]);
      }
      front.offer(c, mm, assign);
      return;
    }
    // Per-objective lower bounds on any completion: the water-fill level of
    // the remaining weight, the largest single remaining weight (it lands
    // on some processor whole), and the exact single-objective optimum (a
    // global floor; without it the search burns its budget re-proving
    // "no schedule beats C*" in every subtree).
    const std::int64_t lb_c = std::max(
        {fluid_bound(scratch_p, load, suffix_sum_p[idx]), suffix_max_p[idx],
         c_star});
    const std::int64_t lb_m = std::max(
        {fluid_bound(scratch_s, mem, suffix_sum_s[idx]), suffix_max_s[idx],
         m_star});
    // Combined bound: cmax + mmax >= max_q(load_q + mem_q) for every
    // schedule, so the water-fill of the combined weight lower-bounds the
    // objective sum. This is the bound with teeth on anti-correlated
    // instances, where p + s is flat and neither axis bounds well alone.
    for (int q = 0; q < m; ++q) {
      combined[static_cast<std::size_t>(q)] =
          load[static_cast<std::size_t>(q)] + mem[static_cast<std::size_t>(q)];
    }
    const std::int64_t lb_cm =
        std::max(fluid_bound(scratch_c, combined,
                             suffix_sum_p[idx] + suffix_sum_s[idx]),
                 suffix_max_ps[idx]);
    if (!front.can_improve(lb_c, lb_m, lb_cm)) return;

    const Task& t = inst->task(order[idx]);
    // Symmetry breaking: any non-empty processor or the first empty one.
    const int reach = std::min(used + 1, m);
    std::vector<ProcId>& cand = children[idx];
    cand.resize(static_cast<std::size_t>(reach));
    std::iota(cand.begin(), cand.end(), ProcId{0});
    // Smallest normalized peak first: DFS dives toward doubly-balanced
    // completions, which is what hands the dominance prune incumbents
    // early (single-point fronts are found, not stumbled upon).
    const auto child_key = [&](ProcId q) {
      return std::max(
          static_cast<Int128>(load[static_cast<std::size_t>(q)] + t.p) *
              m_ref,
          static_cast<Int128>(mem[static_cast<std::size_t>(q)] + t.s) *
              c_ref);
    };
    std::sort(cand.begin(), cand.end(), [&](ProcId a, ProcId b) {
      const Int128 ka = child_key(a);
      const Int128 kb = child_key(b);
      if (ka != kb) return ka < kb;
      return a < b;
    });
    for (const ProcId q : cand) {
      assign[static_cast<std::size_t>(order[idx])] = q;
      load[static_cast<std::size_t>(q)] += t.p;
      mem[static_cast<std::size_t>(q)] += t.s;
      dfs(idx + 1, std::max(used, q + 1));
      load[static_cast<std::size_t>(q)] -= t.p;
      mem[static_cast<std::size_t>(q)] -= t.s;
    }
    assign[static_cast<std::size_t>(order[idx])] = kNoProc;
  }
};

/// Offers one assignment's (Cmax, Mmax) point to the staircase.
void offer_assignment(const Instance& inst, std::span<const ProcId> assign,
                      FrontStaircase& front) {
  std::vector<std::int64_t> load(static_cast<std::size_t>(inst.m()), 0);
  std::vector<std::int64_t> mem(static_cast<std::size_t>(inst.m()), 0);
  for (std::size_t i = 0; i < inst.n(); ++i) {
    const Task& t = inst.task(static_cast<TaskId>(i));
    load[static_cast<std::size_t>(assign[i])] += t.p;
    mem[static_cast<std::size_t>(assign[i])] += t.s;
  }
  std::int64_t c = 0;
  std::int64_t mm = 0;
  for (int q = 0; q < inst.m(); ++q) {
    c = std::max(c, load[static_cast<std::size_t>(q)]);
    mm = std::max(mm, mem[static_cast<std::size_t>(q)]);
  }
  front.offer(c, mm, assign);
}

/// Seeds the incumbent staircase with cheap achievable points: LPT and
/// MULTIFIT on each axis, and SBO threshold routings between each
/// time/storage ingredient pair across a geometric Delta ladder (the
/// Algorithm 1 recipe with C = Cmax(pi1), M = Mmax(pi2)). Every seed is a
/// real assignment, so seeding cannot perturb the exact front -- it only
/// lets the search prune earlier.
void seed_front(const Instance& inst, FrontStaircase& front) {
  std::vector<std::int64_t> wp;
  std::vector<std::int64_t> ws;
  wp.reserve(inst.n());
  ws.reserve(inst.n());
  for (const Task& t : inst.tasks()) {
    wp.push_back(t.p);
    ws.push_back(t.s);
  }

  const auto ladder = [&](const std::vector<ProcId>& pi1,
                          const std::vector<ProcId>& pi2) {
    const std::int64_t c_ing = partition_value(wp, pi1, inst.m());
    const std::int64_t m_ing = partition_value(ws, pi2, inst.m());
    if (c_ing == 0 || m_ing == 0) return;  // one objective is degenerate
    // Delta ladder 2^-5 .. 2^5; route task i to pi2 iff p_i/C < Delta
    // s_i/M, cross-multiplied in 128 bits exactly as core/sbo.cpp does.
    std::vector<ProcId> mixed(inst.n());
    for (int exp = -5; exp <= 5; ++exp) {
      const std::int64_t num = exp >= 0 ? (std::int64_t{1} << exp) : 1;
      const std::int64_t den = exp < 0 ? (std::int64_t{1} << -exp) : 1;
      const Int128 lhs_scale = static_cast<Int128>(den) * m_ing;
      const Int128 rhs_scale = static_cast<Int128>(num) * c_ing;
      for (std::size_t i = 0; i < inst.n(); ++i) {
        const Task& t = inst.task(static_cast<TaskId>(i));
        mixed[i] = t.p * lhs_scale < t.s * rhs_scale ? pi2[i] : pi1[i];
      }
      offer_assignment(inst, mixed, front);
    }
  };

  const std::vector<ProcId> lpt_p = lpt_assign(wp, inst.m());
  const std::vector<ProcId> lpt_s = lpt_assign(ws, inst.m());
  const std::vector<ProcId> mf_p = multifit_assign(wp, inst.m());
  const std::vector<ProcId> mf_s = multifit_assign(ws, inst.m());
  for (const auto* a : {&lpt_p, &lpt_s, &mf_p, &mf_s}) {
    offer_assignment(inst, *a, front);
  }
  ladder(lpt_p, lpt_s);
  ladder(mf_p, mf_s);
}

/// Greedy peak-reduction polish: repeatedly lower the normalized peak
/// max(load * m_ref, mem * c_ref) of the worst processor with single-task
/// moves, then pairwise swaps, until neither helps. Loads/mems are kept
/// incrementally consistent with `assign`.
void polish_assignment(const Instance& inst, std::int64_t c_ref,
                       std::int64_t m_ref, std::vector<ProcId>& assign,
                       std::vector<std::int64_t>& load,
                       std::vector<std::int64_t>& mem) {
  const int m = inst.m();
  const auto n = static_cast<TaskId>(inst.n());
  const auto pkey = [&](std::int64_t l, std::int64_t mm) {
    return std::max(static_cast<Int128>(l) * m_ref,
                    static_cast<Int128>(mm) * c_ref);
  };
  const auto at = [](std::vector<std::int64_t>& v, ProcId q) -> std::int64_t& {
    return v[static_cast<std::size_t>(q)];
  };
  for (int pass = 0; pass < 64; ++pass) {
    ProcId peak = 0;
    for (ProcId q = 1; q < m; ++q) {
      if (pkey(at(load, q), at(mem, q)) > pkey(at(load, peak), at(mem, peak))) {
        peak = q;
      }
    }
    const Int128 peak_key = pkey(at(load, peak), at(mem, peak));
    bool improved = false;
    for (TaskId i = 0; i < n && !improved; ++i) {
      if (assign[static_cast<std::size_t>(i)] != peak) continue;
      const Task& ti = inst.task(i);
      for (ProcId q = 0; q < m && !improved; ++q) {
        if (q == peak) continue;
        // Move i off the peak processor...
        if (std::max(pkey(at(load, peak) - ti.p, at(mem, peak) - ti.s),
                     pkey(at(load, q) + ti.p, at(mem, q) + ti.s)) < peak_key) {
          assign[static_cast<std::size_t>(i)] = q;
          at(load, peak) -= ti.p;
          at(mem, peak) -= ti.s;
          at(load, q) += ti.p;
          at(mem, q) += ti.s;
          improved = true;
        }
      }
      if (improved) break;
      // ...or swap it with a task elsewhere.
      for (TaskId j = 0; j < n && !improved; ++j) {
        const ProcId q = assign[static_cast<std::size_t>(j)];
        if (q == peak) continue;
        const Task& tj = inst.task(j);
        if (std::max(pkey(at(load, peak) - ti.p + tj.p,
                          at(mem, peak) - ti.s + tj.s),
                     pkey(at(load, q) + ti.p - tj.p,
                          at(mem, q) + ti.s - tj.s)) < peak_key) {
          assign[static_cast<std::size_t>(i)] = q;
          assign[static_cast<std::size_t>(j)] = peak;
          at(load, peak) += tj.p - ti.p;
          at(mem, peak) += tj.s - ti.s;
          at(load, q) += ti.p - tj.p;
          at(mem, q) += ti.s - tj.s;
          improved = true;
        }
      }
    }
    if (!improved) return;
  }
}

/// Randomized greedy dives: deterministic-seeded constructions in shuffled
/// task order, each placing the task on the processor with the smallest
/// resulting normalized peak max((load+p) * m_ref, (mem+s) * c_ref), then
/// polished by peak-reduction moves/swaps. On instances whose front
/// collapses to the doubly-balanced point (C*, M*) the tree search
/// degenerates into blind satisfiability -- millions of nodes hunting one
/// assignment -- while a few hundred polished dives usually hit it
/// outright and let the root prune instead.
void dive_seeds(const Instance& inst, std::int64_t c_ref, std::int64_t m_ref,
                int max_trials, FrontStaircase& front) {
  const std::size_t n = inst.n();
  const int m = inst.m();
  if (n == 0 || c_ref <= 0 || m_ref <= 0 || max_trials <= 0) return;
  Rng rng(0xd1fe5eed);  // fixed seed: enumeration stays deterministic
  std::vector<TaskId> order(n);
  std::iota(order.begin(), order.end(), TaskId{0});
  std::vector<std::int64_t> load(static_cast<std::size_t>(m));
  std::vector<std::int64_t> mem(static_cast<std::size_t>(m));
  std::vector<ProcId> assign(n);

  const auto rebuild_loads = [&] {
    std::fill(load.begin(), load.end(), 0);
    std::fill(mem.begin(), mem.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const Task& t = inst.task(static_cast<TaskId>(i));
      load[static_cast<std::size_t>(assign[i])] += t.p;
      mem[static_cast<std::size_t>(assign[i])] += t.s;
    }
  };
  const auto peak_key = [&] {
    Int128 worst = 0;
    for (int q = 0; q < m; ++q) {
      worst = std::max(
          worst,
          std::max(static_cast<Int128>(load[static_cast<std::size_t>(q)]) *
                       m_ref,
                   static_cast<Int128>(mem[static_cast<std::size_t>(q)]) *
                       c_ref));
    }
    return worst;
  };

  std::vector<ProcId> best_assign;
  Int128 best_key = 0;
  // The doubly-balanced target: every normalized peak at its floor.
  const Int128 ideal = static_cast<Int128>(c_ref) * m_ref;
  for (int trial = 0; trial < max_trials && !(best_key <= ideal && trial > 0);
       ++trial) {
    if (trial < 64 || trial % 64 == 0 || best_assign.empty()) {
      // Fresh randomized greedy dive (Fisher-Yates order, least normalized
      // peak placement).
      for (std::size_t i = n; i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(order[i - 1], order[j]);
      }
      std::fill(load.begin(), load.end(), 0);
      std::fill(mem.begin(), mem.end(), 0);
      for (const TaskId id : order) {
        const Task& t = inst.task(id);
        ProcId best = 0;
        Int128 key_best = 0;
        for (ProcId q = 0; q < m; ++q) {
          const Int128 key = std::max(
              static_cast<Int128>(load[static_cast<std::size_t>(q)] + t.p) *
                  m_ref,
              static_cast<Int128>(mem[static_cast<std::size_t>(q)] + t.s) *
                  c_ref);
          if (q == 0 || key < key_best) {
            best = q;
            key_best = key;
          }
        }
        assign[static_cast<std::size_t>(id)] = best;
        load[static_cast<std::size_t>(best)] += t.p;
        mem[static_cast<std::size_t>(best)] += t.s;
      }
    } else {
      // Iterated local search: kick the best assignment (a handful of
      // random reassignments) and re-polish from there.
      assign = best_assign;
      const int kicks = 2 + static_cast<int>(rng.uniform_int(
                                0, 2 + static_cast<std::int64_t>(n) / 8));
      for (int k = 0; k < kicks; ++k) {
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        assign[i] = static_cast<ProcId>(rng.uniform_int(0, m - 1));
      }
      rebuild_loads();
    }
    polish_assignment(inst, c_ref, m_ref, assign, load, mem);
    offer_assignment(inst, assign, front);
    const Int128 key = peak_key();
    if (best_assign.empty() || key < best_key) {
      best_assign = assign;
      best_key = key;
    }
  }
}

/// Capped satisfiability probe for the ideal point: a DFS over the given
/// task order with *hard* per-processor caps cmax <= c_cap and
/// mmax <= m_cap (plus water-fill pruning against both), stopping at the
/// first complete assignment. When the ideal point (C*, M*) is achievable
/// -- the common case once n/m is large and weights are i.i.d. -- this
/// resolves in thousands of nodes where the Pareto search would hunt for
/// millions, and the found point then prunes the main search at the root.
/// Returns true iff an assignment was found (and offered).
class CappedProbe {
 public:
  CappedProbe(const Instance& inst, std::span<const TaskId> order,
              std::int64_t c_cap, std::int64_t m_cap, std::uint64_t limit)
      : inst_(&inst),
        order_(order),
        c_cap_(c_cap),
        m_cap_(m_cap),
        limit_(limit),
        n_(inst.n()),
        m_(inst.m()),
        load_(static_cast<std::size_t>(inst.m()), 0),
        mem_(static_cast<std::size_t>(inst.m()), 0),
        assign_(inst.n(), kNoProc),
        children_(inst.n()) {
    suffix_sum_p_.assign(n_ + 1, 0);
    suffix_sum_s_.assign(n_ + 1, 0);
    for (std::size_t idx = n_; idx-- > 0;) {
      const Task& t = inst.task(order_[idx]);
      suffix_sum_p_[idx] = suffix_sum_p_[idx + 1] + t.p;
      suffix_sum_s_[idx] = suffix_sum_s_[idx + 1] + t.s;
    }
  }

  bool run(FrontStaircase& front) {
    if (!dfs(0, 0)) return false;
    offer_assignment(*inst_, assign_, front);
    return true;
  }

 private:
  bool dfs(std::size_t idx, int used) {
    if (++nodes_ > limit_) return false;  // budget exhausted: give up
    if (idx == n_) return true;
    // Even spread of the remaining weight must fit under both caps.
    if (fluid_bound(scratch_, load_, suffix_sum_p_[idx]) > c_cap_) return false;
    if (fluid_bound(scratch_, mem_, suffix_sum_s_[idx]) > m_cap_) return false;
    const Task& t = inst_->task(order_[idx]);
    const int reach = std::min(used + 1, m_);
    // Most-slack-first child order (same balanced steering as the main
    // search; first-fit order stalls on exactly the instances that need
    // this probe).
    std::vector<ProcId>& cand = children_[idx];
    cand.resize(static_cast<std::size_t>(reach));
    std::iota(cand.begin(), cand.end(), ProcId{0});
    const auto key = [&](ProcId q) {
      const auto uq = static_cast<std::size_t>(q);
      return std::max(static_cast<Int128>(load_[uq] + t.p) * m_cap_,
                      static_cast<Int128>(mem_[uq] + t.s) * c_cap_);
    };
    std::sort(cand.begin(), cand.end(), [&](ProcId a, ProcId b) {
      const Int128 ka = key(a);
      const Int128 kb = key(b);
      if (ka != kb) return ka < kb;
      return a < b;
    });
    for (const ProcId q : cand) {
      const auto uq = static_cast<std::size_t>(q);
      if (load_[uq] + t.p > c_cap_ || mem_[uq] + t.s > m_cap_) continue;
      assign_[static_cast<std::size_t>(order_[idx])] = q;
      load_[uq] += t.p;
      mem_[uq] += t.s;
      if (dfs(idx + 1, std::max(used, q + 1))) return true;
      load_[uq] -= t.p;
      mem_[uq] -= t.s;
    }
    assign_[static_cast<std::size_t>(order_[idx])] = kNoProc;
    return false;
  }

  const Instance* inst_;
  std::span<const TaskId> order_;
  std::int64_t c_cap_;
  std::int64_t m_cap_;
  std::uint64_t limit_;
  std::uint64_t nodes_ = 0;
  std::size_t n_;
  int m_;
  std::vector<std::int64_t> load_;
  std::vector<std::int64_t> mem_;
  std::vector<std::int64_t> suffix_sum_p_;
  std::vector<std::int64_t> suffix_sum_s_;
  std::vector<std::int64_t> scratch_;
  std::vector<ProcId> assign_;
  std::vector<std::vector<ProcId>> children_;  // per-depth candidate buffers
};

/// Exact single-objective optimum of one axis via the specialized
/// branch and bound, offered to the staircase as a seed. Returns the
/// optimal value as a sound global floor for that axis, or 0 (no floor)
/// if the sub-search blows its node budget -- a heuristic value must
/// never be used as a floor, it could over-prune true Pareto points.
std::int64_t exact_axis_optimum(const Instance& inst,
                                std::span<const std::int64_t> weights,
                                std::uint64_t node_limit,
                                FrontStaircase& front) {
  try {
    const std::vector<ProcId> best =
        exact_bnb_assign(weights, inst.m(), node_limit);
    offer_assignment(inst, best, front);
    return partition_value(weights, best, inst.m());
  } catch (const std::runtime_error&) {
    return 0;
  }
}

}  // namespace

ParetoEnumResult enumerate_pareto_bb(const Instance& inst,
                                     std::uint64_t limit) {
  if (inst.has_precedence()) {
    throw std::logic_error("enumerate_pareto: independent tasks only");
  }
  if (inst.n() == 0) {
    ParetoEnumResult empty;
    empty.front.push_back({{0, 0}, 0});
    empty.schedules.emplace_back(inst);
    empty.enumerated = 1;
    return empty;
  }

  BbState st;
  st.inst = &inst;
  st.limit = limit;
  st.n = inst.n();
  st.m = inst.m();
  st.order.resize(st.n);
  std::iota(st.order.begin(), st.order.end(), TaskId{0});
  // Non-increasing *normalized* weight max(p_i / total_p, s_i / total_s),
  // cross-multiplied exactly: heavy decisions on either axis happen high
  // in the tree. (Raw p + s would be flat on anti-correlated instances.)
  const Int128 total_p = inst.total_work();
  const Int128 total_s = inst.total_storage();
  const auto norm_key = [&](TaskId id) {
    const Task& t = inst.task(id);
    return static_cast<Int128>(t.p) * total_s +
           static_cast<Int128>(t.s) * total_p;
  };
  std::sort(st.order.begin(), st.order.end(), [&](TaskId a, TaskId b) {
    const Int128 ka = norm_key(a);
    const Int128 kb = norm_key(b);
    if (ka != kb) return ka > kb;
    const Task& ta = inst.task(a);
    const Task& tb = inst.task(b);
    if (ta.p + ta.s != tb.p + tb.s) return ta.p + ta.s > tb.p + tb.s;
    return a < b;
  });
  st.suffix_max_p.assign(st.n + 1, 0);
  st.suffix_max_s.assign(st.n + 1, 0);
  st.suffix_max_ps.assign(st.n + 1, 0);
  st.suffix_sum_p.assign(st.n + 1, 0);
  st.suffix_sum_s.assign(st.n + 1, 0);
  for (std::size_t idx = st.n; idx-- > 0;) {
    const Task& t = inst.task(st.order[idx]);
    st.suffix_max_p[idx] = std::max(st.suffix_max_p[idx + 1], t.p);
    st.suffix_max_s[idx] = std::max(st.suffix_max_s[idx + 1], t.s);
    st.suffix_max_ps[idx] = std::max(st.suffix_max_ps[idx + 1], t.p + t.s);
    st.suffix_sum_p[idx] = st.suffix_sum_p[idx + 1] + t.p;
    st.suffix_sum_s[idx] = st.suffix_sum_s[idx + 1] + t.s;
  }
  st.load.assign(static_cast<std::size_t>(st.m), 0);
  st.mem.assign(static_cast<std::size_t>(st.m), 0);
  st.combined.assign(static_cast<std::size_t>(st.m), 0);
  st.assign.assign(st.n, kNoProc);
  st.children.resize(st.n);

  seed_front(inst, st.front);
  {
    // Exact per-axis optima: seeds for the staircase ends and sound global
    // floors for the per-objective bounds. Their specialized sub-searches
    // get a slice of the node budget; on the (rare) blowout the floor is
    // simply dropped, so exactness is never at stake.
    std::vector<std::int64_t> wp;
    std::vector<std::int64_t> ws;
    wp.reserve(st.n);
    ws.reserve(st.n);
    for (const Task& t : inst.tasks()) {
      wp.push_back(t.p);
      ws.push_back(t.s);
    }
    const std::uint64_t axis_limit = std::max<std::uint64_t>(limit / 8, 1);
    st.c_star = exact_axis_optimum(inst, wp, axis_limit, st.front);
    st.m_star = exact_axis_optimum(inst, ws, axis_limit, st.front);
    st.c_ref = std::max<std::int64_t>(
        st.c_star > 0 ? st.c_star : partition_lower_bound(wp, st.m), 1);
    st.m_ref = std::max<std::int64_t>(
        st.m_star > 0 ? st.m_star : partition_lower_bound(ws, st.m), 1);
    // Hunt the ideal point (C*, M*): cheap randomized dives first, then
    // the capped satisfiability probe if they missed. If either lands it,
    // the whole enumeration collapses to a root prune.
    if (!st.front.dominated(st.c_ref, st.m_ref)) {
      // Trial count scales with the caller's limit so a small limit means
      // a genuinely small total work bound, not just a small main search.
      const int trials = static_cast<int>(
          std::min<std::uint64_t>(2048, limit / 256));
      dive_seeds(inst, st.c_ref, st.m_ref, trials, st.front);
    }
    if (!st.front.dominated(st.c_ref, st.m_ref)) {
      // The probe gets a generous slice: its capped nodes are much
      // cheaper than main-search nodes and a hit erases the whole tree.
      CappedProbe probe(inst, st.order, st.c_ref, st.m_ref,
                        std::max<std::uint64_t>(limit / 2, 1));
      probe.run(st.front);
    }
  }
  st.dfs(0, 0);

  ParetoEnumResult result;
  result.enumerated = st.nodes;
  for (const FrontStaircase::Entry& entry : st.front.entries()) {
    Schedule sched(inst);
    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      sched.assign(i, entry.assign[static_cast<std::size_t>(i)]);
    }
    result.front.push_back({{entry.cmax, entry.mmax},
                            static_cast<std::int64_t>(result.schedules.size())});
    result.schedules.push_back(std::move(sched));
  }
  return result;
}

}  // namespace storesched
