// Branch-and-bound exact Pareto enumeration (the default engine behind
// enumerate_pareto(); see core/pareto_enum.hpp for the engine story).
//
// The seed's brute force walks every symmetry-reduced assignment, so exact
// fronts stop at n ~ 14. This engine reaches n ~ 30-50 by searching the
// same tree with three prunes layered on top of the symmetry breaking:
//
//   * task order: non-increasing p_i + s_i, so heavy decisions happen high
//     in the tree where pruning removes the most work;
//   * lower bounds: at every node, a per-objective bound on any completion
//     of the partial assignment -- max(water-fill level of the remaining
//     weight over the current loads, largest remaining single weight);
//   * dominance pruning: the incumbent front is a staircase (sorted
//     vector, log-time dominance query); a node whose (Cmax LB, Mmax LB)
//     is weakly dominated by an incumbent point cannot produce a new
//     Pareto point and is cut.
//
// The staircase is seeded before the search with cheap achievable points
// (LPT on p, LPT on s, and SBO threshold routings between them across a
// geometric Delta ladder), so pruning has teeth from node one. Every
// incumbent is a real assignment, and a branch is cut only when each of
// its completions is weakly dominated by an incumbent, so the surviving
// staircase is exactly the Pareto set -- bit-identical, as a point vector,
// to enumerate_pareto_reference()'s front on every instance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/instance.hpp"
#include "core/pareto_enum.hpp"

namespace storesched {

/// Dominance-pruned incumbent front: entries sorted by strictly ascending
/// cmax with strictly decreasing mmax, each carrying one representative
/// assignment. offer() keeps the invariant; dominated() is the log-time
/// query the branch-and-bound prunes against.
class FrontStaircase {
 public:
  struct Entry {
    Time cmax = 0;
    Mem mmax = 0;
    std::vector<ProcId> assign;
  };

  /// True iff some entry weakly dominates (c, m) -- i.e. entry.cmax <= c
  /// and entry.mmax <= m (an equal point counts). O(log k).
  bool dominated(Time c, Mem m) const;

  /// The branch-and-bound prune: can any point with c >= lb_c, m >= lb_m
  /// and c + m >= lb_cm still be non-dominated? The third constraint is
  /// the combined-load bound (cmax + mmax >= max_q(load_q + mem_q) for
  /// every schedule), which is what bites on anti-correlated instances
  /// where neither per-objective bound is tight. Scans the staircase gaps
  /// right of lb_c; O(log k + gaps visited).
  bool can_improve(Time lb_c, Mem lb_m, std::int64_t lb_cm) const;

  /// Inserts (c, m, assign) unless dominated, erasing every entry the new
  /// point dominates. Returns true iff the point was inserted. Among
  /// duplicates the first offer wins (matching the reference walker).
  bool offer(Time c, Mem m, std::span<const ProcId> assign);

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Exact Pareto front by dominance-pruned branch and bound. Same contract
/// as enumerate_pareto() (independent tasks only; throws std::logic_error
/// on precedence instances and std::runtime_error past `limit`), but
/// `limit` counts *main-search* nodes, not complete assignments, and the
/// returned `enumerated` is that node count. The seeding stages are
/// budgeted as fixed fractions of `limit` (limit/8 per axis sub-search,
/// limit/2 for the capped probe, limit/256 dive trials) and give up
/// silently rather than throw, so total work stays a small multiple of
/// `limit`. Representative schedules may differ from the reference
/// walker's; the front itself never does.
ParetoEnumResult enumerate_pareto_bb(
    const Instance& inst, std::uint64_t limit = kParetoEnumDefaultLimit);

}  // namespace storesched
