// SBO_Delta -- the Symmetric Bi-Objective algorithm (paper Section 3,
// Algorithm 1).
//
// Runs a rho1-approximation on the processing times (schedule pi_1, value
// C = Cmax(pi_1)) and a rho2-approximation on the storage sizes (schedule
// pi_2, value M = Mmax(pi_2)), then routes each task by the exact threshold
//
//     p_i / C  <  Delta * s_i / M   =>  take pi_2's processor,
//     otherwise                     =>  take pi_1's processor.
//
// Guarantees (Properties 1-2): the combined assignment pi_Delta satisfies
//   Cmax(pi_Delta) <= (1 + Delta) * C  <= (1 + Delta) * rho1 * C*max
//   Mmax(pi_Delta) <= (1 + 1/Delta) * M <= (1 + 1/Delta) * rho2 * M*max.
// Only valid for independent tasks (the paper notes it cannot be extended
// to precedence constraints or to sum-of-completion-times).
#pragma once

#include <vector>

#include "algorithms/scheduler.hpp"
#include "common/fraction.hpp"
#include "common/instance.hpp"
#include "common/schedule.hpp"

namespace storesched {

/// Full output of one SBO run, including the two ingredient schedules and
/// the per-task routing decisions (useful for tests and ablation benches).
struct SboResult {
  Schedule schedule;  ///< the combined assignment pi_Delta (untimed)
  Schedule pi1;       ///< makespan-oriented ingredient schedule
  Schedule pi2;       ///< memory-oriented ingredient schedule
  Time c_ingredient = 0;  ///< C = Cmax(pi1), the proof's reference value
  Mem m_ingredient = 0;   ///< M = Mmax(pi2)
  std::vector<bool> routed_to_pi2;  ///< per-task: took pi2's allocation

  /// Value bounds implied by Properties 1-2 for *this* run:
  /// Cmax(schedule) <= cmax_bound and Mmax(schedule) <= mmax_bound.
  Fraction cmax_bound;
  Fraction mmax_bound;
};

/// The Delta-independent half of an SBO run: the two ingredient schedules
/// and their reference values. Computing these dominates SBO's cost, so
/// Delta sweeps (front generation) compute them once and re-route per
/// Delta via sbo_combine().
struct SboIngredients {
  Schedule pi1;           ///< alg1 on processing times
  Schedule pi2;           ///< alg2 on storage sizes
  Time c_ingredient = 0;  ///< C = Cmax(pi1)
  Mem m_ingredient = 0;   ///< M = Mmax(pi2)
};

/// Runs the two ingredient schedulers (the Delta-independent work).
/// Requires an independent-task instance; throws std::logic_error
/// otherwise.
SboIngredients sbo_ingredients(const Instance& inst,
                               const MakespanScheduler& alg1,
                               const MakespanScheduler& alg2);

/// Routes each task by the Delta threshold against precomputed
/// ingredients. Requires Delta > 0. sbo_schedule(inst, delta, a1, a2) ==
/// sbo_combine(inst, sbo_ingredients(inst, a1, a2), delta) bit-exactly.
SboResult sbo_combine(const Instance& inst, const SboIngredients& ing,
                      const Fraction& delta);

/// The combined assignment alone -- identical to
/// sbo_combine(...).schedule without copying the ingredient schedules and
/// routing vector into a full SboResult. The Delta-sweep hot path
/// (sbo_sweep / front) uses this.
Schedule sbo_route(const Instance& inst, const SboIngredients& ing,
                   const Fraction& delta);

/// Runs SBO_Delta with the two given sub-schedulers. Requires an
/// independent-task instance and Delta > 0; throws std::invalid_argument /
/// std::logic_error otherwise.
///
/// Degenerate inputs: if all p_i = 0 the combined schedule is pi_2; if all
/// s_i = 0 it is pi_1 (the threshold is vacuous in both directions and the
/// guarantees hold trivially).
SboResult sbo_schedule(const Instance& inst, const Fraction& delta,
                       const MakespanScheduler& alg1,
                       const MakespanScheduler& alg2);

/// Convenience overload using the same algorithm for both objectives
/// (the paper's "we can use the same algorithm for both schedules").
SboResult sbo_schedule(const Instance& inst, const Fraction& delta,
                       const MakespanScheduler& alg);

}  // namespace storesched
