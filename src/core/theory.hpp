// Closed-form approximation-ratio formulas proved in the paper.
//
// Centralizing the formulas lets tests and benches assert, per run, that a
// measured schedule respects the exact guarantee of its configuration:
//   SBO (Properties 1-2):  ((1 + Delta) rho1,  (1 + 1/Delta) rho2)
//   RLS (Corollary 3):     (2 + 1/(Delta-2) - (Delta-1)/(m(Delta-2)), Delta)
//   RLS+SPT (Corollary 4): adds  2 + 1/(Delta-2)  on the sum of completions.
#pragma once

#include "common/fraction.hpp"

namespace storesched {

/// SBO makespan ratio (Property 1): (1 + Delta) * rho1. Requires Delta > 0.
Fraction sbo_cmax_ratio(const Fraction& delta, const Fraction& rho1);

/// SBO memory ratio (Property 2): (1 + 1/Delta) * rho2. Requires Delta > 0.
Fraction sbo_mmax_ratio(const Fraction& delta, const Fraction& rho2);

/// RLS makespan ratio (Lemma 5): 2 + 1/(Delta-2) - (Delta-1)/(m(Delta-2)).
/// Requires Delta > 2 and m >= 1.
Fraction rls_cmax_ratio(const Fraction& delta, int m);

/// RLS memory ratio (Corollary 2): Delta. Requires Delta >= 2.
Fraction rls_mmax_ratio(const Fraction& delta);

/// RLS+SPT sum-of-completion-times ratio (Corollary 4): 2 + 1/(Delta-2).
/// Requires Delta > 2.
Fraction rls_sumci_ratio(const Fraction& delta);

/// The degradation factor of Lemma 6: SPT on rho*m processors is at most
/// (1/rho + 1) times SPT on m processors (0 < rho <= 1).
Fraction spt_restriction_ratio(const Fraction& rho);

}  // namespace storesched
