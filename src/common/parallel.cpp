#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace storesched {

unsigned parallel_worker_count(std::size_t jobs, int threads) {
  unsigned workers = threads > 0
                         ? static_cast<unsigned>(threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(
      workers, static_cast<unsigned>(std::max<std::size_t>(jobs, 1)));
  return std::max(1u, workers);
}

void parallel_for(std::size_t jobs, int threads,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;

  const unsigned workers = parallel_worker_count(jobs, threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace storesched
