#include "common/parallel.hpp"

#include <algorithm>

#include "common/failpoint.hpp"
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace storesched {

unsigned parallel_worker_count(std::size_t jobs, int threads) {
  unsigned workers = threads > 0
                         ? static_cast<unsigned>(threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(
      workers, static_cast<unsigned>(std::max<std::size_t>(jobs, 1)));
  return std::max(1u, workers);
}

void parallel_for(std::size_t jobs, int threads,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;

  const unsigned workers = parallel_worker_count(jobs, threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }

  // The crew owns spawn/join/first-exception-capture; this loop only adds
  // the dynamically claimed index range and the cancel-on-failure flag.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  run_worker_crew(workers, [&](unsigned) {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  });
}

void run_worker_crew(unsigned workers,
                     const std::function<void(unsigned)>& body) {
  if (workers <= 1) {
    body(0);
    return;
  }

  std::exception_ptr error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (unsigned t = 0; t < workers; ++t) {
      // Failpoint site: lets tests prove the join-before-rethrow teardown
      // and the stream driver's degraded-spawn path without exhausting
      // real thread limits.
      failpoint::hit("crew.spawn");
      pool.emplace_back([&, t] {
        try {
          body(t);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      });
    }
  } catch (...) {
    // Thread creation failed partway. The workers already running still
    // reference error/error_mutex/body on this frame, so they must be
    // joined before the frame unwinds -- and before ~vector would call
    // std::terminate on a joinable thread. Teardown ordering is therefore
    // always: join every spawned worker, then propagate.
    for (std::thread& t : pool) t.join();
    throw;
  }
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

WorkerCrew::WorkerCrew(unsigned workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  try {
    for (unsigned t = 0; t < workers; ++t) {
      failpoint::hit("crew.spawn");
      threads_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Same teardown ordering as run_worker_crew: every thread that did
    // spawn is stopped and joined before the constructor frame unwinds.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    throw;
  }
}

WorkerCrew::~WorkerCrew() {
  try {
    shutdown();
  } catch (...) {
    // shutdown() itself does not throw, but keep the destructor hard-noexcept.
  }
}

void WorkerCrew::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::logic_error("WorkerCrew::submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void WorkerCrew::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void WorkerCrew::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::size_t WorkerCrew::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + active_;
}

void WorkerCrew::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    // Stopping still finishes the queue: shutdown() promises every
    // submitted job runs (the serve drain path relies on it).
    if (queue_.empty()) return;
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    try {
      job();
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
      continue;
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace storesched
