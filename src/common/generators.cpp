#include "common/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace storesched {

namespace {

Time clamp_time(double v, Time lo, Time hi) {
  const auto t = static_cast<Time>(std::llround(v));
  return std::clamp(t, lo, hi);
}

void check(const GenParams& p) {
  if (p.n == 0) throw std::invalid_argument("GenParams: n == 0");
  if (p.m <= 0) throw std::invalid_argument("GenParams: m <= 0");
  if (p.p_min <= 0 || p.p_min > p.p_max) {
    throw std::invalid_argument("GenParams: bad p range");
  }
  if (p.s_min <= 0 || p.s_min > p.s_max) {
    throw std::invalid_argument("GenParams: bad s range");
  }
}

}  // namespace

Instance generate_uniform(const GenParams& params, Rng& rng) {
  check(params);
  std::vector<Task> tasks;
  tasks.reserve(params.n);
  for (std::size_t i = 0; i < params.n; ++i) {
    tasks.push_back({rng.uniform_int(params.p_min, params.p_max),
                     rng.uniform_int(params.s_min, params.s_max)});
  }
  return Instance(std::move(tasks), params.m);
}

Instance generate_correlated(const GenParams& params, double jitter, Rng& rng) {
  check(params);
  if (jitter < 0 || jitter >= 1) {
    throw std::invalid_argument("generate_correlated: jitter in [0,1)");
  }
  const double scale = static_cast<double>(params.s_max - params.s_min) /
                       static_cast<double>(params.p_max - params.p_min + 1);
  std::vector<Task> tasks;
  tasks.reserve(params.n);
  for (std::size_t i = 0; i < params.n; ++i) {
    const Time p = rng.uniform_int(params.p_min, params.p_max);
    const double noise = 1.0 + jitter * (2.0 * rng.uniform01() - 1.0);
    const double s_raw =
        static_cast<double>(params.s_min) +
        scale * static_cast<double>(p - params.p_min) * noise;
    tasks.push_back({p, clamp_time(s_raw, params.s_min, params.s_max)});
  }
  return Instance(std::move(tasks), params.m);
}

Instance generate_anticorrelated(const GenParams& params, double jitter,
                                 Rng& rng) {
  check(params);
  if (jitter < 0 || jitter >= 1) {
    throw std::invalid_argument("generate_anticorrelated: jitter in [0,1)");
  }
  const double scale = static_cast<double>(params.s_max - params.s_min) /
                       static_cast<double>(params.p_max - params.p_min + 1);
  std::vector<Task> tasks;
  tasks.reserve(params.n);
  for (std::size_t i = 0; i < params.n; ++i) {
    const Time p = rng.uniform_int(params.p_min, params.p_max);
    const double noise = 1.0 + jitter * (2.0 * rng.uniform01() - 1.0);
    const double s_raw =
        static_cast<double>(params.s_min) +
        scale * static_cast<double>(params.p_max - p) * noise;
    tasks.push_back({p, clamp_time(s_raw, params.s_min, params.s_max)});
  }
  return Instance(std::move(tasks), params.m);
}

Instance generate_bimodal(const GenParams& params, double heavy_fraction,
                          Rng& rng) {
  check(params);
  if (heavy_fraction < 0 || heavy_fraction > 1) {
    throw std::invalid_argument("generate_bimodal: heavy_fraction in [0,1]");
  }
  // Heavy mode: top decile of each range. Light mode: bottom half.
  const Time p_heavy_lo = params.p_max - (params.p_max - params.p_min) / 10;
  const Mem s_heavy_lo = params.s_max - (params.s_max - params.s_min) / 10;
  const Time p_light_hi = std::max(params.p_min, params.p_min + (params.p_max - params.p_min) / 2);
  const Mem s_light_hi = std::max(params.s_min, params.s_min + (params.s_max - params.s_min) / 2);

  std::vector<Task> tasks;
  tasks.reserve(params.n);
  for (std::size_t i = 0; i < params.n; ++i) {
    if (rng.bernoulli(heavy_fraction)) {
      tasks.push_back({rng.uniform_int(p_heavy_lo, params.p_max),
                       rng.uniform_int(s_heavy_lo, params.s_max)});
    } else {
      tasks.push_back({rng.uniform_int(params.p_min, p_light_hi),
                       rng.uniform_int(params.s_min, s_light_hi)});
    }
  }
  return Instance(std::move(tasks), params.m);
}

Instance generate_physics_batch(std::size_t n, int m, double alpha, Rng& rng) {
  if (n == 0 || m <= 0) {
    throw std::invalid_argument("generate_physics_batch: bad n or m");
  }
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Runtime: bounded Pareto in [5, 5000] (minutes-scale event batches).
    const Time p = rng.pareto_int(5, 5000, alpha);
    // Result size: proportional output plus a calibration baseline, with
    // 25% multiplicative noise.
    const double noise = 0.75 + 0.5 * rng.uniform01();
    const Mem s =
        10 + static_cast<Mem>(std::llround(0.2 * static_cast<double>(p) * noise));
    tasks.push_back({p, s});
  }
  return Instance(std::move(tasks), m);
}

Instance generate_memory_tight(const GenParams& params, double capacity_factor,
                               Rng& rng) {
  check(params);
  if (capacity_factor < 1.0) {
    throw std::invalid_argument("generate_memory_tight: factor >= 1 required");
  }
  // Draw storage sizes so that sum_s ~= m * capacity_factor * s_max: few
  // large items per processor, tight packing.
  std::vector<Task> tasks;
  tasks.reserve(params.n);
  const double target_total = static_cast<double>(params.m) * capacity_factor *
                              static_cast<double>(params.s_max);
  const Mem mean_s = std::max<Mem>(
      params.s_min,
      static_cast<Mem>(target_total / static_cast<double>(params.n)));
  const Mem spread = std::max<Mem>(1, mean_s / 2);
  for (std::size_t i = 0; i < params.n; ++i) {
    const Mem lo = std::max(params.s_min, mean_s - spread);
    const Mem hi = std::min(params.s_max, mean_s + spread);
    tasks.push_back({rng.uniform_int(params.p_min, params.p_max),
                     rng.uniform_int(lo, std::max(lo, hi))});
  }
  return Instance(std::move(tasks), params.m);
}

Instance generate_by_name(const std::string& name, const GenParams& params,
                          Rng& rng) {
  if (name == "uniform") return generate_uniform(params, rng);
  if (name == "correlated") return generate_correlated(params, 0.2, rng);
  if (name == "anticorrelated") return generate_anticorrelated(params, 0.2, rng);
  if (name == "bimodal") return generate_bimodal(params, 0.25, rng);
  throw std::invalid_argument("generate_by_name: unknown generator " + name);
}

}  // namespace storesched
