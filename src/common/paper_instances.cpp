#include "common/paper_instances.hpp"

#include <stdexcept>

namespace storesched {

Instance fig1_instance(Time eps_inv) {
  if (eps_inv < 2) throw std::invalid_argument("fig1_instance: eps_inv >= 2");
  // p = {1, 1/2, 1/2} x (2*eps_inv); s = {eps, 1, 1} x eps_inv.
  std::vector<Task> tasks{
      {2 * eps_inv, 1},
      {eps_inv, eps_inv},
      {eps_inv, eps_inv},
  };
  return Instance(std::move(tasks), /*m=*/2);
}

GadgetScale fig1_scale(Time eps_inv) { return {2 * eps_inv, eps_inv}; }

Instance fig2_instance(Time eps_inv) {
  if (eps_inv < 2) throw std::invalid_argument("fig2_instance: eps_inv >= 2");
  // p = {1, eps, 1-eps} x eps_inv; s = {eps, 1, 1-eps} x eps_inv.
  std::vector<Task> tasks{
      {eps_inv, 1},
      {1, eps_inv},
      {eps_inv - 1, eps_inv - 1},
  };
  return Instance(std::move(tasks), /*m=*/2);
}

GadgetScale fig2_scale(Time eps_inv) { return {eps_inv, eps_inv}; }

Instance lemma2_instance(int m, int k, Time eps_inv) {
  if (m < 2 || k < 2 || eps_inv < 2) {
    throw std::invalid_argument("lemma2_instance: need m,k >= 2, eps_inv >= 2");
  }
  // First m-1 tasks: p = 1 (scaled: km), s = eps (scaled: 1).
  // Next k*m tasks:  p = 1/(km) (scaled: 1), s = 1 (scaled: eps_inv).
  std::vector<Task> tasks;
  const Time km = static_cast<Time>(k) * m;
  tasks.reserve(static_cast<std::size_t>(km + m - 1));
  for (int i = 0; i < m - 1; ++i) tasks.push_back({km, 1});
  for (Time i = 0; i < km; ++i) tasks.push_back({1, eps_inv});
  return Instance(std::move(tasks), m);
}

GadgetScale lemma2_scale(int m, int k, Time eps_inv) {
  return {static_cast<Time>(k) * m, eps_inv};
}

Lemma2Point lemma2_point(int m, int k, int i, Time eps_inv) {
  if (m < 2 || k < 2 || i < 0 || i > k || eps_inv < 2) {
    throw std::invalid_argument("lemma2_point: bad parameters");
  }
  const std::int64_t km = static_cast<std::int64_t>(k) * m;
  const Fraction cmax_ratio(km + i, km);
  // Scaled M* = k*eps_inv + 1 (k type-2 codes plus one type-1 code).
  const std::int64_t mstar = static_cast<std::int64_t>(k) * eps_inv + 1;
  if (i == k) return {cmax_ratio, Fraction(1)};
  const std::int64_t mem =
      (static_cast<std::int64_t>(k) + static_cast<std::int64_t>(k - i) * (m - 1)) *
      eps_inv;
  return {cmax_ratio, Fraction(mem, mstar)};
}

}  // namespace storesched
