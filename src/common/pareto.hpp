// Pareto-front utilities over bi-objective (Cmax, Mmax) points.
//
// Used for ground-truth enumeration (Figures 1-2), for checking dominance
// claims of Section 4, and for reporting measured algorithm points against
// exact fronts in the benchmark harness.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace storesched {

/// A labelled objective point; `tag` identifies the producing schedule or
/// algorithm configuration in reports.
struct LabelledPoint {
  ObjectivePoint value;
  std::int64_t tag = -1;

  friend bool operator==(const LabelledPoint&, const LabelledPoint&) = default;
};

/// Returns the Pareto-minimal subset (strictly dominated points removed;
/// among duplicates, one representative kept), sorted by ascending cmax and,
/// within equal cmax, ascending mmax.
std::vector<LabelledPoint> pareto_front(std::span<const LabelledPoint> points);

/// Convenience overload on bare points; tags are the input indices.
std::vector<LabelledPoint> pareto_front(std::span<const ObjectivePoint> points);

/// True iff `point` is dominated by some member of `front` (weakly, i.e. an
/// equal point counts as dominated-or-equal and returns true).
bool covered_by_front(const ObjectivePoint& point,
                      std::span<const LabelledPoint> front);

/// Merges two fronts into the Pareto front of their union.
std::vector<LabelledPoint> merge_fronts(std::span<const LabelledPoint> a,
                                        std::span<const LabelledPoint> b);

/// Checks that `front` is internally consistent: sorted by cmax, strictly
/// decreasing mmax, no point dominating another.
bool is_valid_front(std::span<const LabelledPoint> front);

}  // namespace storesched
