#include "common/io.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace storesched {

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

namespace {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) impl_->out << ',';
    impl_->out << csv_escape(fields[i]);
  }
  impl_->out << '\n';
}

std::string markdown_table(const std::vector<std::string>& header,
                           const std::vector<std::vector<std::string>>& rows) {
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      throw std::invalid_argument("markdown_table: ragged rows");
    }
  }
  std::vector<std::size_t> width(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  emit_row(header);
  os << '|';
  for (std::size_t c = 0; c < header.size(); ++c) {
    os << ' ' << std::string(width[c], '-') << " |";
  }
  os << '\n';
  for (const auto& row : rows) emit_row(row);
  return os.str();
}

std::string to_dot(const Instance& inst, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=TB;\n";
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    os << "  t" << i << " [label=\"t" << i << "\\np=" << inst.task(i).p
       << ",s=" << inst.task(i).s << "\"];\n";
  }
  if (inst.has_precedence()) {
    const Dag& dag = inst.dag();
    for (TaskId u = 0; u < static_cast<TaskId>(inst.n()); ++u) {
      for (const TaskId v : dag.succs(u)) {
        os << "  t" << u << " -> t" << v << ";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_text(const Instance& inst) {
  std::ostringstream os;
  os << inst.n() << ' ' << inst.m();
  if (inst.has_precedence()) os << " prec";
  os << '\n';
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    os << inst.task(i).p << ' ' << inst.task(i).s << '\n';
  }
  if (inst.has_precedence()) {
    const Dag& dag = inst.dag();
    for (TaskId u = 0; u < static_cast<TaskId>(inst.n()); ++u) {
      for (const TaskId v : dag.succs(u)) {
        os << u << ' ' << v << '\n';
      }
    }
  }
  return os.str();
}

Instance from_text(const std::string& text) {
  std::istringstream is(text);
  std::string first_line;
  if (!std::getline(is, first_line)) {
    throw std::runtime_error("from_text: empty input");
  }
  std::istringstream head(first_line);
  std::size_t n = 0;
  int m = 0;
  std::string prec_flag;
  if (!(head >> n >> m)) throw std::runtime_error("from_text: bad header");
  const bool has_prec = static_cast<bool>(head >> prec_flag) && prec_flag == "prec";

  std::vector<Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> tasks[i].p >> tasks[i].s)) {
      throw std::runtime_error("from_text: bad task line");
    }
  }
  if (!has_prec) return Instance(std::move(tasks), m);

  Dag dag(n);
  TaskId u = 0;
  TaskId v = 0;
  while (is >> u >> v) dag.add_edge(u, v);
  return Instance(std::move(tasks), m, std::move(dag));
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string instance_to_jsonl(const Instance& inst) {
  std::ostringstream os;
  os << "{\"m\":" << inst.m() << ",\"tasks\":[";
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    if (i > 0) os << ',';
    os << '[' << inst.task(i).p << ',' << inst.task(i).s << ']';
  }
  os << ']';
  if (inst.has_precedence()) {
    os << ",\"edges\":[";
    bool first = true;
    const Dag& dag = inst.dag();
    for (TaskId u = 0; u < static_cast<TaskId>(inst.n()); ++u) {
      for (const TaskId v : dag.succs(u)) {
        if (!first) os << ',';
        os << '[' << u << ',' << v << ']';
        first = false;
      }
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

namespace {

/// "line N: " when the stream position is known, empty otherwise.
std::string line_prefix(std::size_t line_number) {
  return line_number > 0 ? "line " + std::to_string(line_number) + ": " : "";
}

/// Minimal cursor over the fixed instance-line schema. Not a general JSON
/// parser: objects of known keys, arrays of integer pairs, nothing else.
struct JsonCursor {
  const std::string& text;
  std::size_t line_number;  ///< 1-based position in the stream; 0 = unknown
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("instance_from_jsonl: " +
                             line_prefix(line_number) + what + " at byte " +
                             std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\r' || text[pos] == '\n')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  std::int64_t parse_int() {
    skip_ws();
    const std::size_t begin = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    if (pos == begin || (pos == begin + 1 && text[begin] == '-')) {
      fail("expected integer");
    }
    try {
      return std::stoll(text.substr(begin, pos - begin));
    } catch (const std::exception&) {
      pos = begin;
      fail("integer out of range");
    }
  }

  std::string parse_key() {
    expect('"');
    const std::size_t begin = pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') fail("escapes are not allowed in keys");
      ++pos;
    }
    if (pos == text.size()) fail("unterminated key");
    return text.substr(begin, pos++ - begin);
  }

  /// [[a,b],[c,d],...] -> flat pair list. May be empty.
  std::vector<std::pair<std::int64_t, std::int64_t>> parse_pairs() {
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    expect('[');
    if (consume(']')) return pairs;
    do {
      expect('[');
      const std::int64_t a = parse_int();
      expect(',');
      const std::int64_t b = parse_int();
      expect(']');
      pairs.emplace_back(a, b);
    } while (consume(','));
    expect(']');
    return pairs;
  }
};

}  // namespace

bool has_binary_wire_magic(std::string_view bytes) {
  return bytes.size() >= sizeof(kBinaryWireMagic) &&
         bytes.compare(0, sizeof(kBinaryWireMagic),
                       std::string_view(kBinaryWireMagic,
                                        sizeof(kBinaryWireMagic))) == 0;
}

Instance instance_from_jsonl(const std::string& line,
                             std::size_t line_number) {
  if (has_binary_wire_magic(line)) {
    throw std::runtime_error(
        "instance_from_jsonl: " + line_prefix(line_number) +
        "input is the binary wire format (magic \"STSCHDB1\"), not JSONL -- "
        "use --format=binary (or auto-detection) instead");
  }
  JsonCursor cur{line, line_number};
  std::optional<int> m;
  std::optional<std::vector<std::pair<std::int64_t, std::int64_t>>> task_pairs;
  std::optional<std::vector<std::pair<std::int64_t, std::int64_t>>> edge_pairs;

  cur.expect('{');
  if (!cur.consume('}')) {
    do {
      const std::string key = cur.parse_key();
      cur.expect(':');
      if (key == "m") {
        const std::int64_t v = cur.parse_int();
        if (v < 1 || v > std::numeric_limits<int>::max()) {
          cur.fail("m out of range");
        }
        m = static_cast<int>(v);
      } else if (key == "tasks") {
        task_pairs = cur.parse_pairs();
      } else if (key == "edges") {
        edge_pairs = cur.parse_pairs();
      } else {
        cur.fail("unknown key \"" + key + "\"");
      }
    } while (cur.consume(','));
    cur.expect('}');
  }
  cur.skip_ws();
  if (cur.pos != line.size()) cur.fail("trailing garbage");
  if (!m) cur.fail("missing \"m\"");
  if (!task_pairs) cur.fail("missing \"tasks\"");

  std::vector<Task> tasks;
  tasks.reserve(task_pairs->size());
  for (const auto& [p, s] : *task_pairs) tasks.push_back({p, s});
  const auto n = static_cast<std::int64_t>(tasks.size());
  try {
    if (!edge_pairs) return Instance(std::move(tasks), *m);
    Dag dag(tasks.size());
    for (const auto& [u, v] : *edge_pairs) {
      if (u < 0 || u >= n || v < 0 || v >= n) {
        throw std::invalid_argument("edge [" + std::to_string(u) + "," +
                                    std::to_string(v) +
                                    "] references a task outside [0, " +
                                    std::to_string(n) + ")");
      }
      dag.add_edge(static_cast<TaskId>(u), static_cast<TaskId>(v));
    }
    return Instance(std::move(tasks), *m, std::move(dag));
  } catch (const std::invalid_argument& e) {
    // Instance/Dag validation reports as std::invalid_argument; the wire
    // contract is one exception type for any malformed line.
    throw std::runtime_error("instance_from_jsonl: " +
                             line_prefix(line_number) + e.what());
  }
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace storesched
