#include "common/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace storesched {

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

namespace {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) impl_->out << ',';
    impl_->out << csv_escape(fields[i]);
  }
  impl_->out << '\n';
}

std::string markdown_table(const std::vector<std::string>& header,
                           const std::vector<std::vector<std::string>>& rows) {
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      throw std::invalid_argument("markdown_table: ragged rows");
    }
  }
  std::vector<std::size_t> width(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  emit_row(header);
  os << '|';
  for (std::size_t c = 0; c < header.size(); ++c) {
    os << ' ' << std::string(width[c], '-') << " |";
  }
  os << '\n';
  for (const auto& row : rows) emit_row(row);
  return os.str();
}

std::string to_dot(const Instance& inst, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=TB;\n";
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    os << "  t" << i << " [label=\"t" << i << "\\np=" << inst.task(i).p
       << ",s=" << inst.task(i).s << "\"];\n";
  }
  if (inst.has_precedence()) {
    const Dag& dag = inst.dag();
    for (TaskId u = 0; u < static_cast<TaskId>(inst.n()); ++u) {
      for (const TaskId v : dag.succs(u)) {
        os << "  t" << u << " -> t" << v << ";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_text(const Instance& inst) {
  std::ostringstream os;
  os << inst.n() << ' ' << inst.m();
  if (inst.has_precedence()) os << " prec";
  os << '\n';
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    os << inst.task(i).p << ' ' << inst.task(i).s << '\n';
  }
  if (inst.has_precedence()) {
    const Dag& dag = inst.dag();
    for (TaskId u = 0; u < static_cast<TaskId>(inst.n()); ++u) {
      for (const TaskId v : dag.succs(u)) {
        os << u << ' ' << v << '\n';
      }
    }
  }
  return os.str();
}

Instance from_text(const std::string& text) {
  std::istringstream is(text);
  std::string first_line;
  if (!std::getline(is, first_line)) {
    throw std::runtime_error("from_text: empty input");
  }
  std::istringstream head(first_line);
  std::size_t n = 0;
  int m = 0;
  std::string prec_flag;
  if (!(head >> n >> m)) throw std::runtime_error("from_text: bad header");
  const bool has_prec = static_cast<bool>(head >> prec_flag) && prec_flag == "prec";

  std::vector<Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> tasks[i].p >> tasks[i].s)) {
      throw std::runtime_error("from_text: bad task line");
    }
  }
  if (!has_prec) return Instance(std::move(tasks), m);

  Dag dag(n);
  TaskId u = 0;
  TaskId v = 0;
  while (is >> u >> v) dag.add_edge(u, v);
  return Instance(std::move(tasks), m, std::move(dag));
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace storesched
