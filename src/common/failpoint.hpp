// Failpoint injection: deterministic runtime faults for resilience testing.
//
// A failpoint is a named site in library code -- `failpoint::hit("site")` --
// that normally does nothing, but can be armed to throw or stall when the
// process (or a test) asks for it. The streaming pipeline's failure
// policies (core/stream.hpp), the CLI's retry/resume paths, and the chaos
// CI leg are all proven against faults injected here, so every recovery
// behavior is reproducible on demand instead of waiting for a real disk or
// scheduler hiccup.
//
// Arming, from the environment (read once at startup):
//
//   STORESCHED_FAILPOINTS="site=action[;site=action...]"
//
// or programmatically (tests): failpoint::set("site", "action").
//
// Action grammar:   [selector:]effect
//
//   effect    := throw[(message)]   throw InjectedFault (a runtime_error
//                                   subclass the retry classifier treats
//                                   as transient)
//              | delay(MS)          sleep MS milliseconds, then continue
//   selector  := nth(K)             fire only on the K-th hit (1-based)
//              | every(K)           fire on every K-th hit
//              | prob(P,SEED)       fire with probability P in [0,1],
//                                   from a deterministic seeded stream
//                (no selector: fire on every hit)
//
// Examples:
//   STORESCHED_FAILPOINTS="stream.solve=every(5):throw"
//   STORESCHED_FAILPOINTS="source.next=nth(3):throw;sink.consume=delay(20)"
//   STORESCHED_FAILPOINTS="stream.solve=prob(0.1,42):throw(transient blip)"
//
// Registered sites (grep for failpoint::hit to enumerate):
//   source.next    JsonlInstanceSource::next, before any input is consumed
//   stream.solve   the solve_stream worker, before each solve attempt
//   sink.consume   result delivery, before ResultSink::consume
//   crew.spawn     run_worker_crew / WorkerCrew, before each worker thread
//                  is spawned
//   serve.accept   the serving tier's accept path, before each accept(2)
//                  round (a fault skips the round; the pending connection
//                  is retried, serve/server.cpp)
//   serve.request  the serving tier's request handler, before a framed
//                  line is parsed (a fault answers ok:false on that line)
//   serve.solve    the serving tier's worker, before the deadline check
//                  and solve (a fault answers ok:false for that request)
//
// Cost when unset: hit() is a single relaxed atomic load of a global flag
// and a predictable not-taken branch -- safe to leave compiled into hot
// service paths. The slow path (armed) takes a mutex; hit counters and the
// prob() stream are deterministic under serialized sites (the stream
// driver serializes source and sink calls by contract).
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace storesched {

/// Thrown by `throw` failpoints. Derives std::runtime_error so existing
/// wire/driver contracts ("malformed input throws runtime_error") hold;
/// the stream retry classifier recognizes it as transient (retryable).
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace failpoint {

namespace detail {
/// True iff any failpoint is armed. The only state the fast path touches.
extern std::atomic<bool> armed;
/// Evaluates `site` against the armed registry (counts the hit, applies
/// the selector, throws/delays on a match).
void hit_armed(const char* site);
}  // namespace detail

/// Evaluates the failpoint `site`. No-op (one relaxed load) unless some
/// failpoint is armed. May throw InjectedFault or sleep, per the action.
inline void hit(const char* site) {
  if (!detail::armed.load(std::memory_order_relaxed)) return;
  detail::hit_armed(site);
}

/// Arms `site` with `action` (grammar above), replacing any existing
/// action and resetting its hit counter. Throws std::invalid_argument on a
/// malformed action.
void set(const std::string& site, const std::string& action);

/// Disarms one site / every site. Tests should clear_all() on teardown so
/// faults never leak across test cases.
void clear(const std::string& site);
void clear_all();

/// Times `site` has been evaluated since it was last set() (armed sites
/// only; 0 for unknown sites). For test assertions on exact fault counts.
std::size_t hits(const std::string& site);

/// Re-reads STORESCHED_FAILPOINTS and replaces the whole registry with its
/// contents (clearing it when unset/empty). Called once at startup by a
/// static initializer; tests may call it after setenv().
void reload_from_env();

}  // namespace failpoint
}  // namespace storesched
