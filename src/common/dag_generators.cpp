#include "common/dag_generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace storesched {

namespace {

Task draw_task(const DagWeightParams& w, Rng& rng) {
  return {rng.uniform_int(w.p_min, w.p_max), rng.uniform_int(w.s_min, w.s_max)};
}

void check_weights(const DagWeightParams& w) {
  if (w.p_min <= 0 || w.p_min > w.p_max || w.s_min <= 0 || w.s_min > w.s_max) {
    throw std::invalid_argument("DagWeightParams: bad ranges");
  }
}

}  // namespace

Instance generate_layered_dag(int layers, int width, double density, int m,
                              const DagWeightParams& w, Rng& rng) {
  check_weights(w);
  if (layers <= 0 || width <= 0 || m <= 0) {
    throw std::invalid_argument("generate_layered_dag: bad shape");
  }
  if (density < 0 || density > 1) {
    throw std::invalid_argument("generate_layered_dag: density in [0,1]");
  }
  const std::size_t n =
      static_cast<std::size_t>(layers) * static_cast<std::size_t>(width);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tasks.push_back(draw_task(w, rng));

  Dag dag(n);
  const auto id = [width](int layer, int slot) {
    return static_cast<TaskId>(layer * width + slot);
  };
  for (int layer = 1; layer < layers; ++layer) {
    for (int slot = 0; slot < width; ++slot) {
      bool any = false;
      for (int prev = 0; prev < width; ++prev) {
        if (rng.bernoulli(density)) {
          dag.add_edge(id(layer - 1, prev), id(layer, slot));
          any = true;
        }
      }
      if (!any) {  // keep the layering tight
        const int prev = static_cast<int>(rng.uniform_int(0, width - 1));
        dag.add_edge(id(layer - 1, prev), id(layer, slot));
      }
    }
  }
  return Instance(std::move(tasks), m, std::move(dag));
}

Instance generate_random_dag(std::size_t n, double density, int m,
                             const DagWeightParams& w, Rng& rng) {
  check_weights(w);
  if (n == 0 || m <= 0) throw std::invalid_argument("generate_random_dag: bad n/m");
  if (density < 0 || density > 1) {
    throw std::invalid_argument("generate_random_dag: density in [0,1]");
  }
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tasks.push_back(draw_task(w, rng));

  // Random topological permutation, then i<j edges with probability density.
  std::vector<TaskId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  Dag dag(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) dag.add_edge(perm[i], perm[j]);
    }
  }
  return Instance(std::move(tasks), m, std::move(dag));
}

Instance generate_fork_join(int width, int depth, int m,
                            const DagWeightParams& w, Rng& rng) {
  check_weights(w);
  if (width <= 0 || depth <= 0 || m <= 0) {
    throw std::invalid_argument("generate_fork_join: bad shape");
  }
  const std::size_t n = 2 + static_cast<std::size_t>(width) *
                                static_cast<std::size_t>(depth);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tasks.push_back(draw_task(w, rng));

  Dag dag(n);
  const TaskId source = 0;
  const TaskId sink = static_cast<TaskId>(n - 1);
  const auto id = [depth](int branch, int step) {
    return static_cast<TaskId>(1 + branch * depth + step);
  };
  for (int b = 0; b < width; ++b) {
    dag.add_edge(source, id(b, 0));
    for (int d = 1; d < depth; ++d) dag.add_edge(id(b, d - 1), id(b, d));
    dag.add_edge(id(b, depth - 1), sink);
  }
  return Instance(std::move(tasks), m, std::move(dag));
}

namespace {

Instance generate_tree(int arity, int height, int m, const DagWeightParams& w,
                       Rng& rng, bool out_tree) {
  check_weights(w);
  if (arity <= 0 || height < 0 || m <= 0) {
    throw std::invalid_argument("generate_tree: bad shape");
  }
  // Node count of a complete arity-ary tree of the given height.
  std::size_t n = 0;
  std::size_t level_size = 1;
  for (int h = 0; h <= height; ++h) {
    n += level_size;
    level_size *= static_cast<std::size_t>(arity);
  }
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tasks.push_back(draw_task(w, rng));

  Dag dag(n);
  for (std::size_t v = 1; v < n; ++v) {
    const auto parent = static_cast<TaskId>((v - 1) / static_cast<std::size_t>(arity));
    if (out_tree) {
      dag.add_edge(parent, static_cast<TaskId>(v));
    } else {
      dag.add_edge(static_cast<TaskId>(v), parent);
    }
  }
  return Instance(std::move(tasks), m, std::move(dag));
}

}  // namespace

Instance generate_out_tree(int arity, int height, int m,
                           const DagWeightParams& w, Rng& rng) {
  return generate_tree(arity, height, m, w, rng, /*out_tree=*/true);
}

Instance generate_in_tree(int arity, int height, int m,
                          const DagWeightParams& w, Rng& rng) {
  return generate_tree(arity, height, m, w, rng, /*out_tree=*/false);
}

Instance generate_cholesky_dag(int tiles, int m, const DagWeightParams& w,
                               Rng& rng) {
  check_weights(w);
  if (tiles <= 0 || m <= 0) {
    throw std::invalid_argument("generate_cholesky_dag: bad shape");
  }
  const int T = tiles;
  // Node roles of right-looking tiled Cholesky on the lower triangle:
  //   POTRF(k)      for k in [0,T)
  //   TRSM(k, i)    for k < i < T
  //   SYRK(k, i)    for k < i < T
  //   GEMM(k, i, j) for k < j < i < T
  std::vector<Task> tasks;
  std::vector<std::array<int, 4>> meta;  // {role, k, i, j}
  enum Role { kPotrf = 0, kTrsm = 1, kSyrk = 2, kGemm = 3 };
  const auto push = [&](int role, int k, int i, int j) -> TaskId {
    // Role-dependent cost multipliers mirror flop ratios (GEMM heaviest).
    static constexpr int p_mult[4] = {1, 2, 2, 3};
    static constexpr int s_mult[4] = {1, 2, 1, 2};
    Task t = draw_task(w, rng);
    t.p *= p_mult[role];
    t.s *= s_mult[role];
    tasks.push_back(t);
    meta.push_back({role, k, i, j});
    return static_cast<TaskId>(tasks.size() - 1);
  };

  std::vector<TaskId> potrf_id(static_cast<std::size_t>(T), -1);
  std::vector<std::vector<TaskId>> trsm_id(
      static_cast<std::size_t>(T),
      std::vector<TaskId>(static_cast<std::size_t>(T), -1));

  std::vector<std::pair<TaskId, TaskId>> edges;

  // Track the latest writer of each tile (i, j) to thread dependencies.
  std::vector<std::vector<TaskId>> tile_writer(
      static_cast<std::size_t>(T),
      std::vector<TaskId>(static_cast<std::size_t>(T), -1));
  const auto dep_on_tile = [&](TaskId reader, int i, int j) {
    const TaskId writer = tile_writer[static_cast<std::size_t>(i)]
                                     [static_cast<std::size_t>(j)];
    if (writer >= 0 && writer != reader) edges.emplace_back(writer, reader);
  };

  for (int k = 0; k < T; ++k) {
    const TaskId pk = push(kPotrf, k, k, k);
    dep_on_tile(pk, k, k);
    tile_writer[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)] = pk;
    potrf_id[static_cast<std::size_t>(k)] = pk;

    for (int i = k + 1; i < T; ++i) {
      const TaskId tr = push(kTrsm, k, i, k);
      edges.emplace_back(pk, tr);
      dep_on_tile(tr, i, k);
      tile_writer[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = tr;
      trsm_id[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = tr;
    }
    for (int i = k + 1; i < T; ++i) {
      const TaskId syrk = push(kSyrk, k, i, i);
      edges.emplace_back(
          trsm_id[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)], syrk);
      dep_on_tile(syrk, i, i);
      tile_writer[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = syrk;
      for (int j = k + 1; j < i; ++j) {
        const TaskId gemm = push(kGemm, k, i, j);
        edges.emplace_back(
            trsm_id[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)],
            gemm);
        edges.emplace_back(
            trsm_id[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)],
            gemm);
        dep_on_tile(gemm, i, j);
        tile_writer[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            gemm;
      }
    }
  }

  Dag dag(tasks.size());
  for (const auto& [u, v] : edges) dag.add_edge(u, v);
  return Instance(std::move(tasks), m, std::move(dag));
}

Instance generate_fft_dag(int log2n, int m, const DagWeightParams& w,
                          Rng& rng) {
  check_weights(w);
  if (log2n <= 0 || log2n > 16 || m <= 0) {
    throw std::invalid_argument("generate_fft_dag: log2n in [1,16]");
  }
  const std::size_t points = std::size_t{1} << log2n;
  const std::size_t stages = static_cast<std::size_t>(log2n);
  const std::size_t n = points * (stages + 1);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tasks.push_back(draw_task(w, rng));

  Dag dag(n);
  const auto id = [points](std::size_t stage, std::size_t slot) {
    return static_cast<TaskId>(stage * points + slot);
  };
  for (std::size_t st = 1; st <= stages; ++st) {
    const std::size_t stride = points >> st;
    for (std::size_t slot = 0; slot < points; ++slot) {
      const std::size_t partner = slot ^ stride;
      dag.add_edge(id(st - 1, slot), id(st, slot));
      dag.add_edge(id(st - 1, partner), id(st, slot));
    }
  }
  return Instance(std::move(tasks), m, std::move(dag));
}

Instance generate_soc_pipeline(int stages, int replication, int m,
                               const DagWeightParams& w, Rng& rng) {
  check_weights(w);
  if (stages <= 0 || replication <= 0 || m <= 0) {
    throw std::invalid_argument("generate_soc_pipeline: bad shape");
  }
  const std::size_t n = static_cast<std::size_t>(stages) *
                        static_cast<std::size_t>(replication);
  std::vector<Task> tasks(n);
  // One code size per stage, shared by all its replicas: replicated
  // instruction code occupies the same footprint wherever it is placed.
  for (int st = 0; st < stages; ++st) {
    const Mem code = rng.uniform_int(w.s_min, w.s_max);
    for (int r = 0; r < replication; ++r) {
      const std::size_t v = static_cast<std::size_t>(st) *
                                static_cast<std::size_t>(replication) +
                            static_cast<std::size_t>(r);
      tasks[v] = {rng.uniform_int(w.p_min, w.p_max), code};
    }
  }

  Dag dag(n);
  const auto id = [replication](int stage, int rep) {
    return static_cast<TaskId>(stage * replication + rep);
  };
  for (int st = 1; st < stages; ++st) {
    for (int r = 0; r < replication; ++r) {
      // Each replica consumes from its aligned upstream replica plus one
      // random shuffle input (data re-distribution between stages).
      dag.add_edge(id(st - 1, r), id(st, r));
      const int other =
          static_cast<int>(rng.uniform_int(0, replication - 1));
      if (other != r) dag.add_edge(id(st - 1, other), id(st, r));
    }
  }
  return Instance(std::move(tasks), m, std::move(dag));
}

Instance generate_dag_by_name(const std::string& name, std::size_t size_hint,
                              int m, const DagWeightParams& w, Rng& rng) {
  const auto hint = std::max<std::size_t>(4, size_hint);
  if (name == "layered") {
    const int width = std::max(2, static_cast<int>(std::sqrt(static_cast<double>(hint))));
    const int layers = std::max(2, static_cast<int>(hint) / width);
    return generate_layered_dag(layers, width, 0.4, m, w, rng);
  }
  if (name == "random") return generate_random_dag(hint, 0.1, m, w, rng);
  if (name == "forkjoin") {
    const int width = std::max(2, static_cast<int>(std::sqrt(static_cast<double>(hint))));
    const int depth = std::max(1, (static_cast<int>(hint) - 2) / width);
    return generate_fork_join(width, depth, m, w, rng);
  }
  if (name == "cholesky") {
    int tiles = 2;
    const auto nodes = [](std::size_t t) { return (t + 1) * (t + 1) * (t + 1) / 3; };
    while (nodes(static_cast<std::size_t>(tiles)) <= hint) ++tiles;
    return generate_cholesky_dag(tiles, m, w, rng);
  }
  if (name == "fft") {
    int log2n = 1;
    while ((std::size_t{1} << (log2n + 1)) * static_cast<std::size_t>(log2n + 2) <= hint &&
           log2n < 10) {
      ++log2n;
    }
    return generate_fft_dag(log2n, m, w, rng);
  }
  if (name == "soc") {
    const int repl = std::max(2, m);
    const int stages = std::max(2, static_cast<int>(hint) / repl);
    return generate_soc_pipeline(stages, repl, m, w, rng);
  }
  throw std::invalid_argument("generate_dag_by_name: unknown generator " + name);
}

}  // namespace storesched
