// Reporting helpers: CSV tables, Markdown tables, Graphviz DOT export.
//
// The bench harness prints every regenerated figure as (a) a human-readable
// Markdown table on stdout and (b) optionally a CSV file for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/instance.hpp"
#include "common/schedule.hpp"

namespace storesched {

/// Minimal CSV writer: quotes fields containing separators/quotes/newlines.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& fields);

 private:
  struct Impl;
  Impl* impl_;
};

/// Renders rows as a GitHub-flavoured Markdown table. `header` supplies the
/// column names; all rows must have header.size() fields.
std::string markdown_table(const std::vector<std::string>& header,
                           const std::vector<std::vector<std::string>>& rows);

/// Graphviz DOT of a precedence instance: node label "id\np=..,s=..".
std::string to_dot(const Instance& inst, const std::string& graph_name = "dag");

/// Serializes an instance to a simple text format:
///   line 1: n m [prec]
///   next n lines: p_i s_i
///   if prec: remaining lines "u v" edges
std::string to_text(const Instance& inst);

/// Parses the to_text format back. Throws std::runtime_error on malformed
/// input. Round-trips exactly with to_text.
Instance from_text(const std::string& text);

/// Escapes `text` for embedding inside a JSON string literal (the
/// surrounding quotes are not included).
std::string json_escape(const std::string& text);

/// First bytes of the binary columnar wire format (docs/WIRE_FORMAT.md,
/// storage/wire_format.hpp). Defined here -- below the storage layer -- so
/// the JSONL parsers can *name* the other wire when handed its bytes:
/// feeding a binary file to a JSONL reader is a format mix-up worth a
/// precise error, not a cascade of "expected '{'" noise.
inline constexpr char kBinaryWireMagic[8] = {'S', 'T', 'S', 'C',
                                             'H', 'D', 'B', '1'};

/// True iff `bytes` begins with the binary wire magic.
bool has_binary_wire_magic(std::string_view bytes);

/// Serializes an instance as one compact JSON object -- the line format of
/// the streaming JSONL wire protocol (core/stream.hpp, storesched_cli):
///   {"m":3,"tasks":[[p,s],...],"edges":[[u,v],...]}
/// "edges" is omitted for independent instances (and kept, possibly empty,
/// for precedence instances). Round-trips through instance_from_jsonl().
std::string instance_to_jsonl(const Instance& inst);

/// Parses an instance_to_jsonl() object. Whitespace between tokens and any
/// key order are accepted; "m" and "tasks" are required. Throws
/// std::runtime_error naming the offending token on malformed input,
/// unknown keys, or an invalid instance (bad m, negative weights, cyclic
/// or out-of-range edges). Pass the 1-based `line_number` of the line in
/// its stream so the error also names it -- a bad line deep in a
/// million-line JSONL stream is unlocatable from the byte offset alone
/// (0 = unknown, omit the prefix).
Instance instance_from_jsonl(const std::string& line,
                             std::size_t line_number = 0);

/// Formats a double with the given number of decimals (fixed notation).
std::string fmt(double v, int decimals = 3);

}  // namespace storesched
