// ASCII Gantt-chart rendering of timed schedules.
//
// Mirrors the paper's Figures 1-2 presentation: one row per processor, task
// boxes sized by duration, with the storage consumption of each task shown
// as a label -- "sizes are according to durations" with memory "as labels on
// the tasks" (paper, Figure 1 caption).
#pragma once

#include <string>

#include "common/instance.hpp"
#include "common/schedule.hpp"

namespace storesched {

struct GanttOptions {
  int width = 72;           ///< target character width of the time axis
  bool show_storage = true; ///< append ":s=<s_i>" inside each box
  bool show_summary = true; ///< append Cmax/Mmax footer
};

/// Renders a timed schedule as ASCII art. For assignment-only schedules of
/// independent instances, serialize first (see serialize_assignment).
/// Throws std::logic_error on untimed schedules.
std::string render_gantt(const Instance& inst, const Schedule& sched,
                         const GanttOptions& opts = {});

}  // namespace storesched
