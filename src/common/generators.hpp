// Synthetic workload generators for independent-task instances.
//
// The paper motivates the model with two application families it does not
// publish data for: multi-SoC embedded systems storing instruction code [5]
// and large physics productions storing results on the grid [4]. Following
// the reproduction substitution rule, we generate synthetic equivalents that
// exercise the same algorithmic regimes:
//   * uncorrelated p/s        -- the general case the theory addresses
//   * correlated p/s          -- "big jobs produce big outputs" (physics)
//   * anti-correlated p/s     -- short tasks with large codes, the regime
//                                where SBO's threshold routing matters most
//   * bimodal / heavy-tailed  -- realistic skewed task populations
// All generators are deterministic functions of the Rng passed in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/instance.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace storesched {

/// Parameter block shared by the independent-instance generators.
struct GenParams {
  std::size_t n = 100;    ///< number of tasks
  int m = 4;              ///< number of processors
  Time p_min = 1;         ///< minimum processing time
  Time p_max = 100;       ///< maximum processing time
  Mem s_min = 1;          ///< minimum storage size
  Mem s_max = 100;        ///< maximum storage size
};

/// p and s drawn independently and uniformly.
Instance generate_uniform(const GenParams& params, Rng& rng);

/// s positively correlated with p: s = clamp(round(p * scale * noise)),
/// noise uniform in [1-jitter, 1+jitter]. Models compute-heavy tasks whose
/// outputs grow with their work.
Instance generate_correlated(const GenParams& params, double jitter, Rng& rng);

/// s anti-correlated with p (large-code quick tasks vs small-code long
/// tasks). This is the adversarial regime for single-objective schedulers
/// and the motivating regime for SBO's ratio threshold.
Instance generate_anticorrelated(const GenParams& params, double jitter,
                                 Rng& rng);

/// Bimodal population: a fraction `heavy_fraction` of tasks drawn from the
/// top decile of both ranges, the rest from the bottom half.
Instance generate_bimodal(const GenParams& params, double heavy_fraction,
                          Rng& rng);

/// ATLAS-like physics production batch (substitute for [4]): heavy-tailed
/// bounded-Pareto runtimes (shape `alpha`), result sizes correlated with
/// runtime plus a uniform baseline. Independent tasks, large n.
Instance generate_physics_batch(std::size_t n, int m, double alpha, Rng& rng);

/// Instance in which storage is tight: total storage ~= m * capacity_factor
/// * max task storage, so feasible memory partitions are scarce. Used by the
/// constrained-solver study (EXT-D).
Instance generate_memory_tight(const GenParams& params, double capacity_factor,
                               Rng& rng);

/// Identifier -> generator dispatch used by benches; throws on unknown name.
/// Known names: "uniform", "correlated", "anticorrelated", "bimodal".
Instance generate_by_name(const std::string& name, const GenParams& params,
                          Rng& rng);

}  // namespace storesched
