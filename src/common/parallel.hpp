// Shared worker-pool helper for embarrassingly parallel index loops.
//
// Extracted from solve_batch() so every fan-out in the library -- batch
// solving, Delta-grid front sweeps, benches -- shares one implementation
// with the same guarantees:
//   * never spawns more workers than there are jobs (a 2-job call on a
//     32-core box uses 2 threads, not 32);
//   * runs inline (no threads at all) when one worker suffices;
//   * captures the first exception thrown by any job, cancels the
//     remaining work, joins every worker, and rethrows on the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace storesched {

/// Number of workers parallel_for() will actually use for `jobs` jobs when
/// `threads` are requested (0 = std::thread::hardware_concurrency()).
/// Always in [1, max(jobs, 1)]. Exposed so tests can pin the
/// no-oversubscription invariant.
unsigned parallel_worker_count(std::size_t jobs, int threads);

/// Runs fn(i) for every i in [0, jobs), fanning out over at most
/// parallel_worker_count(jobs, threads) std::thread workers. Jobs are
/// claimed dynamically (atomic counter), so uneven job costs balance.
/// fn must be safe to call concurrently from multiple threads.
void parallel_for(std::size_t jobs, int threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace storesched
