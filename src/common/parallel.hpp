// Shared worker-pool helper for embarrassingly parallel index loops.
//
// Extracted from solve_batch() so every fan-out in the library -- batch
// solving, Delta-grid front sweeps, benches -- shares one implementation
// with the same guarantees:
//   * never spawns more workers than there are jobs (a 2-job call on a
//     32-core box uses 2 threads, not 32);
//   * runs inline (no threads at all) when one worker suffices;
//   * captures the first exception thrown by any job, cancels the
//     remaining work, joins every worker, and rethrows on the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace storesched {

/// Number of workers parallel_for() will actually use for `jobs` jobs when
/// `threads` are requested (0 = std::thread::hardware_concurrency()).
/// Always in [1, max(jobs, 1)]. Exposed so tests can pin the
/// no-oversubscription invariant.
unsigned parallel_worker_count(std::size_t jobs, int threads);

/// Runs fn(i) for every i in [0, jobs), fanning out over at most
/// parallel_worker_count(jobs, threads) std::thread workers. Jobs are
/// claimed dynamically (atomic counter), so uneven job costs balance.
/// fn must be safe to call concurrently from multiple threads.
void parallel_for(std::size_t jobs, int threads,
                  const std::function<void(std::size_t)>& fn);

/// Spawns `workers` std::thread workers all running body(worker_id) and
/// joins every one of them. This is the raw crew under long-lived
/// coordinated loops (the streaming solve driver) where the jobs are not a
/// pre-counted index range; use parallel_for for ordinary index fan-outs.
/// With workers <= 1 the body runs inline on the calling thread. The body
/// is expected to do its own error handling; if one does throw, the first
/// exception is captured, every worker is still joined, and it rethrows on
/// the caller.
void run_worker_crew(unsigned workers,
                     const std::function<void(unsigned)>& body);

}  // namespace storesched
