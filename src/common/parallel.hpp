// Shared worker-pool helper for embarrassingly parallel index loops.
//
// Extracted from solve_batch() so every fan-out in the library -- batch
// solving, Delta-grid front sweeps, benches -- shares one implementation
// with the same guarantees:
//   * never spawns more workers than there are jobs (a 2-job call on a
//     32-core box uses 2 threads, not 32);
//   * runs inline (no threads at all) when one worker suffices;
//   * captures the first exception thrown by any job, cancels the
//     remaining work, joins every worker, and rethrows on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace storesched {

/// Number of workers parallel_for() will actually use for `jobs` jobs when
/// `threads` are requested (0 = std::thread::hardware_concurrency()).
/// Always in [1, max(jobs, 1)]. Exposed so tests can pin the
/// no-oversubscription invariant.
unsigned parallel_worker_count(std::size_t jobs, int threads);

/// Runs fn(i) for every i in [0, jobs), fanning out over at most
/// parallel_worker_count(jobs, threads) std::thread workers. Jobs are
/// claimed dynamically (atomic counter), so uneven job costs balance.
/// fn must be safe to call concurrently from multiple threads.
void parallel_for(std::size_t jobs, int threads,
                  const std::function<void(std::size_t)>& fn);

/// Spawns `workers` std::thread workers all running body(worker_id) and
/// joins every one of them. This is the raw crew under long-lived
/// coordinated loops (the streaming solve driver) where the jobs are not a
/// pre-counted index range; use parallel_for for ordinary index fan-outs.
/// With workers <= 1 the body runs inline on the calling thread. The body
/// is expected to do its own error handling; if one does throw, the first
/// exception is captured, every worker is still joined, and it rethrows on
/// the caller.
void run_worker_crew(unsigned workers,
                     const std::function<void(unsigned)>& body);

/// Persistent worker crew: threads are spawned once and fed through a
/// submit/drain job queue, unlike run_worker_crew which sizes its crew to
/// the call and joins it before returning. This is the shape a long-lived
/// service needs -- the serving tier (src/serve/) admits requests for the
/// lifetime of the process, and respawning OS threads per request (or per
/// request batch) would put thread creation on the hot path.
///
/// Contract:
///   * submit() enqueues a job and never blocks on job execution; jobs are
///     claimed FIFO by whichever worker frees up first.
///   * Jobs are expected to handle their own errors. If one does throw,
///     the first exception is captured and rethrown by the next drain()
///     (the crew itself keeps running -- one poisoned request must not
///     take the service down).
///   * drain() blocks until every job submitted so far has finished.
///   * shutdown() finishes the queued jobs, then joins every worker;
///     submit() after shutdown() throws. The destructor calls shutdown()
///     and swallows any still-unclaimed job exception (destructors must
///     not throw).
///   * With workers() == 1 the crew still spawns one real thread --
///     unlike run_worker_crew's inline path -- because submit() must not
///     execute jobs on the caller (the serve event loop).
class WorkerCrew {
 public:
  /// Spawns `workers` threads immediately (>= 1; 0 means
  /// std::thread::hardware_concurrency()).
  explicit WorkerCrew(unsigned workers);
  ~WorkerCrew();
  WorkerCrew(const WorkerCrew&) = delete;
  WorkerCrew& operator=(const WorkerCrew&) = delete;

  /// Enqueues a job. Throws std::logic_error after shutdown().
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has completed, then rethrows the
  /// first job exception captured since the last drain (if any).
  void drain();

  /// Finishes queued jobs and joins the workers. Idempotent.
  void shutdown();

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Jobs submitted minus jobs completed (queued + running). Snapshot
  /// only -- other threads may be submitting concurrently.
  std::size_t pending() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for jobs / stop
  std::condition_variable idle_cv_;  ///< drain()/shutdown() wait for quiesce
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  ///< jobs currently executing
  bool stopping_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> threads_;
};

}  // namespace storesched
