#include "common/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace storesched {

Schedule::Schedule(std::size_t n, int m)
    : proc_(n, kNoProc), start_(n, kNoTime), m_(m) {
  if (m <= 0) throw std::invalid_argument("Schedule: m must be positive");
}

void Schedule::assign(TaskId i, ProcId q) {
  if (q < 0 || q >= m_) throw std::invalid_argument("Schedule: proc out of range");
  proc_.at(static_cast<std::size_t>(i)) = q;
}

void Schedule::assign(TaskId i, ProcId q, Time t) {
  if (t < 0) throw std::invalid_argument("Schedule: negative start time");
  assign(i, q);
  start_.at(static_cast<std::size_t>(i)) = t;
}

bool Schedule::fully_assigned() const {
  return std::all_of(proc_.begin(), proc_.end(),
                     [](ProcId q) { return q != kNoProc; });
}

bool Schedule::timed() const {
  if (!fully_assigned()) return false;
  return std::all_of(start_.begin(), start_.end(),
                     [](Time t) { return t != kNoTime; });
}

namespace {

void require_sized(const Instance& inst, const Schedule& sched) {
  if (inst.n() != sched.n() || inst.m() != sched.m()) {
    throw std::invalid_argument("schedule/instance size mismatch");
  }
}

}  // namespace

std::vector<Time> processor_loads(const Instance& inst, const Schedule& sched) {
  require_sized(inst, sched);
  std::vector<Time> load(static_cast<std::size_t>(inst.m()), 0);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    const ProcId q = sched.proc(i);
    if (q != kNoProc) load[static_cast<std::size_t>(q)] += inst.task(i).p;
  }
  return load;
}

std::vector<Mem> processor_storage(const Instance& inst, const Schedule& sched) {
  require_sized(inst, sched);
  std::vector<Mem> mem(static_cast<std::size_t>(inst.m()), 0);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    const ProcId q = sched.proc(i);
    if (q != kNoProc) mem[static_cast<std::size_t>(q)] += inst.task(i).s;
  }
  return mem;
}

Time cmax(const Instance& inst, const Schedule& sched) {
  require_sized(inst, sched);
  if (sched.timed()) {
    Time best = 0;
    for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
      best = std::max(best, sched.start(i) + inst.task(i).p);
    }
    return best;
  }
  const auto loads = processor_loads(inst, sched);
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

Mem mmax(const Instance& inst, const Schedule& sched) {
  const auto mem = processor_storage(inst, sched);
  return mem.empty() ? 0 : *std::max_element(mem.begin(), mem.end());
}

Time sum_completion_times(const Instance& inst, const Schedule& sched) {
  require_sized(inst, sched);
  if (!sched.timed()) {
    throw std::logic_error("sum_completion_times: schedule has no start times");
  }
  Time sum = 0;
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    sum += sched.start(i) + inst.task(i).p;
  }
  return sum;
}

ObjectivePoint objectives(const Instance& inst, const Schedule& sched) {
  return {cmax(inst, sched), mmax(inst, sched)};
}

TriObjectivePoint tri_objectives(const Instance& inst, const Schedule& sched) {
  return {cmax(inst, sched), mmax(inst, sched),
          sum_completion_times(inst, sched)};
}

Schedule serialize_assignment(const Instance& inst, const Schedule& sched,
                              std::span<const TaskId> priority) {
  require_sized(inst, sched);
  if (inst.has_precedence()) {
    throw std::logic_error("serialize_assignment: instance has precedences");
  }
  if (!sched.fully_assigned()) {
    throw std::logic_error("serialize_assignment: unassigned tasks");
  }
  std::vector<TaskId> order(priority.begin(), priority.end());
  if (order.empty()) {
    order.resize(inst.n());
    std::iota(order.begin(), order.end(), 0);
  }
  if (order.size() != inst.n()) {
    throw std::invalid_argument("serialize_assignment: priority size mismatch");
  }

  Schedule timed(inst.n(), inst.m());
  std::vector<Time> front(static_cast<std::size_t>(inst.m()), 0);
  for (const TaskId i : order) {
    const ProcId q = sched.proc(i);
    timed.assign(i, q, front[static_cast<std::size_t>(q)]);
    front[static_cast<std::size_t>(q)] += inst.task(i).p;
  }
  return timed;
}

ValidationResult validate_schedule(const Instance& inst, const Schedule& sched,
                                   const ValidationOptions& opts) {
  require_sized(inst, sched);
  const auto fail = [](std::string msg) {
    return ValidationResult{false, std::move(msg)};
  };

  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    const ProcId q = sched.proc(i);
    if (q == kNoProc) return fail("task " + std::to_string(i) + " unassigned");
    if (q < 0 || q >= inst.m()) {
      return fail("task " + std::to_string(i) + " on invalid processor");
    }
  }

  if (opts.memory_cap >= 0) {
    const auto mem = processor_storage(inst, sched);
    for (std::size_t q = 0; q < mem.size(); ++q) {
      if (mem[q] > opts.memory_cap) {
        std::ostringstream os;
        os << "processor " << q << " storage " << mem[q] << " exceeds cap "
           << opts.memory_cap;
        return fail(os.str());
      }
    }
  }

  const bool timed = sched.timed();
  if (opts.require_timed && !timed) return fail("schedule has no start times");
  if (!timed) {
    if (inst.has_precedence()) {
      return fail("precedence instance requires a timed schedule");
    }
    return {};
  }

  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    if (sched.start(i) < 0) {
      return fail("task " + std::to_string(i) + " has negative start");
    }
  }

  // No-overlap per processor: sort tasks of each processor by start time and
  // check consecutive intervals.
  std::vector<std::vector<TaskId>> by_proc(static_cast<std::size_t>(inst.m()));
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    by_proc[static_cast<std::size_t>(sched.proc(i))].push_back(i);
  }
  for (auto& tasks_on_q : by_proc) {
    std::sort(tasks_on_q.begin(), tasks_on_q.end(), [&](TaskId a, TaskId b) {
      return sched.start(a) < sched.start(b);
    });
    for (std::size_t k = 1; k < tasks_on_q.size(); ++k) {
      const TaskId prev = tasks_on_q[k - 1];
      const TaskId cur = tasks_on_q[k];
      if (sched.start(prev) + inst.task(prev).p > sched.start(cur)) {
        std::ostringstream os;
        os << "tasks " << prev << " and " << cur << " overlap on processor "
           << sched.proc(cur);
        return fail(os.str());
      }
    }
  }

  if (inst.has_precedence()) {
    const Dag& dag = inst.dag();
    for (TaskId u = 0; u < static_cast<TaskId>(inst.n()); ++u) {
      for (const TaskId v : dag.succs(u)) {
        if (sched.start(u) + inst.task(u).p > sched.start(v)) {
          std::ostringstream os;
          os << "precedence violated: task " << u << " completes at "
             << sched.start(u) + inst.task(u).p << " but successor " << v
             << " starts at " << sched.start(v);
          return fail(os.str());
        }
      }
    }
  }

  return {};
}

}  // namespace storesched
