#include "common/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace storesched {

std::string render_gantt(const Instance& inst, const Schedule& sched,
                         const GanttOptions& opts) {
  if (!sched.timed()) {
    throw std::logic_error("render_gantt: schedule has no start times");
  }
  const Time horizon = cmax(inst, sched);
  const double scale =
      horizon > 0 ? static_cast<double>(std::max(8, opts.width)) /
                        static_cast<double>(horizon)
                  : 1.0;
  const auto col = [scale](Time t) {
    return static_cast<std::size_t>(static_cast<double>(t) * scale);
  };

  std::vector<std::vector<TaskId>> by_proc(static_cast<std::size_t>(inst.m()));
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    by_proc[static_cast<std::size_t>(sched.proc(i))].push_back(i);
  }

  std::ostringstream os;
  for (std::size_t q = 0; q < by_proc.size(); ++q) {
    auto& tasks_on_q = by_proc[q];
    std::sort(tasks_on_q.begin(), tasks_on_q.end(), [&](TaskId a, TaskId b) {
      return sched.start(a) < sched.start(b);
    });

    std::string row;
    for (const TaskId i : tasks_on_q) {
      const std::size_t begin = col(sched.start(i));
      std::size_t end = col(sched.start(i) + inst.task(i).p);
      if (end <= begin) end = begin + 1;
      if (row.size() < begin) row.append(begin - row.size(), '.');

      std::string label = "t" + std::to_string(i);
      if (opts.show_storage) label += ":s=" + std::to_string(inst.task(i).s);
      std::string box = "[" + label;
      const std::size_t box_width = end - begin;
      if (box.size() + 1 > box_width) {
        box = box.substr(0, box_width > 1 ? box_width - 1 : 0);
      }
      box.append(box_width > box.size() + 1 ? box_width - box.size() - 1 : 0,
                 '=');
      box += "]";
      // Clip/pad to exactly box_width characters.
      if (box.size() > box_width) box = box.substr(0, box_width);
      row += box;
    }
    os << "P" << q << " |" << row << "\n";
  }

  if (opts.show_summary) {
    os << "Cmax=" << horizon << " Mmax=" << mmax(inst, sched) << "\n";
  }
  return os.str();
}

}  // namespace storesched
