// Summary statistics for the benchmark harness.
//
// Ratio studies (EXT-A..EXT-D in DESIGN.md) aggregate measured/optimal
// ratios over many seeds; this module provides the usual descriptive
// statistics plus a streaming accumulator so benches never store per-seed
// vectors unless percentiles are requested.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace storesched {

/// Descriptive statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1); 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  /// "mean=... sd=... min=... p50=... p95=... max=... (n=...)"
  std::string to_string() const;
};

/// Computes all Summary fields from a sample (copied and sorted internally).
Summary summarize(std::span<const double> values);

/// Linear-interpolation percentile (q in [0, 1]) of a *sorted* sample.
double percentile_sorted(std::span<const double> sorted_values, double q);

/// Streaming accumulator (Welford) that also retains values for percentiles.
class Accumulator {
 public:
  void add(double v);
  std::size_t count() const { return values_.size(); }
  Summary summary() const;
  std::span<const double> values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace storesched
