#include "common/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace storesched {
namespace failpoint {

namespace {

enum class Selector { kAlways, kNth, kEvery, kProb };
enum class Effect { kThrow, kDelay };

struct Action {
  Selector selector = Selector::kAlways;
  std::size_t k = 0;        // nth/every parameter
  double probability = 0;   // prob parameter
  std::uint64_t rng_state = 0;
  Effect effect = Effect::kThrow;
  std::string message;      // throw(message)
  std::chrono::milliseconds delay{0};
  std::size_t hit_count = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Action> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

[[noreturn]] void bad_action(const std::string& what, const std::string& token) {
  throw std::invalid_argument("failpoint: " + what + " \"" + token + "\"");
}

/// splitmix64: one deterministic step of the prob() selector's stream.
std::uint64_t next_rand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Parses "name(arg1[,arg2])" -> {name, args}; plain "name" -> no args.
struct Call {
  std::string name;
  std::vector<std::string> args;
};

Call parse_call(const std::string& token) {
  Call call;
  const std::size_t open = token.find('(');
  if (open == std::string::npos) {
    call.name = token;
    return call;
  }
  if (token.back() != ')') bad_action("unbalanced parentheses in", token);
  call.name = token.substr(0, open);
  const std::string inner = token.substr(open + 1, token.size() - open - 2);
  std::size_t begin = 0;
  while (true) {
    const std::size_t comma = inner.find(',', begin);
    if (comma == std::string::npos) {
      call.args.push_back(inner.substr(begin));
      break;
    }
    call.args.push_back(inner.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return call;
}

std::size_t parse_count(const std::string& token, const std::string& action) {
  if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
    bad_action("malformed count in", action);
  }
  const unsigned long long v = std::stoull(token);
  if (v == 0) bad_action("count must be >= 1 in", action);
  return static_cast<std::size_t>(v);
}

Action parse_action(const std::string& text) {
  Action action;
  // [selector:]effect -- split at the first ':' outside parentheses, so
  // throw(a:b) stays one token while every(5):throw splits cleanly.
  std::string selector_token;
  std::string effect_token = text;
  std::size_t depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (depth > 0) --depth;
    } else if (text[i] == ':' && depth == 0) {
      selector_token = text.substr(0, i);
      effect_token = text.substr(i + 1);
      break;
    }
  }

  if (!selector_token.empty()) {
    const Call sel = parse_call(selector_token);
    if (sel.name == "nth") {
      if (sel.args.size() != 1) bad_action("nth takes one argument in", text);
      action.selector = Selector::kNth;
      action.k = parse_count(sel.args[0], text);
    } else if (sel.name == "every") {
      if (sel.args.size() != 1) bad_action("every takes one argument in", text);
      action.selector = Selector::kEvery;
      action.k = parse_count(sel.args[0], text);
    } else if (sel.name == "prob") {
      if (sel.args.size() != 2) {
        bad_action("prob takes (probability, seed) in", text);
      }
      action.selector = Selector::kProb;
      try {
        action.probability = std::stod(sel.args[0]);
      } catch (const std::exception&) {
        bad_action("malformed probability in", text);
      }
      if (action.probability < 0.0 || action.probability > 1.0) {
        bad_action("probability outside [0,1] in", text);
      }
      if (sel.args[1].empty() ||
          sel.args[1].find_first_not_of("0123456789") != std::string::npos) {
        bad_action("malformed seed in", text);
      }
      action.rng_state = std::stoull(sel.args[1]);
    } else {
      bad_action("unknown selector", selector_token);
    }
  }

  const Call eff = parse_call(effect_token);
  if (eff.name == "throw") {
    action.effect = Effect::kThrow;
    if (eff.args.size() > 1) bad_action("throw takes at most one argument in", text);
    if (!eff.args.empty()) action.message = eff.args[0];
  } else if (eff.name == "delay") {
    action.effect = Effect::kDelay;
    if (eff.args.size() != 1) bad_action("delay takes (milliseconds) in", text);
    if (eff.args[0].empty() ||
        eff.args[0].find_first_not_of("0123456789") != std::string::npos) {
      bad_action("malformed delay in", text);
    }
    action.delay = std::chrono::milliseconds(std::stoull(eff.args[0]));
  } else {
    bad_action("unknown effect", effect_token);
  }
  return action;
}

/// Loads STORESCHED_FAILPOINTS once before main so env-armed sites fire
/// from the first hit (CLI runs never miss the head of the stream).
struct EnvInit {
  EnvInit() { reload_from_env(); }
};
const EnvInit env_init;

}  // namespace

namespace detail {

std::atomic<bool> armed{false};

void hit_armed(const char* site) {
  Action fire;  // copied out so the throw/sleep happens outside the lock
  bool matched = false;
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return;
    Action& action = it->second;
    ++action.hit_count;
    switch (action.selector) {
      case Selector::kAlways:
        matched = true;
        break;
      case Selector::kNth:
        matched = action.hit_count == action.k;
        break;
      case Selector::kEvery:
        matched = action.hit_count % action.k == 0;
        break;
      case Selector::kProb: {
        const double draw =
            static_cast<double>(next_rand(action.rng_state) >> 11) * 0x1.0p-53;
        matched = draw < action.probability;
        break;
      }
    }
    if (matched) fire = action;
  }
  if (!matched) return;
  if (fire.effect == Effect::kDelay) {
    std::this_thread::sleep_for(fire.delay);
    return;
  }
  throw InjectedFault("failpoint " + std::string(site) + ": " +
                      (fire.message.empty() ? "injected fault" : fire.message));
}

}  // namespace detail

void set(const std::string& site, const std::string& action) {
  if (site.empty() || site.find_first_of("=;") != std::string::npos) {
    throw std::invalid_argument("failpoint: malformed site name \"" + site +
                                "\"");
  }
  Action parsed = parse_action(action);  // validate before touching the map
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites[site] = std::move(parsed);
  detail::armed.store(true, std::memory_order_relaxed);
}

void clear(const std::string& site) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites.erase(site);
  if (reg.sites.empty()) {
    detail::armed.store(false, std::memory_order_relaxed);
  }
}

void clear_all() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.sites.clear();
  detail::armed.store(false, std::memory_order_relaxed);
}

std::size_t hits(const std::string& site) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hit_count;
}

void reload_from_env() {
  clear_all();
  const char* env = std::getenv("STORESCHED_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  const std::string text(env);
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(
          "STORESCHED_FAILPOINTS: expected site=action, got \"" + entry +
          "\"");
    }
    set(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

}  // namespace failpoint
}  // namespace storesched
