#include "common/dag.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace storesched {

std::size_t Dag::check(TaskId v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= preds_.size()) {
    throw std::invalid_argument("Dag: task id out of range");
  }
  return static_cast<std::size_t>(v);
}

void Dag::add_edge(TaskId u, TaskId v) {
  check(u);
  check(v);
  if (u == v) throw std::invalid_argument("Dag: self-loop edge");
  if (has_edge(u, v)) return;
  succs_[static_cast<std::size_t>(u)].push_back(v);
  preds_[static_cast<std::size_t>(v)].push_back(u);
  ++edge_count_;
}

bool Dag::has_edge(TaskId u, TaskId v) const {
  check(u);
  check(v);
  const auto& s = succs_[static_cast<std::size_t>(u)];
  return std::find(s.begin(), s.end(), v) != s.end();
}

std::optional<std::vector<TaskId>> Dag::topological_order() const {
  const std::size_t n = this->n();
  std::vector<std::size_t> indeg(n);
  for (std::size_t v = 0; v < n; ++v) indeg[v] = preds_[v].size();

  // Min-heap on task id for deterministic output.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push(static_cast<TaskId>(v));
  }

  std::vector<TaskId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const TaskId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const TaskId v : succs_[static_cast<std::size_t>(u)]) {
      if (--indeg[static_cast<std::size_t>(v)] == 0) ready.push(v);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

Time Dag::critical_path_length(std::span<const Task> tasks) const {
  const auto bl = bottom_levels(tasks);
  Time best = 0;
  for (const Time t : bl) best = std::max(best, t);
  return best;
}

std::vector<Time> Dag::top_levels(std::span<const Task> tasks) const {
  if (tasks.size() != n()) throw std::invalid_argument("Dag: size mismatch");
  const auto order = topological_order();
  if (!order) throw std::logic_error("Dag: top_levels on cyclic graph");
  std::vector<Time> tl(n(), 0);
  for (const TaskId u : *order) {
    for (const TaskId v : succs(u)) {
      tl[static_cast<std::size_t>(v)] =
          std::max(tl[static_cast<std::size_t>(v)],
                   tl[static_cast<std::size_t>(u)] +
                       tasks[static_cast<std::size_t>(u)].p);
    }
  }
  return tl;
}

std::vector<Time> Dag::bottom_levels(std::span<const Task> tasks) const {
  if (tasks.size() != n()) throw std::invalid_argument("Dag: size mismatch");
  const auto order = topological_order();
  if (!order) throw std::logic_error("Dag: bottom_levels on cyclic graph");
  std::vector<Time> bl(n());
  for (std::size_t k = order->size(); k-- > 0;) {
    const TaskId u = (*order)[k];
    Time best = 0;
    for (const TaskId v : succs(u)) {
      best = std::max(best, bl[static_cast<std::size_t>(v)]);
    }
    bl[static_cast<std::size_t>(u)] = best + tasks[static_cast<std::size_t>(u)].p;
  }
  return bl;
}

bool Dag::reachable(TaskId u, TaskId v) const {
  check(u);
  check(v);
  if (u == v) return false;
  std::vector<bool> seen(n(), false);
  std::vector<TaskId> stack{u};
  seen[static_cast<std::size_t>(u)] = true;
  while (!stack.empty()) {
    const TaskId x = stack.back();
    stack.pop_back();
    for (const TaskId y : succs(x)) {
      if (y == v) return true;
      if (!seen[static_cast<std::size_t>(y)]) {
        seen[static_cast<std::size_t>(y)] = true;
        stack.push_back(y);
      }
    }
  }
  return false;
}

std::size_t Dag::source_count() const {
  std::size_t c = 0;
  for (std::size_t v = 0; v < n(); ++v) {
    if (preds_[v].empty()) ++c;
  }
  return c;
}

std::size_t Dag::sink_count() const {
  std::size_t c = 0;
  for (std::size_t v = 0; v < n(); ++v) {
    if (succs_[v].empty()) ++c;
  }
  return c;
}

DagFrontierView::DagFrontierView(const Dag& dag) {
  const std::size_t n = dag.n();
  offset_.resize(n + 1, 0);
  indeg_.resize(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    offset_[u + 1] =
        offset_[u] + dag.out_degree(static_cast<TaskId>(u));
    indeg_[u] =
        static_cast<std::uint32_t>(dag.in_degree(static_cast<TaskId>(u)));
  }
  succ_.resize(offset_[n]);
  for (std::size_t u = 0; u < n; ++u) {
    const auto s = dag.succs(static_cast<TaskId>(u));
    std::copy(s.begin(), s.end(), succ_.begin() + static_cast<std::ptrdiff_t>(offset_[u]));
  }
}

Dag Dag::reversed() const {
  Dag r(n());
  for (std::size_t u = 0; u < n(); ++u) {
    for (const TaskId v : succs_[u]) {
      r.add_edge(v, static_cast<TaskId>(u));
    }
  }
  return r;
}

}  // namespace storesched
