#include "common/pareto.hpp"

#include <algorithm>

namespace storesched {

std::vector<LabelledPoint> pareto_front(std::span<const LabelledPoint> points) {
  std::vector<LabelledPoint> sorted(points.begin(), points.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const LabelledPoint& a, const LabelledPoint& b) {
              if (a.value.cmax != b.value.cmax) {
                return a.value.cmax < b.value.cmax;
              }
              if (a.value.mmax != b.value.mmax) {
                return a.value.mmax < b.value.mmax;
              }
              return a.tag < b.tag;
            });

  std::vector<LabelledPoint> front;
  for (const LabelledPoint& pt : sorted) {
    if (!front.empty() && front.back().value.mmax <= pt.value.mmax) {
      continue;  // dominated (or duplicate) given the cmax sort
    }
    front.push_back(pt);
  }
  return front;
}

std::vector<LabelledPoint> pareto_front(std::span<const ObjectivePoint> points) {
  std::vector<LabelledPoint> labelled;
  labelled.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    labelled.push_back({points[i], static_cast<std::int64_t>(i)});
  }
  return pareto_front(labelled);
}

bool covered_by_front(const ObjectivePoint& point,
                      std::span<const LabelledPoint> front) {
  return std::any_of(front.begin(), front.end(), [&](const LabelledPoint& f) {
    return dominates(f.value, point);
  });
}

std::vector<LabelledPoint> merge_fronts(std::span<const LabelledPoint> a,
                                        std::span<const LabelledPoint> b) {
  std::vector<LabelledPoint> all(a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  return pareto_front(all);
}

bool is_valid_front(std::span<const LabelledPoint> front) {
  for (std::size_t i = 1; i < front.size(); ++i) {
    const bool cmax_increasing = front[i - 1].value.cmax < front[i].value.cmax;
    const bool mmax_decreasing = front[i - 1].value.mmax > front[i].value.mmax;
    if (!cmax_increasing || !mmax_decreasing) return false;
  }
  return true;
}

}  // namespace storesched
