// Environment-variable toggles shared by the A/B engine dispatchers.
#pragma once

#include <cstdlib>

namespace storesched {

/// True iff the environment variable `name` is set to a non-empty value
/// other than "0" -- the convention shared by STORESCHED_RLS_REFERENCE
/// and STORESCHED_PARETO_REFERENCE (rls_schedule / enumerate_pareto).
inline bool env_flag_set(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace storesched
