// Schedule representation and objective metrics.
//
// A Schedule is an assignment pi : tasks -> processors plus, optionally,
// start times sigma. Independent-task algorithms (SBO, Algorithm 1) only
// decide the assignment -- Cmax and Mmax depend on the assignment alone.
// List-scheduling algorithms (RLS, Algorithm 2) also fix sigma, which the
// sum-of-completion-times objective of Section 5.2 requires.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/instance.hpp"
#include "common/types.hpp"

namespace storesched {

class Schedule {
 public:
  Schedule() = default;

  /// An empty (fully unassigned) schedule for n tasks on m processors.
  Schedule(std::size_t n, int m);

  /// Convenience: sized from an instance.
  explicit Schedule(const Instance& inst) : Schedule(inst.n(), inst.m()) {}

  std::size_t n() const { return proc_.size(); }
  int m() const { return m_; }

  ProcId proc(TaskId i) const { return proc_[static_cast<std::size_t>(i)]; }
  Time start(TaskId i) const { return start_[static_cast<std::size_t>(i)]; }

  /// Assign task i to processor q (without a start time).
  void assign(TaskId i, ProcId q);
  /// Assign task i to processor q starting at time t >= 0.
  void assign(TaskId i, ProcId q, Time t);

  /// True iff every task has a processor.
  bool fully_assigned() const;
  /// True iff every task has both a processor and a start time.
  bool timed() const;

  std::span<const ProcId> assignment() const { return proc_; }
  std::span<const Time> starts() const { return start_; }

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::vector<ProcId> proc_;
  std::vector<Time> start_;
  int m_ = 0;
};

/// Per-processor total processing time (the "load" of Algorithm 2).
std::vector<Time> processor_loads(const Instance& inst, const Schedule& sched);

/// Per-processor cumulative storage (the "memsize" of Algorithm 2).
std::vector<Mem> processor_storage(const Instance& inst, const Schedule& sched);

/// Makespan. For timed schedules this is max_i (sigma_i + p_i); for
/// assignment-only schedules it is the maximum processor load (the two
/// coincide for any no-idle serialization of an independent-task assignment).
Time cmax(const Instance& inst, const Schedule& sched);

/// Maximum cumulative storage over processors (paper's Mmax).
Mem mmax(const Instance& inst, const Schedule& sched);

/// Sum of completion times (Section 5.2's third objective).
/// Requires a timed schedule.
Time sum_completion_times(const Instance& inst, const Schedule& sched);

/// Both bi-objective values at once.
ObjectivePoint objectives(const Instance& inst, const Schedule& sched);

/// All three objectives; requires a timed schedule.
TriObjectivePoint tri_objectives(const Instance& inst, const Schedule& sched);

/// Serializes an assignment-only schedule into a timed one: on each
/// processor, tasks run back-to-back from time 0 in the relative order given
/// by `priority` (a permutation of all task ids; defaults to ascending id
/// when empty). Only valid for independent instances.
Schedule serialize_assignment(const Instance& inst, const Schedule& sched,
                              std::span<const TaskId> priority = {});

/// Result of schedule validation.
struct ValidationResult {
  bool ok = true;
  std::string error;  ///< empty when ok

  explicit operator bool() const { return ok; }
};

/// Options controlling which invariants validate_schedule() enforces.
struct ValidationOptions {
  bool require_timed = false;  ///< demand start times + overlap/precedence checks
  Mem memory_cap = -1;         ///< if >= 0, enforce Mmax <= memory_cap per processor
};

/// Checks structural validity of a schedule against its instance:
///   * every task assigned to a processor in [0, m)
///   * if timed (or required): sigma_i >= 0, no two tasks overlap on a
///     processor, and every precedence edge (u, v) satisfies
///     sigma_u + p_u <= sigma_v
///   * optional per-processor memory cap
/// Returns the first violation found, with a diagnostic message.
ValidationResult validate_schedule(const Instance& inst, const Schedule& sched,
                                   const ValidationOptions& opts = {});

}  // namespace storesched
