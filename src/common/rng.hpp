// Deterministic, seedable pseudo-random number generation.
//
// Self-contained xoshiro256** implementation (no dependence on libstdc++'s
// unspecified distribution algorithms) so every generated workload is
// bit-reproducible across platforms -- a requirement for the benchmark
// harness, whose EXPERIMENTS.md numbers must be regenerable.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace storesched {

/// xoshiro256** by Blackman & Vigna (public domain algorithm), seeded
/// through splitmix64 as its authors recommend.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive, by unbiased rejection sampling.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) {  // full 64-bit range
      return static_cast<std::int64_t>((*this)());
    }
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return lo + static_cast<std::int64_t>(v % range);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability prob (clamped to [0,1]).
  bool bernoulli(double prob) { return uniform01() < prob; }

  /// Pareto-tailed positive integer in [lo, hi]: heavy-tailed runtimes for
  /// the ATLAS-like physics workload (shape alpha > 0; smaller = heavier).
  std::int64_t pareto_int(std::int64_t lo, std::int64_t hi, double alpha) {
    if (lo <= 0 || lo > hi) {
      throw std::invalid_argument("Rng::pareto_int: need 0 < lo <= hi");
    }
    if (alpha <= 0) throw std::invalid_argument("Rng::pareto_int: alpha <= 0");
    // Inverse-CDF sample of a bounded Pareto distribution.
    const double l = static_cast<double>(lo);
    const double h = static_cast<double>(hi);
    const double u = uniform01();
    const double la = std::pow(l, alpha);
    const double ha = std::pow(h, alpha);
    const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
    const auto v = static_cast<std::int64_t>(x);
    return v < lo ? lo : (v > hi ? hi : v);
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace storesched
