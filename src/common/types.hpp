// Core value types of the storesched library.
//
// The paper's model (Saule, Dutot, Mounie, IPDPS 2008, Section 2.1) uses
// integer processing times p_i and integer storage sizes s_i. We keep every
// algorithmic quantity in exact 64-bit integer arithmetic so that the
// approximation-guarantee inequalities proved in the paper can be asserted
// exactly in tests, with no floating-point tolerance.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace storesched {

/// Integer processing-time unit (p_i, start times, loads, makespans).
using Time = std::int64_t;

/// Integer storage unit (s_i, per-processor cumulative memory).
using Mem = std::int64_t;

/// Index of a task in an Instance (0-based; the paper is 1-based).
using TaskId = std::int32_t;

/// Index of a processor (0-based).
using ProcId = std::int32_t;

/// Sentinel meaning "no processor assigned yet".
inline constexpr ProcId kNoProc = -1;

/// Sentinel meaning "no start time assigned yet".
inline constexpr Time kNoTime = std::numeric_limits<Time>::min();

/// A task with a processing time and a storage (code/result size) footprint.
///
/// The two weights are deliberately independent: the paper stresses that
/// "the processing time of every task is not related to the memory it uses".
struct Task {
  Time p = 0;  ///< processing time p_i  (>= 0; > 0 for schedulable work)
  Mem s = 0;   ///< storage footprint s_i (>= 0)

  friend bool operator==(const Task&, const Task&) = default;
};

/// A bi-objective value point (Cmax, Mmax). Used for Pareto reasoning.
struct ObjectivePoint {
  Time cmax = 0;
  Mem mmax = 0;

  friend bool operator==(const ObjectivePoint&, const ObjectivePoint&) = default;
};

/// Weak Pareto dominance: a dominates b iff a is no worse on both
/// objectives. (Both objectives are minimized.)
constexpr bool dominates(const ObjectivePoint& a, const ObjectivePoint& b) {
  return a.cmax <= b.cmax && a.mmax <= b.mmax;
}

/// Strict Pareto dominance: no worse on both and strictly better on one.
constexpr bool strictly_dominates(const ObjectivePoint& a,
                                  const ObjectivePoint& b) {
  return dominates(a, b) && (a.cmax < b.cmax || a.mmax < b.mmax);
}

/// A tri-objective value point (Cmax, Mmax, sum of completion times),
/// for the Section 5.2 extension.
struct TriObjectivePoint {
  Time cmax = 0;
  Mem mmax = 0;
  Time sum_ci = 0;

  friend bool operator==(const TriObjectivePoint&,
                         const TriObjectivePoint&) = default;
};

}  // namespace storesched
