// Synthetic DAG workload generators for the precedence-constrained case.
//
// RLS (paper Section 5) targets embedded-system task graphs; following the
// substitution rule, the multi-SoC instruction-code application of [5] is
// modelled by `generate_soc_pipeline` (pipelined media-processing stages
// with per-stage code sizes). Classic structured graphs (fork-join, trees,
// Cholesky- and FFT-shaped) plus layered and Erdos-Renyi random DAGs cover
// the standard DAG-scheduling evaluation space.
#pragma once

#include <cstdint>
#include <string>

#include "common/instance.hpp"
#include "common/rng.hpp"

namespace storesched {

/// Weight ranges applied to generated DAG nodes.
struct DagWeightParams {
  Time p_min = 1;
  Time p_max = 50;
  Mem s_min = 1;
  Mem s_max = 50;
};

/// Layer-by-layer random DAG: `layers` layers of `width` tasks; each task
/// depends on each task of the previous layer with probability `density`,
/// and on at least one of them (so layering is tight).
Instance generate_layered_dag(int layers, int width, double density, int m,
                              const DagWeightParams& w, Rng& rng);

/// Erdos-Renyi-style random DAG: edge (i, j), i < j, present with
/// probability `density` under a random topological permutation.
Instance generate_random_dag(std::size_t n, double density, int m,
                             const DagWeightParams& w, Rng& rng);

/// Fork-join: source -> `width` parallel branches of length `depth` -> sink.
Instance generate_fork_join(int width, int depth, int m,
                            const DagWeightParams& w, Rng& rng);

/// Complete out-tree (root spawns children) of the given arity and height.
Instance generate_out_tree(int arity, int height, int m,
                           const DagWeightParams& w, Rng& rng);

/// Complete in-tree (reduction) of the given arity and height.
Instance generate_in_tree(int arity, int height, int m,
                          const DagWeightParams& w, Rng& rng);

/// Task graph with the dependency shape of a tiled right-looking Cholesky
/// factorization on a `tiles x tiles` matrix: POTRF/TRSM/SYRK/GEMM-role
/// nodes with role-dependent weight multipliers.
Instance generate_cholesky_dag(int tiles, int m, const DagWeightParams& w,
                               Rng& rng);

/// Butterfly (FFT) task graph over 2^log2n points: log2n stages of
/// pairwise-exchange dependencies.
Instance generate_fft_dag(int log2n, int m, const DagWeightParams& w, Rng& rng);

/// Multi-SoC streaming pipeline (substitute for the paper's reference [5]):
/// `stages` sequential processing stages, each replicated `replication`
/// times for data parallelism; stage k+1 instances depend on a random subset
/// of stage k instances. Code size (s) is drawn per *stage* and shared by
/// its replicas -- replicated instruction code is exactly what the SoC
/// motivation stores per processor.
Instance generate_soc_pipeline(int stages, int replication, int m,
                               const DagWeightParams& w, Rng& rng);

/// Identifier -> generator dispatch used by benches; throws on unknown name.
/// Known names: "layered", "random", "forkjoin", "cholesky", "fft", "soc".
Instance generate_dag_by_name(const std::string& name, std::size_t size_hint,
                              int m, const DagWeightParams& w, Rng& rng);

}  // namespace storesched
