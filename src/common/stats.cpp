#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace storesched {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile q in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  double sum = 0.0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  double sq = 0.0;
  for (const double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(sq / static_cast<double>(sorted.size() - 1))
                 : 0.0;

  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed << "mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << p50 << " p95=" << p95 << " max=" << max << " (n=" << count
     << ")";
  return os.str();
}

void Accumulator::add(double v) { values_.push_back(v); }

Summary Accumulator::summary() const { return summarize(values_); }

}  // namespace storesched
