#include "common/instance.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace storesched {

Instance::Instance(std::vector<Task> tasks, int m)
    : tasks_(std::move(tasks)), m_(m) {
  if (m_ <= 0) throw std::invalid_argument("Instance: m must be positive");
  compute_aggregates();
}

Instance::Instance(std::vector<Task> tasks, int m, Dag dag)
    : tasks_(std::move(tasks)), m_(m), dag_(std::move(dag)) {
  if (m_ <= 0) throw std::invalid_argument("Instance: m must be positive");
  if (dag_->n() != tasks_.size()) {
    throw std::invalid_argument("Instance: DAG size != task count");
  }
  if (!dag_->is_acyclic()) {
    throw std::invalid_argument("Instance: precedence graph has a cycle");
  }
  compute_aggregates();
}

void Instance::compute_aggregates() {
  total_p_ = 0;
  total_s_ = 0;
  max_p_ = 0;
  max_s_ = 0;
  for (const Task& t : tasks_) {
    if (t.p < 0 || t.s < 0) {
      throw std::invalid_argument("Instance: negative task weight");
    }
    // The task weights arrive from the wire format, so the aggregate sums
    // must reject overflow instead of wrapping (signed overflow is UB and
    // every lower bound derives from these totals).
    if (__builtin_add_overflow(total_p_, t.p, &total_p_)) {
      throw std::invalid_argument(
          "Instance: sum of processing times overflows 64 bits");
    }
    if (__builtin_add_overflow(total_s_, t.s, &total_s_)) {
      throw std::invalid_argument(
          "Instance: sum of storage sizes overflows 64 bits");
    }
    max_p_ = std::max(max_p_, t.p);
    max_s_ = std::max(max_s_, t.s);
  }
}

Fraction Instance::time_lower_bound_fraction() const {
  return Fraction::max(Fraction(max_p_), Fraction(total_p_, m_));
}

Time Instance::time_lower_bound() const {
  const Time avg = Fraction(total_p_, m_).ceil();
  return std::max({max_p_, avg, critical_path()});
}

Fraction Instance::storage_lower_bound_fraction() const {
  return Fraction::max(Fraction(max_s_), Fraction(total_s_, m_));
}

Mem Instance::storage_lower_bound() const {
  return std::max(max_s_, Fraction(total_s_, m_).ceil());
}

Time Instance::critical_path() const {
  if (!dag_) return max_p_;
  return dag_->critical_path_length(tasks_);
}

Instance Instance::swapped() const {
  if (dag_) {
    throw std::logic_error("Instance::swapped: undefined with precedences");
  }
  std::vector<Task> sw;
  sw.reserve(tasks_.size());
  for (const Task& t : tasks_) sw.push_back({/*p=*/t.s, /*s=*/t.p});
  return Instance(std::move(sw), m_);
}

std::string Instance::summary() const {
  std::ostringstream os;
  os << "Instance{n=" << n() << ", m=" << m_
     << (dag_ ? ", prec(" + std::to_string(dag_->edge_count()) + " edges)"
              : ", independent")
     << ", sum_p=" << total_p_ << ", sum_s=" << total_s_
     << ", max_p=" << max_p_ << ", max_s=" << max_s_ << "}";
  return os.str();
}

}  // namespace storesched
