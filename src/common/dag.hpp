// Directed-acyclic-graph precedence structure for P | prec | * problems.
//
// Stores forward (successor) and backward (predecessor) adjacency, provides
// topological ordering, reachability, level and critical-path computations.
// The critical path is one of the two Graham lower bounds used in the
// analysis of RLS (paper Lemma 5: |CP| <= C*_max).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace storesched {

/// Precedence DAG over tasks 0..n-1. Edge (u, v) means u must complete
/// before v starts.
class Dag {
 public:
  Dag() = default;

  /// A DAG over n tasks with no edges (yet).
  explicit Dag(std::size_t n) : preds_(n), succs_(n) {}

  std::size_t n() const { return preds_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds the precedence edge u -> v. Duplicate edges are ignored.
  /// Throws std::invalid_argument on out-of-range or self-loop edges.
  void add_edge(TaskId u, TaskId v);

  bool has_edge(TaskId u, TaskId v) const;

  std::span<const TaskId> preds(TaskId v) const { return preds_[check(v)]; }
  std::span<const TaskId> succs(TaskId u) const { return succs_[check(u)]; }

  std::size_t in_degree(TaskId v) const { return preds_[check(v)].size(); }
  std::size_t out_degree(TaskId u) const { return succs_[check(u)].size(); }

  /// Kahn topological order, or nullopt if the graph contains a cycle.
  /// Ties are broken by ascending task id, so the order is deterministic.
  std::optional<std::vector<TaskId>> topological_order() const;

  bool is_acyclic() const { return topological_order().has_value(); }

  /// Length of the longest weighted path (sum of p over a chain), i.e. the
  /// critical-path lower bound on the makespan. Requires an acyclic graph.
  Time critical_path_length(std::span<const Task> tasks) const;

  /// top_level[i]: longest weighted path ending at i, *excluding* p_i
  /// (earliest possible start of i on infinitely many processors).
  std::vector<Time> top_levels(std::span<const Task> tasks) const;

  /// bottom_level[i]: longest weighted path starting at i, *including* p_i.
  /// Commonly used as a list-scheduling priority.
  std::vector<Time> bottom_levels(std::span<const Task> tasks) const;

  /// True iff v is reachable from u through one or more edges.
  bool reachable(TaskId u, TaskId v) const;

  /// Number of tasks with no predecessor.
  std::size_t source_count() const;
  /// Number of tasks with no successor.
  std::size_t sink_count() const;

  /// The reverse DAG (every edge flipped).
  Dag reversed() const;

  friend bool operator==(const Dag&, const Dag&) = default;

 private:
  /// Bounds-checks v and returns it as a vector index.
  std::size_t check(TaskId v) const;

  std::vector<std::vector<TaskId>> preds_;
  std::vector<std::vector<TaskId>> succs_;
  std::size_t edge_count_ = 0;
};

/// Flat CSR snapshot of a Dag, shaped for incremental ready-frontier
/// updates: successor lists concatenated into one contiguous array plus an
/// in-degree vector, so the per-placement work of a list scheduler
/// (decrement successor in-degrees, enqueue the ones that hit zero) walks
/// linear memory instead of chasing one heap vector per node. Built once
/// per solve in O(n + e); the Dag itself stays the mutable builder type.
class DagFrontierView {
 public:
  explicit DagFrontierView(const Dag& dag);

  std::size_t n() const { return offset_.size() - 1; }

  std::span<const TaskId> succs(TaskId u) const {
    const auto ui = static_cast<std::size_t>(u);
    return {succ_.data() + offset_[ui], offset_[ui + 1] - offset_[ui]};
  }

  std::uint32_t in_degree(TaskId v) const {
    return indeg_[static_cast<std::size_t>(v)];
  }

  /// A mutable copy of the in-degrees (the usual "missing predecessors"
  /// working array of a frontier walk).
  std::vector<std::uint32_t> in_degrees() const { return indeg_; }

 private:
  std::vector<TaskId> succ_;          ///< concatenated successor lists
  std::vector<std::size_t> offset_;   ///< n + 1 offsets into succ_
  std::vector<std::uint32_t> indeg_;  ///< predecessor counts
};

}  // namespace storesched
