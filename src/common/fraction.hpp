// Exact rational arithmetic for algorithmic decisions.
//
// Two places in the paper require comparing rational quantities:
//   * the SBO threshold test  p_i / C  <  Delta * s_i / M      (Algorithm 1)
//   * the RLS memory cap      memsize[j] + s_i  <=  Delta * LB (Algorithm 2)
// where Delta is a rational parameter and LB = max(max_i s_i, sum_i s_i / m)
// has denominator m. Both are evaluated here by 128-bit cross multiplication
// so no decision ever suffers floating-point rounding.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <limits>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

namespace storesched {

/// 128-bit signed intermediate for overflow-free cross multiplication.
/// __extension__ keeps -Wpedantic quiet about the GCC/Clang builtin type.
__extension__ typedef __int128 Int128;

/// An exact rational number num/den with den > 0, always stored reduced.
///
/// Arithmetic uses Int128 intermediates; inputs in the library stay within
/// ~2^40, far below the range where the reduced representation could
/// overflow int64.
class Fraction {
 public:
  constexpr Fraction() = default;

  /// Construct num/den. Throws std::invalid_argument on zero denominator.
  constexpr Fraction(std::int64_t num, std::int64_t den = 1) : num_(num), den_(den) {
    if (den_ == 0) throw std::invalid_argument("Fraction: zero denominator");
    normalize();
  }

  constexpr std::int64_t num() const { return num_; }
  constexpr std::int64_t den() const { return den_; }

  constexpr double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Exact three-way comparison via 128-bit cross multiplication.
  friend constexpr std::strong_ordering operator<=>(const Fraction& a,
                                                    const Fraction& b) {
    const Int128 lhs = static_cast<Int128>(a.num_) * b.den_;
    const Int128 rhs = static_cast<Int128>(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  friend constexpr bool operator==(const Fraction& a, const Fraction& b) {
    return (a <=> b) == std::strong_ordering::equal;
  }

  friend constexpr Fraction operator+(const Fraction& a, const Fraction& b) {
    return from128(static_cast<Int128>(a.num_) * b.den_ +
                       static_cast<Int128>(b.num_) * a.den_,
                   static_cast<Int128>(a.den_) * b.den_);
  }
  friend constexpr Fraction operator-(const Fraction& a, const Fraction& b) {
    return from128(static_cast<Int128>(a.num_) * b.den_ -
                       static_cast<Int128>(b.num_) * a.den_,
                   static_cast<Int128>(a.den_) * b.den_);
  }
  friend constexpr Fraction operator*(const Fraction& a, const Fraction& b) {
    return from128(static_cast<Int128>(a.num_) * b.num_,
                   static_cast<Int128>(a.den_) * b.den_);
  }
  friend constexpr Fraction operator/(const Fraction& a, const Fraction& b) {
    if (b.num_ == 0) throw std::domain_error("Fraction: division by zero");
    return from128(static_cast<Int128>(a.num_) * b.den_,
                   static_cast<Int128>(a.den_) * b.num_);
  }
  constexpr Fraction operator-() const {
    Fraction r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }

  /// max(a, b) by exact comparison.
  static constexpr Fraction max(const Fraction& a, const Fraction& b) {
    return a < b ? b : a;
  }
  static constexpr Fraction min(const Fraction& a, const Fraction& b) {
    return b < a ? b : a;
  }

  /// Smallest integer >= this fraction.
  constexpr std::int64_t ceil() const {
    const std::int64_t q = num_ / den_;
    return (num_ % den_ != 0 && num_ > 0) ? q + 1 : q;
  }
  /// Largest integer <= this fraction.
  constexpr std::int64_t floor() const {
    const std::int64_t q = num_ / den_;
    return (num_ % den_ != 0 && num_ < 0) ? q - 1 : q;
  }

  std::string to_string() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

  friend std::ostream& operator<<(std::ostream& os, const Fraction& f) {
    return os << f.to_string();
  }

  /// Narrow an Int128 to int64, throwing std::overflow_error instead of
  /// truncating. INT64_MIN itself is rejected too: every stored component
  /// must be negatable (operator-, normalize) without signed overflow, so
  /// the representable range is [INT64_MIN + 1, INT64_MAX]. `context` names
  /// the value in the error message.
  static constexpr std::int64_t checked_int64(Int128 value,
                                              const char* context) {
    if (value > static_cast<Int128>(
                    std::numeric_limits<std::int64_t>::max()) ||
        value <= static_cast<Int128>(
                     std::numeric_limits<std::int64_t>::min())) {
      throw std::overflow_error(std::string("Fraction: ") + context +
                                " exceeds 64 bits");
    }
    return static_cast<std::int64_t>(value);
  }

 private:
  static constexpr Fraction from128(Int128 num, Int128 den) {
    if (den < 0) {
      num = -num;
      den = -den;
    }
    const Int128 g = gcd128(num < 0 ? -num : num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
    Fraction r;
    r.num_ = checked_int64(num, "reduced numerator");
    r.den_ = checked_int64(den, "reduced denominator");
    return r;
  }

  static constexpr Int128 gcd128(Int128 a, Int128 b) {
    while (b != 0) {
      const Int128 t = a % b;
      a = b;
      b = t;
    }
    return a == 0 ? 1 : a;
  }

  constexpr void normalize() {
    // INT64_MIN has no int64 negation, so neither component may hold it:
    // sign normalization here and operator-() would both be UB.
    if (num_ == std::numeric_limits<std::int64_t>::min() ||
        den_ == std::numeric_limits<std::int64_t>::min()) {
      throw std::overflow_error(
          "Fraction: INT64_MIN operand is not representable");
    }
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// True iff a/b < c/d exactly, for non-negative 64-bit operands with b,d > 0.
/// Convenience used on hot paths to avoid constructing Fractions.
constexpr bool ratio_less(std::int64_t a, std::int64_t b, std::int64_t c,
                          std::int64_t d) {
  assert(b > 0 && d > 0);
  return static_cast<Int128>(a) * d < static_cast<Int128>(c) * b;
}

/// True iff a/b <= c/d exactly.
constexpr bool ratio_less_equal(std::int64_t a, std::int64_t b, std::int64_t c,
                                std::int64_t d) {
  assert(b > 0 && d > 0);
  return static_cast<Int128>(a) * d <= static_cast<Int128>(c) * b;
}

}  // namespace storesched
