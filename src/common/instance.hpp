// Problem instance: a task set, a processor count, and optional precedences.
//
// Exposes the standard lower bounds used throughout the paper:
//   time:    max(max_i p_i, sum_i p_i / m)           (Graham)
//   storage: max(max_i s_i, sum_i s_i / m)           (Algorithm 2's LB)
//   DAG:     critical path length                    (Lemma 5's |CP|)
// The /m bounds are exposed both as exact Fractions (as the paper uses them
// inside RLS) and as integer ceilings (valid bounds for integral schedules).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/dag.hpp"
#include "common/fraction.hpp"
#include "common/types.hpp"

namespace storesched {

class Instance {
 public:
  Instance() = default;

  /// Independent-task instance (P | p_j, s_j | Cmax, Mmax).
  /// Throws std::invalid_argument for m <= 0 or negative task weights.
  Instance(std::vector<Task> tasks, int m);

  /// Precedence-constrained instance (P | p_j, s_j, prec | Cmax, Mmax).
  /// The DAG must be over exactly tasks.size() nodes and acyclic.
  Instance(std::vector<Task> tasks, int m, Dag dag);

  std::size_t n() const { return tasks_.size(); }
  int m() const { return m_; }

  const Task& task(TaskId i) const { return tasks_[static_cast<std::size_t>(i)]; }
  std::span<const Task> tasks() const { return tasks_; }

  bool has_precedence() const { return dag_.has_value(); }
  /// Precondition: has_precedence().
  const Dag& dag() const { return *dag_; }

  Time total_work() const { return total_p_; }
  Mem total_storage() const { return total_s_; }
  Time max_p() const { return max_p_; }
  Mem max_s() const { return max_s_; }

  /// Exact Graham bound on the makespan: max(max p_i, sum p_i / m).
  Fraction time_lower_bound_fraction() const;
  /// Integer-valued makespan lower bound: max(max p_i, ceil(sum p_i / m),
  /// critical path if precedences are present).
  Time time_lower_bound() const;

  /// Exact Graham bound on memory: max(max s_i, sum s_i / m).
  /// This is the LB computed at the top of Algorithm 2 (RLS).
  Fraction storage_lower_bound_fraction() const;
  /// Integer-valued memory lower bound: max(max s_i, ceil(sum s_i / m)).
  Mem storage_lower_bound() const;

  /// Critical-path lower bound; equals 0-work path max for independent
  /// instances (i.e. max p_i).
  Time critical_path() const;

  /// The symmetric instance with p and s exchanged. Only meaningful for
  /// independent tasks, where the paper notes Cmax and Mmax are
  /// interchangeable; throws if precedences are present.
  Instance swapped() const;

  /// Human-readable one-line summary for logs.
  std::string summary() const;

 private:
  void compute_aggregates();

  std::vector<Task> tasks_;
  int m_ = 1;
  std::optional<Dag> dag_;

  Time total_p_ = 0;
  Mem total_s_ = 0;
  Time max_p_ = 0;
  Mem max_s_ = 0;
};

}  // namespace storesched
