// The exact gadget instances from the paper, in scaled-integer form.
//
// The paper uses fractional weights (1/2, epsilon, 1 - epsilon, 1/(km)).
// Our model keeps integer weights, so each gadget is scaled by an explicit
// factor; every objective value scales with it and all Pareto/dominance
// structure is preserved (both objectives are homogeneous of degree 1 in
// the weights). Each builder documents its scaling so tests and benches can
// translate measured integer points back to the paper's fractional ones.
#pragma once

#include "common/instance.hpp"

namespace storesched {

/// Section 4.1 instance (Figure 1): m = 2 and
///   p = {1, 1/2, 1/2},  s = {eps, 1, 1}  with eps = 1/eps_inv.
/// Scaling: times x 2*eps_inv, storage x eps_inv. In scaled units:
///   p = {2*eps_inv, eps_inv, eps_inv},  s = {1, eps_inv, eps_inv},
/// so the paper's Pareto points (1, 2) and (3/2, 1+eps) become
/// (2*eps_inv, 2*eps_inv) and (3*eps_inv, eps_inv + 1).
/// Requires eps_inv >= 2.
Instance fig1_instance(Time eps_inv);

/// Scale factors of fig1_instance: {time_scale, storage_scale}.
struct GadgetScale {
  Time time_scale = 1;
  Mem storage_scale = 1;
};
GadgetScale fig1_scale(Time eps_inv);

/// Section 4.3 instance (Figure 2): m = 2 and
///   p = {1, eps, 1-eps},  s = {eps, 1, 1-eps}  with eps = 1/eps_inv.
/// Scaling: both axes x eps_inv:
///   p = {eps_inv, 1, eps_inv-1},  s = {1, eps_inv, eps_inv-1}.
/// The paper's Pareto points (1, 2-eps), (1+eps, 1+eps), (2-eps, 1) become
/// (eps_inv, 2*eps_inv-1), (eps_inv+1, eps_inv+1), (2*eps_inv-1, eps_inv).
/// Requires eps_inv >= 2.
Instance fig2_instance(Time eps_inv);
GadgetScale fig2_scale(Time eps_inv);

/// Section 4.2 family (Lemma 2): m processors, k*m + m - 1 tasks,
///   m-1 tasks with p = 1, s = eps;  k*m tasks with p = 1/(km), s = 1,
/// eps = 1/eps_inv. Scaling: times x km, storage x eps_inv:
///   first m-1 tasks: p = k*m, s = 1;  k*m tasks: p = 1, s = eps_inv.
/// Optimal scaled values: C* = km, M* = k*eps_inv + 1.
/// Requires m >= 2, k >= 2, eps_inv >= 2.
Instance lemma2_instance(int m, int k, Time eps_inv);
GadgetScale lemma2_scale(int m, int k, Time eps_inv);

/// Pareto point i of the Lemma 2 family, in *paper* (unscaled) coordinates:
/// makespan 1 + i/(km) and memory k + (k-i)(m-1) for i < k, memory k + eps
/// for i = k. Returned as exact fractions of the scaled-integer values.
struct Lemma2Point {
  Fraction cmax_ratio;  ///< Cmax / C*  = 1 + i/(km)
  Fraction mmax_ratio;  ///< Mmax / M*  (with M* = k + eps)
};
Lemma2Point lemma2_point(int m, int k, int i, Time eps_inv);

}  // namespace storesched
