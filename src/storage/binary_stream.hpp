// Binary-container adapters for the streaming pipeline (core/stream.hpp):
// an InstanceSource over a binary instance container (mmap'd file, slurped
// stream, or shared-memory region) and a ResultSink that collects results
// into a binary result container. Plus the --format plumbing: parsing the
// CLI token and sniffing which wire a stream actually carries, so
// `storesched_cli --format auto` (the default) accepts either and a
// mismatch dies with an error naming the detected format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/stream.hpp"
#include "storage/wire_format.hpp"

namespace storesched::storage {

/// The instance wires storesched_cli speaks. kAuto sniffs the first byte:
/// the binary container always leads with "STSCHDB1", JSONL with '{' (or
/// whitespace).
enum class WireFormatKind { kAuto, kJsonl, kBinary };

/// Parses a --format token ("auto" | "jsonl" | "binary"); throws
/// std::runtime_error naming the token otherwise.
WireFormatKind wire_format_from_string(const std::string& token);

/// Source over a binary instance container. The whole container is
/// validated up front (wire::InstanceView's contract), then next()
/// materializes records in file order. position() counts records consumed
/// -- the binary wire has no lines.
class BinaryInstanceSource final : public InstanceSource {
 public:
  /// Maps `path` read-only (falling back to a plain read if mmap is
  /// unavailable) and validates it. Throws std::runtime_error on open,
  /// map, or format errors.
  explicit BinaryInstanceSource(const std::string& path);

  /// Slurps the remainder of `in` into an aligned buffer and validates it.
  explicit BinaryInstanceSource(std::istream& in);

  /// Views caller-owned bytes (a shared-memory region). The bytes must be
  /// 8-aligned, immutable, and outlive the source.
  explicit BinaryInstanceSource(std::string_view bytes);

  ~BinaryInstanceSource() override;
  BinaryInstanceSource(const BinaryInstanceSource&) = delete;
  BinaryInstanceSource& operator=(const BinaryInstanceSource&) = delete;

  std::shared_ptr<const Instance> next() override;
  std::optional<std::size_t> size_hint() const override;
  std::optional<std::size_t> position() const override { return cursor_; }

  /// The validated view, for callers that want columns instead of a
  /// pipeline (bench ingest cells).
  const wire::InstanceView& view() const { return *view_; }

 private:
  struct Buffer;  ///< owns the mapped or slurped bytes (nothing for views)
  std::unique_ptr<Buffer> buffer_;
  std::unique_ptr<wire::InstanceView> view_;
  std::size_t cursor_ = 0;
};

/// Sink that collects every result and, on finish(), writes one canonical
/// binary result container to the stream. The container's section layout
/// needs the full result set, so nothing is written until finish() --
/// callers must call it exactly once after the pipeline run (the
/// destructor deliberately does not write: a half-failed run must not
/// leave a plausible-looking container behind).
class BinaryResultSink final : public ResultSink {
 public:
  explicit BinaryResultSink(std::ostream& out) : out_(out) {}

  void consume(std::size_t index, SolveResult result) override;

  /// Encodes and writes the container. Throws StreamWriteError if the
  /// stream reports failure.
  void finish();

 private:
  std::ostream& out_;
  std::vector<wire::IndexedResult> rows_;
  bool finished_ = false;
};

/// Opens an instance source over `in` for the requested format. kAuto
/// peeks one byte ('S' = binary, anything else = JSONL); an explicit
/// format mismatch surfaces as a clear error from the chosen parser
/// (each wire's reader names the other format when it recognizes its
/// leading bytes). `first_line` seeds JSONL line numbering for resumed
/// runs; the binary wire ignores it.
std::unique_ptr<InstanceSource> open_instance_source(
    std::istream& in, WireFormatKind format, std::size_t first_line = 0);

}  // namespace storesched::storage
