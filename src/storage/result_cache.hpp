// Canonicalization-keyed result cache over a flat memory region.
//
// The table is built to live inside a shared-memory segment (the shm
// store's cache region, storage/shm_store.hpp) and be used concurrently by
// unrelated processes without any lock: fixed-size slots, each guarded by
// its own seqlock, every shared word a lock-free std::atomic<uint64_t>.
//
//   slot := [seq][key_hi][key_lo][payload_size][payload words ...]
//
// Writers claim a slot by CAS-ing its (even) sequence to odd, write key
// and payload with relaxed stores, then release-store seq back to even+2.
// Readers acquire-load seq (odd = under construction, probe on), copy key
// and payload words relaxed, fence, and re-check seq -- a torn read is
// detected and retried, never returned. Payloads are the self-contained
// result blobs of wire::encode_result_payload(), so a hit reproduces the
// original result byte-for-byte through every serializer.
//
// Collision/eviction policy: open addressing over a small probe window; a
// full window overwrites its first slot (it is a cache -- losing an entry
// costs one re-solve). Oversized payloads are skipped, counted, and never
// split across slots.
//
// SolveCache is the solver-facing facade: it canonicalizes the instance
// (storage/canonical.hpp), keys it, stores canonical-order schedules, and
// remaps them back on hit. Results computed under a deadline or a fired
// cancel token are never inserted -- both can truncate a solve, and a
// cache must only serve results any cold solve would reproduce. Under
// STORESCHED_AUDIT=1 every hit's schedule is re-audited before it is
// returned; a violation throws (a poisoned cache must stop the run, not
// leak wrong answers).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/canonical.hpp"

namespace storesched::storage {

/// Monotonic counters. Table-wide counters live in the region itself, so
/// every attached process sees one shared truth.
struct CacheTableStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t skipped = 0;  ///< payload too large for a slot
  std::uint64_t bytes = 0;    ///< payload bytes currently stored
};

/// The raw keyed byte-blob table over a caller-provided region (or, for
/// single-process use, a private heap region it allocates itself).
class CacheTable {
 public:
  /// Bytes a region needs for `slot_count` slots of `payload_bytes` each
  /// (both rounded up internally; slot_count to a power of two).
  static std::size_t required_bytes(std::size_t slot_count,
                                    std::size_t payload_bytes);

  /// Private in-memory table (solve_stream's default when no shm store is
  /// attached).
  CacheTable(std::size_t slot_count, std::size_t payload_bytes);

  /// Table over caller-owned memory: `initialize` stamps a fresh header
  /// (the publisher's job); attaching readers pass false and the header
  /// is validated instead. `base` must be 8-aligned and `size` at least
  /// required_bytes of the header's geometry. Throws std::runtime_error
  /// on any mismatch.
  CacheTable(void* base, std::size_t size, std::size_t slot_count,
             std::size_t payload_bytes, bool initialize);

  CacheTable(const CacheTable&) = delete;
  CacheTable& operator=(const CacheTable&) = delete;

  /// Copies the payload stored under `key` out, or nullopt. Lock-free;
  /// safe against concurrent writers in other processes.
  std::optional<std::string> lookup(const CacheKey& key) const;

  /// Stores `payload` under `key` (overwriting any colliding entry).
  /// Returns false -- counted in stats().skipped -- when the payload does
  /// not fit a slot.
  bool insert(const CacheKey& key, std::string_view payload);

  CacheTableStats stats() const;

  std::size_t payload_capacity() const { return payload_words_ * 8; }

 private:
  using Word = std::atomic<std::uint64_t>;

  Word* slot(std::size_t index) const;

  std::vector<std::uint64_t> owned_;  ///< backing for the private mode
  Word* header_ = nullptr;
  Word* slots_ = nullptr;
  std::size_t slot_count_ = 0;     ///< power of two
  std::size_t payload_words_ = 0;  ///< payload capacity per slot, in words
};

/// Per-facade counters (one process's view; serve statsz reports these).
struct SolveCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t bytes = 0;  ///< shared table payload bytes (region-wide)
};

/// Solver-facing cache facade. Thread-safe: lookup/insert may be called
/// from any number of pipeline workers concurrently.
class SolveCache {
 public:
  /// Cache geometry defaults: 4096 slots x 1 KiB payload = ~4.2 MiB.
  static constexpr std::size_t kDefaultSlots = 4096;
  static constexpr std::size_t kDefaultPayloadBytes = 1024;

  /// Private in-process cache.
  explicit SolveCache(std::size_t slot_count = kDefaultSlots,
                      std::size_t payload_bytes = kDefaultPayloadBytes);

  /// Cache over an externally managed region (see CacheTable).
  SolveCache(void* base, std::size_t size, std::size_t slot_count,
             std::size_t payload_bytes, bool initialize);

  /// Returns the cached result for (inst, spec, options), remapped into
  /// this instance's task ids, or nullopt. Under STORESCHED_AUDIT=1 the
  /// hit is audited against `inst` first; a violation throws
  /// std::logic_error.
  std::optional<SolveResult> lookup(const Instance& inst,
                                    std::string_view spec,
                                    const SolveOptions& options);

  /// Inserts a cold solve's result. No-op (and not an error) when the
  /// result is not cacheable: solved under a deadline, or with a cancel
  /// token attached, or with a payload too large for a slot.
  void insert(const Instance& inst, std::string_view spec,
              const SolveOptions& options, const SolveResult& result);

  /// This process's hit/miss/insert counts plus the shared table's
  /// current payload byte total.
  SolveCacheStats stats() const;

  /// The shared table's own (region-wide) counters.
  CacheTableStats table_stats() const { return table_.stats(); }

 private:
  CacheTable table_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
};

/// True when `options` disqualify a solve from cache insertion.
bool cache_exempt(const SolveOptions& options);

}  // namespace storesched::storage
