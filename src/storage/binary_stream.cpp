#include "storage/binary_stream.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace storesched::storage {

WireFormatKind wire_format_from_string(const std::string& token) {
  if (token == "auto") return WireFormatKind::kAuto;
  if (token == "jsonl") return WireFormatKind::kJsonl;
  if (token == "binary") return WireFormatKind::kBinary;
  throw std::runtime_error("unknown format \"" + token +
                           "\" (expected auto, jsonl, or binary)");
}

/// Owns the container bytes: either an mmap'd file or an aligned heap
/// slurp. A default-constructed Buffer owns nothing (external view).
struct BinaryInstanceSource::Buffer {
  std::string_view bytes;
  std::vector<std::uint64_t> heap;  ///< aligned backing for slurped input
  void* map = nullptr;
  std::size_t map_size = 0;

  ~Buffer() {
    if (map != nullptr) ::munmap(map, map_size);
  }

  void slurp(std::istream& in) {
    std::string raw(std::istreambuf_iterator<char>(in), {});
    if (in.bad()) {
      throw std::runtime_error("binary wire: read failure while slurping");
    }
    heap.resize((raw.size() + 7) / 8);
    std::memcpy(heap.data(), raw.data(), raw.size());
    bytes = {reinterpret_cast<const char*>(heap.data()), raw.size()};
  }

  void map_file(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      throw std::runtime_error("cannot open " + path + ": " +
                               std::strerror(errno));
    }
    struct ::stat st{};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("cannot stat " + path + ": " +
                               std::strerror(err));
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      // mmap rejects zero-length maps; an empty file is simply an empty
      // (and invalid) container -- let the validator name it.
      ::close(fd);
      bytes = {};
      return;
    }
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    const int err = errno;
    ::close(fd);
    if (p == MAP_FAILED) {
      throw std::runtime_error("cannot mmap " + path + ": " +
                               std::strerror(err));
    }
    map = p;
    map_size = size;
    bytes = {static_cast<const char*>(p), size};
  }
};

BinaryInstanceSource::BinaryInstanceSource(const std::string& path)
    : buffer_(std::make_unique<Buffer>()) {
  buffer_->map_file(path);
  view_ = std::make_unique<wire::InstanceView>(buffer_->bytes);
}

BinaryInstanceSource::BinaryInstanceSource(std::istream& in)
    : buffer_(std::make_unique<Buffer>()) {
  buffer_->slurp(in);
  view_ = std::make_unique<wire::InstanceView>(buffer_->bytes);
}

BinaryInstanceSource::BinaryInstanceSource(std::string_view bytes)
    : view_(std::make_unique<wire::InstanceView>(bytes)) {}

BinaryInstanceSource::~BinaryInstanceSource() = default;

std::shared_ptr<const Instance> BinaryInstanceSource::next() {
  if (cursor_ >= view_->count()) return nullptr;
  return std::make_shared<const Instance>(view_->materialize(cursor_++));
}

std::optional<std::size_t> BinaryInstanceSource::size_hint() const {
  return view_->count();
}

void BinaryResultSink::consume(std::size_t index, SolveResult result) {
  rows_.push_back({index, std::move(result)});
}

void BinaryResultSink::finish() {
  if (finished_) throw std::logic_error("BinaryResultSink: double finish()");
  finished_ = true;
  const std::string blob = wire::encode_results(rows_);
  out_.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out_.flush();
  if (!out_) {
    throw StreamWriteError("BinaryResultSink: write failure (" +
                           std::to_string(blob.size()) + " bytes)");
  }
}

std::unique_ptr<InstanceSource> open_instance_source(std::istream& in,
                                                     WireFormatKind format,
                                                     std::size_t first_line) {
  if (format == WireFormatKind::kAuto) {
    // One-byte sniff: the binary magic leads with 'S', a JSONL object with
    // '{' (possibly after whitespace, which the JSONL parser tolerates).
    // peek() keeps the byte in the stream, so either branch reads it all.
    const int first = in.peek();
    format = (first == 'S') ? WireFormatKind::kBinary : WireFormatKind::kJsonl;
  }
  if (format == WireFormatKind::kBinary) {
    return std::make_unique<BinaryInstanceSource>(in);
  }
  return std::make_unique<JsonlInstanceSource>(in, first_line);
}

}  // namespace storesched::storage
