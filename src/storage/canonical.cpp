#include "storage/canonical.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "storage/wire_format.hpp"

namespace storesched::storage {

namespace {

/// splitmix64 finalizer -- the second lane's word mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Two-lane streaming hasher: lane A is FNV-1a over bytes, lane B chains
/// splitmix64 over 64-bit words. The lanes share no structure, so a
/// collision requires beating both independently.
struct KeyHasher {
  std::uint64_t a = 0xCBF29CE484222325ull;
  std::uint64_t b = 0x53544F5245534348ull;  // "STORESCH"

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      a = (a ^ p[i]) * 0x100000001B3ull;
    }
    std::size_t i = 0;
    for (; i + 8 <= size; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, p + i, 8);
      b = mix64(b ^ w);
    }
    std::uint64_t tail = size;  // fold the length into the ragged word
    for (; i < size; ++i) tail = (tail << 8) | p[i];
    b = mix64(b ^ tail);
  }

  void word(std::uint64_t w) { bytes(&w, 8); }

  CacheKey key() const { return {mix64(a), mix64(b ^ a)}; }
};

}  // namespace

std::vector<TaskId> canonical_order(const Instance& inst) {
  std::vector<TaskId> order(inst.n());
  std::iota(order.begin(), order.end(), TaskId{0});
  if (inst.has_precedence()) return order;
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const Task& ta = inst.task(a);
    const Task& tb = inst.task(b);
    if (ta.p != tb.p) return ta.p < tb.p;
    return ta.s < tb.s;
  });
  return order;
}

CacheKey cache_key(const Instance& inst, std::span<const TaskId> order,
                   std::string_view spec, const SolveOptions& options) {
  KeyHasher h;
  h.word(wire::kWireVersion);
  h.word(spec.size());
  h.bytes(spec.data(), spec.size());
  h.word(static_cast<std::uint64_t>(inst.m()));
  h.word(options.memory_capacity.has_value() ? 1 : 0);
  h.word(static_cast<std::uint64_t>(options.memory_capacity.value_or(0)));
  h.word(options.validate ? 1 : 0);
  h.word(inst.n());
  for (const TaskId id : order) {
    const Task& t = inst.task(id);
    h.word(static_cast<std::uint64_t>(t.p));
    h.word(static_cast<std::uint64_t>(t.s));
  }
  if (inst.has_precedence()) {
    const Dag& dag = inst.dag();
    h.word(dag.edge_count());
    for (TaskId u = 0; u < static_cast<TaskId>(inst.n()); ++u) {
      for (const TaskId v : dag.succs(u)) {
        h.word((static_cast<std::uint64_t>(u) << 32) |
               static_cast<std::uint32_t>(v));
      }
    }
  } else {
    h.word(0);
  }
  return h.key();
}

namespace {

/// Applies `result.schedule[from[k]] -> out[to[k]]` style reindexing with
/// perm mapping canonical position k to original id order[k].
void permute_schedule(SolveResult& result, std::span<const TaskId> order,
                      bool to_canonical) {
  if (result.schedule.n() == 0 || !result.schedule.fully_assigned()) return;
  const Schedule& src = result.schedule;
  const bool timed = src.timed();
  Schedule dst(src.n(), src.m());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const TaskId canonical = static_cast<TaskId>(k);
    const TaskId original = order[k];
    const TaskId from = to_canonical ? original : canonical;
    const TaskId to = to_canonical ? canonical : original;
    if (timed) {
      dst.assign(to, src.proc(from), src.start(from));
    } else {
      dst.assign(to, src.proc(from));
    }
  }
  result.schedule = std::move(dst);
}

}  // namespace

void schedule_to_canonical(SolveResult& result,
                           std::span<const TaskId> order) {
  permute_schedule(result, order, /*to_canonical=*/true);
}

void schedule_from_canonical(SolveResult& result,
                             std::span<const TaskId> order) {
  permute_schedule(result, order, /*to_canonical=*/false);
}

}  // namespace storesched::storage
