// The binary columnar wire format: versioned, checksummed, mmap-able.
//
// JSONL is the interchange wire -- self-describing, greppable, sharded with
// coreutils -- but at millions of tiny instances its parse cost dominates
// the pipeline (bench_scaling's ingest cell). This module is the companion
// wire for bulk and shared-memory paths: a sectioned little-endian container
// that decodes by pointer arithmetic instead of byte-at-a-time parsing, and
// that a reader can consume straight out of an mmap'd file or a shared
// memory region (storage/shm_store.hpp) without copying the columns.
//
// Layout (full diagram and compat rules: docs/WIRE_FORMAT.md):
//
//   [WireHeader]  magic "STSCHDB1", version, payload kind + count, file
//                 size, CRC32 over the header itself
//   [SectionEntry x N]  per section: kind, element count, byte offset
//                 (8-aligned), byte size, CRC32 over the section bytes
//   [section bytes ...]
//
// Instance files are columnar: one InstanceRecord per instance (m, flags,
// [task_offset, task_count) into the p/s columns, [edge_offset, edge_count)
// into the edge columns) over shared i64 p / i64 s / i32 edge-endpoint
// arrays. DAG edges are stored source-sorted per instance -- the CSR order
// DagFrontierView uses -- so rebuilding adjacency is a linear append.
// Result files are the same container with kind=results: fixed-width
// ResultRecords over diagnostics-char / proc / start columns, carrying every
// field a JSONL result line can (encode_result/decode_result round-trip
// through result_to_jsonl() byte-identically). The result cache
// (storage/result_cache.hpp) stores exactly these record payloads.
//
// Reader contract (the fuzz oracle's): decode_instances()/decode_results()
// either return the parsed payload or throw std::runtime_error naming the
// offense -- bad magic, version skew, truncation, misaligned or overlapping
// sections, checksum mismatch, counts that do not add up, weights or edges
// the Instance/Dag constructors reject. A hostile file is an error, never
// UB: every offset and count is bounds-checked against the buffer before it
// is dereferenced, and all arithmetic is overflow-checked. Writers always
// produce canonical bytes: encode(decode(encode(x))) == encode(x).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/instance.hpp"
#include "core/solver.hpp"

namespace storesched::wire {

/// Format version this build writes; readers accept exactly this version
/// (the format carries no compat shims yet -- see docs/WIRE_FORMAT.md for
/// the evolution rules a version bump must follow).
inline constexpr std::uint32_t kWireVersion = 1;

/// What a container's payload is.
enum class PayloadKind : std::uint32_t { kInstances = 1, kResults = 2 };

/// CRC-32 (IEEE 802.3, reflected) over a byte range. Exposed for tests and
/// the shm store's publish-time integrity stamp.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

/// Serializes instances into one canonical binary container.
std::string encode_instances(std::span<const Instance> instances);

/// One decoded result row: the record index solve_stream assigned plus the
/// reconstructed result (extras channels excluded -- the binary wire, like
/// the JSONL wire, carries the common fields and the schedule only).
struct IndexedResult {
  std::uint64_t index = 0;
  SolveResult result;
};

/// Serializes result rows into one canonical binary container. Schedules
/// ride along whenever present (include_schedule shaping is a JSONL
/// rendering decision, not a storage one).
std::string encode_results(std::span<const IndexedResult> results);

// ---------------------------------------------------------------------------
// Decoding (strict: std::runtime_error on any malformed byte).
// ---------------------------------------------------------------------------

/// Payload kind of a well-formed header, or nullopt when `bytes` does not
/// even start with the magic (format sniffing; never throws).
std::optional<PayloadKind> sniff_kind(std::string_view bytes);

/// Parses a whole instance container into owned Instances.
std::vector<Instance> decode_instances(std::string_view bytes);

/// Parses a whole result container.
std::vector<IndexedResult> decode_results(std::string_view bytes);

/// Zero-copy random-access view over an instance container sitting in an
/// mmap'd file or a shared-memory region. Construction validates the whole
/// container (header, section table, checksums, every record's offsets,
/// every task weight and edge) exactly like decode_instances -- after it
/// succeeds, materialize() cannot throw on format grounds and readers may
/// touch the columns freely. The viewed bytes must outlive the view and
/// stay immutable (the shm store's published regions are read-only by
/// contract).
class InstanceView {
 public:
  /// Validates and indexes `bytes`. Throws std::runtime_error as above.
  explicit InstanceView(std::string_view bytes);

  std::size_t count() const { return records_.size(); }

  /// Rebuilds instance `i` as an owning Instance (weights and adjacency
  /// copied out of the columns). Precondition: i < count().
  Instance materialize(std::size_t i) const;

  /// Direct column access for ingest paths that do not need an Instance.
  std::span<const std::int64_t> task_p(std::size_t i) const;
  std::span<const std::int64_t> task_s(std::size_t i) const;
  int m(std::size_t i) const;
  bool has_dag(std::size_t i) const;

 private:
  struct Record {
    std::uint64_t task_offset = 0;
    std::uint64_t task_count = 0;
    std::uint64_t edge_offset = 0;
    std::uint64_t edge_count = 0;
    std::int32_t m = 1;
    bool dag = false;
  };

  std::vector<Record> records_;
  const std::int64_t* p_ = nullptr;
  const std::int64_t* s_ = nullptr;
  const std::int32_t* edge_src_ = nullptr;
  const std::int32_t* edge_dst_ = nullptr;
};

// ---------------------------------------------------------------------------
// Result-record payloads (shared with the result cache).
// ---------------------------------------------------------------------------

/// Serializes one result as a self-contained little-endian blob -- the
/// per-record unit the result container sections are built from and the
/// exact payload storage/result_cache.hpp stores per slot. Fails (returns
/// an empty string) only when the result cannot be represented: the wire
/// carries i64 fields, so nothing a solver produces is rejected today.
std::string encode_result_payload(const SolveResult& result);

/// Parses an encode_result_payload() blob back. Throws std::runtime_error
/// on truncation or internal inconsistency (the cache's seqlock makes torn
/// reads impossible, but a decoding layer never trusts its input).
SolveResult decode_result_payload(std::string_view bytes);

}  // namespace storesched::wire
