#include "storage/result_cache.hpp"

#include <cstring>
#include <stdexcept>

#include "core/audit.hpp"
#include "core/stream.hpp"  // CancelToken's definition (cache exemption)
#include "storage/wire_format.hpp"

namespace storesched::storage {

namespace {

constexpr std::uint64_t kCacheMagic = 0x3145484343535453ull;  // "STSCCHE1" LE
constexpr std::uint64_t kCacheVersion = 1;
constexpr std::size_t kHeaderWords = 16;
constexpr std::size_t kSlotMetaWords = 4;  // seq, key_hi, key_lo, size
constexpr std::size_t kProbeWindow = 8;
constexpr int kReadRetries = 64;

// Header word indices.
enum : std::size_t {
  kHdrMagic = 0,
  kHdrVersion = 1,
  kHdrSlots = 2,
  kHdrPayloadWords = 3,
  kHdrHits = 4,
  kHdrMisses = 5,
  kHdrInserts = 6,
  kHdrSkipped = 7,
  kHdrBytes = 8,
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "the shm cache needs lock-free 64-bit atomics");
static_assert(sizeof(std::atomic<std::uint64_t>) == 8,
              "atomic words must be plain words in the mapped region");

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::size_t CacheTable::required_bytes(std::size_t slot_count,
                                       std::size_t payload_bytes) {
  const std::size_t slots = round_up_pow2(slot_count == 0 ? 1 : slot_count);
  const std::size_t payload_words = (payload_bytes + 7) / 8;
  return (kHeaderWords + slots * (kSlotMetaWords + payload_words)) * 8;
}

CacheTable::CacheTable(std::size_t slot_count, std::size_t payload_bytes) {
  owned_.assign(required_bytes(slot_count, payload_bytes) / 8, 0);
  slot_count_ = round_up_pow2(slot_count == 0 ? 1 : slot_count);
  payload_words_ = (payload_bytes + 7) / 8;
  header_ = reinterpret_cast<Word*>(owned_.data());
  slots_ = header_ + kHeaderWords;
  header_[kHdrMagic].store(kCacheMagic, std::memory_order_relaxed);
  header_[kHdrVersion].store(kCacheVersion, std::memory_order_relaxed);
  header_[kHdrSlots].store(slot_count_, std::memory_order_relaxed);
  header_[kHdrPayloadWords].store(payload_words_, std::memory_order_relaxed);
}

CacheTable::CacheTable(void* base, std::size_t size, std::size_t slot_count,
                       std::size_t payload_bytes, bool initialize) {
  if (reinterpret_cast<std::uintptr_t>(base) % 8 != 0) {
    throw std::runtime_error("cache region is not 8-byte aligned");
  }
  if (size < required_bytes(slot_count, payload_bytes)) {
    throw std::runtime_error("cache region too small: " +
                             std::to_string(size) + " < " +
                             std::to_string(required_bytes(slot_count,
                                                           payload_bytes)));
  }
  slot_count_ = round_up_pow2(slot_count == 0 ? 1 : slot_count);
  payload_words_ = (payload_bytes + 7) / 8;
  header_ = reinterpret_cast<Word*>(base);
  slots_ = header_ + kHeaderWords;
  if (initialize) {
    // The publisher hands over zeroed memory (fresh shm is zero-filled);
    // only the header needs stamping -- zeroed slots read as empty.
    header_[kHdrMagic].store(kCacheMagic, std::memory_order_relaxed);
    header_[kHdrVersion].store(kCacheVersion, std::memory_order_relaxed);
    header_[kHdrSlots].store(slot_count_, std::memory_order_relaxed);
    header_[kHdrPayloadWords].store(payload_words_,
                                    std::memory_order_release);
    return;
  }
  if (header_[kHdrMagic].load(std::memory_order_acquire) != kCacheMagic ||
      header_[kHdrVersion].load(std::memory_order_relaxed) != kCacheVersion) {
    throw std::runtime_error("cache region header mismatch (not a cache, "
                             "or a different build's layout)");
  }
  if (header_[kHdrSlots].load(std::memory_order_relaxed) != slot_count_ ||
      header_[kHdrPayloadWords].load(std::memory_order_relaxed) !=
          payload_words_) {
    throw std::runtime_error("cache region geometry mismatch");
  }
}

CacheTable::Word* CacheTable::slot(std::size_t index) const {
  return slots_ + index * (kSlotMetaWords + payload_words_);
}

std::optional<std::string> CacheTable::lookup(const CacheKey& key) const {
  const std::size_t mask = slot_count_ - 1;
  std::vector<std::uint64_t> buf(payload_words_);
  for (std::size_t w = 0; w < kProbeWindow && w < slot_count_; ++w) {
    Word* s = slot((key.lo + w) & mask);
    for (int attempt = 0; attempt < kReadRetries; ++attempt) {
      const std::uint64_t s1 = s[0].load(std::memory_order_acquire);
      if (s1 & 1) continue;  // writer mid-flight; re-read
      const std::uint64_t hi = s[1].load(std::memory_order_relaxed);
      const std::uint64_t lo = s[2].load(std::memory_order_relaxed);
      const std::uint64_t size = s[3].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s[0].load(std::memory_order_relaxed) != s1) continue;  // torn
      if (hi != key.hi || lo != key.lo) break;  // stable non-match
      if (size > payload_words_ * 8) break;     // never written like this
      const std::size_t words = (size + 7) / 8;
      for (std::size_t i = 0; i < words; ++i) {
        buf[i] = s[kSlotMetaWords + i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s[0].load(std::memory_order_relaxed) != s1) continue;  // torn
      header_[kHdrHits].fetch_add(1, std::memory_order_relaxed);
      return std::string(reinterpret_cast<const char*>(buf.data()), size);
    }
  }
  header_[kHdrMisses].fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

bool CacheTable::insert(const CacheKey& key, std::string_view payload) {
  if (payload.size() > payload_words_ * 8) {
    header_[kHdrSkipped].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::size_t mask = slot_count_ - 1;
  // Preference order: a slot already holding this key, else an empty slot,
  // else the window's first slot (plain eviction). The scan is a relaxed
  // snapshot -- races just mean a suboptimal choice, which a cache absorbs.
  std::size_t target = key.lo & mask;
  bool found = false;
  std::size_t first_empty = 0;
  bool have_empty = false;
  for (std::size_t w = 0; w < kProbeWindow && w < slot_count_; ++w) {
    const std::size_t idx = (key.lo + w) & mask;
    Word* s = slot(idx);
    const std::uint64_t hi = s[1].load(std::memory_order_relaxed);
    const std::uint64_t lo = s[2].load(std::memory_order_relaxed);
    if (hi == key.hi && lo == key.lo) {
      target = idx;
      found = true;
      break;
    }
    if (!have_empty && hi == 0 && lo == 0) {
      first_empty = idx;
      have_empty = true;
    }
  }
  if (!found && have_empty) target = first_empty;

  Word* s = slot(target);
  for (int attempt = 0; attempt < kReadRetries; ++attempt) {
    std::uint64_t s1 = s[0].load(std::memory_order_relaxed);
    if (s1 & 1) continue;  // another writer owns it; re-read
    if (!s[0].compare_exchange_weak(s1, s1 + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      continue;
    }
    const std::uint64_t old_hi = s[1].load(std::memory_order_relaxed);
    const std::uint64_t old_lo = s[2].load(std::memory_order_relaxed);
    const std::uint64_t old_size = s[3].load(std::memory_order_relaxed);
    s[1].store(key.hi, std::memory_order_relaxed);
    s[2].store(key.lo, std::memory_order_relaxed);
    s[3].store(payload.size(), std::memory_order_relaxed);
    const std::size_t words = (payload.size() + 7) / 8;
    for (std::size_t i = 0; i < words; ++i) {
      std::uint64_t w = 0;
      const std::size_t take = std::min<std::size_t>(8, payload.size() - i * 8);
      std::memcpy(&w, payload.data() + i * 8, take);
      s[kSlotMetaWords + i].store(w, std::memory_order_relaxed);
    }
    s[0].store(s1 + 2, std::memory_order_release);
    if (old_hi != 0 || old_lo != 0) {
      header_[kHdrBytes].fetch_sub(old_size, std::memory_order_relaxed);
    }
    header_[kHdrBytes].fetch_add(payload.size(), std::memory_order_relaxed);
    header_[kHdrInserts].fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  header_[kHdrSkipped].fetch_add(1, std::memory_order_relaxed);
  return false;
}

CacheTableStats CacheTable::stats() const {
  CacheTableStats out;
  out.hits = header_[kHdrHits].load(std::memory_order_relaxed);
  out.misses = header_[kHdrMisses].load(std::memory_order_relaxed);
  out.inserts = header_[kHdrInserts].load(std::memory_order_relaxed);
  out.skipped = header_[kHdrSkipped].load(std::memory_order_relaxed);
  out.bytes = header_[kHdrBytes].load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// SolveCache.
// ---------------------------------------------------------------------------

bool cache_exempt(const SolveOptions& options) {
  // A deadline can truncate a solve into an infeasible-by-timeout result;
  // a *fired* cancel token likewise. Neither is the result a cold solve
  // would reproduce, so neither may populate the cache. An armed-but-idle
  // cancel token is fine -- it did not influence this solve.
  return options.deadline.has_value() ||
         (options.cancel && options.cancel->cancelled());
}

SolveCache::SolveCache(std::size_t slot_count, std::size_t payload_bytes)
    : table_(slot_count, payload_bytes) {}

SolveCache::SolveCache(void* base, std::size_t size, std::size_t slot_count,
                       std::size_t payload_bytes, bool initialize)
    : table_(base, size, slot_count, payload_bytes, initialize) {}

std::optional<SolveResult> SolveCache::lookup(const Instance& inst,
                                              std::string_view spec,
                                              const SolveOptions& options) {
  const std::vector<TaskId> order = canonical_order(inst);
  const CacheKey key = cache_key(inst, order, spec, options);
  const std::optional<std::string> payload = table_.lookup(key);
  if (!payload) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  SolveResult result;
  try {
    result = wire::decode_result_payload(*payload);
  } catch (const std::runtime_error&) {
    // Never produced by this build's writers; treat like a miss rather
    // than poisoning the run.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (result.schedule.n() != 0 && result.schedule.n() != inst.n()) {
    // The one cheap structural guard against a 128-bit key collision.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  schedule_from_canonical(result, order);
  if (audit_enabled() && result.feasible && result.schedule.n() != 0) {
    const AuditReport report = audit_schedule(
        inst, result.schedule, result, {options.memory_capacity});
    if (!report.ok()) {
      throw std::logic_error("result cache audit: hit for spec \"" +
                             std::string(spec) +
                             "\" violates: " + report.to_string());
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void SolveCache::insert(const Instance& inst, std::string_view spec,
                        const SolveOptions& options,
                        const SolveResult& result) {
  if (cache_exempt(options)) return;
  const std::vector<TaskId> order = canonical_order(inst);
  const CacheKey key = cache_key(inst, order, spec, options);
  SolveResult canonical = result;
  // The extras channels are not wired (the payload carries the common
  // fields, like the JSONL result line); drop them before encoding so the
  // canonical form is stable.
  canonical.sbo.reset();
  canonical.rls.reset();
  canonical.pareto.reset();
  schedule_to_canonical(canonical, order);
  if (table_.insert(key, wire::encode_result_payload(canonical))) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }
}

SolveCacheStats SolveCache::stats() const {
  SolveCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.bytes = table_.stats().bytes;
  return out;
}

}  // namespace storesched::storage
