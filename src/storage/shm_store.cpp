#include "storage/shm_store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "storage/wire_format.hpp"

namespace storesched::storage {

namespace {

constexpr std::uint64_t kMetaMagic = 0x4D48534843535453ull;  // "STSCHSHM" LE
constexpr std::uint64_t kMetaVersion = 1;
constexpr std::size_t kMetaHeaderBytes = 64;  // 8 words; cache follows
constexpr int kBoundedWaitMs = 2000;          // creation / flip stabilization

// Metadata word indices (each an atomic u64 in the mapped segment).
enum : std::size_t {
  kMetaMagicWord = 0,
  kMetaVersionWord = 1,
  kMetaSeq = 2,       // seqlock over (epoch, data_size); odd = mid-flip
  kMetaEpoch = 3,     // 0 = nothing published
  kMetaDataSize = 4,
  kMetaCacheSlots = 5,
  kMetaCachePayload = 6,
};

using Word = std::atomic<std::uint64_t>;

Word* meta_word(void* meta, std::size_t index) {
  return reinterpret_cast<Word*>(meta) + index;
}

void validate_store_name(const std::string& name) {
  if (name.empty()) throw std::runtime_error("shm store: empty name");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      throw std::runtime_error(
          "shm store: name \"" + name +
          "\" may contain only letters, digits, '.', '_', '-'");
    }
  }
}

std::string meta_segment(const std::string& name) {
  return "/storesched." + name;
}

std::string data_segment(const std::string& name, std::uint64_t epoch) {
  return "/storesched." + name + ".d" + std::to_string(epoch);
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("shm store: " + what + ": " +
                           std::strerror(errno));
}

struct Mapped {
  void* base = nullptr;
  std::size_t size = 0;
};

/// shm_open + (optionally ftruncate) + mmap, closing the fd either way.
Mapped map_segment(const std::string& segment, int oflag, int prot,
                   std::optional<std::size_t> truncate_to) {
  const int fd = ::shm_open(segment.c_str(), oflag, 0600);
  if (fd < 0) fail_errno("shm_open " + segment);
  std::size_t size = 0;
  if (truncate_to) {
    if (::ftruncate(fd, static_cast<off_t>(*truncate_to)) != 0) {
      const int err = errno;
      ::close(fd);
      errno = err;
      fail_errno("ftruncate " + segment);
    }
    size = *truncate_to;
  } else {
    struct ::stat st{};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      errno = err;
      fail_errno("fstat " + segment);
    }
    size = static_cast<std::size_t>(st.st_size);
  }
  if (size == 0) {
    ::close(fd);
    throw std::runtime_error("shm store: " + segment + " is empty");
  }
  void* base = ::mmap(nullptr, size, prot, MAP_SHARED, fd, 0);
  const int err = errno;
  ::close(fd);
  if (base == MAP_FAILED) {
    errno = err;
    fail_errno("mmap " + segment);
  }
  return {base, size};
}

void sleep_briefly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace

ShmMapping::~ShmMapping() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

ShmStore::ShmStore(std::string name, void* meta, std::size_t meta_size)
    : name_(std::move(name)), meta_(meta), meta_size_(meta_size) {
  const auto slots = static_cast<std::size_t>(
      meta_word(meta_, kMetaCacheSlots)->load(std::memory_order_relaxed));
  const auto payload = static_cast<std::size_t>(
      meta_word(meta_, kMetaCachePayload)->load(std::memory_order_relaxed));
  cache_ = std::make_unique<SolveCache>(
      static_cast<char*>(meta_) + kMetaHeaderBytes,
      meta_size_ - kMetaHeaderBytes, slots, payload, /*initialize=*/false);
}

ShmStore::~ShmStore() {
  if (meta_ != nullptr) ::munmap(meta_, meta_size_);
}

ShmStore::ShmStore(ShmStore&& other) noexcept
    : name_(std::move(other.name_)),
      meta_(other.meta_),
      meta_size_(other.meta_size_),
      cache_(std::move(other.cache_)) {
  other.meta_ = nullptr;
  other.meta_size_ = 0;
}

ShmStore ShmStore::create(const std::string& name) {
  return create(name, Geometry{});
}

ShmStore ShmStore::create(const std::string& name, const Geometry& geometry) {
  validate_store_name(name);
  const std::string segment = meta_segment(name);
  const std::size_t cache_bytes = CacheTable::required_bytes(
      geometry.cache_slots, geometry.cache_payload_bytes);
  const std::size_t total = kMetaHeaderBytes + cache_bytes;

  for (int attempt = 0; attempt < kBoundedWaitMs; ++attempt) {
    const int fd =
        ::shm_open(segment.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
    if (fd >= 0) {
      ::close(fd);
      // Fresh segment: size it (zero-filled), stamp the cache first and
      // the magic last, so attachers never see a magic over a
      // half-initialized region.
      Mapped m = map_segment(segment, O_RDWR, PROT_READ | PROT_WRITE, total);
      meta_word(m.base, kMetaVersionWord)
          ->store(kMetaVersion, std::memory_order_relaxed);
      meta_word(m.base, kMetaCacheSlots)
          ->store(geometry.cache_slots, std::memory_order_relaxed);
      meta_word(m.base, kMetaCachePayload)
          ->store(geometry.cache_payload_bytes, std::memory_order_relaxed);
      CacheTable(static_cast<char*>(m.base) + kMetaHeaderBytes, cache_bytes,
                 geometry.cache_slots, geometry.cache_payload_bytes,
                 /*initialize=*/true);
      meta_word(m.base, kMetaMagicWord)
          ->store(kMetaMagic, std::memory_order_release);
      return ShmStore(name, m.base, m.size);
    }
    if (errno != EEXIST) fail_errno("shm_open " + segment);

    // Someone holds the name. A finished store: take it over (republish
    // is the normal writer lifecycle). A mid-creation store: wait. A
    // corpse that never got its magic: reclaim it.
    struct ::stat st{};
    const int existing = ::shm_open(segment.c_str(), O_RDWR, 0600);
    if (existing < 0) {
      if (errno == ENOENT) continue;  // raced an unlink; recreate
      fail_errno("shm_open " + segment);
    }
    const bool sized =
        ::fstat(existing, &st) == 0 &&
        static_cast<std::size_t>(st.st_size) >= kMetaHeaderBytes;
    ::close(existing);
    if (sized) {
      Mapped m = map_segment(segment, O_RDWR, PROT_READ | PROT_WRITE,
                             std::nullopt);
      if (meta_word(m.base, kMetaMagicWord)->load(
              std::memory_order_acquire) == kMetaMagic) {
        return ShmStore(name, m.base, m.size);
      }
      ::munmap(m.base, m.size);
    }
    if (attempt > 50) {
      // Not becoming a store: reclaim the name (crashed creator).
      ::shm_unlink(segment.c_str());
    }
    sleep_briefly();
  }
  throw std::runtime_error("shm store: " + segment +
                           " never finished initializing");
}

ShmStore ShmStore::attach(const std::string& name) {
  validate_store_name(name);
  const std::string segment = meta_segment(name);
  for (int attempt = 0; attempt < kBoundedWaitMs; ++attempt) {
    const int fd = ::shm_open(segment.c_str(), O_RDWR, 0600);
    if (fd < 0) {
      if (errno == ENOENT) {
        throw std::runtime_error("shm store: no store named \"" + name +
                                 "\" (segment " + segment + " not found)");
      }
      fail_errno("shm_open " + segment);
    }
    struct ::stat st{};
    const bool sized = ::fstat(fd, &st) == 0 &&
                       static_cast<std::size_t>(st.st_size) >=
                           kMetaHeaderBytes;
    ::close(fd);
    if (sized) {
      Mapped m = map_segment(segment, O_RDWR, PROT_READ | PROT_WRITE,
                             std::nullopt);
      if (meta_word(m.base, kMetaMagicWord)->load(
              std::memory_order_acquire) == kMetaMagic) {
        return ShmStore(name, m.base, m.size);
      }
      ::munmap(m.base, m.size);
    }
    sleep_briefly();  // creator mid-initialization
  }
  throw std::runtime_error("shm store: " + segment +
                           " never finished initializing");
}

void ShmStore::publish(std::string_view container) {
  // Validate before anything becomes visible: a malformed container must
  // never be published (readers validate too, but failing here keeps the
  // previous epoch serving).
  wire::InstanceView validator(
      container.data() == nullptr ? std::string_view{"", 0} : container);
  (void)validator;

  const std::uint64_t next =
      meta_word(meta_, kMetaEpoch)->load(std::memory_order_relaxed) + 1;
  const std::string segment = data_segment(name_, next);
  // A segment with this epoch's name can only be an orphan from a writer
  // that died between creating it and flipping the metadata.
  ::shm_unlink(segment.c_str());
  {
    Mapped m = map_segment(segment, O_RDWR | O_CREAT | O_EXCL,
                           PROT_READ | PROT_WRITE, container.size());
    std::memcpy(m.base, container.data(), container.size());
    ::munmap(m.base, m.size);
  }

  Word* seq = meta_word(meta_, kMetaSeq);
  seq->fetch_add(1, std::memory_order_acq_rel);  // odd: flip in progress
  meta_word(meta_, kMetaEpoch)->store(next, std::memory_order_relaxed);
  meta_word(meta_, kMetaDataSize)
      ->store(container.size(), std::memory_order_relaxed);
  seq->fetch_add(1, std::memory_order_release);  // even: flip visible

  if (next > 1) {
    // Unlink, don't truncate: attached readers keep their epoch until
    // they unmap (POSIX keeps unlinked segments alive), so a swap can
    // never fault a reader mid-solve.
    ::shm_unlink(data_segment(name_, next - 1).c_str());
  }
}

std::shared_ptr<ShmMapping> ShmStore::snapshot() const {
  const Word* seq = meta_word(meta_, kMetaSeq);
  for (int attempt = 0; attempt < kBoundedWaitMs; ++attempt) {
    const std::uint64_t s1 = seq->load(std::memory_order_acquire);
    if (s1 & 1) {
      sleep_briefly();  // writer mid-flip
      continue;
    }
    const std::uint64_t epoch =
        meta_word(meta_, kMetaEpoch)->load(std::memory_order_relaxed);
    const std::uint64_t size =
        meta_word(meta_, kMetaDataSize)->load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq->load(std::memory_order_relaxed) != s1) continue;
    if (epoch == 0) return nullptr;

    const std::string segment = data_segment(name_, epoch);
    const int fd = ::shm_open(segment.c_str(), O_RDONLY, 0600);
    if (fd < 0) {
      if (errno == ENOENT) continue;  // republished under us; retake
      fail_errno("shm_open " + segment);
    }
    struct ::stat st{};
    const bool ok = ::fstat(fd, &st) == 0 &&
                    static_cast<std::size_t>(st.st_size) >= size;
    if (!ok) {
      ::close(fd);
      continue;  // writer mid-ftruncate of a fresh epoch
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    const int err = errno;
    ::close(fd);
    if (base == MAP_FAILED) {
      errno = err;
      fail_errno("mmap " + segment);
    }
    return std::make_shared<ShmMapping>(base, size, epoch);
  }
  throw std::runtime_error(
      "shm store: " + meta_segment(name_) +
      " never stabilized (a writer died mid-publish?)");
}

std::size_t ShmStore::unlink(const std::string& name) {
  validate_store_name(name);
  std::size_t removed = 0;
  // The metadata segment names the live epoch, but orphans from crashed
  // writers do not appear in it -- scan the shm directory for every
  // segment of this store instead.
  const std::string prefix = "storesched." + name;
  if (DIR* dir = ::opendir("/dev/shm")) {
    while (const struct ::dirent* entry = ::readdir(dir)) {
      const std::string_view file = entry->d_name;
      if (file == prefix ||
          (file.size() > prefix.size() + 1 &&
           file.substr(0, prefix.size() + 1) == prefix + ".")) {
        if (::shm_unlink(("/" + std::string(file)).c_str()) == 0) ++removed;
      }
    }
    ::closedir(dir);
  } else {
    // No scannable shm directory (non-Linux): best-effort on the two
    // segments the metadata can name.
    std::uint64_t epoch = 0;
    try {
      const ShmStore store = attach(name);
      epoch = meta_word(store.meta_, kMetaEpoch)
                  ->load(std::memory_order_relaxed);
    } catch (const std::runtime_error&) {
    }
    if (epoch > 0 &&
        ::shm_unlink(data_segment(name, epoch).c_str()) == 0) {
      ++removed;
    }
    if (::shm_unlink(meta_segment(name).c_str()) == 0) ++removed;
  }
  return removed;
}

ShmStore::Info ShmStore::info() const {
  Info out;
  out.cache = cache_->table_stats();
  const std::shared_ptr<ShmMapping> snap = snapshot();
  if (snap) {
    out.epoch = snap->epoch();
    out.data_bytes = snap->bytes().size();
    out.instances = wire::InstanceView(snap->bytes()).count();
  }
  return out;
}

ShmInstanceSource::ShmInstanceSource(const ShmStore& store)
    : mapping_(store.snapshot()) {
  if (!mapping_) {
    throw std::runtime_error("shm store \"" + store.name() +
                             "\": nothing published yet");
  }
  inner_ = std::make_unique<BinaryInstanceSource>(mapping_->bytes());
}

}  // namespace storesched::storage
