// Named shared-memory instance store with atomic region-swap publish.
//
// One writer process publishes a binary instance container; any number of
// serving/streaming processes attach and read it zero-copy. The layout
// follows the osrm-backend storage tier's shape: a tiny metadata segment
// that is flipped atomically, plus bulk data regions that are immutable
// once published.
//
//   /dev/shm/storesched.<name>       metadata + the shared result cache
//   /dev/shm/storesched.<name>.d<E>  epoch E's instance container (bytes
//                                    of wire::encode_instances, verbatim)
//
// Publish protocol (writer): write the new container into a fresh segment
// named for epoch E+1, then flip the metadata seqlock -- seq to odd,
// store (epoch, size), seq to even -- and shm_unlink epoch E's segment.
// Attached readers keep their mappings (POSIX keeps unlinked segments
// alive until the last munmap), so a swap can never SIGBUS a reader;
// new readers land on E+1. Readers snapshot with a bounded seqlock
// double-read and simply retry when a republish races their shm_open.
//
// The metadata segment also hosts the canonicalization-keyed result cache
// (storage/result_cache.hpp): every attached process shares one table, so
// a duplicate instance solved by any process is a hash lookup for all of
// them. The cache is why readers attach read-write -- the instance
// regions themselves are mapped read-only.
//
// Crash safety: segments are plain named files under /dev/shm, so a
// SIGKILL'd process leaks them until unlink(name) -- which therefore
// scans for *every* "storesched.<name>*" segment, including orphaned
// epochs from writers that died mid-publish (exercised by the cram
// transcript 0700-binary-roundtrip.t).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/stream.hpp"
#include "storage/binary_stream.hpp"
#include "storage/result_cache.hpp"

namespace storesched::storage {

/// A mapped, immutable view of one published epoch's container bytes.
/// Keeps the mapping alive for as long as any consumer holds the pointer
/// (snapshots are handed out as shared_ptr).
class ShmMapping {
 public:
  ShmMapping(void* base, std::size_t size, std::uint64_t epoch)
      : base_(base), size_(size), epoch_(epoch) {}
  ~ShmMapping();
  ShmMapping(const ShmMapping&) = delete;
  ShmMapping& operator=(const ShmMapping&) = delete;

  std::string_view bytes() const {
    return {static_cast<const char*>(base_), size_};
  }
  std::uint64_t epoch() const { return epoch_; }

 private:
  void* base_;
  std::size_t size_;
  std::uint64_t epoch_;
};

/// One process's handle on a named store: the writer (create + publish)
/// and readers (attach + snapshot) use the same class, differing only in
/// which methods they call.
class ShmStore {
 public:
  /// Result-cache geometry, fixed at create() time (attachers inherit it
  /// from the metadata header).
  struct Geometry {
    std::size_t cache_slots = SolveCache::kDefaultSlots;
    std::size_t cache_payload_bytes = SolveCache::kDefaultPayloadBytes;
  };

  /// Store contents summary (the CLI's `--store-info`).
  struct Info {
    std::uint64_t epoch = 0;      ///< 0 = nothing published yet
    std::uint64_t data_bytes = 0;
    std::size_t instances = 0;    ///< record count of the current epoch
    CacheTableStats cache;
  };

  /// Creates the store `name` (or takes over an existing one, including a
  /// half-initialized orphan left by a crashed creator). `name` may
  /// contain [A-Za-z0-9._-] only. Throws std::runtime_error on OS errors.
  static ShmStore create(const std::string& name,
                         const Geometry& geometry);
  static ShmStore create(const std::string& name);  ///< default geometry

  /// Attaches to an existing store; waits briefly for a mid-creation
  /// store to finish initializing, then throws if `name` does not exist
  /// or is not a store.
  static ShmStore attach(const std::string& name);

  /// Removes every segment of `name` -- metadata, the live epoch, and any
  /// orphaned epochs a SIGKILL'd writer left behind. Returns the number
  /// of segments unlinked (0 = nothing to clean). Safe to call while
  /// readers are attached: their mappings survive until unmapped.
  static std::size_t unlink(const std::string& name);

  ~ShmStore();
  ShmStore(ShmStore&& other) noexcept;
  ShmStore& operator=(ShmStore&&) = delete;
  ShmStore(const ShmStore&) = delete;
  ShmStore& operator=(const ShmStore&) = delete;

  /// Validates `container` (it must be a wire instance container) and
  /// publishes it as the next epoch; readers see the flip atomically.
  void publish(std::string_view container);

  /// Maps the currently published epoch, or nullptr when nothing has been
  /// published yet. Lock-free; bounded retries against concurrent
  /// republishes, then throws std::runtime_error if the store never
  /// stabilizes (a stuck odd seqlock: a writer died mid-flip).
  std::shared_ptr<ShmMapping> snapshot() const;

  /// The shared result cache living in the metadata segment.
  SolveCache& cache() { return *cache_; }

  Info info() const;

  const std::string& name() const { return name_; }

 private:
  ShmStore(std::string name, void* meta, std::size_t meta_size);

  std::string name_;
  void* meta_ = nullptr;
  std::size_t meta_size_ = 0;
  std::unique_ptr<SolveCache> cache_;
};

/// Streaming source over the store's current snapshot: holds the mapping,
/// validates it once, and yields instances in record order. The choice of
/// epoch is made at construction (a republish mid-run does not retarget a
/// running pipeline).
class ShmInstanceSource final : public InstanceSource {
 public:
  /// Throws std::runtime_error when the store has no published epoch.
  explicit ShmInstanceSource(const ShmStore& store);

  std::shared_ptr<const Instance> next() override { return inner_->next(); }
  std::optional<std::size_t> size_hint() const override {
    return inner_->size_hint();
  }
  std::optional<std::size_t> position() const override {
    return inner_->position();
  }

 private:
  std::shared_ptr<ShmMapping> mapping_;
  std::unique_ptr<BinaryInstanceSource> inner_;
};

}  // namespace storesched::storage
