// Instance canonicalization and the result-cache key.
//
// Two instances that differ only in task numbering have the same solution
// structure, so the cache keys a *canonical form*: independent instances
// are keyed under a stable sort of their tasks by (p, s) -- the physical
// task ids are interchangeable labels -- while precedence instances keep
// their ids (the DAG makes identity structural) and key the edge list too.
// The key folds in everything else that changes a solve's output: wire
// version, solver spec (which encodes the algorithm, its tie-breaks, and
// Delta), m, memory capacity, and the validate flag. Deadline and
// cancellation are deliberately NOT keyed: results influenced by either
// are never inserted (storage/result_cache.hpp).
//
// The key is 128 bits from two independently seeded mixing lanes. That
// makes accidental collision negligible, but the cache still guards the
// one cheap structural invariant (cached schedule size == instance size)
// on every hit, and replays the full audit under STORESCHED_AUDIT=1.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/instance.hpp"
#include "core/solver.hpp"

namespace storesched::storage {

/// 128-bit cache key (two independent 64-bit mixing lanes).
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const CacheKey&) const = default;
};

/// Canonical task order: for independent instances, task indices stably
/// sorted by (p, s); for precedence instances, identity. order[k] is the
/// original id of the task in canonical position k.
std::vector<TaskId> canonical_order(const Instance& inst);

/// Key over the canonicalized instance plus the solve configuration.
/// `order` must come from canonical_order(inst); `spec` is the solver's
/// canonical name (Solver::name()).
CacheKey cache_key(const Instance& inst, std::span<const TaskId> order,
                   std::string_view spec, const SolveOptions& options);

/// Rewrites `result`'s schedule from original task ids into canonical
/// positions (entry k describes task order[k]) -- the form the cache
/// stores, so permuted duplicates can share one slot. No-op for results
/// without a schedule.
void schedule_to_canonical(SolveResult& result, std::span<const TaskId> order);

/// Inverse of schedule_to_canonical: rewrites a cached result's schedule
/// into this instance's task ids. For an exact duplicate of the inserting
/// instance the composition is the identity, making the hit bit-identical
/// to the cold solve.
void schedule_from_canonical(SolveResult& result,
                             std::span<const TaskId> order);

}  // namespace storesched::storage
