#include "storage/wire_format.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/io.hpp"

namespace storesched::wire {

// The reader hands out typed spans straight into the buffer; every offset
// it computes is 8-aligned, so host order must be the wire order for the
// no-copy reads to be the decode.
static_assert(std::endian::native == std::endian::little,
              "the binary wire is little-endian and this reader is no-copy");
static_assert(sizeof(Time) == 8 && sizeof(Mem) == 8 && sizeof(TaskId) == 4,
              "wire column widths track common/types.hpp");

namespace {

constexpr std::size_t kHeaderSize = 48;
constexpr std::size_t kHeaderCrcSpan = 36;  ///< bytes covered by header_crc
constexpr std::size_t kSectionEntrySize = 32;
constexpr std::size_t kInstanceRecordSize = 40;
constexpr std::size_t kResultRecordSize = 168;
constexpr std::uint32_t kMaxSections = 16;

enum SectionKind : std::uint32_t {
  kSecInstanceRecords = 1,
  kSecTaskP = 2,
  kSecTaskS = 3,
  kSecEdgeSrc = 4,
  kSecEdgeDst = 5,
  kSecResultRecords = 6,
  kSecDiagChars = 7,
  kSecProc = 8,
  kSecStart = 9,
};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("binary wire: " + what);
}

std::size_t align8(std::size_t v) { return (v + 7) & ~std::size_t{7}; }

// ---- little-endian append helpers (host is little-endian, asserted) ----

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void pad_to_8(std::string& out) { out.append(align8(out.size()) - out.size(), '\0'); }

// ---- checked reads ----

template <typename T>
T get(std::string_view b, std::size_t off) {
  T v;
  std::memcpy(&v, b.data() + off, sizeof(T));
  return v;
}

/// One section-table row, already bounds-checked against the buffer.
struct Section {
  std::uint32_t kind = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t count = 0;
};

std::size_t element_size(std::uint32_t kind) {
  switch (kind) {
    case kSecInstanceRecords: return kInstanceRecordSize;
    case kSecTaskP: return 8;
    case kSecTaskS: return 8;
    case kSecEdgeSrc: return 4;
    case kSecEdgeDst: return 4;
    case kSecResultRecords: return kResultRecordSize;
    case kSecDiagChars: return 1;
    case kSecProc: return 4;
    case kSecStart: return 8;
    default: return 0;
  }
}

const char* payload_name(PayloadKind kind) {
  return kind == PayloadKind::kInstances ? "instances" : "results";
}

/// Deep validation of one instance's edge range: self-loops, duplicate
/// edges, cycles. Range and ascending-source checks already ran, so a CSR
/// row table can be built by scanning the source column once.
void validate_dag_edges(std::uint64_t instance_index, std::uint64_t n,
                        std::span<const std::int32_t> src,
                        std::span<const std::int32_t> dst) {
  const auto fail_inst = [&](const std::string& what) {
    fail("instance " + std::to_string(instance_index) + ": " + what);
  };
  std::vector<std::size_t> row(n + 1, 0);
  for (const std::int32_t u : src) ++row[static_cast<std::size_t>(u) + 1];
  for (std::size_t v = 0; v < n; ++v) row[v + 1] += row[v];
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t e = 0; e < dst.size(); ++e) {
    if (src[e] == dst[e]) fail_inst("self-loop edge");
    ++indeg[static_cast<std::size_t>(dst[e])];
  }
  // Duplicate (u, v) pairs: successor lists keep insertion order on the
  // wire, so sort a scratch copy of each row and look for equal neighbours.
  std::vector<std::int32_t> scratch;
  for (std::size_t u = 0; u < n; ++u) {
    scratch.assign(dst.begin() + row[u], dst.begin() + row[u + 1]);
    std::sort(scratch.begin(), scratch.end());
    if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
      fail_inst("duplicate edge");
    }
  }
  // Kahn's algorithm; anything left with in-degree > 0 is on a cycle.
  std::vector<std::int32_t> stack;
  for (std::size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) stack.push_back(static_cast<std::int32_t>(v));
  }
  std::size_t visited = 0;
  while (!stack.empty()) {
    const auto u = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    ++visited;
    for (std::size_t e = row[u]; e < row[u + 1]; ++e) {
      if (--indeg[static_cast<std::size_t>(dst[e])] == 0) {
        stack.push_back(dst[e]);
      }
    }
  }
  if (visited != n) fail_inst("precedence graph has a cycle");
}

struct Container {
  std::uint64_t payload_count = 0;
  std::vector<Section> sections;
};

/// Parses and fully validates the container frame: header, section table,
/// canonical back-to-back layout with zero padding, per-section checksums.
/// Accepted bytes are canonical: re-encoding the decoded payload
/// reproduces them exactly.
Container parse_container(std::string_view bytes, PayloadKind expected,
                          std::span<const std::uint32_t> required_kinds) {
  if (!has_binary_wire_magic(bytes)) {
    if (!bytes.empty() && (bytes.front() == '{' || bytes.front() == ' ' ||
                           bytes.front() == '\t')) {
      fail("input looks like JSONL (leading '" + std::string(1, bytes.front()) +
           "'), not the binary wire -- use --format=jsonl (or auto-detection)");
    }
    fail("bad magic (expected \"STSCHDB1\")");
  }
  if (bytes.size() < kHeaderSize) fail("truncated header");
  const auto version = get<std::uint32_t>(bytes, 8);
  if (version != kWireVersion) {
    fail("unsupported version " + std::to_string(version) + " (this build " +
         "reads version " + std::to_string(kWireVersion) + ")");
  }
  const auto kind_raw = get<std::uint32_t>(bytes, 12);
  if (kind_raw != static_cast<std::uint32_t>(PayloadKind::kInstances) &&
      kind_raw != static_cast<std::uint32_t>(PayloadKind::kResults)) {
    fail("unknown payload kind " + std::to_string(kind_raw));
  }
  const auto kind = static_cast<PayloadKind>(kind_raw);
  if (kind != expected) {
    fail(std::string("container holds ") + payload_name(kind) + ", expected " +
         payload_name(expected));
  }
  Container c;
  c.payload_count = get<std::uint64_t>(bytes, 16);
  const auto file_size = get<std::uint64_t>(bytes, 24);
  if (file_size != bytes.size()) {
    fail("file size mismatch: header says " + std::to_string(file_size) +
         " bytes, buffer has " + std::to_string(bytes.size()));
  }
  const auto section_count = get<std::uint32_t>(bytes, 32);
  if (section_count == 0 || section_count > kMaxSections) {
    fail("section count " + std::to_string(section_count) + " outside [1, " +
         std::to_string(kMaxSections) + "]");
  }
  const auto header_crc = get<std::uint32_t>(bytes, 36);
  if (header_crc != crc32(bytes.data(), kHeaderCrcSpan)) {
    fail("header checksum mismatch");
  }
  if (get<std::uint64_t>(bytes, 40) != 0) fail("nonzero reserved field");

  const std::size_t table_end =
      kHeaderSize + std::size_t{section_count} * kSectionEntrySize;
  if (table_end > bytes.size()) fail("truncated section table");

  if (section_count != required_kinds.size()) {
    fail("expected " + std::to_string(required_kinds.size()) +
         " sections, found " + std::to_string(section_count));
  }
  std::size_t running = align8(table_end);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t at = kHeaderSize + std::size_t{i} * kSectionEntrySize;
    Section sec;
    sec.kind = get<std::uint32_t>(bytes, at);
    sec.crc = get<std::uint32_t>(bytes, at + 4);
    sec.offset = get<std::uint64_t>(bytes, at + 8);
    sec.size = get<std::uint64_t>(bytes, at + 16);
    sec.count = get<std::uint64_t>(bytes, at + 24);
    if (sec.kind != required_kinds[i]) {
      fail("section " + std::to_string(i) + " has kind " +
           std::to_string(sec.kind) + ", canonical order requires " +
           std::to_string(required_kinds[i]));
    }
    const std::size_t elem = element_size(sec.kind);
    if (sec.count > bytes.size() / elem || sec.size != sec.count * elem) {
      fail("section " + std::to_string(sec.kind) + " size " +
           std::to_string(sec.size) + " does not match count " +
           std::to_string(sec.count));
    }
    // Canonical layout: sections tile the file back-to-back, 8-aligned,
    // zero-padded. Every accepted byte is accounted for.
    if (sec.offset != running) {
      fail("section " + std::to_string(sec.kind) + " at offset " +
           std::to_string(sec.offset) + ", canonical layout requires " +
           std::to_string(running));
    }
    if (sec.size > bytes.size() - sec.offset) {
      fail("section " + std::to_string(sec.kind) + " overruns the buffer");
    }
    if (sec.crc != crc32(bytes.data() + sec.offset, sec.size)) {
      fail("section " + std::to_string(sec.kind) + " checksum mismatch");
    }
    const std::size_t end = sec.offset + sec.size;
    running = align8(end);
    const std::size_t pad_end = std::min(running, bytes.size());
    for (std::size_t b = end; b < pad_end; ++b) {
      if (bytes[b] != '\0') fail("nonzero padding byte");
    }
    c.sections.push_back(sec);
  }
  // Zero padding between the section table and the first section.
  for (std::size_t b = table_end; b < align8(table_end); ++b) {
    if (bytes[b] != '\0') fail("nonzero padding byte");
  }
  const std::size_t last_end =
      c.sections.back().offset + c.sections.back().size;
  if (last_end != bytes.size()) {
    fail("trailing bytes after the last section");
  }
  return c;
}

/// Emits header + section table + payload columns in canonical form.
std::string assemble(PayloadKind kind, std::uint64_t payload_count,
                     std::span<const std::pair<std::uint32_t, const std::string*>>
                         sections) {
  std::string out;
  out.append(kBinaryWireMagic, sizeof(kBinaryWireMagic));
  put<std::uint32_t>(out, kWireVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(kind));
  put<std::uint64_t>(out, payload_count);
  put<std::uint64_t>(out, 0);  // file_size, patched below
  put<std::uint32_t>(out, static_cast<std::uint32_t>(sections.size()));
  put<std::uint32_t>(out, 0);  // header_crc, patched below
  put<std::uint64_t>(out, 0);  // reserved

  const std::size_t table_at = out.size();
  std::size_t running =
      align8(table_at + sections.size() * kSectionEntrySize);
  for (const auto& [sec_kind, body] : sections) {
    put<std::uint32_t>(out, sec_kind);
    put<std::uint32_t>(out, crc32(body->data(), body->size()));
    put<std::uint64_t>(out, running);
    put<std::uint64_t>(out, body->size());
    put<std::uint64_t>(out, body->size() / element_size(sec_kind));
    running = align8(running + body->size());
  }
  for (const auto& [sec_kind, body] : sections) {
    (void)sec_kind;
    pad_to_8(out);
    out.append(*body);
  }
  const std::uint64_t file_size = out.size();
  std::memcpy(out.data() + 24, &file_size, 8);
  const std::uint32_t header_crc = crc32(out.data(), kHeaderCrcSpan);
  std::memcpy(out.data() + 36, &header_crc, 4);
  return out;
}

// ---- result-record field plumbing (shared by container and cache blobs) --

constexpr std::uint32_t kResFeasible = 1u << 0;
constexpr std::uint32_t kResSumCi = 1u << 1;
constexpr std::uint32_t kResFrac0 = 1u << 2;  // bits 2..6: optional fractions
constexpr std::uint32_t kResTimed = 1u << 7;
constexpr std::uint32_t kResSchedule = 1u << 8;
constexpr std::uint32_t kResKnownFlags =
    kResFeasible | kResSumCi | (0x1Fu << 2) | kResTimed | kResSchedule;

std::array<const std::optional<Fraction>*, 5> optional_fractions(
    const SolveResult& r) {
  return {&r.cmax_bound, &r.mmax_bound, &r.cmax_ratio, &r.mmax_ratio,
          &r.sumci_ratio};
}

std::array<std::optional<Fraction>*, 5> optional_fractions(SolveResult& r) {
  return {&r.cmax_bound, &r.mmax_bound, &r.cmax_ratio, &r.mmax_ratio,
          &r.sumci_ratio};
}

bool result_has_schedule(const SolveResult& r) {
  return r.feasible && r.schedule.n() > 0 && r.schedule.fully_assigned();
}

/// Appends the 168-byte fixed record. `diag_offset`/`proc_offset` index the
/// shared columns (always 0 in single-result cache blobs).
void put_result_record(std::string& out, std::uint64_t index,
                       const SolveResult& r, std::uint64_t diag_offset,
                       std::uint64_t proc_offset) {
  const bool schedule = result_has_schedule(r);
  const bool timed = schedule && r.schedule.timed();
  std::uint32_t flags = 0;
  if (r.feasible) flags |= kResFeasible;
  if (r.sum_ci) flags |= kResSumCi;
  const auto fracs = optional_fractions(r);
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    if (fracs[i]->has_value()) flags |= kResFrac0 << i;
  }
  if (timed) flags |= kResTimed;
  if (schedule) flags |= kResSchedule;

  put<std::uint64_t>(out, index);
  put<std::int64_t>(out, r.feasible ? r.objectives.cmax : 0);
  put<std::int64_t>(out, r.feasible ? r.objectives.mmax : 0);
  put<std::int64_t>(out, r.sum_ci.value_or(0));
  put<std::int64_t>(out, r.delta.num());
  put<std::int64_t>(out, r.delta.den());
  for (const auto* f : fracs) {
    put<std::int64_t>(out, *f ? (*f)->num() : 0);
    put<std::int64_t>(out, *f ? (*f)->den() : 0);
  }
  put<std::uint64_t>(out, diag_offset);
  put<std::uint64_t>(out, r.diagnostics.size());
  put<std::uint64_t>(out, proc_offset);
  put<std::uint64_t>(out, schedule ? r.schedule.n() : 0);
  put<std::int32_t>(out, schedule ? r.schedule.m() : 0);
  put<std::uint32_t>(out, flags);
}

/// Decodes the fixed record at `at` (caller guarantees the 168 bytes).
/// Offsets/counts come back raw for the caller's layout checks; the
/// scalar fields are validated and written into `out.result` here.
struct RawResultRecord {
  std::uint64_t index = 0;
  std::uint64_t diag_offset = 0, diag_size = 0;
  std::uint64_t proc_offset = 0, sched_n = 0;
  std::int32_t sched_m = 0;
  std::uint32_t flags = 0;
};

RawResultRecord get_result_record(std::string_view b, std::size_t at,
                                  SolveResult& out) {
  RawResultRecord raw;
  raw.index = get<std::uint64_t>(b, at);
  const auto cmax = get<std::int64_t>(b, at + 8);
  const auto mmax = get<std::int64_t>(b, at + 16);
  const auto sum_ci = get<std::int64_t>(b, at + 24);
  const auto delta_num = get<std::int64_t>(b, at + 32);
  const auto delta_den = get<std::int64_t>(b, at + 40);
  raw.diag_offset = get<std::uint64_t>(b, at + 128);
  raw.diag_size = get<std::uint64_t>(b, at + 136);
  raw.proc_offset = get<std::uint64_t>(b, at + 144);
  raw.sched_n = get<std::uint64_t>(b, at + 152);
  raw.sched_m = get<std::int32_t>(b, at + 160);
  raw.flags = get<std::uint32_t>(b, at + 164);

  if ((raw.flags & ~kResKnownFlags) != 0) fail("unknown result flag bits");
  const bool feasible = raw.flags & kResFeasible;
  const bool schedule = raw.flags & kResSchedule;
  const bool timed = raw.flags & kResTimed;
  if (schedule && !feasible) fail("schedule on an infeasible result");
  if (timed && !schedule) fail("timed flag without a schedule");
  if (!feasible && (cmax != 0 || mmax != 0)) {
    fail("nonzero objectives on an infeasible result");
  }
  if (!(raw.flags & kResSumCi) && sum_ci != 0) fail("nonzero absent sum_ci");
  if (delta_den < 1) fail("delta denominator < 1");
  if (!schedule && (raw.sched_n != 0 || raw.sched_m != 0)) {
    fail("schedule dimensions without a schedule");
  }
  if (schedule && (raw.sched_n == 0 || raw.sched_m < 1)) {
    fail("empty schedule dimensions");
  }

  out.feasible = feasible;
  if (feasible) out.objectives = {cmax, mmax};
  if (raw.flags & kResSumCi) out.sum_ci = sum_ci;
  out.delta = Fraction(delta_num, delta_den);
  if (out.delta.num() != delta_num || out.delta.den() != delta_den) {
    fail("unnormalized delta fraction");
  }
  const auto fracs = optional_fractions(out);
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    const auto num = get<std::int64_t>(b, at + 48 + 16 * i);
    const auto den = get<std::int64_t>(b, at + 56 + 16 * i);
    if (!(raw.flags & (kResFrac0 << i))) {
      if (num != 0 || den != 0) fail("nonzero absent fraction");
      continue;
    }
    if (den < 1) fail("fraction denominator < 1");
    const Fraction f(num, den);
    if (f.num() != num || f.den() != den) fail("unnormalized fraction");
    *fracs[i] = f;
  }
  return raw;
}

/// Rebuilds the schedule columns into `out.schedule` with range checks.
void apply_schedule(SolveResult& out, const RawResultRecord& raw,
                    std::string_view proc_bytes, std::string_view start_bytes) {
  if (!(raw.flags & kResSchedule)) return;
  const bool timed = raw.flags & kResTimed;
  Schedule sched(raw.sched_n, raw.sched_m);
  for (std::uint64_t i = 0; i < raw.sched_n; ++i) {
    const auto proc = get<std::int32_t>(proc_bytes, i * 4);
    if (proc < 0 || proc >= raw.sched_m) {
      fail("schedule processor " + std::to_string(proc) + " outside [0, " +
           std::to_string(raw.sched_m) + ")");
    }
    if (timed) {
      const auto start = get<std::int64_t>(start_bytes, i * 8);
      if (start < 0) fail("negative start time");
      sched.assign(static_cast<TaskId>(i), proc, start);
    } else {
      sched.assign(static_cast<TaskId>(i), proc);
    }
  }
  out.schedule = std::move(sched);
}

}  // namespace

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected; the zlib polynomial).
// ---------------------------------------------------------------------------

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // Slicing-by-8: tables[j] advances a byte through j+1 rounds of the
  // polynomial, so the main loop folds eight input bytes per iteration.
  // Same polynomial, bit-identical to the classic byte-at-a-time loop --
  // container validation is CRC-bound at bulk-ingest scale, and this is
  // what keeps it off the bench_scaling ingest cell's critical path.
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::size_t j = 1; j < 8; ++j) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFF];
      }
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    const std::uint32_t lo =
        crc ^ (std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
               std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24);
    const std::uint32_t hi =
        std::uint32_t{p[4]} | std::uint32_t{p[5]} << 8 |
        std::uint32_t{p[6]} << 16 | std::uint32_t{p[7]} << 24;
    crc = tables[7][lo & 0xFF] ^ tables[6][(lo >> 8) & 0xFF] ^
          tables[5][(lo >> 16) & 0xFF] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFF] ^ tables[2][(hi >> 8) & 0xFF] ^
          tables[1][(hi >> 16) & 0xFF] ^ tables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    crc = tables[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::optional<PayloadKind> sniff_kind(std::string_view bytes) {
  if (bytes.size() < 16 || !has_binary_wire_magic(bytes)) return std::nullopt;
  const auto kind = get<std::uint32_t>(bytes, 12);
  if (kind == static_cast<std::uint32_t>(PayloadKind::kInstances)) {
    return PayloadKind::kInstances;
  }
  if (kind == static_cast<std::uint32_t>(PayloadKind::kResults)) {
    return PayloadKind::kResults;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Instances.
// ---------------------------------------------------------------------------

std::string encode_instances(std::span<const Instance> instances) {
  std::string records, task_p, task_s, edge_src, edge_dst;
  std::uint64_t task_cursor = 0, edge_cursor = 0;
  for (const Instance& inst : instances) {
    std::uint64_t edges = 0;
    if (inst.has_precedence()) {
      const Dag& dag = inst.dag();
      // CSR order -- ascending source, successor lists in stored order --
      // matches instance_to_jsonl's emission, so JSONL -> binary -> JSONL
      // round-trips byte-identically.
      for (TaskId u = 0; u < static_cast<TaskId>(inst.n()); ++u) {
        for (const TaskId v : dag.succs(u)) {
          put<std::int32_t>(edge_src, u);
          put<std::int32_t>(edge_dst, v);
          ++edges;
        }
      }
    }
    put<std::uint64_t>(records, task_cursor);
    put<std::uint64_t>(records, inst.n());
    put<std::uint64_t>(records, edge_cursor);
    put<std::uint64_t>(records, edges);
    put<std::int32_t>(records, inst.m());
    put<std::uint32_t>(records, inst.has_precedence() ? 1 : 0);
    for (const Task& t : inst.tasks()) put<std::int64_t>(task_p, t.p);
    for (const Task& t : inst.tasks()) put<std::int64_t>(task_s, t.s);
    task_cursor += inst.n();
    edge_cursor += edges;
  }
  const std::array<std::pair<std::uint32_t, const std::string*>, 5> sections{{
      {kSecInstanceRecords, &records},
      {kSecTaskP, &task_p},
      {kSecTaskS, &task_s},
      {kSecEdgeSrc, &edge_src},
      {kSecEdgeDst, &edge_dst},
  }};
  return assemble(PayloadKind::kInstances, instances.size(), sections);
}

InstanceView::InstanceView(std::string_view bytes) {
  if (reinterpret_cast<std::uintptr_t>(bytes.data()) % 8 != 0) {
    fail("buffer is not 8-byte aligned (mmap and the aligned slurp path "
         "both guarantee this)");
  }
  static constexpr std::uint32_t kRequired[] = {
      kSecInstanceRecords, kSecTaskP, kSecTaskS, kSecEdgeSrc, kSecEdgeDst};
  const Container c =
      parse_container(bytes, PayloadKind::kInstances, kRequired);
  const Section& records = c.sections[0];
  const Section& p = c.sections[1];
  const Section& s = c.sections[2];
  const Section& esrc = c.sections[3];
  const Section& edst = c.sections[4];
  if (records.count != c.payload_count) {
    fail("record count " + std::to_string(records.count) +
         " does not match payload count " + std::to_string(c.payload_count));
  }
  if (p.count != s.count) fail("p/s column lengths differ");
  if (esrc.count != edst.count) fail("edge column lengths differ");

  p_ = reinterpret_cast<const std::int64_t*>(bytes.data() + p.offset);
  s_ = reinterpret_cast<const std::int64_t*>(bytes.data() + s.offset);
  edge_src_ =
      reinterpret_cast<const std::int32_t*>(bytes.data() + esrc.offset);
  edge_dst_ =
      reinterpret_cast<const std::int32_t*>(bytes.data() + edst.offset);

  records_.reserve(records.count);
  std::uint64_t task_cursor = 0, edge_cursor = 0;
  for (std::uint64_t i = 0; i < records.count; ++i) {
    const std::size_t at = records.offset + i * kInstanceRecordSize;
    Record rec;
    rec.task_offset = get<std::uint64_t>(bytes, at);
    rec.task_count = get<std::uint64_t>(bytes, at + 8);
    rec.edge_offset = get<std::uint64_t>(bytes, at + 16);
    rec.edge_count = get<std::uint64_t>(bytes, at + 24);
    rec.m = get<std::int32_t>(bytes, at + 32);
    const auto flags = get<std::uint32_t>(bytes, at + 36);
    if (flags > 1) fail("unknown instance flag bits");
    rec.dag = flags == 1;
    if (rec.m < 1) fail("instance " + std::to_string(i) + ": m < 1");
    // Canonical layout: records tile the columns contiguously in order, so
    // no two records can alias and the total is exactly the column length.
    if (rec.task_offset != task_cursor || rec.edge_offset != edge_cursor) {
      fail("instance " + std::to_string(i) + ": non-contiguous columns");
    }
    if (!rec.dag && rec.edge_count != 0) {
      fail("instance " + std::to_string(i) + ": edges without a DAG flag");
    }
    if (rec.task_count > p.count - task_cursor) {
      fail("instance " + std::to_string(i) + ": task range overruns column");
    }
    if (rec.edge_count > esrc.count - edge_cursor) {
      fail("instance " + std::to_string(i) + ": edge range overruns column");
    }
    if (rec.task_count >
        static_cast<std::uint64_t>(std::numeric_limits<TaskId>::max())) {
      fail("instance " + std::to_string(i) + ": too many tasks");
    }
    // Task weights: exactly the Instance constructor's rules, so that a
    // validated view can hand out columns without re-checking.
    std::int64_t total_p = 0, total_s = 0;
    for (std::uint64_t t = 0; t < rec.task_count; ++t) {
      const std::int64_t tp = p_[task_cursor + t];
      const std::int64_t ts = s_[task_cursor + t];
      if (tp < 0 || ts < 0) {
        fail("instance " + std::to_string(i) + ": negative task weight");
      }
      if (__builtin_add_overflow(total_p, tp, &total_p) ||
          __builtin_add_overflow(total_s, ts, &total_s)) {
        fail("instance " + std::to_string(i) +
             ": task weight sum overflows 64 bits");
      }
    }
    // Edge endpoints in range, sources ascending (CSR order -- also the
    // canonical order encode_instances writes).
    std::int32_t prev_src = -1;
    for (std::uint64_t e = 0; e < rec.edge_count; ++e) {
      const std::int32_t u = edge_src_[edge_cursor + e];
      const std::int32_t v = edge_dst_[edge_cursor + e];
      const auto n = static_cast<std::int64_t>(rec.task_count);
      if (u < 0 || u >= n || v < 0 || v >= n) {
        fail("instance " + std::to_string(i) + ": edge endpoint outside [0, " +
             std::to_string(n) + ")");
      }
      if (u < prev_src) {
        fail("instance " + std::to_string(i) +
             ": edges not in ascending-source order");
      }
      prev_src = u;
    }
    if (rec.edge_count > 0) {
      validate_dag_edges(i, rec.task_count,
                         {edge_src_ + edge_cursor, rec.edge_count},
                         {edge_dst_ + edge_cursor, rec.edge_count});
    }
    task_cursor += rec.task_count;
    edge_cursor += rec.edge_count;
    records_.push_back(rec);
  }
  if (task_cursor != p.count) fail("task columns longer than the records");
  if (edge_cursor != esrc.count) fail("edge columns longer than the records");
}

Instance InstanceView::materialize(std::size_t i) const {
  const Record& rec = records_[i];
  std::vector<Task> tasks;
  tasks.reserve(rec.task_count);
  for (std::uint64_t t = 0; t < rec.task_count; ++t) {
    tasks.push_back({p_[rec.task_offset + t], s_[rec.task_offset + t]});
  }
  try {
    if (!rec.dag) return Instance(std::move(tasks), rec.m);
    Dag dag(rec.task_count);
    for (std::uint64_t e = 0; e < rec.edge_count; ++e) {
      dag.add_edge(edge_src_[rec.edge_offset + e],
                   edge_dst_[rec.edge_offset + e]);
    }
    if (dag.edge_count() != rec.edge_count) {
      fail("instance " + std::to_string(i) + ": duplicate edge");
    }
    return Instance(std::move(tasks), rec.m, std::move(dag));
  } catch (const std::invalid_argument& e) {
    // Instance/Dag validation (negative weights, self-loops, cycles,
    // aggregate overflow); one exception type for any malformed payload.
    fail("instance " + std::to_string(i) + ": " + e.what());
  }
}

std::span<const std::int64_t> InstanceView::task_p(std::size_t i) const {
  const Record& rec = records_[i];
  return {p_ + rec.task_offset, rec.task_count};
}

std::span<const std::int64_t> InstanceView::task_s(std::size_t i) const {
  const Record& rec = records_[i];
  return {s_ + rec.task_offset, rec.task_count};
}

int InstanceView::m(std::size_t i) const { return records_[i].m; }
bool InstanceView::has_dag(std::size_t i) const { return records_[i].dag; }

std::vector<Instance> decode_instances(std::string_view bytes) {
  // The view requires 8-alignment; a std::string buffer usually has it,
  // but this owned path must accept any source, so re-home if needed.
  std::vector<std::uint64_t> aligned;
  if (reinterpret_cast<std::uintptr_t>(bytes.data()) % 8 != 0) {
    aligned.resize((bytes.size() + 7) / 8);
    std::memcpy(aligned.data(), bytes.data(), bytes.size());
    bytes = {reinterpret_cast<const char*>(aligned.data()), bytes.size()};
  }
  const InstanceView view(bytes);
  std::vector<Instance> out;
  out.reserve(view.count());
  for (std::size_t i = 0; i < view.count(); ++i) {
    out.push_back(view.materialize(i));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Results.
// ---------------------------------------------------------------------------

std::string encode_results(std::span<const IndexedResult> results) {
  std::string records, diag, proc, start;
  std::uint64_t diag_cursor = 0, proc_cursor = 0;
  for (const IndexedResult& row : results) {
    const SolveResult& r = row.result;
    put_result_record(records, row.index, r, diag_cursor, proc_cursor);
    diag.append(r.diagnostics);
    diag_cursor += r.diagnostics.size();
    if (result_has_schedule(r)) {
      for (std::size_t i = 0; i < r.schedule.n(); ++i) {
        put<std::int32_t>(proc, r.schedule.proc(static_cast<TaskId>(i)));
      }
      if (r.schedule.timed()) {
        for (std::size_t i = 0; i < r.schedule.n(); ++i) {
          put<std::int64_t>(start, r.schedule.start(static_cast<TaskId>(i)));
        }
      }
      proc_cursor += r.schedule.n();
    }
  }
  const std::array<std::pair<std::uint32_t, const std::string*>, 4> sections{{
      {kSecResultRecords, &records},
      {kSecDiagChars, &diag},
      {kSecProc, &proc},
      {kSecStart, &start},
  }};
  return assemble(PayloadKind::kResults, results.size(), sections);
}

std::vector<IndexedResult> decode_results(std::string_view bytes) {
  static constexpr std::uint32_t kRequired[] = {kSecResultRecords,
                                                kSecDiagChars, kSecProc,
                                                kSecStart};
  const Container c = parse_container(bytes, PayloadKind::kResults, kRequired);
  const Section& records = c.sections[0];
  const Section& diag = c.sections[1];
  const Section& proc = c.sections[2];
  const Section& start = c.sections[3];
  if (records.count != c.payload_count) {
    fail("record count does not match payload count");
  }
  std::vector<IndexedResult> out;
  out.reserve(records.count);
  std::uint64_t diag_cursor = 0, proc_cursor = 0, start_cursor = 0;
  for (std::uint64_t i = 0; i < records.count; ++i) {
    const std::size_t at = records.offset + i * kResultRecordSize;
    IndexedResult row;
    const RawResultRecord raw = get_result_record(bytes, at, row.result);
    row.index = raw.index;
    if (raw.diag_offset != diag_cursor ||
        raw.diag_size > diag.count - diag_cursor) {
      fail("result " + std::to_string(i) + ": non-contiguous diagnostics");
    }
    row.result.diagnostics =
        std::string(bytes.substr(diag.offset + raw.diag_offset,
                                 raw.diag_size));
    diag_cursor += raw.diag_size;
    if (raw.proc_offset != proc_cursor ||
        raw.sched_n > proc.count - proc_cursor) {
      fail("result " + std::to_string(i) + ": non-contiguous schedule");
    }
    // Only timed schedules contribute to the start column, so its running
    // offset is tracked separately (canonical tiling pins it -- the record
    // carries no explicit start offset).
    const bool timed = raw.flags & kResTimed;
    if (timed && raw.sched_n > start.count - start_cursor) {
      fail("result " + std::to_string(i) + ": start range overruns column");
    }
    apply_schedule(
        row.result, raw,
        bytes.substr(proc.offset + raw.proc_offset * 4, raw.sched_n * 4),
        timed ? bytes.substr(start.offset + start_cursor * 8, raw.sched_n * 8)
              : std::string_view{});
    proc_cursor += raw.sched_n;
    if (timed) start_cursor += raw.sched_n;
    out.push_back(std::move(row));
  }
  if (diag_cursor != diag.count) fail("diagnostics column longer than records");
  if (proc_cursor != proc.count) fail("proc column longer than the records");
  if (start_cursor != start.count) fail("start column longer than the records");
  return out;
}

// ---------------------------------------------------------------------------
// Single-result payload blobs (the cache's slot format).
// ---------------------------------------------------------------------------

std::string encode_result_payload(const SolveResult& result) {
  std::string out;
  put_result_record(out, 0, result, 0, 0);
  out.append(result.diagnostics);
  pad_to_8(out);
  if (result_has_schedule(result)) {
    for (std::size_t i = 0; i < result.schedule.n(); ++i) {
      put<std::int32_t>(out, result.schedule.proc(static_cast<TaskId>(i)));
    }
    pad_to_8(out);
    if (result.schedule.timed()) {
      for (std::size_t i = 0; i < result.schedule.n(); ++i) {
        put<std::int64_t>(out, result.schedule.start(static_cast<TaskId>(i)));
      }
    }
  }
  return out;
}

SolveResult decode_result_payload(std::string_view bytes) {
  if (bytes.size() < kResultRecordSize) fail("truncated result payload");
  SolveResult result;
  const RawResultRecord raw = get_result_record(bytes, 0, result);
  if (raw.index != 0 || raw.diag_offset != 0 || raw.proc_offset != 0) {
    fail("result payload with column offsets");
  }
  // Bound the raw counts before any size arithmetic or allocation: a
  // hostile blob must fail here, not in an allocator.
  if (raw.diag_size > bytes.size() || raw.sched_n > bytes.size()) {
    fail("result payload size mismatch");
  }
  const bool timed = raw.flags & kResTimed;
  // Mirrors encode_result_payload exactly: diag then proc are each padded
  // to 8 whenever anything could follow them (encode pads unconditionally).
  const std::size_t diag_at = kResultRecordSize;
  const std::size_t proc_at = align8(diag_at + raw.diag_size);
  const std::size_t start_at = align8(proc_at + raw.sched_n * 4);
  const std::size_t expect = timed ? start_at + raw.sched_n * 8 : start_at;
  if (bytes.size() != expect) fail("result payload size mismatch");
  for (std::size_t b = diag_at + raw.diag_size; b < proc_at; ++b) {
    if (bytes[b] != '\0') fail("nonzero padding byte");
  }
  for (std::size_t b = proc_at + raw.sched_n * 4; b < start_at; ++b) {
    if (bytes[b] != '\0') fail("nonzero padding byte");
  }
  result.diagnostics = std::string(bytes.substr(diag_at, raw.diag_size));
  apply_schedule(result, raw, bytes.substr(proc_at, raw.sched_n * 4),
                 timed ? bytes.substr(start_at, raw.sched_n * 8)
                       : std::string_view{});
  return result;
}

}  // namespace storesched::wire
