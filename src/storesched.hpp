// storesched -- umbrella header: the whole library in one include.
//
// Reproduction and extension of Saule, Dutot & Mounie, "Scheduling With
// Storage Constraints" (IPDPS 2008): bi-objective (Cmax, Mmax) scheduling
// of independent or precedence-constrained tasks on identical processors.
//
// Most consumers only need the unified solver surface:
//
//   #include "storesched.hpp"
//   using namespace storesched;
//
//   Instance inst({{9, 1}, {1, 8}, {2, 9}}, /*m=*/2);
//   auto solver = make_solver("sbo:lpt,delta=3/2");
//   SolveResult r = solver->solve(inst);
//   // r.objectives, r.cmax_ratio / r.mmax_ratio (exact guarantees), ...
//
// See core/solver.hpp for the spec grammar and README.md for a quickstart.
#pragma once

// Value types, exact rationals, instances, schedules.
#include "common/dag.hpp"
#include "common/dag_generators.hpp"
#include "common/env.hpp"
#include "common/fraction.hpp"
#include "common/gantt.hpp"
#include "common/generators.hpp"
#include "common/instance.hpp"
#include "common/io.hpp"
#include "common/paper_instances.hpp"
#include "common/parallel.hpp"
#include "common/pareto.hpp"
#include "common/rng.hpp"
#include "common/schedule.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

// Sub-algorithm building blocks (makespan schedulers, list scheduling).
#include "algorithms/graham.hpp"
#include "algorithms/partition.hpp"
#include "algorithms/scheduler.hpp"
#include "algorithms/uniform.hpp"

// The paper's algorithms and analyses.
#include "core/conditional.hpp"
#include "core/constrained.hpp"
#include "core/front_approx.hpp"
#include "core/impossibility.hpp"
#include "core/pareto_bb.hpp"
#include "core/pareto_enum.hpp"
#include "core/rls.hpp"
#include "core/sbo.hpp"
#include "core/theory.hpp"
#include "core/triobjective.hpp"
#include "core/uniform_bi.hpp"
#include "core/worstcase.hpp"

// The unified solver API (registry, SolveResult, solve_batch, front).
#include "core/solver.hpp"

// The streaming pipeline (sources, sinks, solve_stream, JSONL wire format).
#include "core/stream.hpp"

// Fault tolerance: failpoint injection, crash-safe resume journal.
#include "common/failpoint.hpp"
#include "core/journal.hpp"

// Execution backends.
#include "sim/event_sim.hpp"
#include "sim/online.hpp"

// The serving tier (network front-end, SLO router, JSONL wire protocol).
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

// The storage tier: binary wire format, shared-memory instance store,
// canonicalization-keyed result cache (docs/WIRE_FORMAT.md).
#include "storage/binary_stream.hpp"
#include "storage/canonical.hpp"
#include "storage/result_cache.hpp"
#include "storage/shm_store.hpp"
#include "storage/wire_format.hpp"
