// Discrete-event multiprocessor simulator.
//
// Replays a timed schedule event by event on a machine model with m
// identical processors and per-processor cumulative storage (task code is
// loaded at task start and retained -- the paper's memory model). The
// simulator re-derives every metric from the event stream and verifies the
// machine invariants *independently* of the Schedule object's arithmetic,
// so integration tests can demand that both agree. It also produces the
// per-processor memory-occupancy profile and utilization statistics used
// by the benchmark harness.
#pragma once

#include <string>
#include <vector>

#include "common/instance.hpp"
#include "common/schedule.hpp"

namespace storesched {

enum class SimEventType { kStart, kFinish };

/// One machine event: task starting or finishing on a processor.
struct SimEvent {
  Time time = 0;
  SimEventType type = SimEventType::kStart;
  TaskId task = -1;
  ProcId proc = kNoProc;

  friend bool operator==(const SimEvent&, const SimEvent&) = default;
};

/// Memory occupancy of a processor just after `time`.
struct MemorySample {
  Time time = 0;
  Mem occupied = 0;

  friend bool operator==(const MemorySample&, const MemorySample&) = default;
};

/// Per-processor tallies.
struct ProcessorStats {
  Time busy = 0;         ///< total processing time executed
  Mem final_memory = 0;  ///< cumulative storage at the end of the run
  int tasks = 0;         ///< number of tasks executed
};

struct SimReport {
  bool ok = false;
  std::string violation;  ///< first machine-invariant violation, if any

  Time makespan = 0;
  Mem peak_memory = 0;       ///< max cumulative storage over processors
  Time sum_completion = 0;   ///< sum of task completion times
  Time total_idle = 0;       ///< sum over processors of (makespan - busy)
  double utilization = 0.0;  ///< total busy / (m * makespan); 1.0 if makespan 0

  std::vector<ProcessorStats> processors;
  std::vector<SimEvent> trace;  ///< time-ordered event stream
  /// Step function of cumulative storage per processor (one sample per
  /// task start on that processor).
  std::vector<std::vector<MemorySample>> memory_profiles;
};

struct SimOptions {
  Mem memory_cap = -1;    ///< if >= 0, flag any processor exceeding it
  bool keep_trace = true; ///< record the event stream (disable for big runs)
};

/// Replays `sched` (which must be timed and fully assigned) and verifies:
///   * no two tasks overlap on a processor,
///   * every precedence edge (u, v) has finish(u) <= start(v),
///   * the optional memory cap is never exceeded.
/// The report is returned with ok = false and a diagnostic on the first
/// violation; metrics are still filled in as far as the replay went.
SimReport simulate_schedule(const Instance& inst, const Schedule& sched,
                            const SimOptions& opts = {});

}  // namespace storesched
