#include "sim/event_sim.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace storesched {

SimReport simulate_schedule(const Instance& inst, const Schedule& sched,
                            const SimOptions& opts) {
  if (inst.n() != sched.n() || inst.m() != sched.m()) {
    throw std::invalid_argument("simulate_schedule: size mismatch");
  }
  SimReport report;
  report.processors.assign(static_cast<std::size_t>(inst.m()), {});
  report.memory_profiles.assign(static_cast<std::size_t>(inst.m()), {});

  if (!sched.timed()) {
    report.violation = "schedule is not timed/fully assigned";
    return report;
  }

  // Build the event stream: finish events before start events at equal
  // times, so back-to-back execution on one processor is legal.
  std::vector<SimEvent> events;
  events.reserve(2 * inst.n());
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    events.push_back({sched.start(i), SimEventType::kStart, i, sched.proc(i)});
    events.push_back({sched.start(i) + inst.task(i).p, SimEventType::kFinish,
                      i, sched.proc(i)});
  }
  std::sort(events.begin(), events.end(),
            [](const SimEvent& a, const SimEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.type != b.type) return a.type == SimEventType::kFinish;
              return a.task < b.task;
            });

  const auto fail = [&](std::string msg) {
    report.ok = false;
    report.violation = std::move(msg);
    return report;
  };

  std::vector<TaskId> running(static_cast<std::size_t>(inst.m()), -1);
  std::vector<Mem> occupied(static_cast<std::size_t>(inst.m()), 0);
  std::vector<bool> finished(inst.n(), false);

  for (const SimEvent& ev : events) {
    const auto q = static_cast<std::size_t>(ev.proc);
    const auto t = static_cast<std::size_t>(ev.task);
    if (ev.type == SimEventType::kStart) {
      const bool zero_length = inst.task(ev.task).p == 0;
      if (running[q] != -1 && !zero_length) {
        std::ostringstream os;
        os << "overlap on processor " << ev.proc << ": task " << ev.task
           << " starts at " << ev.time << " while task " << running[q]
           << " is running";
        return fail(os.str());
      }
      if (inst.has_precedence()) {
        for (const TaskId u : inst.dag().preds(ev.task)) {
          if (!finished[static_cast<std::size_t>(u)]) {
            std::ostringstream os;
            os << "precedence violation: task " << ev.task << " starts at "
               << ev.time << " before predecessor " << u << " finished";
            return fail(os.str());
          }
        }
      }
      if (!zero_length) running[q] = ev.task;  // zero-length: instantaneous
      occupied[q] += inst.task(ev.task).s;
      if (opts.memory_cap >= 0 && occupied[q] > opts.memory_cap) {
        std::ostringstream os;
        os << "memory cap exceeded on processor " << ev.proc << " at time "
           << ev.time << ": " << occupied[q] << " > " << opts.memory_cap;
        return fail(os.str());
      }
      report.memory_profiles[q].push_back({ev.time, occupied[q]});
      ++report.processors[q].tasks;
    } else {
      // Zero-length tasks never appear in `running` slots consistently;
      // handle them by allowing an immediate start+finish pair.
      if (running[q] == ev.task) {
        running[q] = -1;
      } else if (inst.task(ev.task).p != 0) {
        std::ostringstream os;
        os << "finish event for task " << ev.task
           << " which is not running on processor " << ev.proc;
        return fail(os.str());
      }
      finished[t] = true;
      report.processors[q].busy += inst.task(ev.task).p;
      report.makespan = std::max(report.makespan, ev.time);
      report.sum_completion += ev.time;
    }
    if (opts.keep_trace) report.trace.push_back(ev);
  }

  for (std::size_t q = 0; q < occupied.size(); ++q) {
    report.processors[q].final_memory = occupied[q];
    report.peak_memory = std::max(report.peak_memory, occupied[q]);
    report.total_idle += report.makespan - report.processors[q].busy;
  }
  report.utilization =
      report.makespan > 0
          ? static_cast<double>(inst.total_work()) /
                (static_cast<double>(inst.m()) *
                 static_cast<double>(report.makespan))
          : 1.0;
  report.ok = true;
  return report;
}

}  // namespace storesched
