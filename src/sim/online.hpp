// Online event-driven list scheduler with a hard per-processor memory cap.
//
// The offline RLS of the paper fixes task placements one at a time with
// global knowledge of processor loads. Real runtime systems (the grid
// brokers and SoC dispatchers of the paper's motivation) instead dispatch
// at *events*: whenever a processor falls idle, it grabs the
// highest-priority ready task whose code still fits its memory budget.
// This module implements that online analogue on top of the discrete-event
// engine, primarily as a comparison point for the EXT-B bench (offline RLS
// vs online dispatch under the same budget Delta * LB). The ready set runs
// on the same ready-event kernel as the offline engine
// (core/rls_engine.hpp), so both sides of that comparison share one data
// structure and per-dispatch cost is a log-time descent, not a ready-set
// scan.
#pragma once

#include <optional>

#include "algorithms/graham.hpp"
#include "common/fraction.hpp"
#include "common/instance.hpp"
#include "common/schedule.hpp"

namespace storesched {

struct OnlineResult {
  bool feasible = false;
  Schedule schedule;  ///< timed schedule (valid only when feasible)
  Mem cap = -1;       ///< the per-processor cap enforced (-1 = none)
  /// First task that could fit on no processor (infeasible runs only).
  std::optional<TaskId> stuck_task;
};

/// Dispatches `inst` online under `memory_cap` (use -1 for uncapped, which
/// reduces to Graham list scheduling). At every event instant, each idle
/// processor takes the highest-priority ready task whose storage fits its
/// remaining budget; a ready task that fits no processor -- now or ever,
/// since occupancy only grows -- aborts the run as infeasible.
OnlineResult simulate_online_list(const Instance& inst, Mem memory_cap,
                                  PriorityPolicy policy =
                                      PriorityPolicy::kInputOrder);

/// Convenience: cap = Delta * LB rounded down, mirroring RLS's budget.
OnlineResult simulate_online_rls(const Instance& inst, const Fraction& delta,
                                 PriorityPolicy policy =
                                     PriorityPolicy::kInputOrder);

}  // namespace storesched
