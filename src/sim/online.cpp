#include "sim/online.hpp"

#include <memory>
#include <queue>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/rls_engine.hpp"

namespace storesched {

// The dispatcher runs on the same ready-event kernel as the offline RLS
// engine (core/rls_engine.hpp): the ready set lives in a rank-keyed
// ReadyFrontier, so "highest-priority ready task that fits this
// processor's remaining budget" is one log-time descent per idle
// processor instead of a linear rescan of the ready set -- offline and
// online comparisons (bench_rls_dag's EXT-B table) now exercise one data
// structure. Online readiness is event-driven (a task is ready the
// instant its last predecessor *completes*), so every push releases at
// time 0 and the kernel's pending buckets stay empty.
OnlineResult simulate_online_list(const Instance& inst, Mem memory_cap,
                                  PriorityPolicy policy) {
  OnlineResult result;
  result.cap = memory_cap;
  result.schedule = Schedule(inst);

  const std::vector<TaskId> order = priority_order(inst, policy);
  std::vector<std::size_t> rank(inst.n());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rank[static_cast<std::size_t>(order[pos])] = pos;
  }

  rls_detail::ReadyFrontier ready(inst.n(), order, rank);
  std::set<ProcId> idle;
  for (ProcId q = 0; q < inst.m(); ++q) idle.insert(q);

  std::unique_ptr<DagFrontierView> view;
  if (inst.has_precedence()) {
    view = std::make_unique<DagFrontierView>(inst.dag());
  }
  std::vector<std::uint32_t> missing_preds =
      rls_detail::seed_frontier(inst, view.get(), ready);

  std::vector<Mem> occupied(static_cast<std::size_t>(inst.m()), 0);
  using Completion = std::pair<Time, TaskId>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running;

  Time now = 0;
  std::size_t scheduled = 0;
  while (scheduled < inst.n()) {
    // Dispatch phase: processors grab tasks in ascending id order; each
    // takes the highest-priority ready task that fits its budget (a
    // frontier descent). A processor that finds nothing stays idle and
    // never needs re-checking this phase: later grabs only shrink the
    // ready set.
    for (auto q_it = idle.begin(); q_it != idle.end();) {
      const ProcId q = *q_it;
      const Mem headroom =
          memory_cap < 0 ? ready.max_storage()
                         : memory_cap - occupied[static_cast<std::size_t>(q)];
      const TaskId i = ready.best_released(headroom);
      if (i == -1) {
        ++q_it;
        continue;
      }
      ready.pop(i);
      q_it = idle.erase(q_it);
      result.schedule.assign(i, q, now);
      occupied[static_cast<std::size_t>(q)] += inst.task(i).s;
      running.push({now + inst.task(i).p, i});
      ++scheduled;
    }

    if (scheduled == inst.n()) break;
    if (running.empty()) {
      if (!ready.empty()) {
        // Every processor is idle yet no ready task fits anywhere; since
        // occupancy only grows, the run is stuck for good. The witness is
        // the highest-priority ready task (any fitting task would have
        // been dispatched above).
        result.stuck_task = ready.best_released(ready.max_storage());
        return result;
      }
      std::vector<bool> placed(inst.n(), false);
      for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
        placed[static_cast<std::size_t>(i)] =
            result.schedule.proc(i) != kNoProc;
      }
      rls_detail::throw_no_ready_task("simulate_online_list", inst, placed);
    }

    // Advance to the next completion instant and release its successors.
    now = running.top().first;
    while (!running.empty() && running.top().first == now) {
      const TaskId done = running.top().second;
      running.pop();
      idle.insert(result.schedule.proc(done));
      if (view) {
        for (const TaskId v : view->succs(done)) {
          if (--missing_preds[static_cast<std::size_t>(v)] == 0) {
            ready.push(v, inst.task(v).s, 0);
          }
        }
      }
    }
  }

  result.feasible = true;
  return result;
}

OnlineResult simulate_online_rls(const Instance& inst, const Fraction& delta,
                                 PriorityPolicy policy) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("simulate_online_rls: Delta must be > 0");
  }
  const Fraction cap = delta * inst.storage_lower_bound_fraction();
  return simulate_online_list(inst, cap.floor(), policy);
}

}  // namespace storesched
