#include "sim/online.hpp"

#include <queue>
#include <set>
#include <stdexcept>

namespace storesched {

OnlineResult simulate_online_list(const Instance& inst, Mem memory_cap,
                                  PriorityPolicy policy) {
  OnlineResult result;
  result.cap = memory_cap;
  result.schedule = Schedule(inst);

  const std::vector<TaskId> order = priority_order(inst, policy);
  std::vector<std::size_t> rank(inst.n());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rank[static_cast<std::size_t>(order[pos])] = pos;
  }

  // Ready tasks ordered by priority rank; idle processors by id.
  std::set<std::pair<std::size_t, TaskId>> ready;
  std::set<ProcId> idle;
  for (ProcId q = 0; q < inst.m(); ++q) idle.insert(q);

  std::vector<std::size_t> missing_preds(inst.n(), 0);
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    missing_preds[static_cast<std::size_t>(i)] =
        inst.has_precedence() ? inst.dag().in_degree(i) : 0;
    if (missing_preds[static_cast<std::size_t>(i)] == 0) {
      ready.insert({rank[static_cast<std::size_t>(i)], i});
    }
  }

  std::vector<Mem> occupied(static_cast<std::size_t>(inst.m()), 0);
  using Completion = std::pair<Time, TaskId>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running;

  Time now = 0;
  std::size_t scheduled = 0;
  while (scheduled < inst.n()) {
    // Dispatch phase: processors grab tasks in ascending id order; each
    // takes the highest-priority ready task that fits its budget.
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto q_it = idle.begin(); q_it != idle.end(); ++q_it) {
        const ProcId q = *q_it;
        const auto fits = [&](TaskId i) {
          return memory_cap < 0 ||
                 occupied[static_cast<std::size_t>(q)] + inst.task(i).s <=
                     memory_cap;
        };
        auto chosen = ready.end();
        for (auto it = ready.begin(); it != ready.end(); ++it) {
          if (fits(it->second)) {
            chosen = it;
            break;
          }
        }
        if (chosen == ready.end()) continue;
        const TaskId i = chosen->second;
        ready.erase(chosen);
        idle.erase(q_it);
        result.schedule.assign(i, q, now);
        occupied[static_cast<std::size_t>(q)] += inst.task(i).s;
        running.push({now + inst.task(i).p, i});
        ++scheduled;
        progress = true;
        break;  // idle set mutated; restart the scan
      }
    }

    if (scheduled == inst.n()) break;
    if (running.empty()) {
      if (!ready.empty()) {
        // Every processor is idle yet no ready task fits anywhere; since
        // occupancy only grows, the run is stuck for good.
        result.stuck_task = ready.begin()->second;
        return result;
      }
      throw std::logic_error(
          "simulate_online_list: no ready task on acyclic DAG");
    }

    // Advance to the next completion instant and release its successors.
    now = running.top().first;
    while (!running.empty() && running.top().first == now) {
      const TaskId done = running.top().second;
      running.pop();
      idle.insert(result.schedule.proc(done));
      if (inst.has_precedence()) {
        for (const TaskId v : inst.dag().succs(done)) {
          if (--missing_preds[static_cast<std::size_t>(v)] == 0) {
            ready.insert({rank[static_cast<std::size_t>(v)], v});
          }
        }
      }
    }
  }

  result.feasible = true;
  return result;
}

OnlineResult simulate_online_rls(const Instance& inst, const Fraction& delta,
                                 PriorityPolicy policy) {
  if (!(Fraction(0) < delta)) {
    throw std::invalid_argument("simulate_online_rls: Delta must be > 0");
  }
  const Fraction cap = delta * inst.storage_lower_bound_fraction();
  return simulate_online_list(inst, cap.floor(), policy);
}

}  // namespace storesched
