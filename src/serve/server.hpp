// The serving tier: a long-lived network front-end over the solver
// registry (tools/storesched_serve.cpp is the thin CLI around it).
//
// One event-loop thread owns every socket: it accepts TCP / unix-domain
// connections (epoll on Linux, poll(2) elsewhere -- see Poller in
// server.cpp), frames JSONL request lines (serve/protocol.hpp), runs
// admission, and queues admitted requests for a persistent WorkerCrew
// (common/parallel.hpp) that solves and hands response lines back to the
// loop for writing. Connections are persistent and pipelined: responses
// return on the request's connection, matched by the echoed "id" (they
// may be reordered by solve completion).
//
// Multi-tenant fairness is structural, not cooperative:
//   * per-connection in-flight windows -- a connection with
//     ServeOptions::conn_window requests admitted-but-unanswered stops
//     being *read* (socket backpressure), so one greedy client saturates
//     its own window, not the shared queue;
//   * priority classes -- workers drain high before normal before low
//     (strict; a saturated high class starves low, by design -- cap the
//     high-priority tenants' windows accordingly);
//   * a global admission queue bound -- beyond ServeOptions::max_queue
//     the request is answered {"admission":"rejected"} instead of
//     growing the queue without bound.
//
// Per-request deadlines and cancellation ride the existing SolveOptions
// envelope: an expired deadline (queue wait included) answers
// infeasible-with-diagnostics -- never a dropped connection -- and a
// {"cancel":"id"} message trips the request's CancelToken.
//
// Which solver answers is the Router's call (serve/router.hpp) unless
// the request names an explicit "spec". Introspection is in-band: a
// {"statsz":true} request line answers one JSON snapshot of queue depth,
// admission decisions, and per-rung latency EWMAs.
//
// Shutdown is a drain: stop accepting and reading, answer everything
// admitted, flush, exit -- SIGTERM on the CLI, shutdown() here.
// Failpoint sites serve.accept / serve.request / serve.solve
// (common/failpoint.hpp) make the recovery paths deterministically
// testable under concurrent clients.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "core/stream.hpp"
#include "serve/router.hpp"

namespace storesched::storage {
// storage/result_cache.hpp and storage/shm_store.hpp; forward-declared so
// the serve surface does not force the storage headers on every includer.
class SolveCache;
class ShmStore;
}  // namespace storesched::storage

namespace storesched {

struct ServeOptions {
  /// Unix-domain listener path; empty = none. A stale socket file whose
  /// server is gone is unlinked and rebound; a live one fails start().
  std::string unix_path;
  /// TCP listener port; unset = none, 0 = ephemeral (see tcp_port()).
  std::optional<int> tcp_port;
  std::string tcp_host = "127.0.0.1";
  /// Router ladder, best-quality first (>= 1 spec). Every rung is built
  /// at start(), so a typo fails fast instead of at first request.
  std::vector<std::string> ladder;
  /// Worker crew size; 0 = hardware concurrency.
  int threads = 0;
  /// Per-connection in-flight window (>= 1): admitted-but-unanswered
  /// requests beyond which the connection stops being read.
  std::size_t conn_window = 16;
  /// Request line byte cap; longer lines answer an oversized error.
  std::size_t max_line = std::size_t{1} << 20;
  /// Global admission queue bound; beyond it requests are rejected.
  std::size_t max_queue = 4096;
  /// Base per-solve options (capacity, validate); deadline/cancel are
  /// per-request and overwrite these fields.
  SolveOptions solve;
  RouterOptions router;
  /// Response line shaping (include_schedule).
  JsonlResultOptions result;
  /// Canonicalization-keyed result cache (storage/result_cache.hpp), not
  /// owned; must outlive the server. When set, each admitted solve
  /// request is looked up before it touches the router -- a hit answers
  /// without solving (admission "ok", rung -1) -- and every cold routed
  /// solve is inserted after. Null = no caching.
  storage::SolveCache* cache = nullptr;
  /// Attached shm instance store (storage/shm_store.hpp), not owned; must
  /// outlive the server. Enables {"ref":N} solve-by-reference requests.
  /// Null = "ref" requests answer an error.
  storage::ShmStore* store = nullptr;
};

/// Monotonic counters + gauges, as served by /statsz and counters().
struct ServeCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests = 0;        ///< solve requests admitted or rejected
  std::uint64_t responses = 0;       ///< response lines queued for write
  std::uint64_t parse_errors = 0;
  std::uint64_t oversized_lines = 0;
  std::uint64_t admitted_ok = 0;
  std::uint64_t admitted_degraded = 0;
  std::uint64_t admitted_over_slo = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_expired = 0;  ///< answered without solving
  std::uint64_t cancelled = 0;         ///< cancel messages that hit a token
  std::uint64_t solve_errors = 0;      ///< solver threw (answered ok:false)
  std::uint64_t cache_hits = 0;        ///< answered from the result cache
  std::uint64_t cache_misses = 0;      ///< consulted the cache, then solved
  std::uint64_t cache_bytes = 0;       ///< payload bytes in the shared table
  std::uint64_t injected_faults = 0;   ///< serve.* failpoints that fired
  std::uint64_t statsz_requests = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_peak = 0;
  std::size_t conn_window_peak = 0;  ///< highest per-connection in-flight
  bool draining = false;
};

/// The server. start() spawns the event loop and the worker crew;
/// shutdown() drains gracefully. Thread-safe: any thread may call
/// shutdown()/counters(); notify_shutdown() is additionally safe from a
/// signal handler.
class ServeServer {
 public:
  explicit ServeServer(ServeOptions options);
  ~ServeServer();
  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds listeners, builds every ladder solver, spawns the loop and
  /// crew. Throws std::runtime_error on socket errors and
  /// std::invalid_argument on bad specs/options.
  void start();

  /// Graceful drain: stop accepting and reading, answer every admitted
  /// request, flush outboxes (bounded), join everything. Idempotent.
  void shutdown();

  /// Async-signal-safe shutdown trigger: flags the request and wakes the
  /// loop; some ordinary thread must then run shutdown() --
  /// wait_for_shutdown_request() is the CLI's way to be that thread.
  void notify_shutdown() noexcept;

  /// Blocks until notify_shutdown() (or shutdown()) has been called.
  void wait_for_shutdown_request();

  /// Bound TCP port (after start(); resolves port 0), or -1 without TCP.
  int tcp_port() const;

  unsigned workers() const;
  ServeCounters counters() const;
  Router& router() { return *router_; }

 private:
  struct Impl;
  ServeOptions options_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace storesched
