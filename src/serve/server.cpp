#include "serve/server.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/parallel.hpp"
#include "serve/protocol.hpp"
#include "storage/result_cache.hpp"
#include "storage/shm_store.hpp"
#include "storage/wire_format.hpp"

namespace storesched {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Readiness multiplexer: epoll where available, poll(2) elsewhere. Only
/// the event-loop thread touches it (workers wake the loop through the
/// wake pipe instead), so it needs no locking. Level-triggered on both
/// backends: unread bytes and unaccepted connections are re-reported,
/// which is what lets a failed accept round or a paused (windowed)
/// connection resume without bookkeeping.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

#ifdef __linux__
  Poller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (epfd_ < 0) throw_errno("epoll_create1");
  }
  ~Poller() { ::close(epfd_); }

  void add(int fd, bool rd, bool wr) { ctl(EPOLL_CTL_ADD, fd, rd, wr); }
  void mod(int fd, bool rd, bool wr) { ctl(EPOLL_CTL_MOD, fd, rd, wr); }
  void del(int fd) {
    epoll_event ev{};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(int timeout_ms, std::vector<Event>& out) {
    out.clear();
    buf_.resize(64);
    const int n = ::epoll_wait(epfd_, buf_.data(),
                               static_cast<int>(buf_.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = buf_[static_cast<std::size_t>(i)].data.fd;
      const auto bits = buf_[static_cast<std::size_t>(i)].events;
      ev.readable = (bits & EPOLLIN) != 0;
      ev.writable = (bits & EPOLLOUT) != 0;
      ev.error = (bits & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
  }

 private:
  void ctl(int op, int fd, bool rd, bool wr) {
    epoll_event ev{};
    ev.data.fd = fd;
    if (rd) ev.events |= EPOLLIN;
    if (wr) ev.events |= EPOLLOUT;
    if (::epoll_ctl(epfd_, op, fd, &ev) < 0) throw_errno("epoll_ctl");
  }

  int epfd_;
  std::vector<epoll_event> buf_;
#else
  void add(int fd, bool rd, bool wr) {
    pollfd p{};
    p.fd = fd;
    if (rd) p.events |= POLLIN;
    if (wr) p.events |= POLLOUT;
    fds_.push_back(p);
  }
  void mod(int fd, bool rd, bool wr) {
    for (auto& p : fds_) {
      if (p.fd != fd) continue;
      p.events = static_cast<short>((rd ? POLLIN : 0) | (wr ? POLLOUT : 0));
      return;
    }
  }
  void del(int fd) {
    fds_.erase(std::remove_if(fds_.begin(), fds_.end(),
                              [fd](const pollfd& p) { return p.fd == fd; }),
               fds_.end());
  }

  void wait(int timeout_ms, std::vector<Event>& out) {
    out.clear();
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const auto& p : fds_) {
      if (p.revents == 0) continue;
      Event ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & POLLIN) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(ev);
    }
  }

 private:
  std::vector<pollfd> fds_;
#endif
};

}  // namespace

struct ServeServer::Impl {
  explicit Impl(ServeServer& server) : outer(server) {}

  ServeServer& outer;

  /// One admitted request waiting for (or inside) a worker.
  struct Pending {
    std::uint64_t conn_id = 0;
    ServeRequest req;
    std::string spec;
    int rung = -1;
    ServeAdmission admission = ServeAdmission::kOk;
    Clock::time_point arrival;
    std::shared_ptr<CancelToken> cancel;
  };

  struct Connection {
    Connection(int fd_, std::uint64_t id_, std::size_t max_line)
        : fd(fd_), id(id_), framer(max_line) {}
    int fd;
    std::uint64_t id;
    LineFramer framer;
    /// Solve lines parsed while the in-flight window was full; replayed
    /// (in order, before new framer lines) once a response frees a slot.
    std::deque<std::string> deferred;
    std::string outbox;
    std::size_t out_off = 0;
    std::size_t in_flight = 0;
    bool reg_read = true;
    bool reg_write = false;
    bool peer_eof = false;
    std::unordered_map<std::string, std::shared_ptr<CancelToken>> cancelable;
  };

  // --- guarded by mu_ -------------------------------------------------
  std::mutex mu_;
  std::unordered_map<int, Connection> conns_;            // fd -> connection
  std::unordered_map<std::uint64_t, int> conn_fd_;       // conn id -> fd
  std::array<std::deque<Pending>, 3> queue_;             // by priority class
  std::size_t queue_depth_ = 0;
  std::size_t inflight_total_ = 0;  ///< admitted, not yet delivered
  std::uint64_t next_conn_id_ = 1;
  ServeCounters counters_;
  bool draining_ = false;
  bool flush_exit_ = false;  ///< crew is gone; flush outboxes and stop
  Clock::time_point flush_deadline_;

  // --- solver cache (own mutex: workers resolve specs mid-solve) ------
  std::mutex solvers_mu_;
  std::unordered_map<std::string, std::shared_ptr<const Solver>> solvers_;
  static constexpr std::size_t kSolverCacheCap = 128;

  // --- shm store view (own mutex: workers resolve refs mid-solve) -----
  // One validated InstanceView per published epoch, shared by every
  // {"ref":N} request until the store republishes. The mapping member
  // keeps the bytes the view points into alive.
  struct StoreView {
    std::shared_ptr<storage::ShmMapping> mapping;
    wire::InstanceView view;
  };
  std::mutex store_mu_;
  std::shared_ptr<const StoreView> store_view_;

  // --- loop-thread only -----------------------------------------------
  Poller poller_;
  std::vector<Poller::Event> events_;
  std::vector<int> accept_fds_;

  // --- lifecycle ------------------------------------------------------
  int unix_listen_ = -1;
  int tcp_listen_ = -1;
  int bound_tcp_port_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  bool listeners_closed_ = false;
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mu_;  ///< serializes shutdown() callers
  std::atomic<bool> shutdown_requested_{false};
  std::mutex request_cv_mu_;
  std::condition_variable request_cv_;
  std::unique_ptr<WorkerCrew> crew_;
  std::thread loop_thread_;

  const ServeOptions& opts() const { return outer.options_; }
  Router& router() { return *outer.router_; }

  // ---------------------------------------------------------------- wake
  void wake() noexcept {
    const char byte = 'w';
    // A full pipe already guarantees a pending wake-up.
    [[maybe_unused]] const auto n = ::write(wake_write_, &byte, 1);
  }

  void drain_wake() {
    char buf[256];
    while (::read(wake_read_, buf, sizeof buf) > 0) {
    }
  }

  // ------------------------------------------------------------- sockets
  int open_unix_listener(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("unix socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    set_nonblocking(fd);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      if (errno != EADDRINUSE) {
        ::close(fd);
        throw_errno("bind(" + path + ")");
      }
      // A socket file nobody answers on is a stale leftover (crashed
      // server); reclaim it. One a live server answers on is a conflict.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 &&
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
              0;
      if (probe >= 0) ::close(probe);
      if (live) {
        ::close(fd);
        throw std::runtime_error("unix socket already serving: " + path);
      }
      ::unlink(path.c_str());
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
        ::close(fd);
        throw_errno("bind(" + path + ")");
      }
    }
    if (::listen(fd, 128) < 0) {
      ::close(fd);
      throw_errno("listen(" + path + ")");
    }
    return fd;
  }

  int open_tcp_listener(const std::string& host, int port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw std::invalid_argument("bad tcp host: " + host);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, 128) < 0) {
      ::close(fd);
      throw_errno("bind/listen(" + host + ":" + std::to_string(port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
    return fd;
  }

  // -------------------------------------------------------------- accept
  void do_accept(int listen_fd) {
    for (;;) {
      try {
        failpoint::hit("serve.accept");
      } catch (const InjectedFault&) {
        // Skip this accept round; the level-triggered poller re-reports
        // the pending connection next iteration.
        const std::lock_guard<std::mutex> lock(mu_);
        ++counters_.injected_faults;
        return;
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // EAGAIN or a transient kernel error: try again on report
      }
      set_nonblocking(fd);
      const std::lock_guard<std::mutex> lock(mu_);
      const std::uint64_t id = next_conn_id_++;
      conns_.emplace(fd, Connection(fd, id, opts().max_line));
      conn_fd_[id] = fd;
      ++counters_.connections_accepted;
      poller_.add(fd, true, false);
    }
  }

  // ------------------------------------------------------------ requests
  void enqueue_response(Connection& conn, const ServeResponse& response) {
    conn.outbox += serve_response_to_jsonl(response, opts().result);
    conn.outbox += '\n';
    ++counters_.responses;
  }

  void enqueue_error(Connection& conn, const std::string& id,
                     const std::string& error,
                     std::optional<ServeAdmission> admission = std::nullopt) {
    ServeResponse response;
    response.id = id;
    response.ok = false;
    response.error = error;
    response.admission = admission;
    enqueue_response(conn, response);
  }

  std::string statsz_line(const std::string& id) {
    ++counters_.statsz_requests;
    std::string out = "{";
    if (!id.empty()) out += "\"id\":\"" + json_escape(id) + "\",";
    out += "\"ok\":true,\"statsz\":{";
    out += "\"draining\":" + std::string(draining_ ? "true" : "false");
    out += ",\"workers\":" + std::to_string(crew_ ? crew_->workers() : 0);
    out += ",\"queue_depth\":" + std::to_string(queue_depth_);
    out += ",\"queue_peak\":" + std::to_string(counters_.queue_peak);
    out += ",\"connections\":{\"accepted\":" +
           std::to_string(counters_.connections_accepted) +
           ",\"open\":" + std::to_string(conns_.size()) +
           ",\"window_peak\":" + std::to_string(counters_.conn_window_peak) +
           "}";
    out += ",\"requests\":" + std::to_string(counters_.requests);
    out += ",\"responses\":" + std::to_string(counters_.responses);
    out += ",\"parse_errors\":" + std::to_string(counters_.parse_errors);
    out += ",\"oversized_lines\":" + std::to_string(counters_.oversized_lines);
    out += ",\"admissions\":{\"ok\":" + std::to_string(counters_.admitted_ok) +
           ",\"degraded\":" + std::to_string(counters_.admitted_degraded) +
           ",\"over_slo\":" + std::to_string(counters_.admitted_over_slo) +
           ",\"rejected\":" + std::to_string(counters_.rejected) + "}";
    out +=
        ",\"deadline_expired\":" + std::to_string(counters_.deadline_expired);
    out += ",\"cancelled\":" + std::to_string(counters_.cancelled);
    out += ",\"solve_errors\":" + std::to_string(counters_.solve_errors);
    out += ",\"cache_hits\":" + std::to_string(counters_.cache_hits);
    out += ",\"cache_misses\":" + std::to_string(counters_.cache_misses);
    out += ",\"cache_bytes\":" +
           std::to_string(opts().cache != nullptr
                              ? opts().cache->table_stats().bytes
                              : 0);
    out += ",\"injected_faults\":" + std::to_string(counters_.injected_faults);
    out += ",\"statsz_requests\":" + std::to_string(counters_.statsz_requests);
    out += ",\"rungs\":[";
    const auto rungs = router().snapshot();
    for (std::size_t r = 0; r < rungs.size(); ++r) {
      if (r) out += ',';
      out += "{\"rung\":" + std::to_string(r) + ",\"spec\":\"" +
             json_escape(rungs[r].spec) + "\",\"ewma_ms\":" +
             fmt(rungs[r].ewma_ms, 4) +
             ",\"served\":" + std::to_string(rungs[r].served) + "}";
    }
    out += "]}}";
    return out;
  }

  /// Handles one framed request line. Returns false (and has no effect)
  /// only when the line is a well-formed solve request that must wait for
  /// the connection's in-flight window -- the caller re-plays it later.
  bool try_handle_line(Connection& conn, const std::string& text) {
    try {
      failpoint::hit("serve.request");
    } catch (const InjectedFault& fault) {
      ++counters_.injected_faults;
      enqueue_error(conn, "", std::string("injected fault: ") + fault.what());
      return true;
    }

    ServeRequest req;
    try {
      req = serve_request_from_jsonl(text);
    } catch (const std::exception& err) {
      ++counters_.parse_errors;
      enqueue_error(conn, "", err.what());
      return true;
    }

    if (req.statsz) {
      conn.outbox += statsz_line(req.id);
      conn.outbox += '\n';
      ++counters_.responses;
      return true;
    }

    if (!req.cancel_id.empty()) {
      const auto it = conn.cancelable.find(req.cancel_id);
      if (it == conn.cancelable.end()) {
        enqueue_error(conn, req.id,
                      "cancel: unknown or already answered id \"" +
                          req.cancel_id + "\"");
      } else {
        it->second->request_cancel("cancelled by client");
        ++counters_.cancelled;
        ServeResponse ack;
        ack.id = req.id;
        ack.cancel_ack = req.cancel_id;
        enqueue_response(conn, ack);
      }
      return true;
    }

    if (req.ref && opts().store == nullptr) {
      enqueue_error(conn, req.id,
                    "\"ref\" requests need an attached instance store "
                    "(start the server with --store=<name>)");
      return true;
    }

    // Solve request: admission.
    if (!draining_ && conn.in_flight >= opts().conn_window) return false;
    ++counters_.requests;
    if (draining_) {
      ++counters_.rejected;
      enqueue_error(conn, req.id, "server is draining",
                    ServeAdmission::kRejected);
      return true;
    }
    if (queue_depth_ >= opts().max_queue) {
      ++counters_.rejected;
      enqueue_error(
          conn, req.id,
          "queue full (" + std::to_string(opts().max_queue) + " pending)",
          ServeAdmission::kRejected);
      return true;
    }

    Pending pending;
    pending.conn_id = conn.id;
    pending.arrival = Clock::now();
    pending.cancel = std::make_shared<CancelToken>();
    if (!req.spec.empty()) {
      pending.spec = req.spec;
      pending.rung = -1;
      pending.admission = ServeAdmission::kOk;
    } else {
      const RouteDecision route = router().route(
          req.slo_ms, req.quality, queue_depth_, crew_->workers());
      pending.spec = route.spec;
      pending.rung = static_cast<int>(route.rung);
      pending.admission = !route.met_slo ? ServeAdmission::kOverSlo
                          : route.degraded ? ServeAdmission::kDegraded
                                           : ServeAdmission::kOk;
    }
    switch (pending.admission) {
      case ServeAdmission::kOk:
        ++counters_.admitted_ok;
        break;
      case ServeAdmission::kDegraded:
        ++counters_.admitted_degraded;
        break;
      case ServeAdmission::kOverSlo:
        ++counters_.admitted_over_slo;
        break;
      case ServeAdmission::kRejected:
        break;
    }
    if (!req.id.empty()) conn.cancelable[req.id] = pending.cancel;
    const auto cls = static_cast<std::size_t>(req.priority);
    pending.req = std::move(req);
    queue_[cls].push_back(std::move(pending));
    ++queue_depth_;
    counters_.queue_peak = std::max(counters_.queue_peak, queue_depth_);
    ++conn.in_flight;
    counters_.conn_window_peak =
        std::max(counters_.conn_window_peak, conn.in_flight);
    ++inflight_total_;
    crew_->submit([this] { process_one(); });
    return true;
  }

  /// Replays deferred lines, then drains freshly framed ones, stopping at
  /// the first solve line the window cannot admit yet.
  void process_conn_lines(Connection& conn) {
    while (!conn.deferred.empty()) {
      if (!try_handle_line(conn, conn.deferred.front())) return;
      conn.deferred.pop_front();
    }
    while (auto line = conn.framer.next()) {
      if (line->oversized) {
        ++counters_.oversized_lines;
        enqueue_error(conn, "",
                      "request line exceeds " +
                          std::to_string(opts().max_line) + " bytes");
        continue;
      }
      if (!try_handle_line(conn, line->text)) {
        conn.deferred.push_back(std::move(line->text));
        return;
      }
    }
  }

  // ------------------------------------------------------------- workers
  std::shared_ptr<const Solver> solver_for(const std::string& spec) {
    {
      const std::lock_guard<std::mutex> lock(solvers_mu_);
      const auto it = solvers_.find(spec);
      if (it != solvers_.end()) return it->second;
    }
    std::shared_ptr<const Solver> solver = make_solver(spec);
    const std::lock_guard<std::mutex> lock(solvers_mu_);
    if (solvers_.size() < kSolverCacheCap) solvers_.emplace(spec, solver);
    return solver;
  }

  /// Resolves a {"ref":N} request against the attached store's current
  /// epoch. Throws std::runtime_error (answered ok:false) when nothing is
  /// published, the index is out of range, or the store went away.
  std::shared_ptr<const Instance> resolve_ref(std::uint64_t ref) {
    storage::ShmStore* store = opts().store;  // non-null: checked at admission
    const std::shared_ptr<storage::ShmMapping> snap = store->snapshot();
    if (!snap) {
      throw std::runtime_error("instance store \"" + store->name() +
                               "\" has no published epoch");
    }
    std::shared_ptr<const StoreView> view;
    {
      const std::lock_guard<std::mutex> lock(store_mu_);
      if (store_view_ && store_view_->mapping->epoch() == snap->epoch()) {
        view = store_view_;
      }
    }
    if (!view) {
      // Validate the new epoch once, outside the lock; racing workers may
      // both build it, last one wins (both are equally valid).
      auto fresh = std::make_shared<StoreView>(
          StoreView{snap, wire::InstanceView(snap->bytes())});
      const std::lock_guard<std::mutex> lock(store_mu_);
      store_view_ = fresh;
      view = std::move(fresh);
    }
    if (ref >= view->view.count()) {
      throw std::runtime_error(
          "\"ref\":" + std::to_string(ref) + " out of range: store \"" +
          store->name() + "\" epoch " + std::to_string(snap->epoch()) +
          " holds " + std::to_string(view->view.count()) + " instances");
    }
    return std::make_shared<const Instance>(view->view.materialize(
        static_cast<std::size_t>(ref)));
  }

  void process_one() {
    Pending pending;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      // One queued Pending per submitted job, so a class is non-empty.
      for (auto& cls : queue_) {
        if (cls.empty()) continue;
        pending = std::move(cls.front());
        cls.pop_front();
        break;
      }
      --queue_depth_;
    }

    ServeResponse response;
    response.id = pending.req.id;
    response.admission = pending.admission;
    response.spec = pending.spec;
    response.rung = pending.rung;
    response.queue_ms = ms_since(pending.arrival);

    SolveResult result;
    bool have_result = false;
    bool expired = false;
    bool injected = false;
    bool solve_error = false;
    bool cache_hit = false;
    bool cache_miss = false;
    try {
      failpoint::hit("serve.solve");
      if (pending.req.deadline_ms &&
          response.queue_ms >= *pending.req.deadline_ms) {
        result.feasible = false;
        result.diagnostics =
            "deadline expired in queue: waited " + fmt(response.queue_ms, 3) +
            " ms of a " + fmt(*pending.req.deadline_ms, 3) +
            " ms budget (no solve attempted)";
        have_result = true;
        expired = true;
      } else {
        std::shared_ptr<const Instance> inst = pending.req.instance;
        if (inst == nullptr) inst = resolve_ref(*pending.req.ref);
        SolveOptions solve_options = opts().solve;
        solve_options.cancel = pending.cancel;
        if (pending.req.deadline_ms) {
          const double remaining_ms =
              *pending.req.deadline_ms - response.queue_ms;
          solve_options.deadline =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::duration<double, std::milli>(remaining_ms));
        }
        storage::SolveCache* cache = opts().cache;
        const Clock::time_point solve_start = Clock::now();
        if (cache != nullptr) {
          // An audit failure on the hit (STORESCHED_AUDIT=1) throws and is
          // answered ok:false like any solver fault.
          if (auto cached = cache->lookup(*inst, pending.spec,
                                          solve_options)) {
            result = *std::move(cached);
            cache_hit = true;
          } else {
            cache_miss = true;
          }
        }
        if (!cache_hit) {
          const std::shared_ptr<const Solver> solver =
              solver_for(pending.spec);
          result = solver->solve(*inst, solve_options);
          if (cache != nullptr) {
            cache->insert(*inst, pending.spec, solve_options, result);
          }
        }
        response.solve_ms = ms_since(solve_start);
        have_result = true;
        // Hits skip the router's latency model: a hash lookup says nothing
        // about what a cold solve on this rung costs.
        if (pending.rung >= 0 && !cache_hit) {
          router().observe(static_cast<std::size_t>(pending.rung),
                           response.solve_ms);
        }
      }
    } catch (const InjectedFault& fault) {
      response.ok = false;
      response.error = std::string("injected fault: ") + fault.what();
      injected = true;
    } catch (const std::exception& err) {
      response.ok = false;
      response.error = err.what();
      solve_error = true;
    }
    response.result = have_result ? &result : nullptr;

    std::string line = serve_response_to_jsonl(response, opts().result);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (expired) ++counters_.deadline_expired;
      if (injected) ++counters_.injected_faults;
      if (solve_error) ++counters_.solve_errors;
      if (cache_hit) ++counters_.cache_hits;
      if (cache_miss) ++counters_.cache_misses;
      ++counters_.responses;
      --inflight_total_;
      const auto fd_it = conn_fd_.find(pending.conn_id);
      if (fd_it != conn_fd_.end()) {
        Connection& conn = conns_.at(fd_it->second);
        conn.outbox += line;
        conn.outbox += '\n';
        if (conn.in_flight > 0) --conn.in_flight;
        if (!pending.req.id.empty()) conn.cancelable.erase(pending.req.id);
      }
      // else: the connection died first; the response is dropped.
    }
    wake();
  }

  // ------------------------------------------------------ loop plumbing
  void do_read(Connection& conn) {
    char buf[1 << 16];
    const auto n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.framer.feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      conn.peer_eof = true;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      conn.peer_eof = true;  // reset mid-read: treat as disconnect
    }
  }

  /// Flushes as much of the outbox as the socket accepts. Returns false
  /// when the connection died under the write.
  bool flush_outbox(Connection& conn) {
    while (conn.out_off < conn.outbox.size()) {
      const auto n =
          ::send(conn.fd, conn.outbox.data() + conn.out_off,
                 conn.outbox.size() - conn.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        return false;  // EPIPE/ECONNRESET: peer is gone
      }
      conn.out_off += static_cast<std::size_t>(n);
    }
    if (conn.out_off == conn.outbox.size()) {
      conn.outbox.clear();
      conn.out_off = 0;
    } else if (conn.out_off > (std::size_t{1} << 16)) {
      conn.outbox.erase(0, conn.out_off);
      conn.out_off = 0;
    }
    return true;
  }

  void close_conn_locked(int fd) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    // Orphaned in-flight work: stop it early, its response will be dropped.
    for (auto& [id, token] : it->second.cancelable) {
      token->request_cancel("connection closed");
    }
    poller_.del(fd);
    ::close(fd);
    conn_fd_.erase(it->second.id);
    conns_.erase(it);
  }

  /// Per-connection upkeep: replay/admit lines, flush, re-arm interest,
  /// close when finished. Returns false when the connection was closed.
  bool update_conn_locked(Connection& conn) {
    process_conn_lines(conn);
    if (!conn.outbox.empty() && !flush_outbox(conn)) {
      close_conn_locked(conn.fd);
      return false;
    }
    const bool flushed = conn.outbox.empty();
    const bool quiet = conn.in_flight == 0 && conn.deferred.empty();
    if (flushed && quiet && (conn.peer_eof || draining_ || flush_exit_)) {
      close_conn_locked(conn.fd);
      return false;
    }
    const bool want_read = !draining_ && !conn.peer_eof &&
                           conn.in_flight < opts().conn_window;
    const bool want_write = !flushed;
    if (want_read != conn.reg_read || want_write != conn.reg_write) {
      poller_.mod(conn.fd, want_read, want_write);
      conn.reg_read = want_read;
      conn.reg_write = want_write;
    }
    return true;
  }

  void loop() {
    for (;;) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (draining_ && !listeners_closed_) {
          if (unix_listen_ >= 0) {
            poller_.del(unix_listen_);
            ::close(unix_listen_);
            unix_listen_ = -1;
          }
          if (tcp_listen_ >= 0) {
            poller_.del(tcp_listen_);
            ::close(tcp_listen_);
            tcp_listen_ = -1;
          }
          listeners_closed_ = true;
        }
        for (auto it = conns_.begin(); it != conns_.end();) {
          auto next = std::next(it);
          update_conn_locked(it->second);
          it = next;
        }
        if (flush_exit_ &&
            (conns_.empty() || Clock::now() >= flush_deadline_)) {
          for (auto it = conns_.begin(); it != conns_.end();) {
            auto next = std::next(it);
            close_conn_locked(it->first);
            it = next;
          }
          break;
        }
      }
      if (shutdown_requested_.load(std::memory_order_acquire)) {
        request_cv_.notify_all();
      }

      poller_.wait(/*timeout_ms=*/200, events_);
      accept_fds_.clear();
      {
        const std::lock_guard<std::mutex> lock(mu_);
        counters_.connections_open = conns_.size();
        counters_.queue_depth = queue_depth_;
        counters_.draining = draining_;
        for (const auto& event : events_) {
          if (event.fd == wake_read_) {
            drain_wake();
            continue;
          }
          if (event.fd == unix_listen_ || event.fd == tcp_listen_) {
            accept_fds_.push_back(event.fd);
            continue;
          }
          const auto it = conns_.find(event.fd);
          if (it == conns_.end()) continue;  // closed earlier this batch
          if (event.error && !event.readable) {
            close_conn_locked(event.fd);
            continue;
          }
          if (event.readable) do_read(it->second);
          // Writable readiness is consumed by the upkeep pass's flush.
        }
      }
      // Accept outside the lock: do_accept re-takes it per connection.
      for (const int fd : accept_fds_) do_accept(fd);
    }
  }
};

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)),
      router_(std::make_unique<Router>(options_.ladder, options_.router)),
      impl_(std::make_unique<Impl>(*this)) {
  if (options_.conn_window == 0) {
    throw std::invalid_argument("ServeOptions::conn_window must be >= 1");
  }
  if (options_.max_line < 2) {
    throw std::invalid_argument("ServeOptions::max_line must be >= 2");
  }
  if (options_.unix_path.empty() && !options_.tcp_port) {
    throw std::invalid_argument("ServeServer: no listener configured");
  }
  if (options_.threads < 0) {
    throw std::invalid_argument("ServeOptions::threads must be >= 0");
  }
}

ServeServer::~ServeServer() {
  try {
    shutdown();
  } catch (...) {
    // Destruction must not throw; the flush deadline bounds the drain.
  }
}

void ServeServer::start() {
  Impl& impl = *impl_;
  if (impl.started_) throw std::logic_error("ServeServer: already started");
  // Build every ladder rung now so a typo'd spec fails start(), not the
  // first routed request.
  for (std::size_t r = 0; r < router_->rungs(); ++r) {
    impl.solver_for(router_->spec(r));
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) throw_errno("pipe");
  impl.wake_read_ = pipe_fds[0];
  impl.wake_write_ = pipe_fds[1];
  try {
    set_nonblocking(impl.wake_read_);
    set_nonblocking(impl.wake_write_);
    if (!options_.unix_path.empty()) {
      impl.unix_listen_ = impl.open_unix_listener(options_.unix_path);
    }
    if (options_.tcp_port) {
      impl.tcp_listen_ =
          impl.open_tcp_listener(options_.tcp_host, *options_.tcp_port);
    }
  } catch (...) {
    for (int* fd : {&impl.wake_read_, &impl.wake_write_, &impl.unix_listen_,
                    &impl.tcp_listen_}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
    throw;
  }
  impl.poller_.add(impl.wake_read_, true, false);
  if (impl.unix_listen_ >= 0) impl.poller_.add(impl.unix_listen_, true, false);
  if (impl.tcp_listen_ >= 0) impl.poller_.add(impl.tcp_listen_, true, false);
  impl.crew_ = std::make_unique<WorkerCrew>(
      static_cast<unsigned>(options_.threads));
  impl.loop_thread_ = std::thread([&impl] { impl.loop(); });
  impl.started_ = true;
}

void ServeServer::shutdown() {
  Impl& impl = *impl_;
  const std::lock_guard<std::mutex> lifecycle(impl.lifecycle_mu_);
  if (!impl.started_ || impl.stopped_) return;
  impl.shutdown_requested_.store(true, std::memory_order_release);
  impl.request_cv_.notify_all();
  {
    const std::lock_guard<std::mutex> lock(impl.mu_);
    impl.draining_ = true;
  }
  impl.wake();
  try {
    impl.crew_->drain();
  } catch (...) {
    // A worker body failed before answering; the flush deadline below
    // still bounds the drain.
  }
  impl.crew_->shutdown();
  {
    const std::lock_guard<std::mutex> lock(impl.mu_);
    impl.flush_exit_ = true;
    impl.flush_deadline_ = Clock::now() + std::chrono::seconds(5);
  }
  impl.wake();
  impl.loop_thread_.join();
  ::close(impl.wake_read_);
  ::close(impl.wake_write_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  impl.stopped_ = true;
}

void ServeServer::notify_shutdown() noexcept {
  impl_->shutdown_requested_.store(true, std::memory_order_release);
  impl_->wake();
}

void ServeServer::wait_for_shutdown_request() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.request_cv_mu_);
  impl.request_cv_.wait(lock, [&impl] {
    return impl.shutdown_requested_.load(std::memory_order_acquire);
  });
}

int ServeServer::tcp_port() const { return impl_->bound_tcp_port_; }

unsigned ServeServer::workers() const {
  return impl_->crew_ ? impl_->crew_->workers() : 0;
}

ServeCounters ServeServer::counters() const {
  Impl& impl = *impl_;
  const std::lock_guard<std::mutex> lock(impl.mu_);
  ServeCounters out = impl.counters_;
  out.connections_open = impl.conns_.size();
  out.queue_depth = impl.queue_depth_;
  out.draining = impl.draining_;
  if (options_.cache != nullptr) {
    out.cache_bytes = options_.cache->table_stats().bytes;
  }
  return out;
}

}  // namespace storesched
