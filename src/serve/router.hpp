// SLO-aware portfolio router: picks which solver spec serves a request.
//
// The server registers a *ladder* of solver specs ordered best-quality
// first (e.g. pareto:exact ; rls:bottom,delta=3 ; sbo:lpt,delta=1 --
// cheaper and weaker as the index grows; the last rung is the anchor and
// must always be able to answer). For each rung the router maintains an
// EWMA of observed service times. Routing a request with a latency SLO:
//
//   predicted(rung) = ewma_ms(rung) + queue_delay_ms
//   queue_delay_ms  = queue_depth * ewma_ms(overall) / workers
//
// i.e. the cost of the rung itself plus how long the request will sit in
// the admission queue behind queue_depth earlier requests draining
// through `workers` workers at the overall observed service rate -- the
// same shape as diamond's get_partitioning_point(..., SLO, queue_factor).
//
// Selection, for a request preferring quality rungs [0, quality]:
//   1. among rungs 0..quality, pick the *cheapest* whose predicted cost
//      meets the SLO (ties break toward better quality);
//   2. none meets it -> degrade below the preferred range: the first
//      (best-quality) rung in quality+1.. whose predicted cost meets the
//      SLO (admission = degraded);
//   3. still none -> the cheapest rung of the whole ladder answers anyway
//      (admission = over_slo) -- the router never refuses to serve; hard
//      back-pressure is the server's queue bound, not the router's.
// A request with no SLO skips prediction: it is served at its preferred
// quality rung directly.
//
// Thread-safe; route() and observe() take one mutex. Tests inject a
// deterministic cost table via seed_cost() instead of warming EWMAs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace storesched {

struct RouterOptions {
  /// EWMA smoothing factor in (0, 1]: ewma' = a * sample + (1-a) * ewma.
  double ewma_alpha = 0.2;
  /// Prior cost (ms) of a rung before its first observation. Small and
  /// optimistic: unknown rungs get tried, then measured.
  double initial_cost_ms = 0.1;
};

/// Where a routed request landed and why.
struct RouteDecision {
  std::size_t rung = 0;
  std::string spec;
  double predicted_ms = 0;    ///< ewma + queue delay at decision time
  double queue_delay_ms = 0;  ///< the queue-delay term alone
  bool met_slo = true;        ///< predicted <= slo (true when no SLO given)
  bool degraded = false;      ///< landed below the preferred quality range
};

/// Per-rung introspection snapshot (the /statsz payload).
struct RouterRungSnapshot {
  std::string spec;
  double ewma_ms = 0;
  std::uint64_t served = 0;
};

class Router {
 public:
  /// `ladder` is best-quality-first and must not be empty. Specs are not
  /// validated here (the server builds its solvers at startup and fails
  /// fast there).
  explicit Router(std::vector<std::string> ladder, RouterOptions options = {});

  std::size_t rungs() const { return specs_.size(); }
  const std::string& spec(std::size_t rung) const { return specs_[rung]; }

  /// Routes one request. `quality` is the deepest preferred rung (clamped
  /// to the ladder); `queue_depth` is the admission queue length the
  /// request would join; `workers` drains it (>= 1).
  RouteDecision route(std::optional<double> slo_ms, std::size_t quality,
                      std::size_t queue_depth, unsigned workers) const;

  /// Records an observed service time for a rung (EWMA update).
  void observe(std::size_t rung, double service_ms);

  /// Pins a rung's cost to an exact value, marking it observed -- the
  /// deterministic cost table for tests.
  void seed_cost(std::size_t rung, double ms);

  /// Pins the overall service-rate EWMA behind the queue-delay term,
  /// independent of the per-rung table (tests drive the two separately).
  void seed_overall(double ms);

  std::vector<RouterRungSnapshot> snapshot() const;

 private:
  double ewma_unlocked(std::size_t rung) const;

  std::vector<std::string> specs_;
  RouterOptions options_;
  mutable std::mutex mu_;
  std::vector<double> ewma_ms_;
  std::vector<std::uint64_t> served_;
  double overall_ewma_ms_ = 0;
  std::uint64_t overall_served_ = 0;
};

}  // namespace storesched
