#include "serve/router.hpp"

#include <algorithm>
#include <stdexcept>

namespace storesched {

Router::Router(std::vector<std::string> ladder, RouterOptions options)
    : specs_(std::move(ladder)), options_(options) {
  if (specs_.empty()) {
    throw std::invalid_argument("Router: the spec ladder must not be empty");
  }
  if (!(options_.ewma_alpha > 0) || options_.ewma_alpha > 1) {
    throw std::invalid_argument("Router: ewma_alpha must be in (0, 1]");
  }
  ewma_ms_.assign(specs_.size(), 0);
  served_.assign(specs_.size(), 0);
}

double Router::ewma_unlocked(std::size_t rung) const {
  return served_[rung] > 0 ? ewma_ms_[rung] : options_.initial_cost_ms;
}

RouteDecision Router::route(std::optional<double> slo_ms, std::size_t quality,
                            std::size_t queue_depth, unsigned workers) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t last = specs_.size() - 1;
  const std::size_t preferred = std::min(quality, last);

  RouteDecision decision;
  const double overall =
      overall_served_ > 0 ? overall_ewma_ms_ : options_.initial_cost_ms;
  decision.queue_delay_ms =
      static_cast<double>(queue_depth) * overall /
      static_cast<double>(std::max(workers, 1u));

  const auto predicted = [&](std::size_t rung) {
    return ewma_unlocked(rung) + decision.queue_delay_ms;
  };
  const auto pick = [&](std::size_t rung, bool met, bool degraded) {
    decision.rung = rung;
    decision.spec = specs_[rung];
    decision.predicted_ms = predicted(rung);
    decision.met_slo = met;
    decision.degraded = degraded;
    return decision;
  };

  // No SLO: nothing to predict against, serve the preferred quality.
  if (!slo_ms) return pick(preferred, true, false);

  // 1. Cheapest rung in the preferred range meeting the SLO; ties break
  //    toward better quality (lower rung).
  std::optional<std::size_t> best;
  for (std::size_t r = 0; r <= preferred; ++r) {
    if (predicted(r) > *slo_ms) continue;
    if (!best || ewma_unlocked(r) < ewma_unlocked(*best)) best = r;
  }
  if (best) return pick(*best, true, false);

  // 2. Degrade: the best-quality rung below the preferred range that
  //    meets the SLO.
  for (std::size_t r = preferred + 1; r <= last; ++r) {
    if (predicted(r) <= *slo_ms) return pick(r, true, true);
  }

  // 3. Nothing meets the SLO: the cheapest rung of the whole ladder
  //    answers anyway, flagged over-SLO.
  std::size_t cheapest = 0;
  for (std::size_t r = 1; r <= last; ++r) {
    if (ewma_unlocked(r) < ewma_unlocked(cheapest)) cheapest = r;
  }
  return pick(cheapest, false, cheapest > preferred);
}

void Router::observe(std::size_t rung, double service_ms) {
  if (rung >= specs_.size() || service_ms < 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const double a = options_.ewma_alpha;
  ewma_ms_[rung] = served_[rung] == 0
                       ? service_ms
                       : a * service_ms + (1 - a) * ewma_ms_[rung];
  ++served_[rung];
  overall_ewma_ms_ = overall_served_ == 0
                         ? service_ms
                         : a * service_ms + (1 - a) * overall_ewma_ms_;
  ++overall_served_;
}

void Router::seed_cost(std::size_t rung, double ms) {
  if (rung >= specs_.size()) {
    throw std::out_of_range("Router::seed_cost: rung out of range");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  ewma_ms_[rung] = ms;
  if (served_[rung] == 0) served_[rung] = 1;
  // Per-rung only: the overall rate behind the queue-delay term is pinned
  // separately via seed_overall(), so tests control the two terms
  // independently.
}

void Router::seed_overall(double ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  overall_ewma_ms_ = ms;
  if (overall_served_ == 0) overall_served_ = 1;
}

std::vector<RouterRungSnapshot> Router::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<RouterRungSnapshot> out(specs_.size());
  for (std::size_t r = 0; r < specs_.size(); ++r) {
    out[r].spec = specs_[r];
    out[r].ewma_ms = ewma_unlocked(r);
    out[r].served = served_[r];
  }
  return out;
}

}  // namespace storesched
