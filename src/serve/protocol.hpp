// Wire protocol of the serving tier (tools/storesched_serve.cpp): JSONL
// requests and responses over persistent TCP / unix-domain connections,
// plus the incremental line framer that turns a socket byte stream into
// bounded request lines.
//
// One request object per line, one response line per request line --
// including malformed lines, which get an {"ok":false,...} response
// instead of a dropped connection, so pipelined clients can always match
// responses to requests by count (or by the echoed "id").
//
// Request grammar (strict, same school as instance_from_jsonl):
//
//   {"id":"r1","spec":"sbo:lpt,delta=1","instance":{"m":2,"tasks":[[3,1]]}}
//   {"id":"r2","slo_ms":5,"quality":1,"priority":"high","deadline_ms":100,
//    "instance":{...}}
//   {"statsz":true}
//   {"cancel":"r2"}
//
//   id           optional string, echoed verbatim in the response
//   instance     the instance object (instance_from_jsonl vocabulary);
//                solve requests carry this or "ref"
//   ref          record index into the server's attached shm instance
//                store (storesched_serve --store); solves by reference
//                without shipping the instance bytes over the socket
//   spec         explicit solver spec -- bypasses the router
//   slo_ms       per-request latency SLO (milliseconds, decimal allowed);
//                the router picks the cheapest rung predicted to meet it
//   quality      deepest router rung the client prefers (0 = best only);
//                under load the router may degrade past it (flagged)
//   deadline_ms  hard per-request budget, queue wait included; an expired
//                request answers infeasible-with-diagnostics, never a
//                dropped connection
//   priority     "high" | "normal" | "low" admission class
//   statsz       true -> introspection snapshot instead of a solve
//   cancel       request id to cancel; the cancelled request still gets
//                its own (infeasible) response
//
// Response lines: {"id":...,"ok":true,...} with router fields (admission,
// spec, rung, queue_ms, solve_ms) followed by the standard result fields
// (result_jsonl_fields, core/stream.hpp), or {"ok":false,"error":"..."}
// for protocol-level failures. Full field reference: docs/SERVING.md.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "common/instance.hpp"
#include "core/stream.hpp"

namespace storesched {

/// Admission classes, best first. Wire tokens: "high", "normal", "low".
enum class ServePriority { kHigh = 0, kNormal = 1, kLow = 2 };

/// Canonical wire token for a priority class.
const char* to_string(ServePriority priority);

/// One parsed request line. Exactly one of {instance, ref, statsz,
/// cancel_id} is populated (the parser enforces it).
struct ServeRequest {
  std::string id;  ///< echoed in the response; empty = none
  std::shared_ptr<const Instance> instance;
  /// Record index into the server's attached shm instance store
  /// (storage/shm_store.hpp) -- solve-by-reference without shipping the
  /// instance over the socket. Servers without a store answer an error.
  std::optional<std::uint64_t> ref;
  std::string spec;  ///< explicit solver spec; empty = routed
  std::optional<double> slo_ms;
  std::optional<double> deadline_ms;
  ServePriority priority = ServePriority::kNormal;
  std::size_t quality = 0;  ///< deepest preferred router rung
  bool statsz = false;
  std::string cancel_id;  ///< nonempty = cancel message

  bool is_solve() const { return instance != nullptr || ref.has_value(); }
};

/// Serializes a request in canonical key order. Round-trips through
/// serve_request_from_jsonl() as a fixpoint (the fuzz oracle's contract).
std::string serve_request_to_jsonl(const ServeRequest& request);

/// Parses a request line. Throws std::runtime_error naming the offending
/// token on malformed input: unknown keys, duplicate keys, bad priority
/// tokens, negative/over-range numbers, a solve request without an
/// instance, or statsz/cancel combined with solve fields.
ServeRequest serve_request_from_jsonl(const std::string& line);

/// What the admission path decided for a request (response "admission").
enum class ServeAdmission {
  kOk,        ///< served at the requested quality, SLO met (or no SLO)
  kDegraded,  ///< load pushed the route past the requested quality rung
  kOverSlo,   ///< even the cheapest rung missed the SLO; served anyway
  kRejected,  ///< not admitted (queue full); no solve was attempted
};

const char* to_string(ServeAdmission admission);

/// One response line for a solved (or failed) request. `result` may be
/// null (protocol errors, rejections, cancel acks).
struct ServeResponse {
  std::string id;
  bool ok = true;
  std::string error;  ///< set when !ok
  std::optional<ServeAdmission> admission;
  std::string spec;  ///< solver spec that answered (empty when none ran)
  int rung = -1;     ///< router rung that answered; -1 = explicit spec
  double queue_ms = 0;
  double solve_ms = 0;
  const SolveResult* result = nullptr;
  std::string cancel_ack;  ///< id acknowledged by a cancel message
};

/// One response as a single JSONL line (no trailing newline).
std::string serve_response_to_jsonl(const ServeResponse& response,
                                    const JsonlResultOptions& options = {});

/// Incremental newline framing over a socket byte stream with a hard
/// per-line byte cap. feed() bytes as they arrive, then drain next():
///
///   LineFramer framer(1 << 20);
///   framer.feed(buf, n);
///   while (auto line = framer.next()) {
///     if (line->oversized) ...  // cap exceeded; payload was discarded
///     else handle(line->text);
///   }
///
/// A line longer than `max_line` bytes flips the framer into discard mode
/// until the next newline, then yields one {oversized=true} marker for
/// the whole offending line -- the connection stays framed and usable, it
/// just cannot smuggle an unbounded allocation in. A trailing fragment
/// with no newline (mid-line disconnect) stays buffered: partial() names
/// its size so the server can account for it; it is never delivered.
class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line) : max_line_(max_line) {}

  /// Appends raw bytes. O(n) amortized; never throws past bad_alloc
  /// (allocation is capped at max_line + one read's worth).
  void feed(const char* data, std::size_t size);

  struct Line {
    std::string text;  ///< empty when oversized
    bool oversized = false;
  };

  /// The next complete line (terminator stripped, '\r' before '\n'
  /// tolerated), or nullopt when no full line is buffered.
  std::optional<Line> next();

  /// Bytes of an unterminated trailing fragment currently buffered.
  std::size_t partial() const { return discarding_ ? 0 : buffer_.size(); }

  /// True when the buffered fragment belongs to an oversized line still
  /// waiting for its newline.
  bool discarding() const { return discarding_; }

 private:
  std::size_t max_line_;
  std::string buffer_;  ///< the unterminated tail (or nothing)
  std::deque<Line> ready_;
  bool discarding_ = false;
};

}  // namespace storesched
