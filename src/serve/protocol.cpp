#include "serve/protocol.hpp"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/io.hpp"

namespace storesched {

const char* to_string(ServePriority priority) {
  switch (priority) {
    case ServePriority::kHigh: return "high";
    case ServePriority::kNormal: return "normal";
    case ServePriority::kLow: return "low";
  }
  return "normal";
}

const char* to_string(ServeAdmission admission) {
  switch (admission) {
    case ServeAdmission::kOk: return "ok";
    case ServeAdmission::kDegraded: return "degraded";
    case ServeAdmission::kOverSlo: return "over_slo";
    case ServeAdmission::kRejected: return "rejected";
  }
  return "ok";
}

namespace {

/// Canonical decimal for millisecond fields: integers print bare, the
/// rest as fixed-6 with trailing zeros trimmed. Stable under reparse for
/// every value the parser admits (< 1e9, so fixed-6 carries more
/// precision than a double's half-ulp at that magnitude).
std::string fmt_ms(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << v;
  std::string s = os.str();
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

/// Strict cursor over one request line (the ErrorRecordParser school:
/// exact tokens, no leading zeros, duplicate keys rejected).
class RequestParser {
 public:
  explicit RequestParser(const std::string& line) : s_(line) {}

  ServeRequest parse() {
    ServeRequest req;
    bool saw_id = false, saw_instance = false, saw_spec = false;
    bool saw_slo = false, saw_deadline = false, saw_priority = false;
    bool saw_quality = false, saw_statsz = false, saw_cancel = false;
    bool saw_ref = false;
    skip_ws();
    expect('{');
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '}') {
      for (;;) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "id") {
          require_fresh(saw_id, key);
          req.id = parse_string();
        } else if (key == "instance") {
          require_fresh(saw_instance, key);
          req.instance = std::make_shared<Instance>(
              instance_from_jsonl(parse_raw_object()));
        } else if (key == "ref") {
          require_fresh(saw_ref, key);
          const double v = parse_number("ref");
          if (v != std::floor(v)) {
            fail("\"ref\" must be an integer record index");
          }
          req.ref = static_cast<std::uint64_t>(v);
        } else if (key == "spec") {
          require_fresh(saw_spec, key);
          req.spec = parse_string();
          if (req.spec.empty()) fail("\"spec\" must not be empty");
        } else if (key == "slo_ms") {
          require_fresh(saw_slo, key);
          req.slo_ms = parse_number("slo_ms");
        } else if (key == "deadline_ms") {
          require_fresh(saw_deadline, key);
          req.deadline_ms = parse_number("deadline_ms");
          if (*req.deadline_ms <= 0) fail("\"deadline_ms\" must be > 0");
        } else if (key == "priority") {
          require_fresh(saw_priority, key);
          const std::string token = parse_string();
          if (token == "high") {
            req.priority = ServePriority::kHigh;
          } else if (token == "normal") {
            req.priority = ServePriority::kNormal;
          } else if (token == "low") {
            req.priority = ServePriority::kLow;
          } else {
            fail("unknown priority \"" + token + "\"");
          }
        } else if (key == "quality") {
          require_fresh(saw_quality, key);
          const double v = parse_number("quality");
          if (v != std::floor(v) || v > 1000000) {
            fail("\"quality\" must be an integer rung index <= 1000000");
          }
          req.quality = static_cast<std::size_t>(v);
        } else if (key == "statsz") {
          require_fresh(saw_statsz, key);
          if (!try_consume("true")) fail("\"statsz\" must be true");
          req.statsz = true;
        } else if (key == "cancel") {
          require_fresh(saw_cancel, key);
          req.cancel_id = parse_string();
          if (req.cancel_id.empty()) fail("\"cancel\" must name a request id");
        } else {
          fail("unknown key \"" + key + "\"");
        }
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
    }
    expect('}');
    skip_ws();
    if (pos_ != s_.size()) fail("trailing bytes after the request");

    const bool solve_fields =
        saw_spec || saw_slo || saw_deadline || saw_priority || saw_quality;
    if (req.statsz) {
      if (saw_instance || saw_ref || solve_fields || saw_cancel) {
        fail("\"statsz\" requests carry no solve or cancel fields");
      }
    } else if (!req.cancel_id.empty()) {
      if (saw_instance || saw_ref || solve_fields) {
        fail("\"cancel\" messages carry no solve fields");
      }
    } else if (saw_instance && saw_ref) {
      fail("\"instance\" and \"ref\" are mutually exclusive");
    } else if (!saw_instance && !saw_ref) {
      fail("request needs \"instance\", \"ref\", \"statsz\", or \"cancel\"");
    }
    return req;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("serve request: " + what + " (at byte " +
                             std::to_string(pos_) + ")");
  }

  void require_fresh(bool& seen, const std::string& key) {
    if (seen) fail("duplicate key \"" + key + "\"");
    seen = true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(const char* token) {
    const std::size_t len = std::char_traits<char>::length(token);
    if (s_.compare(pos_, len, token) != 0) return false;
    pos_ += len;
    return true;
  }

  /// Non-negative decimal: digits with an optional fraction part. Capped
  /// at 1e9 so canonical fixed-6 printing is reparse-stable.
  double parse_number(const char* key) {
    const std::size_t begin = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      fail(std::string("\"") + key + "\" must be non-negative");
    }
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ == begin) fail("expected a number");
    if (pos_ - begin > 1 && s_[begin] == '0') fail("leading zero in number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
      if (pos_ == frac) fail("digits required after the decimal point");
    }
    const double v = std::strtod(s_.substr(begin, pos_ - begin).c_str(),
                                 nullptr);
    if (!(v < 1e9)) fail(std::string("\"") + key + "\" out of range (< 1e9)");
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            if (h >= '0' && h <= '9') {
              value = value * 16 + static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value = value * 16 + static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value = value * 16 + static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("malformed \\u escape");
            }
          }
          if (value > 0x7f) fail("\\u escape outside ASCII");
          out.push_back(static_cast<char>(value));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  /// The raw bytes of one balanced {...} object starting at the cursor
  /// (strings skipped correctly), handed to instance_from_jsonl.
  std::string parse_raw_object() {
    const std::size_t begin = pos_;
    if (pos_ >= s_.size() || s_[pos_] != '{') fail("expected an object");
    int depth = 0;
    bool in_string = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (in_string) {
        if (c == '\\') {
          if (pos_ >= s_.size()) fail("dangling escape in instance");
          ++pos_;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) return s_.substr(begin, pos_ - begin);
        if (depth < 0) fail("unbalanced instance object");
      }
    }
    fail("unterminated instance object");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serve_request_to_jsonl(const ServeRequest& request) {
  std::ostringstream os;
  os << '{';
  const char* sep = "";
  const auto field = [&](const char* key, const std::string& value) {
    os << sep << '"' << key << "\":\"" << json_escape(value) << '"';
    sep = ",";
  };
  if (!request.id.empty()) field("id", request.id);
  if (request.statsz) {
    os << sep << "\"statsz\":true";
    sep = ",";
  }
  if (!request.cancel_id.empty()) field("cancel", request.cancel_id);
  if (!request.spec.empty()) field("spec", request.spec);
  if (request.slo_ms) {
    os << sep << "\"slo_ms\":" << fmt_ms(*request.slo_ms);
    sep = ",";
  }
  if (request.deadline_ms) {
    os << sep << "\"deadline_ms\":" << fmt_ms(*request.deadline_ms);
    sep = ",";
  }
  if (request.priority != ServePriority::kNormal) {
    field("priority", to_string(request.priority));
  }
  if (request.quality != 0) {
    os << sep << "\"quality\":" << request.quality;
    sep = ",";
  }
  if (request.instance) {
    os << sep << "\"instance\":" << instance_to_jsonl(*request.instance);
    sep = ",";
  }
  if (request.ref) {
    os << sep << "\"ref\":" << *request.ref;
    sep = ",";
  }
  os << '}';
  return os.str();
}

ServeRequest serve_request_from_jsonl(const std::string& line) {
  return RequestParser(line).parse();
}

std::string serve_response_to_jsonl(const ServeResponse& response,
                                    const JsonlResultOptions& options) {
  std::ostringstream os;
  os << '{';
  if (!response.id.empty()) {
    os << "\"id\":\"" << json_escape(response.id) << "\",";
  }
  os << "\"ok\":" << (response.ok ? "true" : "false");
  if (!response.ok) {
    os << ",\"error\":\"" << json_escape(response.error) << '"';
  }
  if (!response.cancel_ack.empty()) {
    os << ",\"cancelled\":\"" << json_escape(response.cancel_ack) << '"';
  }
  if (response.admission) {
    os << ",\"admission\":\"" << to_string(*response.admission) << '"';
  }
  if (!response.spec.empty()) {
    os << ",\"spec\":\"" << json_escape(response.spec) << '"';
    if (response.rung >= 0) os << ",\"rung\":" << response.rung;
    os << ",\"queue_ms\":" << fmt(response.queue_ms, 3)
       << ",\"solve_ms\":" << fmt(response.solve_ms, 3);
  }
  if (response.result) os << result_jsonl_fields(*response.result, options);
  os << '}';
  return os.str();
}

void LineFramer::feed(const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (discarding_) {
        ready_.push_back({std::string(), /*oversized=*/true});
        discarding_ = false;
      } else {
        if (!buffer_.empty() && buffer_.back() == '\r') buffer_.pop_back();
        ready_.push_back({std::move(buffer_), /*oversized=*/false});
      }
      buffer_.clear();
      continue;
    }
    if (discarding_) continue;
    if (buffer_.size() >= max_line_) {
      // Cap exceeded: drop what we buffered and skip to the newline.
      buffer_.clear();
      discarding_ = true;
      continue;
    }
    buffer_.push_back(c);
  }
}

std::optional<LineFramer::Line> LineFramer::next() {
  if (ready_.empty()) return std::nullopt;
  Line line = std::move(ready_.front());
  ready_.pop_front();
  return line;
}

}  // namespace storesched
