// Fuzz target for the wire formats -- the parsing surfaces a serving tier
// exposes to untrusted bytes: the JSONL wires (common/io.hpp,
// core/stream.hpp, serve/protocol.hpp) and the binary container
// (storage/wire_format.hpp).
//
// Contract under fuzzing:
//   * instance_from_jsonl() either returns a valid Instance or throws
//     std::runtime_error. Any other exception type, any crash, and any
//     sanitizer report is a bug.
//   * Accepted lines round-trip: instance_to_jsonl(parse(line)) reparses
//     to an equal instance and is a serialization fixpoint.
//   * Small accepted instances also solve + serialize through
//     result_to_jsonl() without throwing (the full service line path).
//   * serve_request_from_jsonl() (serve/protocol.hpp, the storesched_serve
//     request line) holds the same reject-or-fixpoint contract.
//   * The binary wire holds it too, byte-for-byte: decode_instances() /
//     decode_results() / decode_result_payload() either parse or throw
//     std::runtime_error (truncations, bit flips, hostile section tables
//     are errors, never UB), accepted payloads are a
//     decode -> encode -> decode fixpoint, and the zero-copy InstanceView
//     (the mmap/shm read path) accepts exactly what decode_instances()
//     accepts and materializes equal instances.
//
// Two build modes (CMakeLists.txt):
//   * libFuzzer (-DSTORESCHED_LIBFUZZER=ON, Clang): the CI fuzz job runs a
//     bounded pass over tools/fuzz_corpus/ with ASan+UBSan.
//   * standalone (default, STORESCHED_FUZZ_STANDALONE): main() replays
//     corpus files/directories byte-for-byte through the same target; a
//     ctest (fuzz_jsonl_corpus) runs it over the committed corpus so crash
//     regressions stay pinned under every compiler and sanitizer config.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "common/schedule.hpp"
#include "core/solver.hpp"
#include "core/stream.hpp"
#include "serve/protocol.hpp"
#include "storage/wire_format.hpp"

namespace {

using storesched::Instance;

[[noreturn]] void die(const char* stage, const std::exception& e) {
  std::fprintf(stderr, "fuzz_jsonl: unexpected exception at %s: %s\n", stage,
               e.what());
  std::abort();
}

/// True iff the two instances are equal field-for-field (the round-trip
/// oracle; Instance itself has no operator== because aggregates are
/// derived).
bool instances_equal(const Instance& a, const Instance& b) {
  if (a.n() != b.n() || a.m() != b.m() ||
      a.has_precedence() != b.has_precedence()) {
    return false;
  }
  for (storesched::TaskId i = 0; i < static_cast<storesched::TaskId>(a.n());
       ++i) {
    if (!(a.task(i) == b.task(i))) return false;
  }
  if (a.has_precedence() && !(a.dag() == b.dag())) return false;
  return true;
}

/// The binary container (storage/wire_format.hpp): every decoder over the
/// input bytes, a canonical-bytes fixpoint for whatever they accept, and
/// owning-decoder/zero-copy-view agreement.
void fuzz_binary(const std::string& line) {
  // InstanceView is the mmap/shm read path and requires 8-aligned bytes
  // (pages are); give the fuzz input the same guarantee.
  std::vector<std::uint64_t> aligned(line.size() / 8 + 1);
  std::memcpy(aligned.data(), line.data(), line.size());
  const std::string_view bytes(reinterpret_cast<const char*>(aligned.data()),
                               line.size());

  // Instance containers: decode -> encode -> decode fixpoint, and the
  // zero-copy view must accept exactly what the owning decoder accepts.
  bool decoded_ok = false;
  std::vector<Instance> decoded;
  try {
    decoded = storesched::wire::decode_instances(bytes);
    decoded_ok = true;
  } catch (const std::runtime_error&) {
    // rejection is the expected outcome for hostile bytes
  } catch (const std::exception& e) {
    die("binary instance decode (only std::runtime_error is allowed)", e);
  }
  bool view_ok = false;
  try {
    const storesched::wire::InstanceView view(bytes);
    view_ok = true;
    if (decoded_ok) {
      if (view.count() != decoded.size()) {
        std::fprintf(stderr, "fuzz_jsonl: InstanceView count %zu != %zu\n",
                     view.count(), decoded.size());
        std::abort();
      }
      for (std::size_t i = 0; i < decoded.size(); ++i) {
        if (!instances_equal(view.materialize(i), decoded[i])) {
          std::fprintf(stderr,
                       "fuzz_jsonl: InstanceView materialize(%zu) mismatch\n",
                       i);
          std::abort();
        }
      }
    }
  } catch (const std::runtime_error&) {
    // rejection is the expected outcome for hostile bytes
  } catch (const std::exception& e) {
    die("InstanceView (only std::runtime_error is allowed)", e);
  }
  if (decoded_ok != view_ok) {
    std::fprintf(stderr,
                 "fuzz_jsonl: decode_instances %s but InstanceView %s\n",
                 decoded_ok ? "accepted" : "rejected",
                 view_ok ? "accepted" : "rejected");
    std::abort();
  }
  if (decoded_ok) {
    try {
      const std::string canon = storesched::wire::encode_instances(decoded);
      const std::vector<Instance> back =
          storesched::wire::decode_instances(canon);
      bool equal = back.size() == decoded.size();
      for (std::size_t i = 0; equal && i < back.size(); ++i) {
        equal = instances_equal(back[i], decoded[i]);
      }
      if (!equal || storesched::wire::encode_instances(back) != canon) {
        std::fprintf(stderr,
                     "fuzz_jsonl: binary instance container not a fixpoint\n");
        std::abort();
      }
    } catch (const std::exception& e) {
      die("binary instance re-encode of an accepted container", e);
    }
  }

  // Result containers: same fixpoint, compared through the JSONL surface
  // (the equality every downstream consumer sees).
  try {
    const std::vector<storesched::wire::IndexedResult> results =
        storesched::wire::decode_results(bytes);
    const std::string canon = storesched::wire::encode_results(results);
    const std::vector<storesched::wire::IndexedResult> back =
        storesched::wire::decode_results(canon);
    bool equal = back.size() == results.size();
    for (std::size_t i = 0; equal && i < back.size(); ++i) {
      equal = back[i].index == results[i].index &&
              storesched::result_to_jsonl(0, back[i].result,
                                          {.include_schedule = true}) ==
                  storesched::result_to_jsonl(0, results[i].result,
                                              {.include_schedule = true});
    }
    if (!equal || storesched::wire::encode_results(back) != canon) {
      std::fprintf(stderr,
                   "fuzz_jsonl: binary result container not a fixpoint\n");
      std::abort();
    }
  } catch (const std::runtime_error&) {
    // rejection is the expected outcome for hostile bytes
  } catch (const std::exception& e) {
    die("binary result decode (only std::runtime_error is allowed)", e);
  }

  // Bare result-payload blobs (the result cache's slot format).
  try {
    const storesched::SolveResult result =
        storesched::wire::decode_result_payload(bytes);
    const std::string canon = storesched::wire::encode_result_payload(result);
    const storesched::SolveResult back =
        storesched::wire::decode_result_payload(canon);
    if (storesched::result_to_jsonl(0, back, {.include_schedule = true}) !=
            storesched::result_to_jsonl(0, result,
                                        {.include_schedule = true}) ||
        storesched::wire::encode_result_payload(back) != canon) {
      std::fprintf(stderr, "fuzz_jsonl: result payload not a fixpoint\n");
      std::abort();
    }
  } catch (const std::runtime_error&) {
    // rejection is the expected outcome for hostile bytes
  } catch (const std::exception& e) {
    die("result payload decode (only std::runtime_error is allowed)", e);
  }
}

void fuzz_one(const std::uint8_t* data, std::size_t size) {
  // Bound the per-input work: the wire format is line-oriented and a
  // megabyte-scale single line only slows exploration down.
  constexpr std::size_t kMaxInput = std::size_t{1} << 20;
  if (size > kMaxInput) return;
  const std::string line(reinterpret_cast<const char*>(data), size);

  // The error-record wire (core/stream.hpp) shares the contract: reject
  // with std::runtime_error or accept into a canonical round-trip fixpoint.
  try {
    const storesched::StreamError error =
        storesched::stream_error_from_jsonl(line);
    const std::string wire = storesched::stream_error_to_jsonl(error);
    const storesched::StreamError back =
        storesched::stream_error_from_jsonl(wire);
    if (back.index != error.index || back.line != error.line ||
        back.category != error.category || back.attempts != error.attempts ||
        back.what != error.what ||
        storesched::stream_error_to_jsonl(back) != wire) {
      std::fprintf(stderr,
                   "fuzz_jsonl: error-record round-trip mismatch for %s\n",
                   wire.c_str());
      std::abort();
    }
  } catch (const std::runtime_error&) {
    // rejection is the expected outcome for malformed bytes
  } catch (const std::exception& e) {
    die("error-record parse (only std::runtime_error is allowed)", e);
  }

  // The serving tier's request wire (serve/protocol.hpp) -- the surface
  // storesched_serve exposes to raw sockets -- holds the same contract:
  // std::runtime_error on rejection, canonical fixpoint on acceptance.
  try {
    const storesched::ServeRequest request =
        storesched::serve_request_from_jsonl(line);
    const std::string wire = storesched::serve_request_to_jsonl(request);
    const storesched::ServeRequest back =
        storesched::serve_request_from_jsonl(wire);
    const bool equal =
        back.id == request.id && back.spec == request.spec &&
        back.slo_ms == request.slo_ms &&
        back.deadline_ms == request.deadline_ms &&
        back.priority == request.priority && back.quality == request.quality &&
        back.statsz == request.statsz && back.cancel_id == request.cancel_id &&
        back.is_solve() == request.is_solve() &&
        (!request.is_solve() ||
         instances_equal(*back.instance, *request.instance));
    if (!equal || storesched::serve_request_to_jsonl(back) != wire) {
      std::fprintf(stderr,
                   "fuzz_jsonl: serve-request round-trip mismatch for %s\n",
                   wire.c_str());
      std::abort();
    }
  } catch (const std::runtime_error&) {
    // rejection is the expected outcome for malformed bytes
  } catch (const std::exception& e) {
    die("serve-request parse (only std::runtime_error is allowed)", e);
  }

  fuzz_binary(line);

  Instance inst;
  try {
    inst = storesched::instance_from_jsonl(line, /*line_number=*/1);
  } catch (const std::runtime_error&) {
    return;  // rejection is the expected outcome for malformed bytes
  } catch (const std::exception& e) {
    die("parse (only std::runtime_error is allowed)", e);
  }

  // Round-trip: serialize -> reparse -> equal, and the serialization is a
  // fixpoint (canonical form).
  try {
    const std::string wire = storesched::instance_to_jsonl(inst);
    const Instance back = storesched::instance_from_jsonl(wire, 1);
    if (!instances_equal(inst, back)) {
      std::fprintf(stderr, "fuzz_jsonl: round-trip mismatch for %s\n",
                   wire.c_str());
      std::abort();
    }
    if (storesched::instance_to_jsonl(back) != wire) {
      std::fprintf(stderr, "fuzz_jsonl: serialization not a fixpoint: %s\n",
                   wire.c_str());
      std::abort();
    }
  } catch (const std::exception& e) {
    die("round-trip", e);
  }

  // Drive small accepted instances through the rest of the service line
  // path: a memory-blind solve plus the result wire format. Bounded so the
  // fuzzer never allocates O(m) gigabytes for a pathological-but-valid
  // {"m":2000000000,...} line.
  if (inst.n() == 0 || inst.n() > 256 || inst.m() > 256) return;
  try {
    static const auto solver = storesched::make_solver("graham:input");
    const storesched::SolveResult result = solver->solve(inst);
    const std::string out = storesched::result_to_jsonl(
        0, result, {.include_schedule = true});
    if (out.empty() || out.front() != '{' || out.back() != '}') {
      std::fprintf(stderr, "fuzz_jsonl: malformed result line: %s\n",
                   out.c_str());
      std::abort();
    }
  } catch (const std::exception& e) {
    die("solve + result_to_jsonl on a valid instance", e);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(data, size);
  return 0;
}

#ifdef STORESCHED_FUZZ_STANDALONE
// Replay driver: every argument is a corpus file or a directory of corpus
// files; each is fed through the fuzz target once. Exits nonzero if no
// input was replayed (a misplaced corpus must not pass vacuously).
#include <filesystem>
#include <fstream>
#include <vector>

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz_jsonl: cannot read %s\n", path.c_str());
    return -1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  fuzz_one(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> entries;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) entries.push_back(entry.path());
      }
      for (const auto& path : entries) {
        const int r = replay_file(path);
        if (r < 0) return 1;
        replayed += r;
      }
    } else {
      const int r = replay_file(arg);
      if (r < 0) return 1;
      replayed += r;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "fuzz_jsonl: no corpus inputs found\n");
    return 1;
  }
  std::printf("fuzz_jsonl: replayed %d corpus inputs, no crashes\n", replayed);
  return 0;
}
#endif  // STORESCHED_FUZZ_STANDALONE
