// storesched_serve -- the serving-tier front-end (src/serve/server.hpp).
//
// Listens on a unix-domain socket and/or TCP, speaks the JSONL request
// protocol (docs/SERVING.md), routes each request to the cheapest solver
// spec predicted to meet its SLO, and answers on the same connection:
//
//   ./storesched_serve --unix=/tmp/storesched.sock
//       --router='rls:bottom,delta=3;sbo:lpt,delta=3/2' &
//   printf '%s\n' '{"id":"a","instance":{"m":2,"tasks":[[3,1],[2,2]]}}'
//     | ./storesched_client --unix=/tmp/storesched.sock
//
// Readiness is announced on stderr ("[storesched_serve] listening on ...")
// once the sockets are bound and the workers are up -- supervisors and
// tests wait for that line, not a sleep. SIGTERM/SIGINT drain gracefully:
// stop accepting, answer everything admitted, flush, exit 0.
//
// Exit status: 0 clean drain, 1 runtime failure (bad spec, bind error), 2
// usage errors.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "storesched.hpp"

namespace {

using namespace storesched;

ServeServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->notify_shutdown();
}

struct ServeCli {
  ServeOptions options;
  std::string router_spec = "rls:bottom,delta=3;sbo:lpt,delta=3/2";
  std::string store_name;  ///< shm instance store to attach; empty = none
  bool cache = false;      ///< enable the canonicalization result cache
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: storesched_serve [--unix=PATH] [--tcp=PORT] [options]\n"
        "\n"
        "Listeners (at least one):\n"
        "  --unix=PATH        unix-domain socket (stale files are reclaimed)\n"
        "  --tcp=PORT         TCP on 127.0.0.1 (0 = ephemeral; the bound\n"
        "                     port is in the readiness line)\n"
        "  --host=ADDR        TCP bind address (default 127.0.0.1)\n"
        "\n"
        "Service:\n"
        "  --router=SPECS     ';'-separated solver ladder, best quality\n"
        "                     first; the last rung is the degradation\n"
        "                     anchor (default rls:bottom,delta=3;\n"
        "                     sbo:lpt,delta=3/2)\n"
        "  --threads=N        solver workers (0 = hardware)\n"
        "  --conn-window=N    per-connection in-flight window (default 16)\n"
        "  --max-queue=N      admission queue bound (default 4096)\n"
        "  --max-line=BYTES   request line cap (default 1 MiB)\n"
        "  --capacity=N       memory capacity for constrained:* solvers\n"
        "  --validate         validate every feasible schedule\n"
        "  --schedule         include \"proc\"/\"start\" in responses\n"
        "\n"
        "Storage (docs/WIRE_FORMAT.md):\n"
        "  --store=NAME       attach the shm instance store NAME (published\n"
        "                     by storesched_cli --store-publish); enables\n"
        "                     {\"ref\":N} solve-by-reference requests\n"
        "  --cache            canonicalization-keyed result cache; shared\n"
        "                     across processes when --store is set, private\n"
        "                     otherwise\n"
        "\n"
        "Protocol, SLO and priority fields, fairness model: docs/SERVING.md.\n"
        "SIGTERM/SIGINT drain gracefully and exit 0.\n";
}

std::int64_t parse_int_flag(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("malformed value for " + flag + ": \"" + value +
                             "\"");
  }
}

std::int64_t parse_count_flag(const std::string& flag,
                              const std::string& value) {
  const std::int64_t v = parse_int_flag(flag, value);
  if (v < 0) {
    throw std::runtime_error(flag.substr(0, flag.find('=')) +
                             " must be non-negative, got " + value);
  }
  return v;
}

ServeCli parse_cli(int argc, char** argv) {
  ServeCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg.rfind("--unix=", 0) == 0) {
      cli.options.unix_path = value_of("--unix=");
    } else if (arg.rfind("--tcp=", 0) == 0) {
      cli.options.tcp_port =
          static_cast<int>(parse_count_flag(arg, value_of("--tcp=")));
    } else if (arg.rfind("--host=", 0) == 0) {
      cli.options.tcp_host = value_of("--host=");
    } else if (arg.rfind("--router=", 0) == 0) {
      cli.router_spec = value_of("--router=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.options.threads =
          static_cast<int>(parse_count_flag(arg, value_of("--threads=")));
    } else if (arg.rfind("--conn-window=", 0) == 0) {
      cli.options.conn_window = static_cast<std::size_t>(
          parse_count_flag(arg, value_of("--conn-window=")));
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      cli.options.max_queue = static_cast<std::size_t>(
          parse_count_flag(arg, value_of("--max-queue=")));
    } else if (arg.rfind("--max-line=", 0) == 0) {
      cli.options.max_line = static_cast<std::size_t>(
          parse_count_flag(arg, value_of("--max-line=")));
    } else if (arg.rfind("--capacity=", 0) == 0) {
      cli.options.solve.memory_capacity =
          parse_int_flag(arg, value_of("--capacity="));
    } else if (arg == "--validate") {
      cli.options.solve.validate = true;
    } else if (arg == "--schedule") {
      cli.options.result.include_schedule = true;
    } else if (arg.rfind("--store=", 0) == 0) {
      cli.store_name = value_of("--store=");
      if (cli.store_name.empty()) {
        throw std::runtime_error("--store needs a store name");
      }
    } else if (arg == "--cache") {
      cli.cache = true;
    } else {
      throw std::runtime_error("unknown option: " + arg);
    }
  }
  return cli;
}

std::vector<std::string> split_ladder(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string rung =
        spec.substr(start, semi == std::string::npos ? semi : semi - start);
    if (!rung.empty()) out.push_back(rung);
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ServeCli cli;
  try {
    cli = parse_cli(argc, argv);
  } catch (const std::exception& err) {
    std::cerr << "storesched_serve: " << err.what() << "\n";
    print_usage(std::cerr);
    return 2;
  }
  if (cli.help) {
    print_usage(std::cout);
    return 0;
  }
  cli.options.ladder = split_ladder(cli.router_spec);

  try {
    // Storage attachments outlive the server (ServeOptions carries bare
    // pointers): declared first, destroyed last.
    std::optional<storage::ShmStore> store;
    std::unique_ptr<storage::SolveCache> private_cache;
    if (!cli.store_name.empty()) {
      store.emplace(storage::ShmStore::attach(cli.store_name));
      cli.options.store = &*store;
      if (cli.cache) cli.options.cache = &store->cache();
      const storage::ShmStore::Info info = store->info();
      std::cerr << "[storesched_serve] store " << cli.store_name << ": epoch="
                << info.epoch << " instances=" << info.instances << "\n";
    } else if (cli.cache) {
      private_cache = std::make_unique<storage::SolveCache>();
      cli.options.cache = private_cache.get();
    }

    ServeServer server(cli.options);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    // One stable readiness line: supervisors and the cram suite wait for
    // it instead of sleeping (ephemeral TCP ports resolve here too).
    std::string where;
    if (!cli.options.unix_path.empty()) where += " unix:" + cli.options.unix_path;
    if (server.tcp_port() >= 0) {
      where += " tcp:" + cli.options.tcp_host + ":" +
               std::to_string(server.tcp_port());
    }
    std::cerr << "[storesched_serve] listening on" << where
              << " (workers=" << server.workers() << ")" << std::endl;

    server.wait_for_shutdown_request();
    server.shutdown();
    const ServeCounters counters = server.counters();
    std::cerr << "[storesched_serve] drained: requests=" << counters.requests
              << " responses=" << counters.responses
              << " rejected=" << counters.rejected
              << " deadline_expired=" << counters.deadline_expired;
    if (cli.cache) {
      // Cache-less runs keep the historical drain line byte-for-byte (the
      // cram suite pins it).
      const std::uint64_t consulted =
          counters.cache_hits + counters.cache_misses;
      std::cerr << " cache_hits=" << counters.cache_hits
                << " cache_misses=" << counters.cache_misses
                << " cache_hit_rate="
                << (consulted > 0 ? 100 * counters.cache_hits / consulted : 0)
                << "%";
    }
    std::cerr << "\n";
    return 0;
  } catch (const std::exception& err) {
    std::cerr << "storesched_serve: " << err.what() << "\n";
    return 1;
  }
}
