// storesched_cli -- JSONL solve service for shell-pipeline sharding.
//
// Reads one instance per line on stdin (the instance_to_jsonl() format,
// common/io.hpp) and streams one result per line on stdout via the bounded
// solve_stream pipeline (core/stream.hpp), so a million-instance study is
// a shell pipeline with O(window) memory per process:
//
//   ./storesched_cli --gen=1000000 > instances.jsonl
//   split -n l/8 instances.jsonl shard.
//   for s in shard.*; do
//     ./storesched_cli --spec=rls:input,delta=3 < "$s" > "$s.out" &
//   done; wait
//
// Modes:
//   --spec=SPEC                solve stdin JSONL -> stdout JSONL (default)
//   --gen=COUNT                emit COUNT synthetic instances as JSONL
//   --check --spec=S --expect=F  re-solve stdin in-process (solve_batch) and
//                              diff objectives against the result JSONL in F
//   --list-specs               print the canonical solver registry
//
// Fault tolerance (docs/ROBUSTNESS.md): --on-error picks the per-record
// failure policy (abort/skip/retry), --errors streams failed records as
// JSONL, and --journal/--resume give crash-safe exactly-once restart.
// SIGINT/SIGTERM cancel gracefully: in-flight solves finish, delivered
// work is journaled, and the exit code says what happened.
//
// Exit status: 0 success; 1 usage errors, malformed input under
// --on-error=abort (naming the line), or --check mismatches; 2 cancelled
// (signal or token); 3 completed with per-record failures recorded
// (skip/retry). Wire format details: docs/SOLVER_SPECS.md.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "storesched.hpp"

namespace {

using namespace storesched;

struct CliOptions {
  std::string spec;
  std::optional<Mem> capacity;
  bool validate = false;
  std::optional<double> deadline_ms;
  int threads = 0;
  std::size_t window = 0;
  bool ordered = true;
  bool include_schedule = false;
  std::string input_path;   // empty = stdin
  std::string output_path;  // empty = stdout

  // Fault tolerance.
  FailureAction on_error = FailureAction::kAbort;
  int retry_max = 3;
  std::string errors_path;   // empty = failures are counted, not recorded
  std::string journal_path;  // empty = no journal
  bool resume = false;
  std::size_t journal_every = 16;

  // --gen mode.
  std::optional<std::size_t> gen_count;
  std::size_t gen_n = 20;
  int gen_m = 4;
  std::string gen_kind = "uniform";  // or a DAG family via --gen-dag
  std::string gen_dag;
  std::uint64_t seed = 1;

  // --check mode.
  bool check = false;
  std::string expect_path;

  // Storage tier (docs/WIRE_FORMAT.md).
  storage::WireFormatKind format = storage::WireFormatKind::kAuto;
  bool convert = false;          // `convert` subcommand
  std::string convert_to = "binary";  // --to=binary|jsonl
  std::string store_name;        // --store=NAME: solve from the shm store
  std::string store_publish;     // --store-publish=NAME
  std::string store_info;        // --store-info=NAME
  std::string store_unlink;      // --store-unlink=NAME
  bool cache = false;            // --cache: result cache for solve mode

  bool list_specs = false;
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: storesched_cli --spec=SPEC [options] < in.jsonl > out.jsonl\n"
        "       storesched_cli --gen=COUNT [--gen-n=N] [--gen-m=M]\n"
        "                      [--gen-kind=KIND | --gen-dag=FAMILY] [--seed=S]\n"
        "       storesched_cli convert [--to=binary|jsonl] < in > out\n"
        "       storesched_cli --check --spec=SPEC --expect=RESULTS.jsonl\n"
        "       storesched_cli --store-publish=NAME < instances\n"
        "       storesched_cli --store-info=NAME | --store-unlink=NAME\n"
        "       storesched_cli --list-specs\n"
        "\n"
        "Solve mode (default): one instance JSON object per input line, one\n"
        "result JSON object per output line; O(window) memory, any input size.\n"
        "  --spec=SPEC        solver spec (docs/SOLVER_SPECS.md)\n"
        "  --capacity=N       memory capacity for constrained:* solvers\n"
        "  --validate         validate every feasible schedule\n"
        "  --deadline-ms=X    per-solve wall-clock budget (0 = none);\n"
        "                     over-budget solves come back infeasible with\n"
        "                     the cause in diagnostics\n"
        "  --threads=N        worker threads (0 = hardware)\n"
        "  --window=N         in-flight window (0 = adaptive: sized from\n"
        "                     observed result footprints under a 64 MiB\n"
        "                     ceiling; the chosen window is reported)\n"
        "  --as-completed     emit results as they finish (default: in input\n"
        "                     order); lines carry their input index either way\n"
        "  --schedule         include \"proc\" (and \"start\") in result lines\n"
        "  --input=P/--output=P  read/write files instead of stdin/stdout\n"
        "\n"
        "Fault tolerance (docs/ROBUSTNESS.md):\n"
        "  --on-error=POLICY  abort (default: first failure stops the run),\n"
        "                     skip (record the failure, keep streaming), or\n"
        "                     retry (re-attempt transient faults with\n"
        "                     backoff, then skip)\n"
        "  --retry-max=N      total attempts per record under retry "
        "(default 3)\n"
        "  --errors=P         write failed records as JSONL error records\n"
        "  --journal=P        append fsync'd progress checkpoints to P\n"
        "                     (requires --input/--output files, ordered "
        "mode)\n"
        "  --resume           continue from the journal: truncate outputs\n"
        "                     to the last checkpoint, skip the finished\n"
        "                     input prefix, keep global record indices\n"
        "  --journal-every=N  checkpoint every N records (default 16)\n"
        "SIGINT/SIGTERM cancel gracefully (in-flight work is delivered and\n"
        "journaled). Exit: 0 ok, 1 error/abort, 2 cancelled, 3 completed\n"
        "with recorded failures.\n"
        "\n"
        "Gen mode: KIND in {uniform, correlated, anticorrelated, bimodal},\n"
        "or --gen-dag in {layered, random, forkjoin, cholesky, fft, soc}.\n"
        "\n"
        "Storage (docs/WIRE_FORMAT.md):\n"
        "  --format=F         instance input wire: auto (default, sniffs the\n"
        "                     magic bytes), jsonl, or binary\n"
        "  convert --to=F     re-encode the input instances as binary\n"
        "                     (default) or jsonl; lossless both ways\n"
        "  --store-publish=N  publish the input instances into the named\n"
        "                     shared-memory store (atomic epoch swap;\n"
        "                     attached readers are never torn)\n"
        "  --store=N          solve from the named store's current epoch\n"
        "                     instead of stdin\n"
        "  --store-info=N     print the store's epoch, instance count, and\n"
        "                     result-cache counters\n"
        "  --store-unlink=N   remove every segment of the store, including\n"
        "                     orphans left by killed writers\n"
        "  --cache            canonicalization-keyed result cache for solve\n"
        "                     mode; shared when --store is set, private\n"
        "                     otherwise\n"
        "\n"
        "Check mode: re-solves the input instances in-process (solve_batch)\n"
        "and diffs feasibility + (Cmax, Mmax) against --expect; exits 1 on\n"
        "any mismatch. Accepts --capacity/--threads; --expect lines may be\n"
        "in any order (they carry indices).\n";
}

std::int64_t parse_int_flag(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("malformed value for " + flag + ": \"" + value +
                             "\"");
  }
}

/// For count/size flags, where a negative would wrap to a huge size_t
/// (--gen=-1 must not stream 1.8e19 instances).
std::int64_t parse_count_flag(const std::string& flag,
                              const std::string& value) {
  const std::int64_t v = parse_int_flag(flag, value);
  if (v < 0) {
    throw std::runtime_error(flag.substr(0, flag.find('=')) +
                             " must be non-negative, got " + value);
  }
  return v;
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg == "--list-specs") {
      cli.list_specs = true;
    } else if (arg.rfind("--spec=", 0) == 0) {
      cli.spec = value_of("--spec=");
    } else if (arg.rfind("--capacity=", 0) == 0) {
      cli.capacity = parse_int_flag(arg, value_of("--capacity="));
    } else if (arg == "--validate") {
      cli.validate = true;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      cli.deadline_ms =
          static_cast<double>(parse_count_flag(arg, value_of("--deadline-ms=")));
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads =
          static_cast<int>(parse_int_flag(arg, value_of("--threads=")));
    } else if (arg.rfind("--window=", 0) == 0) {
      cli.window =
          static_cast<std::size_t>(parse_count_flag(arg, value_of("--window=")));
    } else if (arg == "--as-completed") {
      cli.ordered = false;
    } else if (arg == "--schedule") {
      cli.include_schedule = true;
    } else if (arg.rfind("--input=", 0) == 0) {
      cli.input_path = value_of("--input=");
    } else if (arg.rfind("--output=", 0) == 0) {
      cli.output_path = value_of("--output=");
    } else if (arg.rfind("--on-error=", 0) == 0) {
      const std::string value = value_of("--on-error=");
      if (value == "abort") {
        cli.on_error = FailureAction::kAbort;
      } else if (value == "skip") {
        cli.on_error = FailureAction::kSkip;
      } else if (value == "retry") {
        cli.on_error = FailureAction::kRetry;
      } else {
        throw std::runtime_error("--on-error must be abort, skip, or retry; " +
                                 ("got \"" + value + "\""));
      }
    } else if (arg.rfind("--retry-max=", 0) == 0) {
      cli.retry_max =
          static_cast<int>(parse_count_flag(arg, value_of("--retry-max=")));
      if (cli.retry_max < 1) {
        throw std::runtime_error("--retry-max must be >= 1");
      }
    } else if (arg.rfind("--errors=", 0) == 0) {
      cli.errors_path = value_of("--errors=");
    } else if (arg.rfind("--journal=", 0) == 0) {
      cli.journal_path = value_of("--journal=");
    } else if (arg == "--resume") {
      cli.resume = true;
    } else if (arg.rfind("--journal-every=", 0) == 0) {
      cli.journal_every = static_cast<std::size_t>(
          parse_count_flag(arg, value_of("--journal-every=")));
      if (cli.journal_every == 0) {
        throw std::runtime_error("--journal-every must be >= 1");
      }
    } else if (arg.rfind("--gen=", 0) == 0) {
      cli.gen_count =
          static_cast<std::size_t>(parse_count_flag(arg, value_of("--gen=")));
    } else if (arg.rfind("--gen-n=", 0) == 0) {
      cli.gen_n =
          static_cast<std::size_t>(parse_count_flag(arg, value_of("--gen-n=")));
    } else if (arg.rfind("--gen-m=", 0) == 0) {
      cli.gen_m = static_cast<int>(parse_int_flag(arg, value_of("--gen-m=")));
    } else if (arg.rfind("--gen-kind=", 0) == 0) {
      cli.gen_kind = value_of("--gen-kind=");
    } else if (arg.rfind("--gen-dag=", 0) == 0) {
      cli.gen_dag = value_of("--gen-dag=");
    } else if (arg.rfind("--seed=", 0) == 0) {
      cli.seed =
          static_cast<std::uint64_t>(parse_int_flag(arg, value_of("--seed=")));
    } else if (arg == "--check") {
      cli.check = true;
    } else if (arg.rfind("--expect=", 0) == 0) {
      cli.expect_path = value_of("--expect=");
    } else if (arg == "convert") {
      cli.convert = true;
    } else if (arg.rfind("--to=", 0) == 0) {
      cli.convert_to = value_of("--to=");
      if (cli.convert_to != "binary" && cli.convert_to != "jsonl") {
        throw std::runtime_error("--to must be binary or jsonl, got \"" +
                                 cli.convert_to + "\"");
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      cli.format = storage::wire_format_from_string(value_of("--format="));
    } else if (arg.rfind("--store=", 0) == 0) {
      cli.store_name = value_of("--store=");
    } else if (arg.rfind("--store-publish=", 0) == 0) {
      cli.store_publish = value_of("--store-publish=");
    } else if (arg.rfind("--store-info=", 0) == 0) {
      cli.store_info = value_of("--store-info=");
    } else if (arg.rfind("--store-unlink=", 0) == 0) {
      cli.store_unlink = value_of("--store-unlink=");
    } else if (arg == "--cache") {
      cli.cache = true;
    } else {
      throw std::runtime_error("unknown flag \"" + arg +
                               "\" (--help for usage)");
    }
  }
  return cli;
}

SolveOptions solve_options_from(const CliOptions& cli) {
  SolveOptions options;
  options.memory_capacity = cli.capacity;
  options.validate = cli.validate;
  // 0 means "no deadline", matching the tool's --threads=0/--window=0
  // use-the-default convention (a 0 ns budget would fail every solve).
  if (cli.deadline_ms && *cli.deadline_ms > 0) {
    options.deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double, std::milli>(*cli.deadline_ms));
  }
  return options;
}

int run_gen(const CliOptions& cli, std::ostream& out) {
  Rng rng(cli.seed);
  for (std::size_t i = 0; i < *cli.gen_count; ++i) {
    Instance inst = [&] {
      if (!cli.gen_dag.empty()) {
        return generate_dag_by_name(cli.gen_dag, cli.gen_n, cli.gen_m, {},
                                    rng);
      }
      GenParams gp;
      gp.n = cli.gen_n;
      gp.m = cli.gen_m;
      return generate_by_name(cli.gen_kind, gp, rng);
    }();
    out << instance_to_jsonl(inst) << '\n';
  }
  // Same invariant as run_solve: a truncated instance file must not
  // exit 0, or a sharded study silently runs on fewer instances.
  out.flush();
  if (!out) throw std::runtime_error("writing instances failed");
  return 0;
}

/// Slurps every instance from `in`, honoring --format (auto sniffs the
/// magic bytes). The converter and the store publisher both need the full
/// set in memory: the binary container's section layout is global.
std::vector<Instance> read_instances(const CliOptions& cli, std::istream& in) {
  std::vector<Instance> instances;
  const auto source = storage::open_instance_source(in, cli.format);
  while (std::shared_ptr<const Instance> inst = source->next()) {
    instances.push_back(*inst);
  }
  return instances;
}

int run_convert(const CliOptions& cli, std::istream& in, std::ostream& out) {
  const std::vector<Instance> instances = read_instances(cli, in);
  if (cli.convert_to == "binary") {
    const std::string bytes = wire::encode_instances(instances);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  } else {
    for (const Instance& inst : instances) {
      out << instance_to_jsonl(inst) << '\n';
    }
  }
  out.flush();
  if (!out) throw std::runtime_error("writing converted instances failed");
  std::cerr << "[storesched_cli] convert: " << instances.size()
            << " instances -> " << cli.convert_to << "\n";
  return 0;
}

int run_store_publish(const CliOptions& cli, std::istream& in) {
  const std::vector<Instance> instances = read_instances(cli, in);
  storage::ShmStore store = storage::ShmStore::create(cli.store_publish);
  store.publish(wire::encode_instances(instances));
  const storage::ShmStore::Info info = store.info();
  std::cerr << "[storesched_cli] store " << cli.store_publish
            << ": published epoch " << info.epoch << " ("
            << info.instances << " instances, " << info.data_bytes
            << " bytes)\n";
  return 0;
}

int run_store_info(const CliOptions& cli, std::ostream& out) {
  storage::ShmStore store = storage::ShmStore::attach(cli.store_info);
  const storage::ShmStore::Info info = store.info();
  out << "{\"store\":\"" << json_escape(cli.store_info)
      << "\",\"epoch\":" << info.epoch
      << ",\"instances\":" << info.instances
      << ",\"data_bytes\":" << info.data_bytes
      << ",\"cache\":{\"hits\":" << info.cache.hits
      << ",\"misses\":" << info.cache.misses
      << ",\"inserts\":" << info.cache.inserts
      << ",\"bytes\":" << info.cache.bytes << "}}" << std::endl;
  if (!out) throw std::runtime_error("writing store info failed");
  return 0;
}

int run_store_unlink(const CliOptions& cli) {
  const std::size_t removed = storage::ShmStore::unlink(cli.store_unlink);
  std::cerr << "[storesched_cli] store " << cli.store_unlink << ": removed "
            << removed << " segment(s)\n";
  return 0;
}

// Written by the async-signal handler, polled by the cancel watcher:
// signal handlers cannot touch mutexes, so the CancelToken (whose reason
// channel locks) is driven from an ordinary thread instead.
std::atomic<int> g_signal{0};

extern "C" void cli_signal_handler(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
}

/// Polls g_signal and turns the first SIGINT/SIGTERM into a reasoned
/// cooperative cancel: in-flight solves finish, delivered work stays
/// delivered (and journaled), and the reason lands in the stderr summary.
class SignalCancelWatcher {
 public:
  explicit SignalCancelWatcher(std::shared_ptr<CancelToken> token)
      : token_(std::move(token)) {
    std::signal(SIGINT, cli_signal_handler);
    std::signal(SIGTERM, cli_signal_handler);
    thread_ = std::thread([this] {
      while (!done_.load(std::memory_order_acquire)) {
        const int sig = g_signal.load(std::memory_order_relaxed);
        if (sig != 0) {
          token_->request_cancel(
              std::string("signal ") +
              (sig == SIGINT ? "SIGINT" : sig == SIGTERM ? "SIGTERM"
                                                         : std::to_string(sig))
              + " received");
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }
  ~SignalCancelWatcher() {
    done_.store(true, std::memory_order_release);
    thread_.join();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }

 private:
  std::shared_ptr<CancelToken> token_;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

int exit_code_for(const StreamStats& stats) {
  if (stats.cancelled) return 2;
  if (stats.failed > 0) return 3;
  return 0;
}

void print_summary(const std::string& solver_name, const CliOptions& cli,
                   const StreamStats& stats) {
  std::cerr << "[storesched_cli] " << solver_name << ": " << stats.delivered
            << " results (" << stats.feasible << " feasible), max "
            << stats.max_in_flight << " in flight, window " << stats.window
            << (cli.window == 0 ? " (adaptive)" : "");
  if (cli.cache) {
    // Cache-less runs keep the historical summary byte-for-byte.
    std::cerr << ", cache " << stats.cache_hits << " hits / "
              << stats.cache_misses << " misses";
  }
  if (stats.failed > 0) std::cerr << ", " << stats.failed << " failed";
  if (stats.retries > 0) {
    std::cerr << ", " << stats.retries << " retries (" << stats.recovered
              << " recovered)";
  }
  if (stats.degraded_spawn) std::cerr << ", degraded (worker spawn failed)";
  std::cerr << "\n";
  if (stats.cancelled) {
    std::cerr << "[storesched_cli] cancelled"
              << (stats.cancel_reason.empty() ? std::string()
                                              : ": " + stats.cancel_reason)
              << "\n";
  }
}

int run_solve(const CliOptions& cli, std::istream& in, std::ostream& out) {
  const auto solver = make_solver(cli.spec);

  StreamOptions stream;
  stream.threads = cli.threads;
  stream.window = cli.window;
  stream.ordered = cli.ordered;
  stream.on_error.action = cli.on_error;
  stream.on_error.retry.max_attempts = cli.retry_max;
  auto token = std::make_shared<CancelToken>();
  stream.cancel = token;
  const SignalCancelWatcher watcher(token);

  // Storage attachments must outlive the run (StreamOptions carries a bare
  // cache pointer; the shm source maps the store's bytes).
  std::optional<storage::ShmStore> store;
  std::unique_ptr<storage::SolveCache> private_cache;
  if (!cli.store_name.empty()) {
    store.emplace(storage::ShmStore::attach(cli.store_name));
  }
  if (cli.cache) {
    if (store) {
      stream.cache = &store->cache();
    } else {
      private_cache = std::make_unique<storage::SolveCache>();
      stream.cache = private_cache.get();
    }
  }

  StreamStats stats;
  if (!cli.journal_path.empty()) {
    if (store || cli.format == storage::WireFormatKind::kBinary) {
      throw std::runtime_error(
          "--journal resumes by re-reading JSONL files (drop --store / "
          "--format=binary)");
    }
    // Journaled path: the journal layer owns file lifecycles (it truncates
    // outputs to the checkpoint on resume), so it takes paths, not streams.
    if (cli.input_path.empty() || cli.output_path.empty()) {
      throw std::runtime_error(
          "--journal requires --input and --output files (resume re-reads "
          "and truncates them)");
    }
    if (!cli.ordered) {
      throw std::runtime_error(
          "--journal requires ordered delivery (drop --as-completed)");
    }
    if (cli.resume) {
      if (const auto cp = StreamJournal::load(cli.journal_path)) {
        std::cerr << "[storesched_cli] resuming at record " << cp->completed
                  << " (input line " << cp->source_lines << ", journal "
                  << cli.journal_path << ")\n";
      } else {
        std::cerr << "[storesched_cli] no usable journal at "
                  << cli.journal_path << ", starting fresh\n";
      }
    }
    JournaledRunOptions journal;
    journal.input_path = cli.input_path;
    journal.output_path = cli.output_path;
    journal.errors_path = cli.errors_path;
    journal.journal_path = cli.journal_path;
    journal.resume = cli.resume;
    journal.journal_every = cli.journal_every;
    journal.result_options.include_schedule = cli.include_schedule;
    stats = run_journaled_jsonl(*solver, journal, solve_options_from(cli),
                                stream);
  } else {
    if (cli.resume) {
      throw std::runtime_error("--resume requires --journal=PATH");
    }
    std::ofstream err_file;
    std::optional<JsonlErrorSink> err_sink;
    if (!cli.errors_path.empty()) {
      err_file.open(cli.errors_path);
      if (!err_file) {
        throw std::runtime_error("cannot write --errors=" + cli.errors_path);
      }
      err_sink.emplace(err_file);
      stream.errors = &*err_sink;
    }
    const std::unique_ptr<InstanceSource> source =
        store ? std::unique_ptr<InstanceSource>(
                    std::make_unique<storage::ShmInstanceSource>(*store))
              : storage::open_instance_source(in, cli.format);
    JsonlResultSink sink(out, {.include_schedule = cli.include_schedule});
    stats = solve_stream(*solver, *source, sink, solve_options_from(cli),
                         stream);
    // A result line lost to a failed final flush must not exit 0: a
    // downstream shard merge would silently drop it.
    out.flush();
    if (!out) throw std::runtime_error("writing results failed");
    if (err_sink) {
      err_file.flush();
      if (!err_file) throw std::runtime_error("writing error records failed");
    }
  }
  print_summary(solver->name(), cli, stats);
  return exit_code_for(stats);
}

/// Scans a result JSONL line for "key":<integer>. Returns nullopt when the
/// key is absent (e.g. cmax on an infeasible line).
std::optional<std::int64_t> scan_int_field(const std::string& line,
                                           const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return std::stoll(line.substr(at + needle.size()));
}

int run_check(const CliOptions& cli, std::istream& in) {
  // Expected objectives, keyed by index (shards may emit out of order).
  std::ifstream expect(cli.expect_path);
  if (!expect) {
    throw std::runtime_error("cannot read --expect=" + cli.expect_path);
  }
  struct Expected {
    bool feasible = false;
    std::int64_t cmax = 0;
    std::int64_t mmax = 0;
  };
  std::vector<std::optional<Expected>> expected;
  std::string line;
  while (std::getline(expect, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::optional<std::int64_t> index = scan_int_field(line, "index");
    if (!index || *index < 0) {
      throw std::runtime_error("--expect line without an index: " + line);
    }
    Expected e;
    e.feasible = line.find("\"feasible\":true") != std::string::npos;
    if (e.feasible) {
      const auto cmax = scan_int_field(line, "cmax");
      const auto mmax = scan_int_field(line, "mmax");
      if (!cmax || !mmax) {
        throw std::runtime_error("--expect feasible line without objectives: " +
                                 line);
      }
      e.cmax = *cmax;
      e.mmax = *mmax;
    }
    const auto i = static_cast<std::size_t>(*index);
    if (i >= expected.size()) expected.resize(i + 1);
    if (expected[i]) {
      throw std::runtime_error("--expect has two lines for index " +
                               std::to_string(i));
    }
    expected[i] = e;
  }

  // Re-solve in-process through the batch API (itself a solve_stream
  // wrapper, but an independent path through VectorSink + solve_batch).
  const std::vector<Instance> instances = read_instances(cli, in);
  const std::vector<SolveResult> results = solve_batch(
      cli.spec, instances, solve_options_from(cli), {.threads = cli.threads});

  std::size_t mismatches = 0;
  if (expected.size() != results.size()) {
    std::cerr << "check: " << results.size() << " instances but "
              << expected.size() << " expected results\n";
    ++mismatches;
  }
  const std::size_t common = std::min(expected.size(), results.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!expected[i]) {
      std::cerr << "check: no expected result for index " << i << "\n";
      ++mismatches;
      continue;
    }
    const SolveResult& got = results[i];
    if (expected[i]->feasible != got.feasible) {
      std::cerr << "check: index " << i << " feasibility mismatch (expected "
                << expected[i]->feasible << ", solved " << got.feasible
                << ")\n";
      ++mismatches;
    } else if (got.feasible && (expected[i]->cmax != got.objectives.cmax ||
                                expected[i]->mmax != got.objectives.mmax)) {
      std::cerr << "check: index " << i << " objectives mismatch (expected ("
                << expected[i]->cmax << ", " << expected[i]->mmax
                << "), solved (" << got.objectives.cmax << ", "
                << got.objectives.mmax << "))\n";
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    std::cerr << "check: " << mismatches << " mismatch(es) against "
              << cli.expect_path << "\n";
    return 1;
  }
  std::cerr << "check: " << results.size() << " results match "
            << cli.expect_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions cli = parse_cli(argc, argv);
    if (cli.help) {
      print_usage(std::cout);
      return 0;
    }
    if (cli.list_specs) {
      for (const std::string& spec : registered_solver_specs()) {
        std::cout << spec << '\n';
      }
      return 0;
    }
    if (cli.gen_count) {
      std::ofstream out_file;
      if (!cli.output_path.empty()) {
        out_file.open(cli.output_path);
        if (!out_file) {
          throw std::runtime_error("cannot write --output=" + cli.output_path);
        }
      }
      return run_gen(cli, cli.output_path.empty() ? std::cout : out_file);
    }
    if (!cli.store_unlink.empty()) return run_store_unlink(cli);
    if (!cli.store_info.empty()) return run_store_info(cli, std::cout);
    if (cli.convert || !cli.store_publish.empty()) {
      std::ifstream in_file;
      if (!cli.input_path.empty()) {
        in_file.open(cli.input_path, std::ios::binary);
        if (!in_file) {
          throw std::runtime_error("cannot read --input=" + cli.input_path);
        }
      }
      std::istream& in = cli.input_path.empty() ? std::cin : in_file;
      if (!cli.store_publish.empty()) return run_store_publish(cli, in);
      std::ofstream out_file;
      if (!cli.output_path.empty()) {
        out_file.open(cli.output_path, std::ios::binary);
        if (!out_file) {
          throw std::runtime_error("cannot write --output=" + cli.output_path);
        }
      }
      return run_convert(cli, in,
                         cli.output_path.empty() ? std::cout : out_file);
    }
    if (cli.spec.empty()) {
      print_usage(std::cerr);
      return 1;
    }

    // Journaled runs own their file lifecycles inside run_journaled_jsonl
    // (a resume must inspect and truncate the existing output, so opening
    // -- and thereby truncating -- it here would destroy the very state
    // being resumed). Only open streams here for the unjournaled paths.
    const bool journaled = !cli.journal_path.empty() && !cli.check;

    std::ifstream in_file;
    if (!cli.input_path.empty() && !journaled) {
      in_file.open(cli.input_path);
      if (!in_file) {
        throw std::runtime_error("cannot read --input=" + cli.input_path);
      }
    }
    std::istream& in =
        cli.input_path.empty() || journaled ? std::cin : in_file;

    if (cli.check) {
      if (cli.expect_path.empty()) {
        throw std::runtime_error("--check requires --expect=RESULTS.jsonl");
      }
      return run_check(cli, in);
    }

    std::ofstream out_file;
    if (!cli.output_path.empty() && !journaled) {
      out_file.open(cli.output_path);
      if (!out_file) {
        throw std::runtime_error("cannot write --output=" + cli.output_path);
      }
    }
    return run_solve(cli, in,
                     cli.output_path.empty() || journaled ? std::cout
                                                          : out_file);
  } catch (const std::exception& e) {
    std::cerr << "storesched_cli: " << e.what() << "\n";
    return 1;
  }
}
