// storesched_cli -- JSONL solve service for shell-pipeline sharding.
//
// Reads one instance per line on stdin (the instance_to_jsonl() format,
// common/io.hpp) and streams one result per line on stdout via the bounded
// solve_stream pipeline (core/stream.hpp), so a million-instance study is
// a shell pipeline with O(window) memory per process:
//
//   ./storesched_cli --gen=1000000 > instances.jsonl
//   split -n l/8 instances.jsonl shard.
//   for s in shard.*; do
//     ./storesched_cli --spec=rls:input,delta=3 < "$s" > "$s.out" &
//   done; wait
//
// Modes:
//   --spec=SPEC                solve stdin JSONL -> stdout JSONL (default)
//   --gen=COUNT                emit COUNT synthetic instances as JSONL
//   --check --spec=S --expect=F  re-solve stdin in-process (solve_batch) and
//                              diff objectives against the result JSONL in F
//   --list-specs               print the canonical solver registry
//
// Exit status: 0 on success; 1 on usage errors, malformed input (naming the
// line), or --check mismatches. Wire format details: docs/SOLVER_SPECS.md.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "storesched.hpp"

namespace {

using namespace storesched;

struct CliOptions {
  std::string spec;
  std::optional<Mem> capacity;
  bool validate = false;
  std::optional<double> deadline_ms;
  int threads = 0;
  std::size_t window = 0;
  bool ordered = true;
  bool include_schedule = false;
  std::string input_path;   // empty = stdin
  std::string output_path;  // empty = stdout

  // --gen mode.
  std::optional<std::size_t> gen_count;
  std::size_t gen_n = 20;
  int gen_m = 4;
  std::string gen_kind = "uniform";  // or a DAG family via --gen-dag
  std::string gen_dag;
  std::uint64_t seed = 1;

  // --check mode.
  bool check = false;
  std::string expect_path;

  bool list_specs = false;
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: storesched_cli --spec=SPEC [options] < in.jsonl > out.jsonl\n"
        "       storesched_cli --gen=COUNT [--gen-n=N] [--gen-m=M]\n"
        "                      [--gen-kind=KIND | --gen-dag=FAMILY] [--seed=S]\n"
        "       storesched_cli --check --spec=SPEC --expect=RESULTS.jsonl\n"
        "       storesched_cli --list-specs\n"
        "\n"
        "Solve mode (default): one instance JSON object per input line, one\n"
        "result JSON object per output line; O(window) memory, any input size.\n"
        "  --spec=SPEC        solver spec (docs/SOLVER_SPECS.md)\n"
        "  --capacity=N       memory capacity for constrained:* solvers\n"
        "  --validate         validate every feasible schedule\n"
        "  --deadline-ms=X    per-solve wall-clock budget (0 = none);\n"
        "                     over-budget solves come back infeasible with\n"
        "                     the cause in diagnostics\n"
        "  --threads=N        worker threads (0 = hardware)\n"
        "  --window=N         in-flight window (0 = adaptive: sized from\n"
        "                     observed result footprints under a 64 MiB\n"
        "                     ceiling; the chosen window is reported)\n"
        "  --as-completed     emit results as they finish (default: in input\n"
        "                     order); lines carry their input index either way\n"
        "  --schedule         include \"proc\" (and \"start\") in result lines\n"
        "  --input=P/--output=P  read/write files instead of stdin/stdout\n"
        "\n"
        "Gen mode: KIND in {uniform, correlated, anticorrelated, bimodal},\n"
        "or --gen-dag in {layered, random, forkjoin, cholesky, fft, soc}.\n"
        "\n"
        "Check mode: re-solves the input instances in-process (solve_batch)\n"
        "and diffs feasibility + (Cmax, Mmax) against --expect; exits 1 on\n"
        "any mismatch. Accepts --capacity/--threads; --expect lines may be\n"
        "in any order (they carry indices).\n";
}

std::int64_t parse_int_flag(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("malformed value for " + flag + ": \"" + value +
                             "\"");
  }
}

/// For count/size flags, where a negative would wrap to a huge size_t
/// (--gen=-1 must not stream 1.8e19 instances).
std::int64_t parse_count_flag(const std::string& flag,
                              const std::string& value) {
  const std::int64_t v = parse_int_flag(flag, value);
  if (v < 0) {
    throw std::runtime_error(flag.substr(0, flag.find('=')) +
                             " must be non-negative, got " + value);
  }
  return v;
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg == "--list-specs") {
      cli.list_specs = true;
    } else if (arg.rfind("--spec=", 0) == 0) {
      cli.spec = value_of("--spec=");
    } else if (arg.rfind("--capacity=", 0) == 0) {
      cli.capacity = parse_int_flag(arg, value_of("--capacity="));
    } else if (arg == "--validate") {
      cli.validate = true;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      cli.deadline_ms =
          static_cast<double>(parse_count_flag(arg, value_of("--deadline-ms=")));
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads =
          static_cast<int>(parse_int_flag(arg, value_of("--threads=")));
    } else if (arg.rfind("--window=", 0) == 0) {
      cli.window =
          static_cast<std::size_t>(parse_count_flag(arg, value_of("--window=")));
    } else if (arg == "--as-completed") {
      cli.ordered = false;
    } else if (arg == "--schedule") {
      cli.include_schedule = true;
    } else if (arg.rfind("--input=", 0) == 0) {
      cli.input_path = value_of("--input=");
    } else if (arg.rfind("--output=", 0) == 0) {
      cli.output_path = value_of("--output=");
    } else if (arg.rfind("--gen=", 0) == 0) {
      cli.gen_count =
          static_cast<std::size_t>(parse_count_flag(arg, value_of("--gen=")));
    } else if (arg.rfind("--gen-n=", 0) == 0) {
      cli.gen_n =
          static_cast<std::size_t>(parse_count_flag(arg, value_of("--gen-n=")));
    } else if (arg.rfind("--gen-m=", 0) == 0) {
      cli.gen_m = static_cast<int>(parse_int_flag(arg, value_of("--gen-m=")));
    } else if (arg.rfind("--gen-kind=", 0) == 0) {
      cli.gen_kind = value_of("--gen-kind=");
    } else if (arg.rfind("--gen-dag=", 0) == 0) {
      cli.gen_dag = value_of("--gen-dag=");
    } else if (arg.rfind("--seed=", 0) == 0) {
      cli.seed =
          static_cast<std::uint64_t>(parse_int_flag(arg, value_of("--seed=")));
    } else if (arg == "--check") {
      cli.check = true;
    } else if (arg.rfind("--expect=", 0) == 0) {
      cli.expect_path = value_of("--expect=");
    } else {
      throw std::runtime_error("unknown flag \"" + arg +
                               "\" (--help for usage)");
    }
  }
  return cli;
}

SolveOptions solve_options_from(const CliOptions& cli) {
  SolveOptions options;
  options.memory_capacity = cli.capacity;
  options.validate = cli.validate;
  // 0 means "no deadline", matching the tool's --threads=0/--window=0
  // use-the-default convention (a 0 ns budget would fail every solve).
  if (cli.deadline_ms && *cli.deadline_ms > 0) {
    options.deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double, std::milli>(*cli.deadline_ms));
  }
  return options;
}

int run_gen(const CliOptions& cli, std::ostream& out) {
  Rng rng(cli.seed);
  for (std::size_t i = 0; i < *cli.gen_count; ++i) {
    Instance inst = [&] {
      if (!cli.gen_dag.empty()) {
        return generate_dag_by_name(cli.gen_dag, cli.gen_n, cli.gen_m, {},
                                    rng);
      }
      GenParams gp;
      gp.n = cli.gen_n;
      gp.m = cli.gen_m;
      return generate_by_name(cli.gen_kind, gp, rng);
    }();
    out << instance_to_jsonl(inst) << '\n';
  }
  // Same invariant as run_solve: a truncated instance file must not
  // exit 0, or a sharded study silently runs on fewer instances.
  out.flush();
  if (!out) throw std::runtime_error("writing instances failed");
  return 0;
}

int run_solve(const CliOptions& cli, std::istream& in, std::ostream& out) {
  const auto solver = make_solver(cli.spec);
  JsonlInstanceSource source(in);
  JsonlResultSink sink(out, {.include_schedule = cli.include_schedule});
  StreamOptions stream;
  stream.threads = cli.threads;
  stream.window = cli.window;
  stream.ordered = cli.ordered;
  const StreamStats stats =
      solve_stream(*solver, source, sink, solve_options_from(cli), stream);
  // A result line lost to a failed final flush must not exit 0: a
  // downstream shard merge would silently drop it.
  out.flush();
  if (!out) throw std::runtime_error("writing results failed");
  std::cerr << "[storesched_cli] " << solver->name() << ": " << stats.delivered
            << " results (" << stats.feasible << " feasible), max "
            << stats.max_in_flight << " in flight, window " << stats.window
            << (cli.window == 0 ? " (adaptive)" : "") << "\n";
  return 0;
}

/// Scans a result JSONL line for "key":<integer>. Returns nullopt when the
/// key is absent (e.g. cmax on an infeasible line).
std::optional<std::int64_t> scan_int_field(const std::string& line,
                                           const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return std::stoll(line.substr(at + needle.size()));
}

int run_check(const CliOptions& cli, std::istream& in) {
  // Expected objectives, keyed by index (shards may emit out of order).
  std::ifstream expect(cli.expect_path);
  if (!expect) {
    throw std::runtime_error("cannot read --expect=" + cli.expect_path);
  }
  struct Expected {
    bool feasible = false;
    std::int64_t cmax = 0;
    std::int64_t mmax = 0;
  };
  std::vector<std::optional<Expected>> expected;
  std::string line;
  while (std::getline(expect, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::optional<std::int64_t> index = scan_int_field(line, "index");
    if (!index || *index < 0) {
      throw std::runtime_error("--expect line without an index: " + line);
    }
    Expected e;
    e.feasible = line.find("\"feasible\":true") != std::string::npos;
    if (e.feasible) {
      const auto cmax = scan_int_field(line, "cmax");
      const auto mmax = scan_int_field(line, "mmax");
      if (!cmax || !mmax) {
        throw std::runtime_error("--expect feasible line without objectives: " +
                                 line);
      }
      e.cmax = *cmax;
      e.mmax = *mmax;
    }
    const auto i = static_cast<std::size_t>(*index);
    if (i >= expected.size()) expected.resize(i + 1);
    if (expected[i]) {
      throw std::runtime_error("--expect has two lines for index " +
                               std::to_string(i));
    }
    expected[i] = e;
  }

  // Re-solve in-process through the batch API (itself a solve_stream
  // wrapper, but an independent path through VectorSink + solve_batch).
  std::vector<Instance> instances;
  JsonlInstanceSource source(in);
  while (std::shared_ptr<const Instance> inst = source.next()) {
    instances.push_back(*inst);
  }
  const std::vector<SolveResult> results = solve_batch(
      cli.spec, instances, solve_options_from(cli), {.threads = cli.threads});

  std::size_t mismatches = 0;
  if (expected.size() != results.size()) {
    std::cerr << "check: " << results.size() << " instances but "
              << expected.size() << " expected results\n";
    ++mismatches;
  }
  const std::size_t common = std::min(expected.size(), results.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!expected[i]) {
      std::cerr << "check: no expected result for index " << i << "\n";
      ++mismatches;
      continue;
    }
    const SolveResult& got = results[i];
    if (expected[i]->feasible != got.feasible) {
      std::cerr << "check: index " << i << " feasibility mismatch (expected "
                << expected[i]->feasible << ", solved " << got.feasible
                << ")\n";
      ++mismatches;
    } else if (got.feasible && (expected[i]->cmax != got.objectives.cmax ||
                                expected[i]->mmax != got.objectives.mmax)) {
      std::cerr << "check: index " << i << " objectives mismatch (expected ("
                << expected[i]->cmax << ", " << expected[i]->mmax
                << "), solved (" << got.objectives.cmax << ", "
                << got.objectives.mmax << "))\n";
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    std::cerr << "check: " << mismatches << " mismatch(es) against "
              << cli.expect_path << "\n";
    return 1;
  }
  std::cerr << "check: " << results.size() << " results match "
            << cli.expect_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions cli = parse_cli(argc, argv);
    if (cli.help) {
      print_usage(std::cout);
      return 0;
    }
    if (cli.list_specs) {
      for (const std::string& spec : registered_solver_specs()) {
        std::cout << spec << '\n';
      }
      return 0;
    }
    if (cli.gen_count) {
      std::ofstream out_file;
      if (!cli.output_path.empty()) {
        out_file.open(cli.output_path);
        if (!out_file) {
          throw std::runtime_error("cannot write --output=" + cli.output_path);
        }
      }
      return run_gen(cli, cli.output_path.empty() ? std::cout : out_file);
    }
    if (cli.spec.empty()) {
      print_usage(std::cerr);
      return 1;
    }

    std::ifstream in_file;
    if (!cli.input_path.empty()) {
      in_file.open(cli.input_path);
      if (!in_file) {
        throw std::runtime_error("cannot read --input=" + cli.input_path);
      }
    }
    std::istream& in = cli.input_path.empty() ? std::cin : in_file;

    if (cli.check) {
      if (cli.expect_path.empty()) {
        throw std::runtime_error("--check requires --expect=RESULTS.jsonl");
      }
      return run_check(cli, in);
    }

    std::ofstream out_file;
    if (!cli.output_path.empty()) {
      out_file.open(cli.output_path);
      if (!out_file) {
        throw std::runtime_error("cannot write --output=" + cli.output_path);
      }
    }
    return run_solve(cli, in, cli.output_path.empty() ? std::cout : out_file);
  } catch (const std::exception& e) {
    std::cerr << "storesched_cli: " << e.what() << "\n";
    return 1;
  }
}
