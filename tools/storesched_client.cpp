// storesched_client -- pipelined JSONL client for storesched_serve.
//
// Reads request lines from stdin, sends them over one persistent
// connection with up to --window lines outstanding, and prints response
// lines to stdout as they arrive. The protocol guarantees one response
// line per request line, so the client exits once every request has been
// answered -- responses may arrive out of order (match by "id").
//
//   ./storesched_cli --gen=100
//     | sed 's/.*/{"slo_ms":5,"instance":&}/'
//     | ./storesched_client --unix=/tmp/storesched.sock --window=32
//
// Exit status: 0 all requests answered, 1 connection/protocol failure
// (including the --timeout guard firing), 2 usage errors.
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

namespace {

struct ClientCli {
  std::string unix_path;
  std::optional<int> tcp_port;
  std::string tcp_host = "127.0.0.1";
  std::size_t window = 8;
  int timeout_s = 30;
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: storesched_client (--unix=PATH | --tcp=PORT) [options] "
        "< requests.jsonl\n"
        "  --unix=PATH      connect to a unix-domain socket\n"
        "  --tcp=PORT       connect to 127.0.0.1:PORT (--host overrides)\n"
        "  --host=ADDR      TCP host (default 127.0.0.1)\n"
        "  --window=N       outstanding pipelined requests (default 8)\n"
        "  --timeout=SEC    abort when no response arrives for SEC seconds\n"
        "                   (default 30)\n";
}

std::int64_t parse_count_flag(const std::string& flag,
                              const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used);
    if (used != value.size() || v < 0) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("malformed value for " + flag + ": \"" + value +
                             "\"");
  }
}

ClientCli parse_cli(int argc, char** argv) {
  ClientCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg.rfind("--unix=", 0) == 0) {
      cli.unix_path = value_of("--unix=");
    } else if (arg.rfind("--tcp=", 0) == 0) {
      cli.tcp_port =
          static_cast<int>(parse_count_flag(arg, value_of("--tcp=")));
    } else if (arg.rfind("--host=", 0) == 0) {
      cli.tcp_host = value_of("--host=");
    } else if (arg.rfind("--window=", 0) == 0) {
      cli.window = static_cast<std::size_t>(
          parse_count_flag(arg, value_of("--window=")));
      if (cli.window == 0) throw std::runtime_error("--window must be >= 1");
    } else if (arg.rfind("--timeout=", 0) == 0) {
      cli.timeout_s =
          static_cast<int>(parse_count_flag(arg, value_of("--timeout=")));
    } else {
      throw std::runtime_error("unknown option: " + arg);
    }
  }
  return cli;
}

int connect_to(const ClientCli& cli) {
  if (!cli.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cli.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " + cli.unix_path);
    }
    std::memcpy(addr.sun_path, cli.unix_path.c_str(),
                cli.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      if (fd >= 0) ::close(fd);
      throw std::runtime_error("connect(" + cli.unix_path +
                               "): " + std::strerror(errno));
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(*cli.tcp_port));
  if (::inet_pton(AF_INET, cli.tcp_host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad tcp host: " + cli.tcp_host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("connect(" + cli.tcp_host + ":" +
                             std::to_string(*cli.tcp_port) +
                             "): " + std::strerror(errno));
  }
  return fd;
}

int run(const ClientCli& cli) {
  std::vector<std::string> requests;
  for (std::string line; std::getline(std::cin, line);) {
    if (!line.empty()) requests.push_back(line);
  }
  if (requests.empty()) return 0;

  const int fd = connect_to(cli);
  std::size_t next_send = 0;    // first request not yet fully written
  std::size_t send_off = 0;     // byte offset into requests[next_send]
  bool send_newline = false;    // payload written, terminator pending
  std::size_t answered = 0;
  std::string inbox;

  while (answered < requests.size()) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const bool may_send = next_send < requests.size() &&
                          next_send - answered < cli.window;
    if (may_send) p.events |= POLLOUT;
    const int n = ::poll(&p, 1, cli.timeout_s * 1000);
    if (n == 0) {
      std::cerr << "storesched_client: timed out after " << cli.timeout_s
                << "s (" << answered << "/" << requests.size()
                << " answered)\n";
      ::close(fd);
      return 1;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      std::cerr << "storesched_client: poll: " << std::strerror(errno) << "\n";
      ::close(fd);
      return 1;
    }
    if (p.revents & POLLOUT) {
      const std::string& req = requests[next_send];
      const char* data = send_newline ? "\n" : req.data() + send_off;
      const std::size_t len = send_newline ? 1 : req.size() - send_off;
      const auto sent = ::send(fd, data, len, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
          std::cerr << "storesched_client: send: " << std::strerror(errno)
                    << "\n";
          ::close(fd);
          return 1;
        }
      } else if (send_newline) {
        send_newline = false;
        send_off = 0;
        ++next_send;
      } else {
        send_off += static_cast<std::size_t>(sent);
        if (send_off == req.size()) send_newline = true;
      }
    }
    if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
      char buf[1 << 16];
      const auto got = ::recv(fd, buf, sizeof buf, 0);
      if (got == 0) {
        std::cerr << "storesched_client: server closed the connection ("
                  << answered << "/" << requests.size() << " answered)\n";
        ::close(fd);
        return 1;
      }
      if (got < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        std::cerr << "storesched_client: recv: " << std::strerror(errno)
                  << "\n";
        ::close(fd);
        return 1;
      }
      inbox.append(buf, static_cast<std::size_t>(got));
      std::size_t start = 0;
      for (std::size_t nl = inbox.find('\n', start); nl != std::string::npos;
           nl = inbox.find('\n', start)) {
        std::cout << inbox.substr(start, nl - start) << "\n";
        ++answered;
        start = nl + 1;
      }
      inbox.erase(0, start);
    }
  }
  std::cout.flush();
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientCli cli;
  try {
    cli = parse_cli(argc, argv);
    if (cli.help) {
      print_usage(std::cout);
      return 0;
    }
    if (cli.unix_path.empty() && !cli.tcp_port) {
      throw std::runtime_error("one of --unix/--tcp is required");
    }
  } catch (const std::exception& err) {
    std::cerr << "storesched_client: " << err.what() << "\n";
    print_usage(std::cerr);
    return 2;
  }
  try {
    return run(cli);
  } catch (const std::exception& err) {
    std::cerr << "storesched_client: " << err.what() << "\n";
    return 1;
  }
}
