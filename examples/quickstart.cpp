// Quickstart: the 60-second tour of storesched through the unified API.
//
// Builds a small independent-task instance, runs the paper's two algorithm
// families (SBO_Delta and RLS_Delta) via make_solver(), prints the schedules
// as Gantt charts, shows the exact guarantees each configuration carries
// (Solver::capabilities), and sweeps the Delta knob with front().
//
//   $ ./examples/quickstart
#include <iostream>

#include "storesched.hpp"

int main() {
  using namespace storesched;

  // Eight tasks on three processors. p = processing time, s = storage.
  // Note tasks 4..7: quick but storage-hungry -- the regime where a
  // makespan-only scheduler wrecks the memory objective.
  const Instance inst({{9, 1},
                       {8, 1},
                       {7, 2},
                       {6, 2},
                       {1, 8},
                       {1, 8},
                       {2, 9},
                       {2, 9}},
                      /*m=*/3);
  std::cout << "instance: " << inst.summary() << "\n\n";

  // ---------------------------------------------------------------------
  // 1. SBO_Delta: combine a makespan-oriented schedule (pi_1) with a
  //    memory-oriented one (pi_2) through the Delta threshold.
  // ---------------------------------------------------------------------
  const auto sbo = make_solver("sbo:lpt,delta=1");
  const Capabilities sbo_caps = sbo->capabilities(inst.m());
  const SolveResult sr = sbo->solve(inst);

  std::cout << sbo->name() << ":\n"
            << "  guarantee: Cmax <= " << *sbo_caps.cmax_ratio
            << " * C*max, Mmax <= " << *sbo_caps.mmax_ratio << " * M*max\n"
            << "  measured:  Cmax = " << sr.objectives.cmax
            << " (pi_1 alone: " << sr.sbo->c_ingredient << ")"
            << ", Mmax = " << sr.objectives.mmax
            << " (pi_2 alone: " << sr.sbo->m_ingredient << ")\n\n";

  const Schedule sbo_timed = serialize_assignment(inst, sr.schedule);
  std::cout << render_gantt(inst, sbo_timed) << "\n";

  // ---------------------------------------------------------------------
  // 2. RLS_Delta: list scheduling under a hard memory budget Delta * LB.
  //    Works with precedence constraints too (see examples/soc_codesize).
  // ---------------------------------------------------------------------
  const auto rls = make_solver("rls:input,delta=3");
  const SolveResult rr = rls->solve(inst);
  if (!rr.feasible) {
    std::cerr << "RLS infeasible (cannot happen for Delta > 2): "
              << rr.diagnostics << "\n";
    return 1;
  }
  std::cout << rls->name() << " (memory budget " << rr.rls->cap
            << " = Delta * LB, LB = " << rr.rls->lb << "):\n"
            << "  guarantee: Cmax <= " << *rr.cmax_ratio
            << " * C*max, Mmax <= " << *rr.mmax_ratio << " * M*max\n"
            << "  measured:  Cmax = " << rr.objectives.cmax
            << ", Mmax = " << rr.objectives.mmax
            << ", marked processors = " << rr.rls->marked_count << " (bound "
            << rls_marked_bound(rr.delta, inst.m()) << ")\n\n"
            << render_gantt(inst, rr.schedule);

  // ---------------------------------------------------------------------
  // 3. The knob: sweep Delta to trade makespan against memory (the generic
  //    front() works for any Delta-tunable solver family).
  // ---------------------------------------------------------------------
  std::cout << "\nthe Delta knob (SBO):\n";
  const std::vector<Fraction> grid{Fraction(1, 4), Fraction(1), Fraction(4)};
  const ApproxFront sweep = front(inst, "sbo:lpt", grid);
  std::vector<std::vector<std::string>> rows;
  for (const FrontPoint& pt : sweep.points) {
    rows.push_back({pt.delta.to_string(), std::to_string(pt.value.cmax),
                    std::to_string(pt.value.mmax)});
  }
  std::cout << markdown_table({"Delta", "Cmax", "Mmax"}, rows);
  return 0;
}
