// Quickstart: the 60-second tour of storesched.
//
// Builds a small independent-task instance, runs the paper's two algorithm
// families (SBO_Delta and RLS_Delta), prints the schedules as Gantt charts,
// and shows the guarantees each configuration carries.
//
//   $ ./examples/quickstart
#include <iostream>

#include "algorithms/scheduler.hpp"
#include "common/gantt.hpp"
#include "common/io.hpp"
#include "core/rls.hpp"
#include "core/sbo.hpp"
#include "core/theory.hpp"

int main() {
  using namespace storesched;

  // Eight tasks on three processors. p = processing time, s = storage.
  // Note tasks 4..7: quick but storage-hungry -- the regime where a
  // makespan-only scheduler wrecks the memory objective.
  const Instance inst({{9, 1},
                       {8, 1},
                       {7, 2},
                       {6, 2},
                       {1, 8},
                       {1, 8},
                       {2, 9},
                       {2, 9}},
                      /*m=*/3);
  std::cout << "instance: " << inst.summary() << "\n\n";

  // ---------------------------------------------------------------------
  // 1. SBO_Delta: combine a makespan-oriented schedule (pi_1) with a
  //    memory-oriented one (pi_2) through the Delta threshold.
  // ---------------------------------------------------------------------
  const LptSchedulerAlg lpt;  // rho = 4/3 - 1/(3m) ingredient
  const Fraction delta(1);    // balance both objectives
  const SboResult sbo = sbo_schedule(inst, delta, lpt);

  std::cout << "SBO_" << delta << " with LPT/LPT ingredients:\n"
            << "  guarantee: Cmax <= " << sbo_cmax_ratio(delta, lpt.ratio(3))
            << " * C*max, Mmax <= " << sbo_mmax_ratio(delta, lpt.ratio(3))
            << " * M*max\n"
            << "  measured:  Cmax = " << cmax(inst, sbo.schedule)
            << " (pi_1 alone: " << sbo.c_ingredient << ")"
            << ", Mmax = " << mmax(inst, sbo.schedule)
            << " (pi_2 alone: " << sbo.m_ingredient << ")\n\n";

  const Schedule sbo_timed = serialize_assignment(inst, sbo.schedule);
  std::cout << render_gantt(inst, sbo_timed) << "\n";

  // ---------------------------------------------------------------------
  // 2. RLS_Delta: list scheduling under a hard memory budget Delta * LB.
  //    Works with precedence constraints too (see examples/soc_codesize).
  // ---------------------------------------------------------------------
  const Fraction rls_delta(3);
  const RlsResult rls = rls_schedule(inst, rls_delta);
  if (!rls.feasible) {
    std::cerr << "RLS infeasible (cannot happen for Delta > 2)\n";
    return 1;
  }
  std::cout << "RLS_" << rls_delta << " (memory budget " << rls.cap
            << " = Delta * LB, LB = " << rls.lb << "):\n"
            << "  guarantee: Cmax <= "
            << rls_cmax_ratio(rls_delta, inst.m()) << " * C*max, Mmax <= "
            << rls_mmax_ratio(rls_delta) << " * M*max\n"
            << "  measured:  Cmax = " << cmax(inst, rls.schedule)
            << ", Mmax = " << mmax(inst, rls.schedule)
            << ", marked processors = " << rls.marked_count << " (bound "
            << rls_marked_bound(rls_delta, inst.m()) << ")\n\n"
            << render_gantt(inst, rls.schedule);

  // ---------------------------------------------------------------------
  // 3. The knob: sweep Delta to trade makespan against memory.
  // ---------------------------------------------------------------------
  std::cout << "\nthe Delta knob (SBO):\n";
  std::vector<std::vector<std::string>> rows;
  for (const Fraction d : {Fraction(1, 4), Fraction(1), Fraction(4)}) {
    const SboResult r = sbo_schedule(inst, d, lpt);
    rows.push_back({d.to_string(), std::to_string(cmax(inst, r.schedule)),
                    std::to_string(mmax(inst, r.schedule))});
  }
  std::cout << markdown_table({"Delta", "Cmax", "Mmax"}, rows);
  return 0;
}
