// Scenario: large physics production on a computing grid -- the paper's
// second motivation (ATLAS-style productions "limiting time and memory
// usage ... jointly", Section 1, reference [4]).
//
// 2,000 heavy-tailed analysis jobs produce result files that must stay on
// the worker's scratch storage. Four scheduling questions, all answered
// through the unified solver API:
//   1. bi-objective: sweep SBO's Delta and show the achievable
//      (makespan, storage) trade-off curve;
//   2. tri-objective: users want early partial results, so optimize the
//      mean completion time too (RLS + SPT, Section 5.2);
//   3. constrained: workers have a fixed scratch quota -- use the SBO-driven
//      solver with the paper's binary-search refinement (Section 7);
//   4. throughput: overnight the grid re-plans many independent productions
//      at once -- stream them through solve_stream() with a bounded
//      in-flight window, generating each production on demand (O(window)
//      memory however many sites re-plan).
//
//   $ ./examples/grid_physics
#include <iostream>

#include "storesched.hpp"

int main() {
  using namespace storesched;

  Rng rng(4);  // deterministic production
  const Instance batch = generate_physics_batch(/*n=*/2000, /*m=*/64,
                                                /*alpha=*/1.2, rng);
  std::cout << "production batch: " << batch.summary() << "\n"
            << "lower bounds: Cmax >= " << batch.time_lower_bound()
            << " min, storage >= " << batch.storage_lower_bound()
            << " MB/worker\n\n";

  // 1. The Delta trade-off curve (MULTIFIT: strong 13/11 ingredient).
  std::cout << "SBO trade-off (MULTIFIT/MULTIFIT ingredients):\n";
  std::vector<std::vector<std::string>> rows;
  for (const Fraction delta : {Fraction(1, 8), Fraction(1, 2), Fraction(1),
                               Fraction(2), Fraction(8)}) {
    const auto solver =
        make_solver("sbo:multifit,delta=" + delta.to_string());
    const SolveResult r = solver->solve(batch);
    rows.push_back({delta.to_string(), std::to_string(r.objectives.cmax),
                    std::to_string(r.objectives.mmax)});
  }
  std::cout << markdown_table({"Delta", "makespan (min)", "storage (MB)"},
                              rows);

  // 2. Early results: tri-objective scheduling.
  const auto tri_solver = make_solver("tri:spt,delta=3");
  const SolveResult tri = tri_solver->solve(batch);
  if (!tri.feasible) {
    std::cerr << "tri-objective run infeasible (cannot happen, Delta > 2): "
              << tri.diagnostics << "\n";
    return 1;
  }
  const Time opt_sum = optimal_sum_completion(batch);
  std::cout << "\ntri-objective " << tri_solver->name()
            << " (Corollary 4):\n"
            << "  makespan " << tri.objectives.cmax << " min (guarantee "
            << *tri.cmax_ratio << " * optimal)\n"
            << "  storage  " << tri.objectives.mmax << " MB (guarantee "
            << *tri.mmax_ratio << " * optimal)\n"
            << "  mean completion "
            << fmt(static_cast<double>(*tri.sum_ci) / 2000.0, 1)
            << " min vs SPT-optimal "
            << fmt(static_cast<double>(opt_sum) / 2000.0, 1)
            << " min (guarantee " << *tri.sumci_ratio << "x, measured "
            << fmt(static_cast<double>(*tri.sum_ci) /
                       static_cast<double>(opt_sum),
                   3)
            << "x)\n";

  // 3. Fixed scratch quota per worker.
  const Mem quota =
      (batch.storage_lower_bound_fraction() * Fraction(7, 4)).floor();
  const auto fit_solver = make_solver("constrained:sbo,alg=multifit");
  const SolveResult fit =
      fit_solver->solve(batch, {.memory_capacity = quota});
  std::cout << "\nscratch quota " << quota << " MB/worker: ";
  if (fit.feasible) {
    std::cout << "schedulable at makespan " << fit.objectives.cmax
              << " min, storage " << fit.objectives.mmax
              << " MB (Delta = " << fit.delta << ")\n";
  } else {
    std::cout << "no feasible schedule found\n";
  }

  // 4. Nightly re-planning: many productions, one solver, all cores --
  // streamed, so only the in-flight window is ever resident. Each site's
  // instance is generated when the pipeline pulls it and its plan is
  // reduced to a table row as soon as it is delivered (in site order).
  constexpr std::size_t kSites = 8;
  std::size_t next_site = 0;
  GeneratorSource productions(
      [&]() -> std::optional<Instance> {
        if (next_site >= kSites) return std::nullopt;
        Rng site_rng(100 + next_site++);
        return generate_physics_batch(/*n=*/500, /*m=*/32, /*alpha=*/1.2,
                                      site_rng);
      },
      kSites);
  std::vector<std::vector<std::string>> site_rows;
  CallbackSink plan_sink([&](std::size_t site, SolveResult plan) {
    site_rows.push_back({std::to_string(site),
                         std::to_string(plan.objectives.cmax),
                         std::to_string(plan.objectives.mmax)});
  });
  const auto nightly_solver = make_solver("sbo:multifit,delta=1");
  StreamOptions nightly;
  nightly.window = 4;
  const StreamStats nightly_stats =
      solve_stream(*nightly_solver, productions, plan_sink, {}, nightly);
  std::cout << "\nnightly re-plan of " << nightly_stats.delivered
            << " site productions (solve_stream, window=4, max "
            << nightly_stats.max_in_flight << " in flight):\n";
  std::cout << markdown_table({"site", "makespan (min)", "storage (MB)"},
                              site_rows);
  return fit.feasible ? 0 : 1;
}
