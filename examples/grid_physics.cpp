// Scenario: large physics production on a computing grid -- the paper's
// second motivation (ATLAS-style productions "limiting time and memory
// usage ... jointly", Section 1, reference [4]).
//
// 2,000 heavy-tailed analysis jobs produce result files that must stay on
// the worker's scratch storage. Four scheduling questions, all answered
// through the unified solver API:
//   1. bi-objective: sweep SBO's Delta and show the achievable
//      (makespan, storage) trade-off curve;
//   2. tri-objective: users want early partial results, so optimize the
//      mean completion time too (RLS + SPT, Section 5.2);
//   3. constrained: workers have a fixed scratch quota -- use the SBO-driven
//      solver with the paper's binary-search refinement (Section 7);
//   4. throughput: overnight the grid re-plans many independent productions
//      at once -- fan them out with solve_batch().
//
//   $ ./examples/grid_physics
#include <iostream>

#include "storesched.hpp"

int main() {
  using namespace storesched;

  Rng rng(4);  // deterministic production
  const Instance batch = generate_physics_batch(/*n=*/2000, /*m=*/64,
                                                /*alpha=*/1.2, rng);
  std::cout << "production batch: " << batch.summary() << "\n"
            << "lower bounds: Cmax >= " << batch.time_lower_bound()
            << " min, storage >= " << batch.storage_lower_bound()
            << " MB/worker\n\n";

  // 1. The Delta trade-off curve (MULTIFIT: strong 13/11 ingredient).
  std::cout << "SBO trade-off (MULTIFIT/MULTIFIT ingredients):\n";
  std::vector<std::vector<std::string>> rows;
  for (const Fraction delta : {Fraction(1, 8), Fraction(1, 2), Fraction(1),
                               Fraction(2), Fraction(8)}) {
    const auto solver =
        make_solver("sbo:multifit,delta=" + delta.to_string());
    const SolveResult r = solver->solve(batch);
    rows.push_back({delta.to_string(), std::to_string(r.objectives.cmax),
                    std::to_string(r.objectives.mmax)});
  }
  std::cout << markdown_table({"Delta", "makespan (min)", "storage (MB)"},
                              rows);

  // 2. Early results: tri-objective scheduling.
  const auto tri_solver = make_solver("tri:spt,delta=3");
  const SolveResult tri = tri_solver->solve(batch);
  if (!tri.feasible) {
    std::cerr << "tri-objective run infeasible (cannot happen, Delta > 2): "
              << tri.diagnostics << "\n";
    return 1;
  }
  const Time opt_sum = optimal_sum_completion(batch);
  std::cout << "\ntri-objective " << tri_solver->name()
            << " (Corollary 4):\n"
            << "  makespan " << tri.objectives.cmax << " min (guarantee "
            << *tri.cmax_ratio << " * optimal)\n"
            << "  storage  " << tri.objectives.mmax << " MB (guarantee "
            << *tri.mmax_ratio << " * optimal)\n"
            << "  mean completion "
            << fmt(static_cast<double>(*tri.sum_ci) / 2000.0, 1)
            << " min vs SPT-optimal "
            << fmt(static_cast<double>(opt_sum) / 2000.0, 1)
            << " min (guarantee " << *tri.sumci_ratio << "x, measured "
            << fmt(static_cast<double>(*tri.sum_ci) /
                       static_cast<double>(opt_sum),
                   3)
            << "x)\n";

  // 3. Fixed scratch quota per worker.
  const Mem quota =
      (batch.storage_lower_bound_fraction() * Fraction(7, 4)).floor();
  const auto fit_solver = make_solver("constrained:sbo,alg=multifit");
  const SolveResult fit =
      fit_solver->solve(batch, {.memory_capacity = quota});
  std::cout << "\nscratch quota " << quota << " MB/worker: ";
  if (fit.feasible) {
    std::cout << "schedulable at makespan " << fit.objectives.cmax
              << " min, storage " << fit.objectives.mmax
              << " MB (Delta = " << fit.delta << ")\n";
  } else {
    std::cout << "no feasible schedule found\n";
  }

  // 4. Nightly re-planning: many productions, one solver, all cores.
  std::vector<Instance> productions;
  for (int site = 0; site < 8; ++site) {
    Rng site_rng(100 + static_cast<std::uint64_t>(site));
    productions.push_back(
        generate_physics_batch(/*n=*/500, /*m=*/32, /*alpha=*/1.2, site_rng));
  }
  const std::vector<SolveResult> plans =
      solve_batch("sbo:multifit,delta=1", productions);
  std::cout << "\nnightly re-plan of " << plans.size()
            << " site productions (solve_batch):\n";
  std::vector<std::vector<std::string>> site_rows;
  for (std::size_t site = 0; site < plans.size(); ++site) {
    site_rows.push_back({std::to_string(site),
                         std::to_string(plans[site].objectives.cmax),
                         std::to_string(plans[site].objectives.mmax)});
  }
  std::cout << markdown_table({"site", "makespan (min)", "storage (MB)"},
                              site_rows);
  return fit.feasible ? 0 : 1;
}
