// Scenario: large physics production on a computing grid -- the paper's
// second motivation (ATLAS-style productions "limiting time and memory
// usage ... jointly", Section 1, reference [4]).
//
// 2,000 heavy-tailed analysis jobs produce result files that must stay on
// the worker's scratch storage. Three scheduling questions:
//   1. bi-objective: sweep SBO's Delta and show the achievable
//      (makespan, storage) trade-off curve;
//   2. tri-objective: users want early partial results, so optimize the
//      mean completion time too (RLS + SPT, Section 5.2);
//   3. constrained: workers have a fixed scratch quota -- use the SBO-driven
//      solver with the paper's binary-search refinement (Section 7).
//
//   $ ./examples/grid_physics
#include <iostream>

#include "algorithms/graham.hpp"
#include "algorithms/scheduler.hpp"
#include "common/generators.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "core/constrained.hpp"
#include "core/sbo.hpp"
#include "core/triobjective.hpp"

int main() {
  using namespace storesched;

  Rng rng(4);  // deterministic production
  const Instance batch = generate_physics_batch(/*n=*/2000, /*m=*/64,
                                                /*alpha=*/1.2, rng);
  std::cout << "production batch: " << batch.summary() << "\n"
            << "lower bounds: Cmax >= " << batch.time_lower_bound()
            << " min, storage >= " << batch.storage_lower_bound()
            << " MB/worker\n\n";

  // 1. The Delta trade-off curve.
  const MultifitSchedulerAlg multifit;  // strong ingredient (13/11)
  std::cout << "SBO trade-off (MULTIFIT/MULTIFIT ingredients):\n";
  std::vector<std::vector<std::string>> rows;
  for (const Fraction delta : {Fraction(1, 8), Fraction(1, 2), Fraction(1),
                               Fraction(2), Fraction(8)}) {
    const SboResult r = sbo_schedule(batch, delta, multifit);
    rows.push_back({delta.to_string(),
                    std::to_string(cmax(batch, r.schedule)),
                    std::to_string(mmax(batch, r.schedule))});
  }
  std::cout << markdown_table({"Delta", "makespan (min)", "storage (MB)"},
                              rows);

  // 2. Early results: tri-objective scheduling.
  const Fraction delta(3);
  const TriObjectiveResult tri = tri_objective_schedule(batch, delta);
  if (!tri.rls.feasible) {
    std::cerr << "tri-objective run infeasible (cannot happen, Delta > 2)\n";
    return 1;
  }
  const Time opt_sum = optimal_sum_completion(batch);
  std::cout << "\ntri-objective RLS+SPT at Delta = 3 (Corollary 4):\n"
            << "  makespan " << tri.objectives.cmax << " min (guarantee "
            << tri.cmax_ratio << " * optimal)\n"
            << "  storage  " << tri.objectives.mmax << " MB (guarantee "
            << tri.mmax_ratio << " * optimal)\n"
            << "  mean completion "
            << fmt(static_cast<double>(tri.objectives.sum_ci) / 2000.0, 1)
            << " min vs SPT-optimal "
            << fmt(static_cast<double>(opt_sum) / 2000.0, 1)
            << " min (guarantee " << tri.sumci_ratio << "x, measured "
            << fmt(static_cast<double>(tri.objectives.sum_ci) /
                       static_cast<double>(opt_sum),
                   3)
            << "x)\n";

  // 3. Fixed scratch quota per worker.
  const Mem quota =
      (batch.storage_lower_bound_fraction() * Fraction(7, 4)).floor();
  const ConstrainedResult fit =
      solve_constrained_sbo(batch, quota, multifit, multifit);
  std::cout << "\nscratch quota " << quota << " MB/worker: ";
  if (fit.feasible) {
    std::cout << "schedulable at makespan " << fit.objectives.cmax
              << " min, storage " << fit.objectives.mmax
              << " MB (Delta = " << fit.delta_used << ")\n";
  } else {
    std::cout << "no feasible schedule found\n";
  }
  return fit.feasible ? 0 : 1;
}
