// Scenario: exploring the exact (Cmax, Mmax) trade-off of a small instance
// -- the decision-maker's view of Section 4's Pareto analysis.
//
// Enumerates the full Pareto front of a user-editable instance, prints each
// Pareto-optimal schedule as a Gantt chart (Figures 1-2 style), overlays
// the points SBO actually reaches across a Delta sweep, and reports how far
// each achievable point is from the front and from the Section 4
// impossibility bounds.
//
//   $ ./examples/pareto_explorer                # built-in instance
//   $ ./examples/pareto_explorer < instance.txt # "n m" header + "p s" lines
#include <iostream>
#include <sstream>
#include <unistd.h>

#include "common/gantt.hpp"
#include "common/io.hpp"
#include "core/impossibility.hpp"
#include "core/pareto_enum.hpp"
#include "core/solver.hpp"

int main(int argc, char**) {
  using namespace storesched;

  Instance inst({{7, 2}, {5, 4}, {4, 5}, {3, 6}, {6, 3}, {2, 8}, {8, 1}},
                /*m=*/2);
  if (argc == 1 && !isatty(0)) {
    // Read the to_text format from stdin when piped.
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    if (!buffer.str().empty()) inst = from_text(buffer.str());
  }
  std::cout << "instance: " << inst.summary() << "\n\n";

  const ParetoEnumResult front = enumerate_pareto(inst);
  std::cout << "exact Pareto front (" << front.front.size() << " points, "
            << front.enumerated << " search nodes):\n\n";
  for (const auto& pt : front.front) {
    const Schedule timed = serialize_assignment(
        inst, front.schedules[static_cast<std::size_t>(pt.tag)]);
    std::cout << "(Cmax, Mmax) = (" << pt.value.cmax << ", " << pt.value.mmax
              << ")\n"
              << render_gantt(inst, timed, {.show_summary = false}) << "\n";
  }

  // Overlay: what SBO reaches, per Delta (one solver per grid point,
  // addressed through the unified registry).
  const Time c_star = front.optimal_cmax();
  const Mem m_star = front.optimal_mmax();
  std::cout << "SBO sweep vs the front (C* = " << c_star << ", M* = " << m_star
            << "):\n";
  std::vector<std::vector<std::string>> rows;
  for (int num = 1; num <= 16; num *= 2) {
    for (const Fraction delta : {Fraction(num, 4)}) {
      const auto solver = make_solver("sbo:lpt,delta=" + delta.to_string());
      const SolveResult r = solver->solve(inst);
      const ObjectivePoint pt = r.objectives;
      const Fraction rx(pt.cmax, c_star);
      const Fraction ry(pt.mmax, m_star);
      // Note: the Section 4 domain constrains what can be *guaranteed on
      // every instance*; on a friendly single instance the measured ratio
      // pair may well fall inside it -- that is expected, not a bug.
      rows.push_back({delta.to_string(),
                      "(" + std::to_string(pt.cmax) + ", " +
                          std::to_string(pt.mmax) + ")",
                      rx.to_string() + ", " + ry.to_string(),
                      covered_by_front(pt, front.front) ? "on/above front"
                                                        : "IMPOSSIBLE?!",
                      is_impossible(rx, ry, 6)
                          ? "yes (fine: domain bounds worst cases)"
                          : "no"});
    }
  }
  std::cout << markdown_table({"Delta", "(Cmax, Mmax)", "ratios (x, y)",
                               "vs exact front", "inside worst-case domain?"},
                              rows);
  std::cout << "\n(the Section 4 domain constrains guarantees over *all* "
               "instances; beating it on one\n instance is expected -- no "
               "algorithm can do so on every instance)\n";
  return 0;
}
