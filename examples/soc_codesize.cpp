// Scenario: multi-System-on-Chip streaming pipeline with per-processor
// instruction-code budgets -- the paper's embedded-systems motivation
// ("every SoC has a limited storage capacity per processor for storing
// instructions", Section 1, and reference [5]).
//
// A 12-stage media pipeline is replicated 4-way for data parallelism and
// mapped onto 4 SoC cores. Each stage's instruction code occupies its size
// on whichever core runs a replica. Through the unified solver API we:
//   1. schedule with plain Graham list scheduling -- fast but memory-blind;
//   2. schedule with RLS_Delta for a grid of code budgets;
//   3. solve the real constrained question: the tightest budget a given
//      firmware image size allows (constrained:rls);
//   4. replay the chosen schedule in the discrete-event simulator and dump
//      the DOT graph for inspection.
//
//   $ ./examples/soc_codesize
#include <iostream>

#include "storesched.hpp"

int main() {
  using namespace storesched;

  Rng rng(2008);  // IPDPS'08
  DagWeightParams weights;
  weights.p_min = 4;
  weights.p_max = 40;   // per-stage compute time (cycles x 10^6)
  weights.s_min = 8;
  weights.s_max = 64;   // per-stage code size (KiB)
  const Instance pipeline = generate_soc_pipeline(/*stages=*/12,
                                                  /*replication=*/4,
                                                  /*m=*/4, weights, rng);
  std::cout << "SoC pipeline: " << pipeline.summary() << "\n"
            << "code-size lower bound LB = "
            << pipeline.storage_lower_bound_fraction() << " KiB/core\n\n";

  // 1. Memory-blind baseline.
  const SolveResult blind = make_solver("graham:bottom")->solve(pipeline);
  std::cout << "memory-blind list scheduling: Cmax = " << blind.objectives.cmax
            << ", per-core code = " << blind.objectives.mmax << " KiB\n\n";

  // 2. RLS under tightening budgets.
  std::cout << "RLS_Delta across code budgets:\n";
  std::vector<std::vector<std::string>> rows;
  for (const Fraction delta :
       {Fraction(4), Fraction(3), Fraction(5, 2), Fraction(21, 10)}) {
    const auto solver = make_solver("rls:bottom,delta=" + delta.to_string());
    const SolveResult r = solver->solve(pipeline);
    rows.push_back({delta.to_string(), r.rls->cap.to_string(),
                    r.feasible ? std::to_string(r.objectives.cmax)
                               : "infeasible",
                    r.feasible ? std::to_string(r.objectives.mmax) : "-",
                    r.cmax_ratio ? r.cmax_ratio->to_string() : "none"});
  }
  std::cout << markdown_table({"Delta", "budget (KiB)", "Cmax", "Mmax (KiB)",
                               "Cmax guarantee"},
                              rows);

  // 3. The firmware question: this SoC core has 3/2 * LB KiB of instruction
  //    RAM -- what schedule fits, and what does it cost on the makespan?
  const Mem budget =
      (pipeline.storage_lower_bound_fraction() * Fraction(3, 2)).floor();
  const SolveResult fit = make_solver("constrained:rls,tiebreak=bottom")
                              ->solve(pipeline, {.memory_capacity = budget});
  std::cout << "\nfirmware budget " << budget << " KiB/core: ";
  if (fit.feasible) {
    std::cout << "schedulable with Cmax = " << fit.objectives.cmax
              << ", code = " << fit.objectives.mmax << " KiB (Delta = "
              << fit.delta << ")\n";
  } else {
    std::cout << "NOT schedulable by RLS (Delta = " << fit.delta
              << " <= 2 carries no feasibility guarantee)\n";
  }

  // 4. Replay the Delta = 3 schedule through the event simulator.
  const SolveResult chosen =
      make_solver("rls:bottom,delta=3")->solve(pipeline);
  const SimReport report = simulate_schedule(
      pipeline, chosen.schedule, {.memory_cap = chosen.rls->cap.floor()});
  std::cout << "\nsimulator replay (Delta = 3): "
            << (report.ok ? "all machine invariants hold" : report.violation)
            << "\n  makespan " << report.makespan << ", utilization "
            << fmt(report.utilization * 100, 1) << "%, peak code "
            << report.peak_memory << " KiB\n";
  std::cout << "  per-core code occupancy:";
  for (const auto& proc : report.processors) {
    std::cout << " " << proc.final_memory << "KiB(" << proc.tasks << " tasks)";
  }
  std::cout << "\n\nDOT graph of the first two stages (render with graphviz):\n";
  // Print only a prefix to keep the example output readable.
  const std::string dot = to_dot(pipeline, "soc_pipeline");
  std::cout << dot.substr(0, 600) << "...\n";
  return report.ok ? 0 : 1;
}
