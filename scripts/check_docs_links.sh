#!/usr/bin/env bash
# Fails on broken intra-repo links in docs/*.md and README.md.
#
# Checks two link shapes:
#   * markdown links  [text](target)  -- target resolved relative to the
#     file's directory, fragment (#...) stripped; http(s)/mailto skipped;
#   * path:line anchors in backticks, e.g. `src/core/sbo.cpp:17` -- the
#     path must exist and have at least that many lines.
#
# Run from anywhere inside the repo: paths are resolved against the root.
# Guards against vacuous passes: every globbed file must exist and be
# readable, and the checked-link count is reported.
set -u
cd "$(dirname "$0")/.."

status=0
checked=0
files=(README.md docs/*.md)

# Line count that also counts a final line without a trailing newline.
count_lines() { grep -c '' "$1"; }

for f in "${files[@]}"; do
  if [ ! -r "$f" ]; then
    echo "cannot read $f (missing file or unmatched glob)"
    status=1
    continue
  fi
  dir=$(dirname "$f")

  # Markdown links.
  while IFS= read -r link; do
    case "$link" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path=${link%%#*}
    [ -z "$path" ] && continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "broken link in $f: ($link)"
      status=1
    fi
  done < <(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//')

  # `path:line` anchors.
  while IFS= read -r anchor; do
    path=${anchor%%:*}
    line=${anchor##*:}
    checked=$((checked + 1))
    if [ ! -f "$path" ]; then
      echo "broken anchor in $f: $anchor (no such file)"
      status=1
    elif [ "$(count_lines "$path")" -lt "$line" ]; then
      echo "broken anchor in $f: $anchor (file has fewer lines)"
      status=1
    fi
  done < <(grep -o '`[A-Za-z0-9_./-]*\.\(cpp\|hpp\|md\|sh\|json\|yml\):[0-9]*`' "$f" | tr -d '`')
done

if [ "$checked" -eq 0 ]; then
  echo "no intra-repo links found to check -- refusing a vacuous pass"
  status=1
fi
if [ "$status" -eq 0 ]; then
  echo "docs links OK (${#files[@]} files, $checked links/anchors checked)"
fi
exit "$status"
