#!/usr/bin/env bash
# clang-tidy gate over src/ tools/ bench/ with a content-hash result cache.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [file...]
#   build-dir  directory holding compile_commands.json (default: build;
#              configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON, which the
#              top-level CMakeLists.txt already sets)
#   file...    restrict to specific sources (default: every .cpp under
#              src/ tools/ bench/ that appears in the compile database)
#
# Results are cached per file in .tidy-cache/: a source is re-linted only
# when its cache key changes. The key covers everything that can change a
# verdict -- the clang-tidy version, .clang-tidy, the file's compile command,
# the file contents, and the contents of every in-repo header (a header edit
# must invalidate its includers; hashing all src/ headers is cheap and never
# under-invalidates). CI persists .tidy-cache keyed on the compile-commands
# hash, so a typical incremental run relints only what changed (<minutes,
# not a full-tree pass).
#
# Exit: 0 clean, 1 findings (WarningsAsErrors: '*' in .clang-tidy), 2 setup.
set -u -o pipefail

cd "$(dirname "$0")/.."

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY_BIN not found (set CLANG_TIDY=...)" >&2
  exit 2
fi

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift
DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "run_clang_tidy: $DB missing; configure cmake first" >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  FILES=("$@")
else
  # Sources in the lint scope that the compile database knows how to build.
  mapfile -t FILES < <(grep -o '"file": *"[^"]*"' "$DB" |
    sed 's/.*"file": *"//; s/"$//' |
    grep -E "^$PWD/(src|tools|bench)/.*\.cpp$" | sort -u)
fi
if [ ${#FILES[@]} -eq 0 ]; then
  echo "run_clang_tidy: no sources found in $DB" >&2
  exit 2
fi

CACHE_DIR=".tidy-cache"
mkdir -p "$CACHE_DIR"

# Key ingredients shared by every file: tool version, config, and all in-repo
# headers (so a header edit invalidates every source).
GLOBAL_HASH=$("$TIDY_BIN" --version 2>/dev/null |
  cat - .clang-tidy $(find src tools bench -name '*.hpp' | sort) |
  sha256sum | cut -d' ' -f1)

failures=0
linted=0
cached=0
for file in "${FILES[@]}"; do
  rel="${file#"$PWD"/}"
  # Per-file compile command: flags changes must invalidate too.
  cmd_hash=$(grep -A2 "\"file\": \"$file\"" "$DB" | sha256sum | cut -d' ' -f1)
  key=$(printf '%s %s %s\n' "$GLOBAL_HASH" "$cmd_hash" \
    "$(sha256sum "$file" | cut -d' ' -f1)" | sha256sum | cut -d' ' -f1)
  stamp="$CACHE_DIR/$(printf '%s' "$rel" | tr '/' '_').ok"
  if [ -f "$stamp" ] && [ "$(cat "$stamp")" = "$key" ]; then
    cached=$((cached + 1))
    continue
  fi
  echo "tidy $rel"
  if "$TIDY_BIN" -p "$BUILD_DIR" --quiet "$file"; then
    printf '%s' "$key" > "$stamp"
    linted=$((linted + 1))
  else
    failures=$((failures + 1))
  fi
done

echo "run_clang_tidy: ${linted} linted, ${cached} cached, ${failures} failed"
[ "$failures" -eq 0 ] || exit 1
