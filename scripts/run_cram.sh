#!/usr/bin/env bash
# run_cram.sh -- minimal cram-style acceptance-test runner.
#
# Each FILE.t is a transcript: two-space-indented `  $ cmd` lines are
# commands (with `  > ` continuation lines), the indented lines after a
# command are its expected stdout+stderr, and everything unindented is
# commentary. A `  [N]` line at the end of a block pins a nonzero exit
# status. An expected line ending in ` (re)` is a full-line extended
# regex instead of a literal. The runner replays every command in a
# scratch directory, rebuilds the transcript from what actually
# happened, and diffs it against the file -- any difference fails the
# test and prints as a unified diff.
#
#   scripts/run_cram.sh --bindir=build tests/cram/*.t
#
# Semantics kept deliberately small (this is an acceptance harness, not
# a cram reimplementation):
#   * every command runs in its own bash -c, in the same per-file
#     scratch directory -- shell state (cd, variables) does NOT persist
#     across commands; persist via files (echo $! > pid) instead;
#   * a command that backgrounds a server must redirect the server's
#     stdout+stderr to a file, or output capture will wait for it;
#   * TESTDIR points at the directory containing the .t file.
#
# Exit status: 0 all tests pass, 1 any failure, 2 usage error.
set -u

bindir=""
tests=()
for arg in "$@"; do
  case "$arg" in
    --bindir=*) bindir="${arg#--bindir=}" ;;
    --help|-h)
      echo "usage: run_cram.sh [--bindir=DIR] FILE.t..."
      exit 0
      ;;
    -*)
      echo "run_cram.sh: unknown option: $arg" >&2
      exit 2
      ;;
    *) tests+=("$arg") ;;
  esac
done
if [ "${#tests[@]}" -eq 0 ]; then
  echo "usage: run_cram.sh [--bindir=DIR] FILE.t..." >&2
  exit 2
fi
if [ -n "$bindir" ]; then
  if [ ! -d "$bindir" ]; then
    echo "run_cram.sh: --bindir=$bindir is not a directory" >&2
    exit 2
  fi
  PATH="$(cd "$bindir" && pwd):$PATH"
  export PATH
fi

cramtmp="$(mktemp -d "${TMPDIR:-/tmp}/cram.XXXXXX")"
trap 'rm -rf "$cramtmp"' EXIT

failed=0
ran=0

# Appends $1 verbatim as one line to the file named by $2.
emit() { printf '%s\n' "$1" >> "$2"; }

run_one() {
  local t="$1"
  local name
  name="$(basename "$t")"
  local work="$cramtmp/${name%.t}.dir"
  mkdir -p "$work"
  local expected="$cramtmp/$name.expected"
  local actual="$cramtmp/$name.actual"
  : > "$expected"
  : > "$actual"
  TESTDIR="$(cd "$(dirname "$t")" && pwd)"
  export TESTDIR

  # Parse into blocks and replay. `pending_*` holds the block being
  # gathered; flush_block executes it and writes both transcripts.
  local cmd="" exp_lines=()

  flush_block() {
    [ -n "$cmd" ] || return 0
    local out_file="$cramtmp/$name.out" rc
    ( cd "$work" && bash -c "$cmd" ) < /dev/null > "$out_file" 2>&1
    rc=$?
    # Actual output lines, exit-code line appended the way cram prints it.
    local act_lines=()
    while IFS= read -r line; do act_lines+=("$line"); done < "$out_file"
    if [ "$rc" -ne 0 ]; then act_lines+=("[$rc]"); fi
    # Align against the expected block: a ` (re)` expectation that
    # full-matches keeps its own text so a passing line diffs clean.
    local i=0 n_exp=${#exp_lines[@]} n_act=${#act_lines[@]}
    while [ "$i" -lt "$n_act" ]; do
      local a="${act_lines[$i]}"
      if [ "$i" -lt "$n_exp" ]; then
        local e="${exp_lines[$i]}"
        case "$e" in
          *' (re)')
            local rex="${e% (re)}"
            if printf '%s\n' "$a" | grep -Eqx -- "$rex"; then
              emit "  $e" "$actual"
              i=$((i + 1))
              continue
            fi
            ;;
        esac
      fi
      emit "  $a" "$actual"
      i=$((i + 1))
    done
    cmd=""
    exp_lines=()
  }

  local raw
  while IFS= read -r raw || [ -n "$raw" ]; do
    case "$raw" in
      '  $ '*)
        flush_block
        cmd="${raw#  \$ }"
        emit "$raw" "$expected"
        emit "$raw" "$actual"
        ;;
      '  > '*)
        cmd="$cmd
${raw#  > }"
        emit "$raw" "$expected"
        emit "$raw" "$actual"
        ;;
      '  '*)
        if [ -n "$cmd" ]; then
          exp_lines+=("${raw#  }")
          emit "$raw" "$expected"
        else
          # Indented text before any command: commentary, keep as is.
          emit "$raw" "$expected"
          emit "$raw" "$actual"
        fi
        ;;
      *)
        flush_block
        emit "$raw" "$expected"
        emit "$raw" "$actual"
        ;;
    esac
  done < "$t"
  flush_block

  if ! diff -u --label "$t (expected)" --label "$t (actual)" \
      "$expected" "$actual"; then
    return 1
  fi
  return 0
}

for t in "${tests[@]}"; do
  if [ ! -f "$t" ]; then
    echo "run_cram.sh: no such test file: $t" >&2
    exit 2
  fi
  ran=$((ran + 1))
  if run_one "$t"; then
    echo "ok: $t"
  else
    echo "FAIL: $t"
    failed=$((failed + 1))
  fi
done

echo "# ran $ran cram test(s), $failed failed"
[ "$failed" -eq 0 ]
