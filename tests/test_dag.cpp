// Unit tests for the precedence DAG substrate.
#include "common/dag.hpp"

#include <gtest/gtest.h>

namespace storesched {
namespace {

Dag diamond() {
  // 0 -> {1, 2} -> 3
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

TEST(Dag, EmptyGraphBasics) {
  const Dag d(3);
  EXPECT_EQ(d.n(), 3u);
  EXPECT_EQ(d.edge_count(), 0u);
  EXPECT_EQ(d.source_count(), 3u);
  EXPECT_EQ(d.sink_count(), 3u);
  EXPECT_TRUE(d.is_acyclic());
}

TEST(Dag, AddEdgeRejectsBadInput) {
  Dag d(2);
  EXPECT_THROW(d.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(d.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW(d.add_edge(-1, 1), std::invalid_argument);
}

TEST(Dag, DuplicateEdgesIgnored) {
  Dag d(2);
  d.add_edge(0, 1);
  d.add_edge(0, 1);
  EXPECT_EQ(d.edge_count(), 1u);
  EXPECT_EQ(d.succs(0).size(), 1u);
}

TEST(Dag, AdjacencyAndDegrees) {
  const Dag d = diamond();
  EXPECT_EQ(d.in_degree(0), 0u);
  EXPECT_EQ(d.out_degree(0), 2u);
  EXPECT_EQ(d.in_degree(3), 2u);
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_FALSE(d.has_edge(1, 0));
  EXPECT_FALSE(d.has_edge(1, 2));
}

TEST(Dag, TopologicalOrderDeterministic) {
  const Dag d = diamond();
  const auto order = d.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<TaskId>{0, 1, 2, 3}));
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  Dag d(5);
  d.add_edge(4, 2);
  d.add_edge(2, 0);
  d.add_edge(3, 1);
  const auto order = d.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(5);
  for (std::size_t i = 0; i < order->size(); ++i) {
    pos[static_cast<std::size_t>((*order)[i])] = i;
  }
  EXPECT_LT(pos[4], pos[2]);
  EXPECT_LT(pos[2], pos[0]);
  EXPECT_LT(pos[3], pos[1]);
}

TEST(Dag, CycleDetected) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 0);
  EXPECT_FALSE(d.is_acyclic());
  EXPECT_EQ(d.topological_order(), std::nullopt);
}

TEST(Dag, CriticalPathOfChain) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  const std::vector<Task> tasks{{5, 1}, {7, 1}, {2, 1}};
  EXPECT_EQ(d.critical_path_length(tasks), 14);
}

TEST(Dag, CriticalPathPicksHeaviestBranch) {
  const Dag d = diamond();
  const std::vector<Task> tasks{{1, 0}, {10, 0}, {3, 0}, {2, 0}};
  // 0 -> 1 -> 3 weighs 1 + 10 + 2 = 13; 0 -> 2 -> 3 weighs 6.
  EXPECT_EQ(d.critical_path_length(tasks), 13);
}

TEST(Dag, TopAndBottomLevels) {
  const Dag d = diamond();
  const std::vector<Task> tasks{{1, 0}, {10, 0}, {3, 0}, {2, 0}};
  const auto tl = d.top_levels(tasks);
  const auto bl = d.bottom_levels(tasks);
  EXPECT_EQ(tl, (std::vector<Time>{0, 1, 1, 11}));
  EXPECT_EQ(bl, (std::vector<Time>{13, 12, 5, 2}));
}

TEST(Dag, LevelsSizeMismatchThrows) {
  const Dag d = diamond();
  const std::vector<Task> tasks{{1, 0}};
  EXPECT_THROW(d.top_levels(tasks), std::invalid_argument);
  EXPECT_THROW(d.bottom_levels(tasks), std::invalid_argument);
}

TEST(Dag, Reachability) {
  const Dag d = diamond();
  EXPECT_TRUE(d.reachable(0, 3));
  EXPECT_TRUE(d.reachable(1, 3));
  EXPECT_FALSE(d.reachable(3, 0));
  EXPECT_FALSE(d.reachable(1, 2));
  EXPECT_FALSE(d.reachable(1, 1));  // reachability is irreflexive here
}

TEST(Dag, Reversed) {
  const Dag d = diamond();
  const Dag r = d.reversed();
  EXPECT_EQ(r.edge_count(), d.edge_count());
  EXPECT_TRUE(r.has_edge(3, 1));
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_FALSE(r.has_edge(0, 1));
  EXPECT_EQ(r.source_count(), d.sink_count());
}

TEST(Dag, SourceAndSinkCounts) {
  const Dag d = diamond();
  EXPECT_EQ(d.source_count(), 1u);
  EXPECT_EQ(d.sink_count(), 1u);
}

TEST(Dag, CriticalPathEqualsMaxTaskWhenNoEdges) {
  const Dag d(3);
  const std::vector<Task> tasks{{4, 0}, {9, 0}, {1, 0}};
  EXPECT_EQ(d.critical_path_length(tasks), 9);
}

TEST(DagFrontierView, MirrorsAdjacencyAndInDegrees) {
  const Dag d = diamond();
  const DagFrontierView view(d);
  ASSERT_EQ(view.n(), d.n());
  for (TaskId u = 0; u < static_cast<TaskId>(d.n()); ++u) {
    const auto flat = view.succs(u);
    const auto ragged = d.succs(u);
    ASSERT_EQ(flat.size(), ragged.size()) << "task " << u;
    for (std::size_t k = 0; k < flat.size(); ++k) {
      EXPECT_EQ(flat[k], ragged[k]) << "task " << u;
    }
    EXPECT_EQ(view.in_degree(u), d.in_degree(u)) << "task " << u;
  }
  const std::vector<std::uint32_t> indeg = view.in_degrees();
  ASSERT_EQ(indeg.size(), d.n());
  EXPECT_EQ(indeg[0], 0u);
}

TEST(DagFrontierView, EmptyAndEdgeFreeGraphs) {
  const DagFrontierView none((Dag()));
  EXPECT_EQ(none.n(), 0u);
  const DagFrontierView loose(Dag(3));
  EXPECT_EQ(loose.n(), 3u);
  EXPECT_TRUE(loose.succs(1).empty());
  EXPECT_EQ(loose.in_degree(2), 0u);
}

}  // namespace
}  // namespace storesched
