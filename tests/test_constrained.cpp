// Tests for the Section 7 constrained-problem solvers (Mmax <= capacity as
// a hard constraint, driven through RLS and SBO).
#include "core/constrained.hpp"

#include <gtest/gtest.h>

#include "algorithms/scheduler.hpp"
#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(ConstrainedRls, CapacityBelowLargestTaskIsInfeasible) {
  const Instance inst = make_instance({1, 1}, {10, 4}, 2);
  const ConstrainedResult r = solve_constrained_rls(inst, 9);
  EXPECT_FALSE(r.feasible);
}

TEST(ConstrainedRls, GenerousCapacityFeasibleWithGuarantee) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(5, 30));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_uniform(gp, rng);
    // capacity = 3 * LB => Delta = 3 > 2: guaranteed feasible.
    const Mem cap = (inst.storage_lower_bound_fraction() * Fraction(3)).ceil();
    const ConstrainedResult r = solve_constrained_rls(inst, cap);
    ASSERT_TRUE(r.feasible) << trial;
    EXPECT_LE(r.objectives.mmax, cap);
    EXPECT_TRUE(r.cmax_ratio.has_value());
    EXPECT_TRUE(
        validate_schedule(inst, r.schedule, {.memory_cap = cap}).ok);
  }
}

TEST(ConstrainedRls, DeltaEqualsCapacityOverLb) {
  const Instance inst = make_instance({1, 1, 1, 1}, {4, 4, 4, 4}, 2);
  // LB = max(4, 16/2) = 8; capacity 24 -> Delta = 3.
  const ConstrainedResult r = solve_constrained_rls(inst, 24);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.delta_used, Fraction(3));
}

TEST(ConstrainedRls, TightCapacityMayFailWithoutGuarantee) {
  // Three equal codes on two processors with capacity exactly max_s: every
  // processor fits one task only; the third cannot be placed.
  const Instance inst = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const ConstrainedResult r = solve_constrained_rls(inst, 10);
  EXPECT_FALSE(r.feasible);
  // Capacity 20 (Delta = 4/3 <= 2, still no guarantee) happens to work:
  // two tasks fit one processor.
  const ConstrainedResult r2 = solve_constrained_rls(inst, 20);
  EXPECT_TRUE(r2.feasible);
  EXPECT_LE(r2.objectives.mmax, 20);
  EXPECT_FALSE(r2.cmax_ratio.has_value());
}

TEST(ConstrainedRls, WorksOnDags) {
  Rng rng(72);
  const Instance inst = generate_dag_by_name("soc", 40, 3, {}, rng);
  const Mem cap = (inst.storage_lower_bound_fraction() * Fraction(5, 2)).ceil();
  const ConstrainedResult r =
      solve_constrained_rls(inst, cap, PriorityPolicy::kBottomLevel);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(validate_schedule(inst, r.schedule,
                                {.require_timed = true, .memory_cap = cap})
                  .ok);
}

TEST(ConstrainedRls, ZeroStorageAlwaysFeasible) {
  const Instance inst = make_instance({5, 3, 2}, {0, 0, 0}, 2);
  const ConstrainedResult r = solve_constrained_rls(inst, 0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.objectives.mmax, 0);
}

TEST(ConstrainedSbo, RejectsPrecedenceAndBadArgs) {
  Dag d(1);
  const Instance dag_inst({{1, 1}}, 1, d);
  const ListSchedulerAlg ls;
  EXPECT_THROW(solve_constrained_sbo(dag_inst, 10, ls, ls), std::logic_error);
  const Instance inst = make_instance({1}, {1}, 1);
  EXPECT_THROW(solve_constrained_sbo(inst, -1, ls, ls), std::invalid_argument);
}

TEST(ConstrainedSbo, InfeasibleWhenPi2Busts) {
  // Total storage 30 on 2 processors: any assignment has Mmax >= 15.
  const Instance inst = make_instance({1, 1, 1}, {10, 10, 10}, 2);
  const LptSchedulerAlg lpt;
  const ConstrainedResult r = solve_constrained_sbo(inst, 14, lpt, lpt);
  EXPECT_FALSE(r.feasible);
}

TEST(ConstrainedSbo, FeasibleRunsRespectCapacity) {
  Rng rng(73);
  const LptSchedulerAlg lpt;
  for (int trial = 0; trial < 12; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(6, 40));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_uniform(gp, rng);
    // Capacity 2.2x the storage bound: comfortably above (1 + 1/Delta) M
    // for some Delta, so a guaranteed parameter exists.
    const Mem cap =
        (inst.storage_lower_bound_fraction() * Fraction(11, 5)).ceil();
    const ConstrainedResult r = solve_constrained_sbo(inst, cap, lpt, lpt);
    ASSERT_TRUE(r.feasible) << trial;
    EXPECT_LE(r.objectives.mmax, cap) << trial;
    EXPECT_TRUE(validate_schedule(inst, r.schedule, {.memory_cap = cap}).ok);
    EXPECT_TRUE(r.cmax_ratio.has_value());
  }
}

TEST(ConstrainedSbo, RefinementNeverHurts) {
  Rng rng(74);
  const LptSchedulerAlg lpt;
  const Instance inst = generate_anticorrelated(
      {.n = 30, .m = 4, .p_min = 1, .p_max = 100, .s_min = 1, .s_max = 100},
      0.2, rng);
  const Mem cap = (inst.storage_lower_bound_fraction() * Fraction(5, 2)).ceil();
  const ConstrainedResult coarse = solve_constrained_sbo(inst, cap, lpt, lpt, 0);
  const ConstrainedResult fine = solve_constrained_sbo(inst, cap, lpt, lpt, 20);
  if (coarse.feasible) {
    ASSERT_TRUE(fine.feasible);
    EXPECT_LE(fine.objectives.cmax, coarse.objectives.cmax);
  }
}

TEST(ConstrainedSbo, FeasibleAtExactPi2CapacityEvenWithoutRefinements) {
  // capacity == Mmax(pi_2): the guaranteed parameter needs capacity > M
  // and is unavailable, but routing past the last breakpoint is exactly
  // pi_2 and must be found by the fallback probe -- with refinements = 0
  // too (regression: the fallback once probed Delta = 1 instead of a
  // value past the last breakpoint and came back infeasible).
  const Instance inst =
      make_instance({20, 19, 2, 1}, {8, 0, 8, 9}, 2);
  const LptSchedulerAlg lpt;
  const auto s = testing::s_weights(inst);
  const Mem pi2_mmax =
      partition_value(s, lpt.assign(s, inst.m()), inst.m());
  for (const int refinements : {0, 16}) {
    const ConstrainedResult r =
        solve_constrained_sbo(inst, pi2_mmax, lpt, lpt, refinements);
    ASSERT_TRUE(r.feasible) << "refinements=" << refinements;
    EXPECT_LE(r.objectives.mmax, pi2_mmax);
  }
}

TEST(ConstrainedSbo, LooseCapacityApproachesPureMakespan) {
  // With practically infinite capacity the best probed schedule should get
  // close to the single-objective LPT makespan.
  Rng rng(75);
  const LptSchedulerAlg lpt;
  const Instance inst = generate_uniform(
      {.n = 24, .m = 3, .p_min = 1, .p_max = 50, .s_min = 1, .s_max = 50}, rng);
  const ConstrainedResult r =
      solve_constrained_sbo(inst, inst.total_storage(), lpt, lpt, 24);
  ASSERT_TRUE(r.feasible);
  const auto lpt_assignment = lpt.assign(testing::p_weights(inst), inst.m());
  const std::int64_t lpt_cmax =
      partition_value(testing::p_weights(inst), lpt_assignment, inst.m());
  EXPECT_LE(r.objectives.cmax, 2 * lpt_cmax);
}

}  // namespace
}  // namespace storesched
