// Tests for reporting helpers (CSV, Markdown, DOT, text round-trip, Gantt)
// and descriptive statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/gantt.hpp"
#include "common/io.hpp"
#include "common/stats.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(Csv, WritesAndEscapes) {
  const std::string path = ::testing::TempDir() + "storesched_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c", "d\"e"});
    csv.write_row({"1", "2", "3"});
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1,2,3");
  std::remove(path.c_str());
}

TEST(Csv, OpenFailureThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Markdown, AlignsAndValidates) {
  const std::string table =
      markdown_table({"col", "x"}, {{"a", "1"}, {"bb", "22"}});
  EXPECT_NE(table.find("| col | x  |"), std::string::npos);
  EXPECT_NE(table.find("| bb  | 22 |"), std::string::npos);
  EXPECT_THROW(markdown_table({"a"}, {{"1", "2"}}), std::invalid_argument);
}

TEST(Dot, ContainsNodesAndEdges) {
  Dag d(2);
  d.add_edge(0, 1);
  const Instance inst({{3, 7}, {4, 8}}, 2, d);
  const std::string dot = to_dot(inst, "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("p=3,s=7"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
}

TEST(TextFormat, RoundTripsIndependent) {
  const Instance inst = make_instance({3, 5, 4}, {2, 7, 3}, 2);
  const Instance back = from_text(to_text(inst));
  EXPECT_EQ(back.n(), inst.n());
  EXPECT_EQ(back.m(), inst.m());
  EXPECT_FALSE(back.has_precedence());
  for (TaskId i = 0; i < static_cast<TaskId>(inst.n()); ++i) {
    EXPECT_EQ(back.task(i), inst.task(i));
  }
}

TEST(TextFormat, RoundTripsDag) {
  Dag d(3);
  d.add_edge(0, 2);
  d.add_edge(1, 2);
  const Instance inst({{1, 1}, {2, 2}, {3, 3}}, 2, d);
  const Instance back = from_text(to_text(inst));
  ASSERT_TRUE(back.has_precedence());
  EXPECT_TRUE(back.dag().has_edge(0, 2));
  EXPECT_TRUE(back.dag().has_edge(1, 2));
  EXPECT_EQ(back.dag().edge_count(), 2u);
}

TEST(TextFormat, MalformedInputThrows) {
  EXPECT_THROW(from_text(""), std::runtime_error);
  EXPECT_THROW(from_text("2 2\n1 1\n"), std::runtime_error);  // missing task
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 3), "2.000");
}

TEST(Gantt, RendersRowsAndSummary) {
  const Instance inst = make_instance({4, 4}, {7, 9}, 2);
  Schedule sched(inst);
  sched.assign(0, 0, 0);
  sched.assign(1, 1, 0);
  const std::string art = render_gantt(inst, sched);
  EXPECT_NE(art.find("P0 |"), std::string::npos);
  EXPECT_NE(art.find("P1 |"), std::string::npos);
  EXPECT_NE(art.find("s=7"), std::string::npos);
  EXPECT_NE(art.find("Cmax=4 Mmax=9"), std::string::npos);
}

TEST(Gantt, RequiresTimedSchedule) {
  const Instance inst = make_instance({4}, {7}, 1);
  Schedule sched(inst);
  sched.assign(0, 0);
  EXPECT_THROW(render_gantt(inst, sched), std::logic_error);
}

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> values{1, 2, 3, 4, 5};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> sorted{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 10.0);
  EXPECT_THROW(percentile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile_sorted(sorted, 1.5), std::invalid_argument);
}

TEST(Stats, AccumulatorMatchesBatch) {
  Accumulator acc;
  for (const double v : {4.0, 1.0, 3.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 3u);
  const Summary s = acc.summary();
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(Stats, SummaryToStringMentionsFields) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0});
  const std::string str = s.to_string();
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace storesched
