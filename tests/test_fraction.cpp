// Unit tests for the exact rational type underpinning every algorithmic
// decision (SBO threshold, RLS memory cap).
#include "common/fraction.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace storesched {
namespace {

TEST(Fraction, DefaultIsZero) {
  const Fraction f;
  EXPECT_EQ(f.num(), 0);
  EXPECT_EQ(f.den(), 1);
  EXPECT_EQ(f, Fraction(0));
}

TEST(Fraction, NormalizesOnConstruction) {
  const Fraction f(6, 4);
  EXPECT_EQ(f.num(), 3);
  EXPECT_EQ(f.den(), 2);
}

TEST(Fraction, NormalizesNegativeDenominator) {
  const Fraction f(3, -6);
  EXPECT_EQ(f.num(), -1);
  EXPECT_EQ(f.den(), 2);
}

TEST(Fraction, ZeroDenominatorThrows) {
  EXPECT_THROW(Fraction(1, 0), std::invalid_argument);
}

TEST(Fraction, ComparisonIsExact) {
  // 1/3 < 0.3333...34 style traps: compare p/q with near-equal fractions.
  EXPECT_LT(Fraction(333'333'333, 1'000'000'000), Fraction(1, 3));
  EXPECT_GT(Fraction(333'333'334, 1'000'000'000), Fraction(1, 3));
  EXPECT_EQ(Fraction(2, 6), Fraction(1, 3));
}

TEST(Fraction, ComparisonWithLargeOperandsDoesNotOverflow) {
  const std::int64_t big = std::int64_t{1} << 40;
  EXPECT_LT(Fraction(big, big + 1), Fraction(big + 1, big + 2));
  EXPECT_GT(Fraction(big + 1, big), Fraction(big + 2, big + 1));
}

TEST(Fraction, Arithmetic) {
  EXPECT_EQ(Fraction(1, 2) + Fraction(1, 3), Fraction(5, 6));
  EXPECT_EQ(Fraction(1, 2) - Fraction(1, 3), Fraction(1, 6));
  EXPECT_EQ(Fraction(2, 3) * Fraction(3, 4), Fraction(1, 2));
  EXPECT_EQ(Fraction(1, 2) / Fraction(1, 4), Fraction(2));
  EXPECT_EQ(-Fraction(1, 2), Fraction(-1, 2));
}

TEST(Fraction, DivisionByZeroThrows) {
  EXPECT_THROW(Fraction(1) / Fraction(0), std::domain_error);
}

TEST(Fraction, MinMax) {
  EXPECT_EQ(Fraction::max(Fraction(1, 2), Fraction(2, 3)), Fraction(2, 3));
  EXPECT_EQ(Fraction::min(Fraction(1, 2), Fraction(2, 3)), Fraction(1, 2));
  EXPECT_EQ(Fraction::max(Fraction(1, 2), Fraction(1, 2)), Fraction(1, 2));
}

TEST(Fraction, CeilFloorPositive) {
  EXPECT_EQ(Fraction(7, 2).ceil(), 4);
  EXPECT_EQ(Fraction(7, 2).floor(), 3);
  EXPECT_EQ(Fraction(8, 2).ceil(), 4);
  EXPECT_EQ(Fraction(8, 2).floor(), 4);
}

TEST(Fraction, CeilFloorNegative) {
  EXPECT_EQ(Fraction(-7, 2).ceil(), -3);
  EXPECT_EQ(Fraction(-7, 2).floor(), -4);
  EXPECT_EQ(Fraction(-8, 2).ceil(), -4);
  EXPECT_EQ(Fraction(-8, 2).floor(), -4);
}

TEST(Fraction, ToDouble) {
  EXPECT_DOUBLE_EQ(Fraction(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Fraction(-3, 4).to_double(), -0.75);
}

TEST(Fraction, ToStringAndStream) {
  EXPECT_EQ(Fraction(5).to_string(), "5");
  EXPECT_EQ(Fraction(5, 2).to_string(), "5/2");
  std::ostringstream os;
  os << Fraction(7, 3);
  EXPECT_EQ(os.str(), "7/3");
}

TEST(Fraction, AdditionReducesThroughWideIntermediates) {
  // (a/b) + (c/d) with b, d ~ 2^30 requires 128-bit cross multiplication;
  // the reduced result b*d ~ 2^60 still fits in int64.
  const std::int64_t b = (std::int64_t{1} << 30) + 1;
  const std::int64_t d = (std::int64_t{1} << 30) + 3;
  const Fraction sum = Fraction(1, b) + Fraction(1, d);
  EXPECT_EQ(sum.num(), b + d);
  EXPECT_EQ(sum.den(), b * d);  // b, d coprime with b + d
}

TEST(Fraction, OverflowingReductionThrows) {
  // b * d ~ 2^64 cannot be represented after reduction: explicit error
  // instead of silent wraparound.
  const std::int64_t b = (std::int64_t{1} << 32) + 1;
  const std::int64_t d = (std::int64_t{1} << 32) + 3;
  EXPECT_THROW(Fraction(1, b) + Fraction(1, d), std::overflow_error);
}

TEST(Fraction, CheckedInt64AcceptsDocumentedBounds) {
  // The representable range is [INT64_MIN + 1, INT64_MAX]: INT64_MIN is
  // excluded so stored components are always negatable without UB.
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(Fraction::checked_int64(Int128{kMax}, "test"), kMax);
  EXPECT_EQ(Fraction::checked_int64(Int128{kMin} + 1, "test"), kMin + 1);
  EXPECT_EQ(Fraction::checked_int64(Int128{0}, "test"), 0);
  EXPECT_THROW(Fraction::checked_int64(Int128{kMax} + 1, "test"),
               std::overflow_error);
  EXPECT_THROW(Fraction::checked_int64(Int128{kMin}, "test"),
               std::overflow_error);
  EXPECT_THROW(Fraction::checked_int64(Int128{kMin} - 1, "test"),
               std::overflow_error);
  EXPECT_THROW(Fraction::checked_int64(Int128{kMax} * kMax, "test"),
               std::overflow_error);
}

TEST(Fraction, Int64MinOperandThrowsInsteadOfNegationUB) {
  // Negating INT64_MIN is signed-overflow UB; construction rejects it in
  // either component instead of deferring the trap to operator-() or sign
  // normalization.
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  EXPECT_THROW(Fraction{kMin}, std::overflow_error);
  EXPECT_THROW(Fraction(1, kMin), std::overflow_error);
  EXPECT_THROW(Fraction(kMin, kMin), std::overflow_error);
}

TEST(Fraction, ExtremesRemainNegatableAndExact) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const Fraction big(kMax);
  EXPECT_EQ((-big).num(), -kMax);
  EXPECT_EQ(-(-big), big);
  const Fraction negden(kMax, -1);  // sign normalization at the boundary
  EXPECT_EQ(negden.num(), -kMax);
  EXPECT_EQ(negden.den(), 1);
  // Arithmetic one step past the boundary reports instead of truncating.
  EXPECT_THROW(big + Fraction(1), std::overflow_error);
  EXPECT_THROW(big * Fraction(2), std::overflow_error);
  EXPECT_THROW(Fraction(-kMax) - Fraction(2), std::overflow_error);
  // ...while 128-bit intermediates that reduce back into range are exact.
  EXPECT_EQ(Fraction(kMax, 2) * Fraction(2), big);
}

TEST(RatioLess, MatchesFractionComparison) {
  EXPECT_TRUE(ratio_less(1, 3, 1, 2));    // 1/3 < 1/2
  EXPECT_FALSE(ratio_less(1, 2, 1, 3));   // 1/2 < 1/3 is false
  EXPECT_FALSE(ratio_less(2, 4, 1, 2));   // equal
  EXPECT_TRUE(ratio_less_equal(2, 4, 1, 2));
  EXPECT_FALSE(ratio_less_equal(3, 4, 1, 2));
}

TEST(RatioLess, LargeValuesExact) {
  const std::int64_t big = std::int64_t{1} << 40;
  EXPECT_TRUE(ratio_less(big, big + 1, big + 1, big + 2));
  EXPECT_FALSE(ratio_less(big + 1, big + 2, big, big + 1));
}

}  // namespace
}  // namespace storesched
