// Tests for the branch-and-bound exact Pareto engine (core/pareto_bb.hpp)
// and its pareto:exact solver surface: edge cases (empty, single task,
// all-equal weights, m >= n), the node-limit guard, the env-var engine
// toggle, and bit-identical-front agreement with the seed's brute-force
// walker on 120 randomized instances.
#include "core/pareto_bb.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/paper_instances.hpp"
#include "common/rng.hpp"
#include "core/solver.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(ParetoBb, RejectsPrecedence) {
  Dag d(1);
  const Instance inst({{1, 1}}, 1, d);
  EXPECT_THROW(enumerate_pareto_bb(inst), std::logic_error);
}

TEST(ParetoBb, EmptyInstance) {
  const Instance inst(std::vector<Task>{}, 2);
  const auto r = enumerate_pareto_bb(inst);
  ASSERT_EQ(r.front.size(), 1u);
  EXPECT_EQ(r.front[0].value, (ObjectivePoint{0, 0}));
  EXPECT_EQ(r.front, enumerate_pareto_reference(inst).front);
}

TEST(ParetoBb, SingleTask) {
  const Instance inst = make_instance({5}, {3}, 3);
  const auto r = enumerate_pareto_bb(inst);
  ASSERT_EQ(r.front.size(), 1u);
  EXPECT_EQ(r.front[0].value, (ObjectivePoint{5, 3}));
  EXPECT_TRUE(validate_schedule(inst, r.schedules[0]).ok);
}

TEST(ParetoBb, AllEqualWeightsSymmetryStress) {
  // Identical tasks maximize processor symmetry: the brute force walks
  // every set partition while the branch and bound collapses to the single
  // balanced front point. Cross-check where the walker is still feasible.
  const Instance small = make_instance(std::vector<Time>(12, 1),
                                       std::vector<Mem>(12, 1), 4);
  const auto bb = enumerate_pareto_bb(small);
  ASSERT_EQ(bb.front.size(), 1u);
  EXPECT_EQ(bb.front[0].value, (ObjectivePoint{3, 3}));
  EXPECT_EQ(bb.front, enumerate_pareto_reference(small).front);

  // Far past the walker's reach, in a blink for the branch and bound.
  const Instance big = make_instance(std::vector<Time>(48, 7),
                                     std::vector<Mem>(48, 7), 4);
  const auto r = enumerate_pareto_bb(big);
  ASSERT_EQ(r.front.size(), 1u);
  EXPECT_EQ(r.front[0].value, (ObjectivePoint{84, 84}));
}

TEST(ParetoBb, MoreProcessorsThanTasks) {
  // With m >= n every task can sit alone, so the single front point is
  // (max p, max s) and it dominates every other assignment.
  const Instance inst = make_instance({4, 7, 2}, {6, 1, 5}, 5);
  const auto r = enumerate_pareto_bb(inst);
  ASSERT_EQ(r.front.size(), 1u);
  EXPECT_EQ(r.front[0].value, (ObjectivePoint{7, 6}));
  EXPECT_EQ(r.front, enumerate_pareto_reference(inst).front);
}

TEST(ParetoBb, NodeLimitGuards) {
  // Anticorrelated weights: the ideal point (4, 4) is unachievable, so the
  // seeds cannot prune the root and the search must expand past one node.
  const Instance inst = make_instance({3, 2, 2}, {2, 2, 3}, 2);
  EXPECT_THROW(enumerate_pareto_bb(inst, /*limit=*/1), std::runtime_error);
}

TEST(ParetoBb, MatchesReferenceOnRandomizedInstances) {
  // The acceptance bar: bit-identical fronts (values and tag order) on
  // 120 randomized instances, zero weights included.
  Rng rng(2024);
  for (int trial = 0; trial < 120; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 4));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 11));
    std::vector<Time> p(n);
    std::vector<Mem> s(n);
    for (auto& v : p) v = rng.uniform_int(0, 20);
    for (auto& v : s) v = rng.uniform_int(0, 20);
    const Instance inst = make_instance(p, s, m);
    const auto bb = enumerate_pareto_bb(inst);
    const auto ref = enumerate_pareto_reference(inst);
    ASSERT_EQ(bb.front, ref.front) << "trial " << trial;
    for (const auto& pt : bb.front) {
      const Schedule& sched = bb.schedules[static_cast<std::size_t>(pt.tag)];
      EXPECT_TRUE(validate_schedule(inst, sched).ok);
      EXPECT_EQ(objectives(inst, sched), pt.value);
    }
  }
}

TEST(ParetoBb, EnvToggleRoutesDispatcherToReference) {
  const Instance inst = make_instance({1, 2, 4}, {1, 2, 4}, 3);
  ASSERT_EQ(setenv("STORESCHED_PARETO_REFERENCE", "1", 1), 0);
  // The walker's complete-assignment count (5 set partitions) is the
  // fingerprint that the dispatcher really took the reference path.
  EXPECT_EQ(enumerate_pareto(inst).enumerated, 5u);
  ASSERT_EQ(setenv("STORESCHED_PARETO_REFERENCE", "0", 1), 0);
  EXPECT_NE(enumerate_pareto(inst).enumerated, 5u);
  ASSERT_EQ(unsetenv("STORESCHED_PARETO_REFERENCE"), 0);
}

// ---------------------------------------------------------------------------
// The pareto:exact solver surface.
// ---------------------------------------------------------------------------

TEST(ParetoExactSolver, RegistryAndCanonicalNames) {
  EXPECT_EQ(make_solver("pareto")->name(), "pareto:exact");
  EXPECT_EQ(make_solver("pareto:exact")->name(), "pareto:exact");
  EXPECT_EQ(make_solver("pareto:exact,limit=1000")->name(),
            "pareto:exact,limit=1000");
  EXPECT_THROW(make_solver("pareto:approx"), std::invalid_argument);
  EXPECT_THROW(make_solver("pareto:exact,limit=0"), std::invalid_argument);
  EXPECT_THROW(make_solver("pareto:exact,limit=many"), std::invalid_argument);
  EXPECT_THROW(make_solver("pareto:exact,delta=2"), std::invalid_argument);
}

TEST(ParetoExactSolver, CapabilitiesAnnounceTheExactFront) {
  const auto solver = make_solver("pareto:exact");
  const Capabilities caps = solver->capabilities(3);
  EXPECT_TRUE(caps.exact_front);
  EXPECT_FALSE(caps.supports_precedence);
  // Ratios describe the returned schedule (the Cmax-optimal front end):
  // exact on Cmax, no Mmax promise (that end lives in the extras front).
  EXPECT_EQ(*caps.cmax_ratio, Fraction(1));
  EXPECT_FALSE(caps.mmax_ratio.has_value());
  // No other registered family produces an exact front.
  for (const std::string& spec : registered_solver_specs()) {
    if (spec == "pareto:exact") continue;
    EXPECT_FALSE(make_solver(spec)->capabilities(3).exact_front) << spec;
  }
}

TEST(ParetoExactSolver, SolveReturnsFrontViaExtras) {
  // Figure 2 front: (100, 199), (101, 101), (199, 100).
  const Instance inst = fig2_instance(100);
  const SolveResult r = make_solver("pareto:exact")->solve(inst);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.pareto.has_value());
  ASSERT_EQ(r.pareto->front.size(), 3u);
  EXPECT_EQ(r.pareto->front, enumerate_pareto(inst).front);
  // The returned schedule is the Cmax-optimal front end.
  EXPECT_EQ(r.objectives, (ObjectivePoint{100, 199}));
  EXPECT_EQ(objectives(inst, r.schedule), r.objectives);
  EXPECT_EQ(*r.cmax_ratio, Fraction(1));
  EXPECT_NE(r.diagnostics.find("exact front"), std::string::npos);
}

TEST(ParetoExactSolver, HonorsPrecedenceRejectionAndLimit) {
  Dag dag(2);
  dag.add_edge(0, 1);
  const Instance dag_inst({{1, 1}, {2, 2}}, 2, dag);
  EXPECT_THROW(make_solver("pareto:exact")->solve(dag_inst), std::logic_error);

  const Instance tight = make_instance({3, 2, 2}, {2, 2, 3}, 2);
  EXPECT_THROW(make_solver("pareto:exact,limit=1")->solve(tight),
               std::runtime_error);
}

TEST(ParetoExactSolver, HasNoDeltaKnob) {
  const Instance inst = make_instance({1, 2}, {2, 1}, 2);
  const std::vector<Fraction> grid{Fraction(1)};
  EXPECT_THROW(front(inst, "pareto:exact", grid), std::invalid_argument);
}

}  // namespace
}  // namespace storesched
