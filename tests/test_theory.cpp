// Tests for the closed-form ratio formulas of the paper.
#include "core/theory.hpp"

#include <gtest/gtest.h>

namespace storesched {
namespace {

TEST(Theory, SboRatios) {
  // (1 + Delta) rho1 and (1 + 1/Delta) rho2.
  EXPECT_EQ(sbo_cmax_ratio(Fraction(1), Fraction(1)), Fraction(2));
  EXPECT_EQ(sbo_mmax_ratio(Fraction(1), Fraction(1)), Fraction(2));
  EXPECT_EQ(sbo_cmax_ratio(Fraction(1, 2), Fraction(3, 2)), Fraction(9, 4));
  EXPECT_EQ(sbo_mmax_ratio(Fraction(1, 2), Fraction(3, 2)), Fraction(9, 2));
  EXPECT_THROW(sbo_cmax_ratio(Fraction(0), Fraction(1)), std::invalid_argument);
  EXPECT_THROW(sbo_mmax_ratio(Fraction(-1), Fraction(1)),
               std::invalid_argument);
}

TEST(Theory, SboRatiosAreSymmetricInDelta) {
  // Swapping Delta <-> 1/Delta swaps the two ratios (the paper's symmetry).
  const Fraction delta(3, 2);
  EXPECT_EQ(sbo_cmax_ratio(delta, Fraction(1)),
            sbo_mmax_ratio(Fraction(1) / delta, Fraction(1)));
}

TEST(Theory, RlsCmaxRatio) {
  // 2 + 1/(Delta-2) - (Delta-1)/(m(Delta-2)).
  // Delta = 3, m = 2: 2 + 1 - 2/2 = 2.
  EXPECT_EQ(rls_cmax_ratio(Fraction(3), 2), Fraction(2));
  // Delta = 4, m = 4: 2 + 1/2 - 3/8 = 17/8.
  EXPECT_EQ(rls_cmax_ratio(Fraction(4), 4), Fraction(17, 8));
  // m -> infinity limit is 2 + 1/(Delta-2): check monotonicity in m.
  EXPECT_TRUE(rls_cmax_ratio(Fraction(3), 2) < rls_cmax_ratio(Fraction(3), 100));
  EXPECT_THROW(rls_cmax_ratio(Fraction(2), 2), std::invalid_argument);
  EXPECT_THROW(rls_cmax_ratio(Fraction(3), 0), std::invalid_argument);
}

TEST(Theory, RlsCmaxRatioMatchesPaperRewriting) {
  // The paper rewrites Delta = 2 + Delta' as
  // (2 + 1/Delta' - (Delta'+1)/(m Delta'), 2 + Delta').
  for (int dp_num = 1; dp_num <= 8; ++dp_num) {
    const Fraction dprime(dp_num, 2);
    const Fraction delta = Fraction(2) + dprime;
    for (const int m : {2, 3, 7}) {
      const Fraction direct = rls_cmax_ratio(delta, m);
      const Fraction rewritten = Fraction(2) + Fraction(1) / dprime -
                                 (dprime + Fraction(1)) / (Fraction(m) * dprime);
      EXPECT_EQ(direct, rewritten);
    }
  }
}

TEST(Theory, RlsMmaxRatio) {
  EXPECT_EQ(rls_mmax_ratio(Fraction(2)), Fraction(2));
  EXPECT_EQ(rls_mmax_ratio(Fraction(7, 2)), Fraction(7, 2));
  EXPECT_THROW(rls_mmax_ratio(Fraction(3, 2)), std::invalid_argument);
}

TEST(Theory, RlsSumCiRatio) {
  EXPECT_EQ(rls_sumci_ratio(Fraction(3)), Fraction(3));
  EXPECT_EQ(rls_sumci_ratio(Fraction(4)), Fraction(5, 2));
  EXPECT_THROW(rls_sumci_ratio(Fraction(2)), std::invalid_argument);
}

TEST(Theory, SptRestrictionRatio) {
  // Lemma 6: (1/rho + 1).
  EXPECT_EQ(spt_restriction_ratio(Fraction(1)), Fraction(2));
  EXPECT_EQ(spt_restriction_ratio(Fraction(1, 2)), Fraction(3));
  EXPECT_THROW(spt_restriction_ratio(Fraction(0)), std::invalid_argument);
  EXPECT_THROW(spt_restriction_ratio(Fraction(3, 2)), std::invalid_argument);
}

TEST(Theory, RlsTradeoffMonotone) {
  // Larger Delta: looser memory, tighter makespan (strictly, for m >= 2).
  Fraction prev_c = rls_cmax_ratio(Fraction(21, 10), 4);
  for (int step = 2; step <= 20; ++step) {
    const Fraction delta = Fraction(2) + Fraction(step, 10);
    const Fraction c = rls_cmax_ratio(delta, 4);
    EXPECT_TRUE(c < prev_c) << delta.to_string();
    prev_c = c;
  }
}

TEST(Theory, SboTradeoffCrossoverAtOne) {
  // Delta = 1 balances both objectives at 2 rho; the curve trades one for
  // the other on either side.
  EXPECT_TRUE(sbo_cmax_ratio(Fraction(1, 2), Fraction(1)) <
              sbo_cmax_ratio(Fraction(2), Fraction(1)));
  EXPECT_TRUE(sbo_mmax_ratio(Fraction(2), Fraction(1)) <
              sbo_mmax_ratio(Fraction(1, 2), Fraction(1)));
}

}  // namespace
}  // namespace storesched
