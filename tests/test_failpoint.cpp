// Tests for the failpoint registry (common/failpoint.hpp): action grammar,
// selectors, hit counting, env arming, and the zero-cost disarmed path.
#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace storesched {
namespace {

/// Clears every armed failpoint on scope exit so faults never leak into
/// other test cases (gtest runs cases in one process).
struct FailpointGuard {
  ~FailpointGuard() { failpoint::clear_all(); }
};

TEST(Failpoint, DisarmedSiteIsANoOp) {
  failpoint::clear_all();
  for (int i = 0; i < 1000; ++i) failpoint::hit("stream.solve");
  // Unknown sites are equally silent; hits() only counts armed sites.
  EXPECT_EQ(failpoint::hits("stream.solve"), 0u);
}

TEST(Failpoint, BareThrowFiresOnEveryHit) {
  FailpointGuard guard;
  failpoint::set("t.site", "throw");
  EXPECT_THROW(failpoint::hit("t.site"), InjectedFault);
  EXPECT_THROW(failpoint::hit("t.site"), InjectedFault);
  EXPECT_EQ(failpoint::hits("t.site"), 2u);
}

TEST(Failpoint, ThrowMessageSurfacesInWhat) {
  FailpointGuard guard;
  failpoint::set("t.site", "throw(disk on fire)");
  try {
    failpoint::hit("t.site");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("disk on fire"), std::string::npos)
        << e.what();
  }
}

TEST(Failpoint, NthFiresExactlyOnce) {
  FailpointGuard guard;
  failpoint::set("t.site", "nth(3):throw");
  failpoint::hit("t.site");
  failpoint::hit("t.site");
  EXPECT_THROW(failpoint::hit("t.site"), InjectedFault);
  // Only the 3rd hit, nothing after.
  for (int i = 0; i < 10; ++i) failpoint::hit("t.site");
  EXPECT_EQ(failpoint::hits("t.site"), 13u);
}

TEST(Failpoint, EveryFiresPeriodically) {
  FailpointGuard guard;
  failpoint::set("t.site", "every(4):throw");
  int fired = 0;
  for (int i = 1; i <= 12; ++i) {
    try {
      failpoint::hit("t.site");
    } catch (const InjectedFault&) {
      ++fired;
      EXPECT_EQ(i % 4, 0) << "fired on hit " << i;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST(Failpoint, ProbIsDeterministicForAFixedSeed) {
  FailpointGuard guard;
  auto run = [&]() {
    failpoint::set("t.site", "prob(0.3,42):throw");
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      try {
        failpoint::hit("t.site");
        pattern += '.';
      } catch (const InjectedFault&) {
        pattern += 'X';
      }
    }
    return pattern;
  };
  const std::string first = run();
  const std::string second = run();  // set() resets the stream
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);

  // Degenerate probabilities behave as constants.
  failpoint::set("t.site", "prob(0,7):throw");
  for (int i = 0; i < 32; ++i) EXPECT_NO_THROW(failpoint::hit("t.site"));
  failpoint::set("t.site", "prob(1,7):throw");
  EXPECT_THROW(failpoint::hit("t.site"), InjectedFault);
}

TEST(Failpoint, DelayStallsButContinues) {
  FailpointGuard guard;
  failpoint::set("t.site", "delay(30)");
  const auto before = std::chrono::steady_clock::now();
  failpoint::hit("t.site");
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(Failpoint, SetReplacesAndClearDisarms) {
  FailpointGuard guard;
  failpoint::set("t.site", "throw");
  EXPECT_THROW(failpoint::hit("t.site"), InjectedFault);
  failpoint::set("t.site", "delay(0)");  // replace: no longer throws
  EXPECT_NO_THROW(failpoint::hit("t.site"));
  EXPECT_EQ(failpoint::hits("t.site"), 1u);  // set() reset the counter
  failpoint::clear("t.site");
  EXPECT_NO_THROW(failpoint::hit("t.site"));
  EXPECT_EQ(failpoint::hits("t.site"), 0u);
}

TEST(Failpoint, MalformedActionsThrowInvalidArgument) {
  FailpointGuard guard;
  for (const char* bad :
       {"", "explode", "nth:throw", "nth(0):throw", "nth(x):throw",
        "every(0):throw", "prob(2,1):throw", "prob(0.5):throw", "delay()",
        "delay(-5)", "nth(3):", "nth(3):zap", "throw(unclosed"}) {
    EXPECT_THROW(failpoint::set("t.site", bad), std::invalid_argument)
        << "accepted: \"" << bad << "\"";
  }
  // A failed set must not leave the site half-armed.
  EXPECT_NO_THROW(failpoint::hit("t.site"));
}

TEST(Failpoint, ReloadFromEnvArmsAndClears) {
  FailpointGuard guard;
  ::setenv("STORESCHED_FAILPOINTS", "env.a=nth(1):throw;env.b=delay(0)", 1);
  failpoint::reload_from_env();
  EXPECT_THROW(failpoint::hit("env.a"), InjectedFault);
  EXPECT_NO_THROW(failpoint::hit("env.b"));
  EXPECT_EQ(failpoint::hits("env.b"), 1u);

  ::unsetenv("STORESCHED_FAILPOINTS");
  failpoint::reload_from_env();
  EXPECT_NO_THROW(failpoint::hit("env.a"));
  EXPECT_EQ(failpoint::hits("env.a"), 0u);
}

TEST(Failpoint, InjectedFaultIsARuntimeError) {
  // The stream driver's wire contract ("malformed input throws
  // runtime_error") must keep holding when the fault is injected.
  FailpointGuard guard;
  failpoint::set("t.site", "throw");
  EXPECT_THROW(failpoint::hit("t.site"), std::runtime_error);
}

}  // namespace
}  // namespace storesched
