// Fast-vs-reference equivalence for the hot-path rewrites.
//
// The incremental RLS engine (rls_schedule_fast) and the seed's O(n^2 m)
// exact-Fraction rescan (rls_schedule_reference) must be bit-identical on
// every input: same schedule (assignments *and* start times), same Lemma 4
// marks, same feasibility verdict and stuck task. Likewise
// sbo_ingredients + sbo_combine must reproduce sbo_schedule exactly, and
// the parallel ingredient-reuse Delta sweeps must reproduce the serial
// per-point loops. Randomized coverage: independent and DAG instances,
// every priority policy, Delta grids straddling the Delta = 2 feasibility
// edge (so infeasible verdicts are exercised too).
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/dag_generators.hpp"
#include "common/generators.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/front_approx.hpp"
#include "core/rls.hpp"
#include "core/sbo.hpp"
#include "core/solver.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

constexpr PriorityPolicy kPolicies[] = {
    PriorityPolicy::kInputOrder,      PriorityPolicy::kSpt,
    PriorityPolicy::kLpt,             PriorityPolicy::kBottomLevel,
    PriorityPolicy::kSmallestStorage, PriorityPolicy::kLargestStorage,
};

/// Deltas straddling the run / Lemma 4 / guarantee zone boundaries,
/// including values at and below 2 where runs may come back infeasible.
const Fraction kDeltas[] = {Fraction(1, 2), Fraction(1),    Fraction(3, 2),
                            Fraction(2),    Fraction(9, 4), Fraction(3),
                            Fraction(8)};

void expect_identical(const Instance& inst, const Fraction& delta,
                      PriorityPolicy policy, int trial) {
  const RlsResult fast = rls_schedule_fast(inst, delta, policy);
  const RlsResult ref = rls_schedule_reference(inst, delta, policy);
  ASSERT_EQ(fast.feasible, ref.feasible)
      << "trial " << trial << " delta " << delta.to_string();
  EXPECT_EQ(fast.lb, ref.lb);
  EXPECT_EQ(fast.cap, ref.cap);
  EXPECT_EQ(fast.schedule, ref.schedule)
      << "trial " << trial << " delta " << delta.to_string();
  EXPECT_EQ(fast.marked, ref.marked);
  EXPECT_EQ(fast.marked_count, ref.marked_count);
  EXPECT_EQ(fast.stuck_task, ref.stuck_task);
  if (fast.feasible && Fraction(1) < delta) {
    EXPECT_LE(fast.marked_count, rls_marked_bound(delta, inst.m()));
  }
}

// 140 randomized independent instances x 7 deltas, policies rotating.
TEST(HotpathEquivalence, RandomizedIndependentInstances) {
  Rng rng(0xABCD);
  int runs = 0;
  for (int trial = 0; trial < 140; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(1, 60));
    gp.m = static_cast<int>(rng.uniform_int(1, 8));
    gp.p_max = rng.uniform_int(1, 60);
    gp.s_max = rng.uniform_int(1, 90);
    const Instance inst = trial % 3 == 0
                              ? generate_memory_tight(gp, 1.1, rng)
                              : generate_uniform(gp, rng);
    for (const Fraction& delta : kDeltas) {
      expect_identical(inst, delta, kPolicies[runs++ % 6], trial);
    }
  }
}

// Per-family deep coverage for the ready-event kernel: 100 randomized
// instances of every dag_generators family, sizes up to 2000 (a handful of
// large draws so the release-bucket sweep and deep trees are exercised at
// real widths, the rest small so the reference oracle stays fast), deltas
// and policies rotating through the full grids.
TEST(HotpathEquivalence, EveryDagFamilyMatchesReference) {
  const char* kinds[] = {"layered", "forkjoin", "cholesky", "fft", "soc"};
  int runs = 0;
  for (const char* kind : kinds) {
    Rng rng(0xFA31137 + static_cast<std::uint64_t>(runs));
    for (int trial = 0; trial < 100; ++trial) {
      const std::size_t n =
          trial % 25 == 24
              ? static_cast<std::size_t>(rng.uniform_int(1200, 2000))
              : static_cast<std::size_t>(rng.uniform_int(2, 300));
      const int m = static_cast<int>(rng.uniform_int(1, 16));
      const Instance inst = generate_dag_by_name(kind, n, m, {}, rng);
      const Fraction delta = kDeltas[trial % 7];
      expect_identical(inst, delta, kPolicies[runs++ % 6], trial);
      if (HasFatalFailure()) return;
    }
  }
}

// Empty-frontier mid-solve: a diamond whose join feeds one long chain. As
// soon as the diamond's source is placed every other task is waiting on a
// predecessor *finish time*, so the kernel's released pool drains and each
// step must advance through a release bucket before it can place -- the
// regression spot for the event sweep's pending path.
TEST(HotpathEquivalence, DiamondWithLongChainDrainsTheFrontier) {
  constexpr int kChain = 40;
  Dag dag(4 + kChain);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  for (int i = 0; i < kChain; ++i) {
    dag.add_edge(3 + i, 4 + i);
  }
  Rng rng(0xD1A);
  std::vector<Task> tasks;
  for (int i = 0; i < 4 + kChain; ++i) {
    tasks.push_back({rng.uniform_int(1, 9), rng.uniform_int(1, 30)});
  }
  for (const int m : {1, 2, 4}) {
    const Instance inst(tasks, m, dag);
    for (const Fraction& delta : kDeltas) {
      expect_identical(inst, delta, PriorityPolicy::kInputOrder, m);
      expect_identical(inst, delta, PriorityPolicy::kBottomLevel, -m);
    }
  }
}

// 80 randomized DAG instances x 7 deltas across several graph shapes.
TEST(HotpathEquivalence, RandomizedDagInstances) {
  Rng rng(0xDA6);
  const char* kinds[] = {"layered", "forkjoin", "cholesky", "soc", "fft"};
  int runs = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 70));
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Instance inst =
        trial % 2 == 0
            ? generate_random_dag(n, 0.3, m, {}, rng)
            : generate_dag_by_name(kinds[trial % 5], n, m, {}, rng);
    for (const Fraction& delta : kDeltas) {
      expect_identical(inst, delta, kPolicies[runs++ % 6], trial);
    }
  }
}

// Degenerate shapes the randomized sweep can miss.
TEST(HotpathEquivalence, EdgeCaseInstances) {
  // Zero storage everywhere: cap 0, everything fits.
  expect_identical(make_instance({4, 3, 2}, {0, 0, 0}, 2), Fraction(3),
                   PriorityPolicy::kInputOrder, -1);
  // Zero processing times.
  expect_identical(make_instance({0, 0, 0, 0}, {5, 1, 5, 1}, 2), Fraction(3),
                   PriorityPolicy::kLpt, -2);
  // Single processor, single task.
  expect_identical(make_instance({7}, {7}, 1), Fraction(5, 2),
                   PriorityPolicy::kSpt, -3);
  // Infeasible from the first step: each processor fits exactly one task.
  expect_identical(make_instance({1, 1, 1}, {10, 10, 10}, 2), Fraction(1),
                   PriorityPolicy::kInputOrder, -4);
  // More processors than tasks.
  expect_identical(make_instance({3, 1}, {2, 9}, 6), Fraction(9, 4),
                   PriorityPolicy::kLargestStorage, -5);
}

// A larger spot check so tree depths beyond toy sizes are exercised.
TEST(HotpathEquivalence, LargerSpotChecks) {
  Rng rng(0x512e);
  GenParams gp;
  gp.n = 400;
  gp.m = 32;
  gp.p_max = 500;
  gp.s_max = 500;
  const Instance indep = generate_uniform(gp, rng);
  expect_identical(indep, Fraction(5, 2), PriorityPolicy::kInputOrder, -10);
  expect_identical(indep, Fraction(201, 100), PriorityPolicy::kLpt, -11);
  const Instance dag = generate_random_dag(300, 0.1, 16, {}, rng);
  expect_identical(dag, Fraction(5, 2), PriorityPolicy::kBottomLevel, -12);
}

// The env toggle routes rls_schedule() to the reference engine.
TEST(HotpathEquivalence, EnvToggleSelectsReferenceEngine) {
  Rng rng(9);
  const Instance inst = generate_uniform({.n = 25, .m = 3}, rng);
  ::setenv("STORESCHED_RLS_REFERENCE", "1", 1);
  const RlsResult via_env = rls_schedule(inst, Fraction(5, 2));
  ::unsetenv("STORESCHED_RLS_REFERENCE");
  const RlsResult fast = rls_schedule(inst, Fraction(5, 2));
  EXPECT_EQ(via_env.schedule, fast.schedule);  // engines agree anyway
}

// sbo_ingredients + sbo_combine must reproduce sbo_schedule bit-exactly.
TEST(HotpathEquivalence, SboCombineMatchesSchedule) {
  Rng rng(0x5B0);
  for (int trial = 0; trial < 40; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(1, 80));
    gp.m = static_cast<int>(rng.uniform_int(1, 8));
    const Instance inst = generate_anticorrelated(gp, 0.3, rng);
    const auto alg = make_scheduler(trial % 2 == 0 ? "lpt" : "ls");
    const SboIngredients ing = sbo_ingredients(inst, *alg, *alg);
    for (const Fraction& delta :
         {Fraction(1, 4), Fraction(1), Fraction(3, 2), Fraction(4)}) {
      const SboResult whole = sbo_schedule(inst, delta, *alg);
      const SboResult split = sbo_combine(inst, ing, delta);
      EXPECT_EQ(whole.schedule, split.schedule) << trial;
      EXPECT_EQ(whole.routed_to_pi2, split.routed_to_pi2) << trial;
      EXPECT_EQ(whole.c_ingredient, split.c_ingredient) << trial;
      EXPECT_EQ(whole.m_ingredient, split.m_ingredient) << trial;
      EXPECT_EQ(whole.cmax_bound, split.cmax_bound) << trial;
      EXPECT_EQ(whole.mmax_bound, split.mmax_bound) << trial;
    }
  }
}

// The parallel ingredient-reuse sweep equals the serial per-point loop.
TEST(HotpathEquivalence, ParallelSweepMatchesSerialLoop) {
  Rng rng(0xF407);
  const Instance inst = generate_uniform({.n = 60, .m = 4}, rng);
  const auto grid = delta_grid(Fraction(1, 4), Fraction(4), 11);

  const ApproxFront swept = front(inst, "sbo:lpt", grid);
  const auto alg = make_scheduler("lpt");
  std::vector<FrontPoint> serial;
  for (const Fraction& delta : grid) {
    SboResult run = sbo_schedule(inst, delta, *alg);
    const ObjectivePoint value = objectives(inst, run.schedule);
    serial.push_back({delta, std::move(run.schedule), value});
  }
  const auto filtered = pareto_filter_front(std::move(serial));
  ASSERT_EQ(swept.points.size(), filtered.size());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(swept.points[i].delta, filtered[i].delta);
    EXPECT_EQ(swept.points[i].schedule, filtered[i].schedule);
  }

  const ApproxFront rls_swept = front(inst, "rls:bottom", grid);
  std::vector<FrontPoint> rls_serial;
  for (const Fraction& delta : grid) {
    RlsResult run = rls_schedule(inst, delta, PriorityPolicy::kBottomLevel);
    if (!run.feasible) continue;
    const ObjectivePoint value = objectives(inst, run.schedule);
    rls_serial.push_back({delta, std::move(run.schedule), value});
  }
  const auto rls_filtered = pareto_filter_front(std::move(rls_serial));
  ASSERT_EQ(rls_swept.points.size(), rls_filtered.size());
  for (std::size_t i = 0; i < rls_filtered.size(); ++i) {
    EXPECT_EQ(rls_swept.points[i].delta, rls_filtered[i].delta);
    EXPECT_EQ(rls_swept.points[i].schedule, rls_filtered[i].schedule);
  }
}

// The Lemma 4 accounting fix: marks are recorded for the placed task only,
// so the bound must hold for every Delta > 1, including the (1, 2] band
// where runs carry no feasibility guarantee.
TEST(HotpathEquivalence, MarkedBoundHoldsInTightBand) {
  Rng rng(0x1E44);
  for (int trial = 0; trial < 25; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(6, 50));
    gp.m = static_cast<int>(rng.uniform_int(2, 8));
    const Instance inst = generate_memory_tight(gp, 1.2, rng);
    for (const Fraction& delta :
         {Fraction(5, 4), Fraction(3, 2), Fraction(7, 4), Fraction(2)}) {
      for (const RlsResult& r : {rls_schedule_fast(inst, delta),
                                 rls_schedule_reference(inst, delta)}) {
        EXPECT_LE(r.marked_count, rls_marked_bound(delta, inst.m()))
            << "trial " << trial << " delta " << delta.to_string();
      }
    }
  }
}

// The shared pool never oversubscribes: workers <= jobs always.
TEST(HotpathEquivalence, WorkerPoolNeverOversubscribes) {
  // threads = 0 asks for hardware_concurrency(); the clamp must still cap
  // at the job count whatever the machine reports.
  EXPECT_GE(parallel_worker_count(2, 0), 1u);
  EXPECT_LE(parallel_worker_count(2, 0), 2u);
  EXPECT_EQ(parallel_worker_count(2, 32), 2u);
  EXPECT_EQ(parallel_worker_count(1, 8), 1u);
  EXPECT_EQ(parallel_worker_count(0, 8), 1u);
  EXPECT_EQ(parallel_worker_count(100, 4), 4u);
  EXPECT_LE(parallel_worker_count(1000, 0), 1000u);
}

}  // namespace
}  // namespace storesched
