// Tests for the scaled paper gadget builders.
#include "common/paper_instances.hpp"

#include <gtest/gtest.h>

namespace storesched {
namespace {

TEST(Fig1, ScaledWeights) {
  const Instance inst = fig1_instance(100);
  ASSERT_EQ(inst.n(), 3u);
  EXPECT_EQ(inst.m(), 2);
  EXPECT_EQ(inst.task(0), (Task{200, 1}));    // p=1, s=eps
  EXPECT_EQ(inst.task(1), (Task{100, 100}));  // p=1/2, s=1
  EXPECT_EQ(inst.task(2), (Task{100, 100}));
  const auto scale = fig1_scale(100);
  EXPECT_EQ(scale.time_scale, 200);
  EXPECT_EQ(scale.storage_scale, 100);
  EXPECT_THROW(fig1_instance(1), std::invalid_argument);
}

TEST(Fig2, ScaledWeights) {
  const Instance inst = fig2_instance(100);
  ASSERT_EQ(inst.n(), 3u);
  EXPECT_EQ(inst.task(0), (Task{100, 1}));   // p=1,     s=eps
  EXPECT_EQ(inst.task(1), (Task{1, 100}));   // p=eps,   s=1
  EXPECT_EQ(inst.task(2), (Task{99, 99}));   // p=1-eps, s=1-eps
  const auto scale = fig2_scale(100);
  EXPECT_EQ(scale.time_scale, 100);
  EXPECT_EQ(scale.storage_scale, 100);
  EXPECT_THROW(fig2_instance(0), std::invalid_argument);
}

TEST(Lemma2Instance, ShapeAndWeights) {
  const int m = 3;
  const int k = 2;
  const Instance inst = lemma2_instance(m, k, 50);
  ASSERT_EQ(inst.n(), static_cast<std::size_t>(k * m + m - 1));
  // First m-1 tasks: p = km (scaled 1), s = 1 (scaled eps).
  for (TaskId i = 0; i < m - 1; ++i) {
    EXPECT_EQ(inst.task(i), (Task{6, 1}));
  }
  // Remaining km tasks: p = 1 (scaled 1/km), s = 50 (scaled 1).
  for (TaskId i = m - 1; i < static_cast<TaskId>(inst.n()); ++i) {
    EXPECT_EQ(inst.task(i), (Task{1, 50}));
  }
  EXPECT_THROW(lemma2_instance(1, 2, 50), std::invalid_argument);
  EXPECT_THROW(lemma2_instance(2, 1, 50), std::invalid_argument);
}

TEST(Lemma2Point, RatioFormulas) {
  // m=2, k=2, eps_inv large: point i has Cmax ratio 1 + i/4 and memory
  // ratio ((2 + (2-i)) * eps_inv) / (2 eps_inv + 1).
  const Time e = 1000;
  const auto p0 = lemma2_point(2, 2, 0, e);
  EXPECT_EQ(p0.cmax_ratio, Fraction(1));
  EXPECT_EQ(p0.mmax_ratio, Fraction(4 * e, 2 * e + 1));  // ~2
  const auto p2 = lemma2_point(2, 2, 2, e);
  EXPECT_EQ(p2.cmax_ratio, Fraction(3, 2));
  EXPECT_EQ(p2.mmax_ratio, Fraction(1));
  EXPECT_THROW(lemma2_point(2, 2, 3, e), std::invalid_argument);
}

}  // namespace
}  // namespace storesched
