// Unit tests for Instance and Schedule: bounds, metrics, serialization of
// assignments into timed schedules, and validation of machine invariants.
#include <gtest/gtest.h>

#include "common/instance.hpp"
#include "common/schedule.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(Instance, AggregatesAndBounds) {
  const Instance inst = make_instance({3, 5, 4}, {2, 7, 3}, 2);
  EXPECT_EQ(inst.n(), 3u);
  EXPECT_EQ(inst.m(), 2);
  EXPECT_EQ(inst.total_work(), 12);
  EXPECT_EQ(inst.total_storage(), 12);
  EXPECT_EQ(inst.max_p(), 5);
  EXPECT_EQ(inst.max_s(), 7);
  EXPECT_EQ(inst.time_lower_bound(), 6);     // ceil(12/2) = 6 > max_p
  EXPECT_EQ(inst.storage_lower_bound(), 7);  // max_s = 7 > 12/2
  EXPECT_EQ(inst.time_lower_bound_fraction(), Fraction(6));
  EXPECT_EQ(inst.storage_lower_bound_fraction(), Fraction(7));
}

TEST(Instance, FractionalAverageBound) {
  const Instance inst = make_instance({1, 1, 1}, {1, 1, 1}, 2);
  EXPECT_EQ(inst.time_lower_bound_fraction(), Fraction(3, 2));
  EXPECT_EQ(inst.time_lower_bound(), 2);  // integer ceiling
}

TEST(Instance, RejectsBadInput) {
  EXPECT_THROW(Instance({{1, 1}}, 0), std::invalid_argument);
  EXPECT_THROW(Instance({{-1, 1}}, 2), std::invalid_argument);
  EXPECT_THROW(Instance({{1, -1}}, 2), std::invalid_argument);
}

TEST(Instance, DagSizeMismatchAndCyclesRejected) {
  Dag wrong(2);
  EXPECT_THROW(Instance({{1, 1}}, 2, wrong), std::invalid_argument);
  Dag cyc(2);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 0);
  EXPECT_THROW(Instance({{1, 1}, {1, 1}}, 2, cyc), std::invalid_argument);
}

TEST(Instance, CriticalPathWithAndWithoutDag) {
  const Instance free_inst = make_instance({4, 2}, {1, 1}, 2);
  EXPECT_EQ(free_inst.critical_path(), 4);

  Dag chain(2);
  chain.add_edge(0, 1);
  const Instance dag_inst({{4, 1}, {2, 1}}, 2, chain);
  EXPECT_EQ(dag_inst.critical_path(), 6);
  EXPECT_EQ(dag_inst.time_lower_bound(), 6);
}

TEST(Instance, SwappedExchangesObjectives) {
  const Instance inst = make_instance({3, 5}, {2, 7}, 2);
  const Instance sw = inst.swapped();
  EXPECT_EQ(sw.task(0).p, 2);
  EXPECT_EQ(sw.task(0).s, 3);
  EXPECT_EQ(sw.max_p(), inst.max_s());
  EXPECT_EQ(sw.total_work(), inst.total_storage());
}

TEST(Instance, SwappedThrowsOnDag) {
  Dag d(1);
  const Instance inst({{1, 1}}, 1, d);
  EXPECT_THROW(inst.swapped(), std::logic_error);
}

TEST(Schedule, AssignmentAndMetrics) {
  const Instance inst = make_instance({3, 5, 4}, {2, 7, 3}, 2);
  Schedule sched(inst);
  EXPECT_FALSE(sched.fully_assigned());
  sched.assign(0, 0);
  sched.assign(1, 1);
  sched.assign(2, 0);
  EXPECT_TRUE(sched.fully_assigned());
  EXPECT_FALSE(sched.timed());

  EXPECT_EQ(processor_loads(inst, sched), (std::vector<Time>{7, 5}));
  EXPECT_EQ(processor_storage(inst, sched), (std::vector<Mem>{5, 7}));
  EXPECT_EQ(cmax(inst, sched), 7);
  EXPECT_EQ(mmax(inst, sched), 7);
  EXPECT_EQ(objectives(inst, sched), (ObjectivePoint{7, 7}));
}

TEST(Schedule, TimedMetrics) {
  const Instance inst = make_instance({3, 5}, {1, 1}, 2);
  Schedule sched(inst);
  sched.assign(0, 0, 0);
  sched.assign(1, 0, 3);
  EXPECT_TRUE(sched.timed());
  EXPECT_EQ(cmax(inst, sched), 8);
  EXPECT_EQ(sum_completion_times(inst, sched), 3 + 8);
  EXPECT_EQ(tri_objectives(inst, sched), (TriObjectivePoint{8, 2, 11}));
}

TEST(Schedule, SumCompletionRequiresTiming) {
  const Instance inst = make_instance({3}, {1}, 1);
  Schedule sched(inst);
  sched.assign(0, 0);
  EXPECT_THROW(sum_completion_times(inst, sched), std::logic_error);
}

TEST(Schedule, RejectsBadAssignments) {
  const Instance inst = make_instance({3}, {1}, 2);
  Schedule sched(inst);
  EXPECT_THROW(sched.assign(0, 2), std::invalid_argument);
  EXPECT_THROW(sched.assign(0, -1), std::invalid_argument);
  EXPECT_THROW(sched.assign(0, 0, -5), std::invalid_argument);
}

TEST(Schedule, SerializeAssignmentBackToBack) {
  const Instance inst = make_instance({3, 5, 4}, {1, 1, 1}, 2);
  Schedule sched(inst);
  sched.assign(0, 0);
  sched.assign(1, 1);
  sched.assign(2, 0);
  const Schedule timed = serialize_assignment(inst, sched);
  EXPECT_TRUE(timed.timed());
  EXPECT_EQ(timed.start(0), 0);
  EXPECT_EQ(timed.start(2), 3);  // follows task 0 on processor 0
  EXPECT_EQ(timed.start(1), 0);
  EXPECT_EQ(cmax(inst, timed), cmax(inst, sched));
  EXPECT_TRUE(validate_schedule(inst, timed, {.require_timed = true}).ok);
}

TEST(Schedule, SerializeRespectsPriority) {
  const Instance inst = make_instance({3, 4}, {1, 1}, 1);
  Schedule sched(inst);
  sched.assign(0, 0);
  sched.assign(1, 0);
  const std::vector<TaskId> priority{1, 0};
  const Schedule timed = serialize_assignment(inst, sched, priority);
  EXPECT_EQ(timed.start(1), 0);
  EXPECT_EQ(timed.start(0), 4);
}

TEST(Validate, DetectsUnassigned) {
  const Instance inst = make_instance({1}, {1}, 1);
  const Schedule sched(inst);
  const auto r = validate_schedule(inst, sched);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unassigned"), std::string::npos);
}

TEST(Validate, DetectsOverlap) {
  const Instance inst = make_instance({5, 5}, {1, 1}, 1);
  Schedule sched(inst);
  sched.assign(0, 0, 0);
  sched.assign(1, 0, 3);  // overlaps [0,5)
  const auto r = validate_schedule(inst, sched);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("overlap"), std::string::npos);
}

TEST(Validate, AcceptsTouchingIntervals) {
  const Instance inst = make_instance({5, 5}, {1, 1}, 1);
  Schedule sched(inst);
  sched.assign(0, 0, 0);
  sched.assign(1, 0, 5);
  EXPECT_TRUE(validate_schedule(inst, sched).ok);
}

TEST(Validate, DetectsPrecedenceViolation) {
  Dag d(2);
  d.add_edge(0, 1);
  const Instance inst({{5, 1}, {2, 1}}, 2, d);
  Schedule sched(inst);
  sched.assign(0, 0, 0);
  sched.assign(1, 1, 3);  // starts before task 0 finishes at 5
  const auto r = validate_schedule(inst, sched);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("precedence"), std::string::npos);
}

TEST(Validate, PrecedenceInstancesRequireTiming) {
  Dag d(2);
  d.add_edge(0, 1);
  const Instance inst({{5, 1}, {2, 1}}, 2, d);
  Schedule sched(inst);
  sched.assign(0, 0);
  sched.assign(1, 1);
  EXPECT_FALSE(validate_schedule(inst, sched).ok);
}

TEST(Validate, EnforcesMemoryCap) {
  const Instance inst = make_instance({1, 1}, {4, 5}, 1);
  Schedule sched(inst);
  sched.assign(0, 0);
  sched.assign(1, 0);
  EXPECT_TRUE(validate_schedule(inst, sched, {.memory_cap = 9}).ok);
  const auto r = validate_schedule(inst, sched, {.memory_cap = 8});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cap"), std::string::npos);
}

}  // namespace
}  // namespace storesched
