// Tests for the Section 5.2 tri-objective extension: RLS + SPT order on
// independent tasks and the Corollary 4 guarantees on all three objectives.
#include "core/triobjective.hpp"

#include <gtest/gtest.h>

#include "algorithms/graham.hpp"
#include "common/generators.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace storesched {
namespace {

using testing::make_instance;

TEST(TriObjective, RejectsPrecedenceInstances) {
  Dag d(1);
  const Instance inst({{1, 1}}, 1, d);
  EXPECT_THROW(tri_objective_schedule(inst, Fraction(3)), std::logic_error);
}

TEST(TriObjective, GuaranteeOnlyAboveTwo) {
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 2);
  const TriObjectiveResult with = tri_objective_schedule(inst, Fraction(3));
  EXPECT_TRUE(with.has_guarantee);
  const TriObjectiveResult without = tri_objective_schedule(inst, Fraction(3, 2));
  EXPECT_FALSE(without.has_guarantee);
}

TEST(TriObjective, RatioFormulasMatchCorollary4) {
  const Instance inst = make_instance({3, 2, 1}, {1, 2, 3}, 4);
  const Fraction delta(4);
  const TriObjectiveResult r = tri_objective_schedule(inst, delta);
  ASSERT_TRUE(r.has_guarantee);
  // 2 + 1/(4-2) - (4-1)/(4*(4-2)) = 2 + 1/2 - 3/8 = 17/8.
  EXPECT_EQ(r.cmax_ratio, Fraction(17, 8));
  EXPECT_EQ(r.mmax_ratio, Fraction(4));
  // 2 + 1/(4-2) = 5/2.
  EXPECT_EQ(r.sumci_ratio, Fraction(5, 2));
}

TEST(TriObjective, SumCiBoundAgainstSptOptimum) {
  Rng rng(51);
  for (int trial = 0; trial < 15; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(4, 30));
    gp.m = static_cast<int>(rng.uniform_int(2, 5));
    const Instance inst = generate_uniform(gp, rng);
    const Fraction delta(3);
    const TriObjectiveResult r = tri_objective_schedule(inst, delta);
    ASSERT_TRUE(r.rls.feasible);
    const Time opt_sumci = optimal_sum_completion(inst);
    // Corollary 4: sum Ci <= (2 + 1/(Delta-2)) * optimal sum Ci, exactly.
    EXPECT_TRUE(Fraction(r.objectives.sum_ci) <=
                rls_sumci_ratio(delta) * Fraction(opt_sumci))
        << "trial " << trial;
    EXPECT_GE(r.objectives.sum_ci, opt_sumci);
  }
}

TEST(TriObjective, AllThreeObjectivesWithinGuarantees) {
  Rng rng(52);
  for (int trial = 0; trial < 10; ++trial) {
    GenParams gp;
    gp.n = static_cast<std::size_t>(rng.uniform_int(6, 25));
    gp.m = static_cast<int>(rng.uniform_int(2, 4));
    const Instance inst = generate_anticorrelated(gp, 0.2, rng);
    const Fraction delta(7, 2);
    const TriObjectiveResult r = tri_objective_schedule(inst, delta);
    ASSERT_TRUE(r.rls.feasible);

    const Fraction c_lb = inst.time_lower_bound_fraction();
    const Fraction m_lb = inst.storage_lower_bound_fraction();
    // Lemma 5's proof bounds Cmax by a combination of sum p / m and the
    // critical path, both of which are <= c_lb, so the ratio holds against
    // the lower bound itself.
    EXPECT_TRUE(Fraction(r.objectives.cmax) <= r.cmax_ratio * c_lb);
    EXPECT_TRUE(Fraction(r.objectives.mmax) <= r.mmax_ratio * m_lb);
    EXPECT_TRUE(Fraction(r.objectives.sum_ci) <=
                r.sumci_ratio * Fraction(optimal_sum_completion(inst)));
  }
}

TEST(TriObjective, SptTieBreakUsedInsideRls) {
  // On one processor, SPT order is fully determined: starts must be the
  // prefix sums of sorted processing times.
  const Instance inst = make_instance({5, 1, 3}, {1, 1, 1}, 1);
  const TriObjectiveResult r = tri_objective_schedule(inst, Fraction(3));
  ASSERT_TRUE(r.rls.feasible);
  EXPECT_EQ(r.rls.schedule.start(1), 0);  // p=1 first
  EXPECT_EQ(r.rls.schedule.start(2), 1);  // p=3 second
  EXPECT_EQ(r.rls.schedule.start(0), 4);  // p=5 last
  EXPECT_EQ(r.objectives.sum_ci, 1 + 4 + 9);
  EXPECT_EQ(r.objectives.sum_ci, optimal_sum_completion(inst));
}

TEST(TriObjective, UnconstrainedMemoryMatchesPlainSpt) {
  // With Delta large enough to never bind, RLS+SPT equals the SPT list
  // schedule, which is sum-Ci optimal.
  Rng rng(53);
  const Instance inst = generate_uniform(
      {.n = 12, .m = 3, .p_min = 1, .p_max = 20, .s_min = 1, .s_max = 20}, rng);
  const TriObjectiveResult r = tri_objective_schedule(inst, Fraction(1000));
  ASSERT_TRUE(r.rls.feasible);
  EXPECT_EQ(r.objectives.sum_ci, optimal_sum_completion(inst));
}

}  // namespace
}  // namespace storesched
